//! Umbrella crate for the on/off-chain smart-contract stack.
//!
//! Re-exports every layer of the reproduction of Li, Palanisamy & Xu,
//! *"Scalable and Privacy-preserving Design of On/Off-chain Smart
//! Contracts"* (ICDE 2019):
//!
//! * [`primitives`] — 256-bit words, addresses, hashes, hex, RLP, ABI.
//! * [`crypto`] — keccak-256 and secp256k1 ECDSA (sign / verify / recover).
//! * [`trie`] — secure Merkle-Patricia trie: authenticated state roots
//!   and inclusion/exclusion proofs.
//! * [`evm`] — a from-scratch EVM interpreter with Yellow-Paper gas costs.
//! * [`mempool`] — a deterministic transaction pool and fee market.
//! * [`chain`] — a single-node Ethereum-style chain simulator ("Kovan").
//! * [`lang`] — MiniSol, a deterministic Solidity-subset compiler.
//! * [`contracts`] — the paper's betting contracts and baselines in MiniSol.
//! * [`core`] — the paper's contribution: contract splitting, signed copies,
//!   and the four-stage enforcement protocol.

pub use sc_chain as chain;
pub use sc_contracts as contracts;
pub use sc_core as core;
pub use sc_crypto as crypto;
pub use sc_evm as evm;
pub use sc_lang as lang;
pub use sc_mempool as mempool;
pub use sc_primitives as primitives;
pub use sc_trie as trie;
