//! Prints the paper-reproduction gas report: Table II, the model
//! comparison behind Fig. 1, and the automatic split plan that the
//! split/generate stage produces for the monolithic betting contract.
//!
//! Run with: `cargo run --release --example gas_report`

use onoffchain::chain::Testnet;
use onoffchain::contracts::{
    BetSecrets, MonolithicContract, OnChainContract, Timeline, MONOLITHIC_SRC,
};
use onoffchain::core::{split, BettingGame, GameConfig, Participant, Strategy};
use onoffchain::lang::parse;
use onoffchain::primitives::{ether, U256};

fn secrets(weight: u64) -> BetSecrets {
    let mut s = BetSecrets {
        secret_a: U256::from_u64(0x5eed),
        secret_b: U256::from_u64(0xfeed),
        weight,
    };
    while !s.winner_is_bob() {
        s.secret_a = s.secret_a.wrapping_add(U256::ONE);
    }
    s
}

fn run_dispute(weight: u64) -> onoffchain::core::ProtocolReport {
    let game = BettingGame::new(
        Participant::with_strategy("alice", Strategy::SilentLoser),
        Participant::honest("bob"),
        GameConfig {
            phase_seconds: 3600,
            secrets: secrets(weight),
        },
    );
    game.run().expect("protocol").1
}

fn monolithic_total(weight: u64) -> u64 {
    let s = secrets(weight);
    let mut net = Testnet::new();
    let alice = net.funded_wallet("alice", ether(1000));
    let bob = net.funded_wallet("bob", ether(1000));
    let tl = Timeline::starting_at(net.now(), 3600);
    let mono = MonolithicContract::new();
    let r = net
        .deploy(
            &alice,
            mono.initcode(alice.address, bob.address, tl, s),
            U256::ZERO,
            7_900_000,
        )
        .unwrap();
    let addr = r.contract_address.unwrap();
    let mut total = r.gas_used;
    for w in [&alice, &bob] {
        total += net
            .execute(w, addr, ether(1), mono.deposit(), 300_000)
            .unwrap()
            .gas_used;
    }
    net.advance_time(2 * 3600 + 60);
    total += net
        .execute(&alice, addr, U256::ZERO, mono.settle(), 7_900_000)
        .unwrap()
        .gas_used;
    total
}

fn main() {
    println!("# Split plan (split/generate stage on the monolithic contract)\n");
    let program = parse(MONOLITHIC_SRC).expect("parses");
    let plan = split(&program.contracts[0]);
    println!("{}", plan.report());

    println!("# Table II — dispute extra functions (paper: 225,082 + reveal() / 37,745)\n");
    let report = run_dispute(64);
    println!(
        "  deployVerifiedInstance():  {:>9} gas",
        report.gas_of("deployVerifiedInstance").unwrap()
    );
    println!(
        "  returnDisputeResolution(): {:>9} gas (includes reveal @ weight 64)",
        report.gas_of("returnDisputeResolution").unwrap()
    );

    println!("\n# Fig. 1 — whole-game miner gas, all-on-chain vs hybrid honest path\n");
    println!("  {:>8} {:>14} {:>14}", "weight", "monolithic", "hybrid");
    for w in [0u64, 100, 1_000, 10_000] {
        let game = BettingGame::new(
            Participant::honest("alice"),
            Participant::honest("bob"),
            GameConfig {
                phase_seconds: 3600,
                secrets: secrets(w),
            },
        );
        let (_g, honest) = game.run().expect("protocol");
        println!(
            "  {:>8} {:>14} {:>14}",
            w,
            monolithic_total(w),
            honest.total_gas()
        );
    }
    println!(
        "\nhybrid is flat in reveal weight; the all-on-chain model pays for it in every node."
    );

    println!("\n# Per-opcode breakdown of deployVerifiedInstance (EVM profiler)\n");
    let mut net = Testnet::new();
    let alice = net.funded_wallet("alice", ether(1000));
    let bob = net.funded_wallet("bob", ether(1000));
    let tl = Timeline::starting_at(net.now(), 3600);
    let on = OnChainContract::new();
    let onchain = net
        .deploy(
            &alice,
            on.initcode(alice.address, bob.address, tl),
            onoffchain::primitives::U256::ZERO,
            5_000_000,
        )
        .unwrap()
        .contract_address
        .unwrap();
    for w in [&alice, &bob] {
        net.execute(w, onchain, ether(1), on.deposit(), 300_000)
            .unwrap();
    }
    net.advance_time(4 * 3600);
    let game = BettingGame::new(
        Participant::honest("alice"),
        Participant::honest("bob"),
        GameConfig {
            phase_seconds: 3600,
            secrets: secrets(64),
        },
    );
    let copy = game.signed_copy();
    let data =
        on.deploy_verified_instance(&copy.bytecode, &copy.signatures[0], &copy.signatures[1]);
    let (profile, exec_gas) = net.profile_call(
        bob.address,
        onchain,
        onoffchain::primitives::U256::ZERO,
        data,
        7_000_000,
    );
    println!("  {:<12} {:>8} {:>12}", "opcode", "count", "gas");
    for (name, count, gas) in profile.rows().into_iter().take(12) {
        println!("  {name:<12} {count:>8} {gas:>12}");
    }
    println!("  (execution gas {exec_gas}; calldata + tx base excluded)");
}
