//! Quickstart: compile a MiniSol contract, deploy it on the simulated
//! testnet, and call it — the whole stack in ~60 lines.
//!
//! Run with: `cargo run --example quickstart`

use onoffchain::chain::Testnet;
use onoffchain::lang::compile;
use onoffchain::primitives::abi::Value;
use onoffchain::primitives::{ether, U256};

const SOURCE: &str = r#"
    pragma solidity ^0.4.24;

    contract counter {
        uint256 count;
        address owner;

        constructor(address o) public { owner = o; }

        modifier ownerOnly { require(msg.sender == owner); _; }

        function increment(uint256 by) public ownerOnly {
            count = count + by;
        }

        function get() public returns (uint256) { return count; }
    }
"#;

fn main() {
    // 1. Boot a single-node testnet and fund a wallet.
    let mut net = Testnet::new();
    let me = net.funded_wallet("quickstart", ether(10));
    println!("wallet {} funded with 10 ether", me.address);

    // 2. Compile the contract (deterministic MiniSol → EVM bytecode).
    let contract = compile(SOURCE, "counter").expect("compiles");
    println!(
        "compiled `counter`: {} bytes of runtime code",
        contract.runtime.len()
    );

    // 3. Deploy with a constructor argument.
    let initcode = contract
        .initcode(&[Value::Address(me.address)])
        .expect("ctor args");
    let receipt = net
        .deploy(&me, initcode, U256::ZERO, 1_000_000)
        .expect("deploy accepted");
    assert!(receipt.success);
    let addr = receipt.contract_address.expect("created");
    println!(
        "deployed at {} in block {} ({} gas)",
        addr, receipt.block_number, receipt.gas_used
    );

    // 4. Send transactions.
    for by in [5u64, 37] {
        let data = contract
            .calldata("increment", &[Value::Uint(U256::from_u64(by))])
            .expect("abi");
        let r = net
            .execute(&me, addr, U256::ZERO, data, 200_000)
            .expect("tx");
        assert!(r.success);
        println!("increment({by}): {} gas", r.gas_used);
    }

    // 5. Read state with a free eth_call.
    let out = net.call(me.address, addr, contract.calldata("get", &[]).unwrap());
    assert!(!out.reverted);
    let count = U256::from_be_slice(&out.output);
    println!("counter = {count}");
    assert_eq!(count, U256::from_u64(42));

    // 6. The modifier really guards: a stranger's tx reverts.
    let stranger = net.funded_wallet("stranger", ether(1));
    let data = contract
        .calldata("increment", &[Value::Uint(U256::ONE)])
        .unwrap();
    let r = net
        .execute(&stranger, addr, U256::ZERO, data, 200_000)
        .expect("tx admitted");
    assert!(!r.success);
    println!("stranger's increment reverted, as the ownerOnly modifier demands");
}
