//! The split/generate stage, fully automated: feed the monolithic
//! betting contract to the splitter and get a compilable, protocol-ready
//! on/off-chain pair back — classification, decomposition of the mixed
//! settlement function, state partitioning, constructor splitting and
//! extra-function padding all done mechanically.
//!
//! Run with: `cargo run --example auto_split`

use onoffchain::contracts::MONOLITHIC_SRC;
use onoffchain::core::{generate_pair, split};
use onoffchain::lang::parse;

fn main() {
    let program = parse(MONOLITHIC_SRC).expect("monolithic source parses");
    let whole = &program.contracts[0];

    println!("== 1. classification (the paper's light/public vs heavy/private) ==\n");
    let plan = split(whole);
    print!("{}", plan.report());

    println!("\n== 2. generated on-chain contract ==\n");
    let pair = generate_pair(whole).expect("pair generates");
    println!("{}", pair.onchain_source);

    println!("== 3. generated off-chain contract (this is what gets signed) ==\n");
    println!("{}", pair.offchain_source);

    println!("== 4. compiled artifacts ==\n");
    println!(
        "on-chain runtime:  {:>5} bytes  (deployed publicly)",
        pair.onchain.runtime.len()
    );
    println!(
        "off-chain runtime: {:>5} bytes  (kept private until a dispute)",
        pair.offchain.runtime.len()
    );
    println!(
        "functions moved off-chain: {}",
        pair.offchain_functions.join(", ")
    );
    println!();
    println!("The generated pair passes the same end-to-end dispute test as the");
    println!("hand-written contracts — see crates/core/tests/generated_pair.rs.");
}
