//! The submit/challenge extension: the paper's stage-3 narrative with a
//! representative submission, a challenge window and security-deposit
//! penalties — including the liveness caveat (a lie stands if nobody
//! watches).
//!
//! Run with: `cargo run --example challenge_period`

use onoffchain::contracts::BetSecrets;
use onoffchain::core::{ChallengeGame, ChallengeOutcome, SubmitStrategy, WatchStrategy};
use onoffchain::primitives::{ether, U256};

fn secrets() -> BetSecrets {
    let mut s = BetSecrets {
        secret_a: U256::from_u64(3),
        secret_b: U256::from_u64(4),
        weight: 128,
    };
    while !s.winner_is_bob() {
        s.secret_a = s.secret_a.wrapping_add(U256::ONE);
    }
    s
}

fn show(title: &str, submit: SubmitStrategy, watch: WatchStrategy) -> ChallengeOutcome {
    println!("\n== {title} ==");
    let game = ChallengeGame::new(secrets(), 1800);
    let alice = game.alice.wallet.address;
    let bob = game.bob.wallet.address;
    let (game, report) = game.run(submit, watch);
    for tx in &report.txs {
        println!(
            "  {:<26} {:>9} gas  {}",
            tx.label,
            tx.gas_used,
            if tx.success { "ok" } else { "REVERTED" }
        );
    }
    println!("  outcome: {:?}", report.outcome);
    println!(
        "  alice: {} | bob: {} (start 1000 ether each)",
        game.net.balance_of(alice),
        game.net.balance_of(bob)
    );
    println!(
        "  off-chain bytes revealed: {}",
        report.offchain_bytes_revealed
    );
    report.outcome
}

fn main() {
    println!("Bob wins the private bet in every scenario below; Alice is the");
    println!("representative who submits the result on-chain.");

    let o = show(
        "truthful submission, vigilant watcher",
        SubmitStrategy::Truthful,
        WatchStrategy::Vigilant,
    );
    assert_eq!(o, ChallengeOutcome::FinalizedUnchallenged);

    let o = show(
        "FALSE submission, vigilant watcher (penalty!)",
        SubmitStrategy::False,
        WatchStrategy::Vigilant,
    );
    assert_eq!(o, ChallengeOutcome::ResolvedByChallenge);

    let o = show(
        "FALSE submission, sleeping watcher (the residual risk)",
        SubmitStrategy::False,
        WatchStrategy::Asleep,
    );
    assert_eq!(o, ChallengeOutcome::LieStood);

    println!("\nTakeaway: the challenge design finalizes without the loser's");
    println!("cooperation and makes lying unprofitable against anyone online —");
    println!("but unlike the concession design it assumes participants watch");
    println!("the chain during the window. The security deposit (0.1 ether)");
    println!("funds the honest challenger's dispute gas, as §IV of the paper");
    println!("recommends.");

    let _ = ether(0);
}
