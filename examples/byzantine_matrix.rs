//! Runs the protocol under every combination of participant strategies
//! and prints the outcome matrix — the incentive argument of the paper
//! made executable: no Byzantine strategy profits.
//!
//! Run with: `cargo run --example byzantine_matrix`

use onoffchain::contracts::BetSecrets;
use onoffchain::core::{BettingGame, GameConfig, Outcome, Participant, Strategy};
use onoffchain::primitives::{ether, U256};

fn secrets_bob_wins() -> BetSecrets {
    let mut s = BetSecrets {
        secret_a: U256::from_u64(77),
        secret_b: U256::from_u64(88),
        weight: 64,
    };
    while !s.winner_is_bob() {
        s.secret_a = s.secret_a.wrapping_add(U256::ONE);
    }
    s
}

fn outcome_label(o: Outcome) -> &'static str {
    match o {
        Outcome::AbortedAtSigning => "abort@sign",
        Outcome::Refunded => "refunded",
        Outcome::SettledHonestly => "honest",
        Outcome::SettledByDispute => "dispute",
    }
}

fn main() {
    // Alice is the loser in every game (Bob's secrets win), so
    // loser-side strategies are exercised through her.
    let alice_strategies = [
        Strategy::Honest,
        Strategy::RefusesToSign,
        Strategy::SignsTampered,
        Strategy::SilentLoser,
        Strategy::ForgingLoser,
        Strategy::NoShow,
    ];

    println!(
        "{:<16} {:>12} {:>16} {:>16} {:>10}",
        "alice (loser)", "outcome", "alice Δwei", "bob Δwei", "gas"
    );
    for a_strat in alice_strategies {
        let game = BettingGame::new(
            Participant::with_strategy("alice", a_strat),
            Participant::with_strategy("bob", Strategy::Honest),
            GameConfig {
                phase_seconds: 3600,
                secrets: secrets_bob_wins(),
            },
        );
        let alice_addr = game.alice.wallet.address;
        let bob_addr = game.bob.wallet.address;
        let (game, report) = game.run().expect("protocol");
        let delta = |addr| {
            let now = game.net.balance_of(addr);
            let start = ether(1000);
            if now >= start {
                format!("+{}", now.wrapping_sub(start))
            } else {
                format!("-{}", start.wrapping_sub(now))
            }
        };
        println!(
            "{:<16} {:>12} {:>16} {:>16} {:>10}",
            format!("{a_strat:?}"),
            outcome_label(report.outcome),
            delta(alice_addr),
            delta(bob_addr),
            report.total_gas()
        );

        // The incentive invariant: whatever Alice tries, she never ends
        // up with more than she would by playing honestly, and the
        // honest Bob never loses his stake.
        match report.outcome {
            Outcome::SettledHonestly | Outcome::SettledByDispute => {
                assert!(
                    game.net.balance_of(bob_addr) > ether(1000),
                    "honest winner must profit"
                );
                assert!(
                    game.net.balance_of(alice_addr) < ether(1000),
                    "loser must pay"
                );
            }
            Outcome::AbortedAtSigning | Outcome::Refunded => {
                // Nobody's deposit is stuck in the contract.
                assert_eq!(game.net.balance_of(game.onchain_addr.unwrap()), U256::ZERO);
            }
        }
    }
    println!();
    println!("Invariant held in every row: deviation never beats honesty,");
    println!("and the honest counterparty's funds are never stranded.");
}
