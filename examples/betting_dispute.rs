//! The paper's dispute path (Table I, rule 5): the loser goes silent, so
//! after T3 the winner reveals the signed copy, the on-chain contract
//! verifies both signatures with `ecrecover`, CREATEs the verified
//! instance, and the miners recompute `reveal()` to enforce the true
//! result.
//!
//! Run with: `cargo run --example betting_dispute`

use onoffchain::contracts::{BetSecrets, DEPLOYED_ADDR_SLOT};
use onoffchain::core::{BettingGame, GameConfig, Outcome, Participant, Strategy};
use onoffchain::evm::contract_address;
use onoffchain::primitives::{Address, U256};

fn main() {
    // Pick secrets whose mixed parity makes Bob the winner, so the
    // silent loser is Alice.
    let mut secrets = BetSecrets {
        secret_a: U256::from_u64(1234),
        secret_b: U256::from_u64(5678),
        weight: 2_000,
    };
    while !secrets.winner_is_bob() {
        secrets.secret_a = secrets.secret_a.wrapping_add(U256::ONE);
    }

    let game = BettingGame::new(
        Participant::with_strategy("alice", Strategy::SilentLoser),
        Participant::with_strategy("bob", Strategy::Honest),
        GameConfig {
            phase_seconds: 3600,
            secrets,
        },
    );
    println!("Alice will lose — and refuse to concede.");
    println!(
        "signed copy: {} bytes of bytecode + 2 signatures over keccak256(bytecode)",
        game.offchain_bytecode.len()
    );
    let copy = game.signed_copy();
    println!(
        "  keccak256(bytecode) = {}",
        onoffchain::core::bytecode_hash(&copy.bytecode)
    );
    for (i, sig) in copy.signatures.iter().enumerate() {
        println!("  signature {i}: v={}, r={}, s={}", sig.v, sig.r, sig.s);
    }

    let (game, report) = game.run().expect("protocol");

    println!("\n== transaction ledger ==");
    for tx in &report.txs {
        println!(
            "  [{}] {:<26} {:>9} gas  {}",
            tx.stage,
            tx.label,
            tx.gas_used,
            if tx.success { "ok" } else { "REVERTED" }
        );
    }

    assert_eq!(report.outcome, Outcome::SettledByDispute);
    let onchain = game.onchain_addr.unwrap();
    let instance = Address::from_u256(
        game.net
            .storage_at(onchain, U256::from_u64(DEPLOYED_ADDR_SLOT)),
    );
    println!("\n== dispute resolution ==");
    println!("on-chain contract:  {onchain}");
    println!("verified instance:  {instance}");
    println!(
        "  (the unique CREATE link: instance == contract_address(onChain, nonce 1) = {})",
        contract_address(onchain, 1)
    );
    assert_eq!(instance, contract_address(onchain, 1));
    println!(
        "verified instance runtime code: {} bytes now public on-chain",
        game.net.code_at(instance).len()
    );
    println!(
        "privacy cost of the dispute: {} bytes of the off-chain contract revealed",
        report.offchain_bytes_revealed
    );
    println!(
        "\nBob (the honest winner) holds {} wei — both deposits, enforced by miners",
        game.net.balance_of(game.bob.wallet.address)
    );
    println!(
        "Alice (the dishonest loser) holds {} wei",
        game.net.balance_of(game.alice.wallet.address)
    );
}
