//! The paper's betting game on the honest path (Table I, rules 1–4):
//! both participants follow the agreed off-chain contract, the loser
//! concedes, and nothing about the bet is ever revealed on-chain.
//!
//! Run with: `cargo run --example betting_honest`

use onoffchain::contracts::BetSecrets;
use onoffchain::core::{BettingGame, GameConfig, Outcome, Participant, Stage};
use onoffchain::primitives::{ether, U256};

fn main() {
    let secrets = BetSecrets {
        secret_a: U256::from_u64(0x5eed),
        secret_b: U256::from_u64(0xfeed),
        weight: 5_000, // a deliberately expensive private reveal()
    };
    println!("== split/generate ==");
    println!(
        "private bet: secretA={}, secretB={}, reveal weight={} iterations",
        secrets.secret_a, secrets.secret_b, secrets.weight
    );

    let game = BettingGame::new(
        Participant::honest("alice"),
        Participant::honest("bob"),
        GameConfig {
            phase_seconds: 3600,
            secrets,
        },
    );
    println!(
        "off-chain contract initcode: {} bytes (signed, never published on the honest path)",
        game.offchain_bytecode.len()
    );
    let alice = game.alice.wallet.address;
    let bob = game.bob.wallet.address;

    let (game, report) = game.run().expect("protocol");

    println!("\n== transaction ledger ==");
    for tx in &report.txs {
        println!(
            "  [{}] {:<24} {:>9} gas  {}",
            tx.stage,
            tx.label,
            tx.gas_used,
            if tx.success { "ok" } else { "REVERTED" }
        );
    }

    println!("\n== outcome ==");
    assert_eq!(report.outcome, Outcome::SettledHonestly);
    let winner = if report.winner_is_bob { "Bob" } else { "Alice" };
    println!("winner (computed privately, enforced by concession): {winner}");
    println!(
        "alice balance: {} wei, bob balance: {} wei",
        game.net.balance_of(alice),
        game.net.balance_of(bob)
    );
    println!(
        "off-chain bytes revealed on-chain: {} (privacy preserved)",
        report.offchain_bytes_revealed
    );
    println!(
        "dispute machinery gas: {} (never ran)",
        report.stage_gas(Stage::DisputeResolve)
    );
    println!(
        "total miner-executed gas: {} — the {}-iteration reveal() cost the miners nothing",
        report.total_gas(),
        secrets.weight
    );
    assert!(
        game.net
            .balance_of(if report.winner_is_bob { bob } else { alice })
            > ether(1000)
    );
}
