//! S4 — flat-state engine: read latency across three decades of
//! account count, seal-time folding, and pruning-archive memory.
//!
//! Prints the read-latency curve at 10k / 100k / 1M accounts and the
//! 10 000-block pruning churn, writes `BENCH_state.json` at the
//! repository root, asserts the acceptance bounds (1M-account reads
//! within 1.5× of 10k; archived trie nodes plateau within 1.5× of the
//! halfway mark), then Criterion-times the 10k-account read point.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::print_gas_table;
use sc_bench::state::{artifact_path, measure_read_point, run_and_write};

fn print_comparison() {
    let report = run_and_write().expect("write BENCH_state.json");
    let mut rows: Vec<(&str, String)> = report
        .read_points
        .iter()
        .map(|p| {
            let label: &str = match p.accounts {
                10_000 => "reads @ 10k accounts",
                100_000 => "reads @ 100k accounts",
                _ => "reads @ 1M accounts",
            };
            (label, format!("{:>7.1} ns mean", p.mean_read_ns))
        })
        .collect();
    rows.push((
        "1M / 10k read ratio",
        format!("{:.3}×", report.read_ratio_largest_over_smallest()),
    ));
    rows.push((
        "seal (fold + archive)",
        format!(
            "{:>7.1} µs mean over {} blocks (window {})",
            report.seal.mean_seal_ns / 1e3,
            report.seal.blocks,
            report.seal.window,
        ),
    ));
    rows.push((
        "archived trie nodes",
        format!(
            "mid {} / peak {} ({:.3}× plateau), live {}",
            report.seal.mid_trie_nodes,
            report.seal.peak_trie_nodes,
            report.seal.plateau_ratio(),
            report.seal.live_trie_nodes,
        ),
    ));
    print_gas_table(
        "S4 — flat-state reads, seal time and pruned trie memory",
        &rows,
    );
    println!("  wrote {}", artifact_path().display());

    let ratio = report.read_ratio_largest_over_smallest();
    assert!(
        ratio <= 1.5,
        "flat-read latency scaled with account count: 1M is {ratio:.3}× the 10k point"
    );
    let plateau = report.seal.plateau_ratio();
    assert!(
        plateau <= 1.5,
        "pruning archive failed to plateau: peak is {plateau:.3}× the halfway node count"
    );
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let mut group = c.benchmark_group("state");
    group.sample_size(10);
    group.bench_function("flat_reads/10k_accounts", |b| {
        b.iter(|| measure_read_point(10_000, 100_000))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
