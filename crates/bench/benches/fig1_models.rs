//! E2 — reproduces the quantitative claim behind **Fig. 1**: comparing
//! the all-on-chain execution model with the hybrid on/off-chain model.
//!
//! The paper's figure is a schematic; its claim is that in the hybrid
//! model miners only execute the light/public functions while the
//! heavy/private ones (`reveal()`, weight w) run off-chain. We measure
//! miner-executed gas for the *whole* game under both models as w grows:
//! the all-on-chain curve grows linearly in w, the hybrid (honest-path)
//! curve is flat.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::{fmt_gas, run_game, run_monolithic};
use sc_core::Strategy;

fn print_fig1() {
    println!();
    println!("=== Fig. 1 — miner-executed gas: all-on-chain vs hybrid (honest path) ===");
    println!(
        "  {:>8} {:>16} {:>16} {:>10}",
        "weight", "all-on-chain", "hybrid", "ratio"
    );
    let weights = [0u64, 10, 100, 1_000, 10_000];
    let mut hybrid_series = Vec::new();
    let mut mono_series = Vec::new();
    for &w in &weights {
        let mono = run_monolithic(w).total();
        let hybrid = run_game(Strategy::Honest, Strategy::Honest, w)
            .report
            .total_gas();
        println!(
            "  {:>8} {:>16} {:>16} {:>9.2}x",
            w,
            fmt_gas(mono),
            fmt_gas(hybrid),
            mono as f64 / hybrid as f64
        );
        hybrid_series.push(hybrid);
        mono_series.push(mono);
    }
    println!();

    // Shape assertions.
    let hybrid_spread = hybrid_series.iter().max().unwrap() - hybrid_series.iter().min().unwrap();
    assert_eq!(hybrid_spread, 0, "hybrid honest-path gas is flat in w");
    assert!(
        mono_series.last().unwrap() > &(mono_series[0] + 100_000),
        "all-on-chain grows with w"
    );
    assert!(
        mono_series.last().unwrap() > hybrid_series.last().unwrap(),
        "hybrid wins at high weight"
    );
}

fn bench(c: &mut Criterion) {
    print_fig1();
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("hybrid_honest_game", |b| {
        b.iter(|| {
            run_game(Strategy::Honest, Strategy::Honest, 1_000)
                .report
                .total_gas()
        })
    });
    group.bench_function("all_on_chain_game", |b| {
        b.iter(|| run_monolithic(1_000).total())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
