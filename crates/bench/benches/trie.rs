//! S3 — authenticated-state overhead: the same transfer + storage
//! workload mined with header Merkle commitments off vs on.
//!
//! Prints the comparison at N ∈ {1, 16, 256} (wall-clock both ways,
//! the seal-time overhead, raw trie build time and proof size), writes
//! `BENCH_trie.json` at the repository root, asserts the acceptance
//! bound (≤ 25% overhead at N = 256), then Criterion-times the rooted
//! N = 16 run.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::print_gas_table;
use sc_bench::trie::{artifact_path, measure_point, run_and_write};

fn print_comparison() {
    let report = run_and_write().expect("write BENCH_trie.json");
    let rows: Vec<(&str, String)> = report
        .points
        .iter()
        .map(|p| {
            let label: &str = match p.n {
                1 => "N = 1",
                16 => "N = 16",
                _ => "N = 256",
            };
            (
                label,
                format!(
                    "baseline {:>7.2} ms, rooted {:>7.2} ms ({:+.1}% over {} blocks, \
                     {:.1} proof nodes)",
                    p.baseline_ns as f64 / 1e6,
                    p.rooted_ns as f64 / 1e6,
                    p.overhead_pct(),
                    p.blocks_mined,
                    p.mean_proof_nodes,
                ),
            )
        })
        .collect();
    print_gas_table("S3 — Merkle commitment overhead per sealed block", &rows);
    println!("  wrote {}", artifact_path().display());

    let at_256 = report
        .points
        .iter()
        .find(|p| p.n == 256)
        .expect("N = 256 measured");
    assert!(
        at_256.overhead_pct() <= 25.0,
        "root commitment exceeded the 25% seal-time budget at N = 256: {:.2}%",
        at_256.overhead_pct()
    );
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let mut group = c.benchmark_group("trie");
    group.sample_size(10);
    group.bench_function("rooted/16_accounts", |b| b.iter(|| measure_point(16)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
