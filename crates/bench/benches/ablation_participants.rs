//! A2 — ablation: signed-copy verification cost vs participant count.
//!
//! The paper fixes n = 2 participants; the mechanism generalizes to one
//! signature (and one on-chain `ecrecover`) per participant. We generate
//! n-party verifier contracts and measure how `deployVerifiedInstance`
//! gas scales with n.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::fmt_gas;
use sc_chain::{Testnet, Wallet};
use sc_contracts::gen::{nparty_ctor_args, nparty_deploy_args, nparty_onchain_source};
use sc_core::signedcopy::sign_bytecode;
use sc_lang::compile;
use sc_primitives::{ether, Address, U256};

/// Deploys an n-party verifier and measures one verified-instance deploy.
fn measure(n: usize) -> u64 {
    let mut net = Testnet::new();
    let wallets: Vec<Wallet> = (0..n)
        .map(|i| net.funded_wallet(&format!("party{i}"), ether(100)))
        .collect();
    let addrs: Vec<Address> = wallets.iter().map(|w| w.address).collect();

    let verifier = compile(&nparty_onchain_source(n), "verifierN").expect("verifier compiles");
    let onchain = net
        .deploy(
            &wallets[0],
            verifier.initcode(&nparty_ctor_args(&addrs)).unwrap(),
            U256::ZERO,
            7_900_000,
        )
        .unwrap()
        .contract_address
        .expect("verifier deployed");

    // Everyone signs the same small payload contract.
    let payload = sc_evm::wrap_initcode(&[0x60, 0x01, 0x60, 0x00, 0x52, 0x00]);
    let sigs: Vec<_> = wallets
        .iter()
        .map(|w| sign_bytecode(&w.key, &payload))
        .collect();

    let data = verifier
        .calldata(
            "deployVerifiedInstance",
            &nparty_deploy_args(&payload, &sigs),
        )
        .unwrap();
    let r = net
        .execute(&wallets[0], onchain, U256::ZERO, data, 7_900_000)
        .unwrap();
    assert!(r.success, "n={n}: {:?}", r.failure);
    r.gas_used
}

fn print_ablation() {
    println!();
    println!("=== A2 — deployVerifiedInstance gas vs participant count ===");
    println!("  {:>4} {:>14} {:>18}", "n", "gas", "marginal/signer");
    let ns = [1usize, 2, 3, 4, 6, 8];
    let mut prev: Option<(usize, u64)> = None;
    let mut marginals = Vec::new();
    for &n in &ns {
        let gas = measure(n);
        let marginal = match prev {
            Some((pn, pg)) => {
                let m = (gas - pg) / (n - pn) as u64;
                marginals.push(m);
                fmt_gas(m).to_string()
            }
            None => "-".to_string(),
        };
        println!("  {:>4} {:>14} {:>18}", n, fmt_gas(gas), marginal);
        prev = Some((n, gas));
    }
    println!();
    // Marginal cost per extra participant: ecrecover (3000) + calldata for
    // 96 sig bytes (~5-6k) + keccak/memory noise. Expect 6k–12k.
    for m in &marginals {
        assert!(
            (4_000..20_000).contains(m),
            "marginal signer cost {m} out of band"
        );
    }
}

fn bench(c: &mut Criterion) {
    print_ablation();
    let mut group = c.benchmark_group("ablation_participants");
    group.sample_size(10);
    group.bench_function("verify_8_party_copy", |b| b.iter(|| measure(8)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
