//! R1 — robustness ablation: what does resilience cost?
//!
//! Runs the same honest betting game on a perfect network and under
//! seeded fault schedules, and compares on-chain gas, transaction
//! counts and wall-clock time. The retry/backoff driver's overhead on
//! the happy path should be zero (identical ledger); under faults the
//! extra cost is bounded by the schedule's finite fault budgets.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::{fmt_gas, secrets_bob_wins};
use sc_core::{BettingGame, FaultPlan, GameConfig, Participant, Strategy};

fn run_with_plan(plan: &FaultPlan) -> (u64, usize, usize) {
    let game = BettingGame::with_faults(
        Participant::with_strategy("alice", Strategy::Honest),
        Participant::with_strategy("bob", Strategy::Honest),
        GameConfig {
            phase_seconds: 3600,
            secrets: secrets_bob_wins(64),
        },
        plan,
    );
    let (game, report) = game.run().expect("game terminates");
    let injected = game.net.injected_faults().len() + game.whisper.injected_faults().len();
    (report.total_gas(), report.txs.len(), injected)
}

fn print_ablation() {
    println!();
    println!("=== R1 — retry/backoff overhead under injected faults ===");
    let (clean_gas, clean_txs, _) = run_with_plan(&FaultPlan::none());
    println!(
        "  perfect network : {} gas over {clean_txs} txs",
        fmt_gas(clean_gas)
    );

    for seed in [0x00C0_FFEEu64, 0x0BAD_F00D, 0x5EED_0001, 0x5EED_0002] {
        let (gas, txs, injected) = run_with_plan(&FaultPlan::from_seed(seed));
        println!(
            "  seed {seed:#018x}: {} gas over {txs} txs ({injected} faults injected, \
             gas delta {:+})",
            fmt_gas(gas),
            gas as i64 - clean_gas as i64,
        );
        // Transient failures are rejected before execution, so they are
        // gas-free; the ledger only ever records landed transactions.
        // Severe schedules may degrade the game (abort/refund) with a
        // shorter ledger, but something always lands.
        assert!(txs >= 1, "the driver always reaches the chain");
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_ablation();
    let mut group = c.benchmark_group("retry_overhead");
    group.bench_function("honest_game/perfect", |b| {
        b.iter(|| run_with_plan(&FaultPlan::none()))
    });
    group.bench_function("honest_game/faulted", |b| {
        b.iter(|| run_with_plan(&FaultPlan::from_seed(0x5EED_0001)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
