//! S1 — session-engine throughput: N mixed sessions over one shared
//! chain.
//!
//! Prints the throughput curve at N ∈ {1, 16, 256} (sessions/sec, gas
//! per session, txs per shared block), writes `BENCH_sessions.json` at
//! the repository root, then Criterion-times the N = 16 run.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::sessions::{artifact_path, measure_point, run_and_write};
use sc_bench::{fmt_gas, print_gas_table};

fn print_curve() {
    let report = run_and_write().expect("write BENCH_sessions.json");
    let rows: Vec<(&str, String)> = report
        .points
        .iter()
        .map(|p| {
            let label: &str = match p.sessions {
                1 => "N = 1",
                16 => "N = 16",
                _ => "N = 256",
            };
            (
                label,
                format!(
                    "{:>8.2} sessions/s, {} gas/session, {:.2} txs/block",
                    p.sessions_per_sec(),
                    fmt_gas(p.mean_gas_per_session),
                    p.mean_txs_per_block(),
                ),
            )
        })
        .collect();
    print_gas_table("S1 — session multiplexing throughput", &rows);
    println!("  wrote {}", artifact_path().display());
}

fn bench(c: &mut Criterion) {
    print_curve();
    let mut group = c.benchmark_group("sessions");
    group.sample_size(10);
    group.bench_function("scheduler/16_mixed", |b| b.iter(|| measure_point(16)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
