//! E1 — reproduces **Table II** of the paper: gas cost of the two extra
//! functions used for dispute resolution.
//!
//! Paper (Kovan, solc ^0.4.24):
//!
//! | extra function            | gas                |
//! |---------------------------|--------------------|
//! | deployVerifiedInstance()  | 225 082 + reveal() |
//! | returnDisputeResolution() | 37 745             |
//!
//! We regenerate the same two rows on the simulator with MiniSol-compiled
//! contracts, and additionally decompose `deployVerifiedInstance` into
//! its cost drivers (calldata, 2 × ecrecover, CREATE + code deposit).

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::{fmt_gas, print_gas_table, run_game};
use sc_core::Strategy;
use sc_evm::gas::{self, g};

fn print_table2() {
    // In the paper's contract pair, reveal() runs inside the verified
    // instance via returnDisputeResolution; measure both a light and a
    // heavy reveal to expose the "+ reveal()" term. Weight 1 (not 0)
    // keeps the constructor's SSTORE costs identical across the runs.
    let light = run_game(Strategy::SilentLoser, Strategy::Honest, 1);
    let heavy = run_game(Strategy::SilentLoser, Strategy::Honest, 1_000);

    let deploy = light.report.gas_of("deployVerifiedInstance").unwrap();
    let deploy_heavy = heavy.report.gas_of("deployVerifiedInstance").unwrap();
    let ret = light.report.gas_of("returnDisputeResolution").unwrap();
    let ret_heavy = heavy.report.gas_of("returnDisputeResolution").unwrap();

    // Cost decomposition of deployVerifiedInstance.
    let bytecode_len = light.game.offchain_bytecode.len() as u64;
    let runtime_len = light
        .game
        .net
        .code_at(sc_evm::contract_address(
            light.game.onchain_addr.unwrap(),
            1,
        ))
        .len() as u64;
    let calldata_cost = {
        let data = light.game.onchain_abi.deploy_verified_instance(
            &light.game.offchain_bytecode,
            &light.game.signed_copy().signatures[0],
            &light.game.signed_copy().signatures[1],
        );
        gas::tx_intrinsic_gas(&data, false) - g::TRANSACTION
    };

    print_gas_table(
        "Table II — gas cost of the dispute extra functions",
        &[
            (
                "deployVerifiedInstance()   [paper: 225,082 + reveal()]",
                format!("{} gas", fmt_gas(deploy)),
            ),
            (
                "deployVerifiedInstance()   with reveal weight 1000",
                format!("{} gas", fmt_gas(deploy_heavy)),
            ),
            (
                "returnDisputeResolution()  [paper: 37,745]",
                format!("{} gas (weight 1)", fmt_gas(ret)),
            ),
            (
                "returnDisputeResolution()  with reveal weight 1000",
                format!("{} gas", fmt_gas(ret_heavy)),
            ),
        ],
    );
    print_gas_table(
        "deployVerifiedInstance cost drivers",
        &[
            (
                "signed bytecode size",
                format!(
                    "{bytecode_len} bytes (calldata {} gas)",
                    fmt_gas(calldata_cost)
                ),
            ),
            (
                "2 x ecrecover precompile",
                format!("{} gas", fmt_gas(2 * g::ECRECOVER)),
            ),
            ("CREATE", format!("{} gas", fmt_gas(g::CREATE))),
            (
                "code deposit (200/byte x runtime)",
                format!(
                    "{} gas ({runtime_len} bytes)",
                    fmt_gas(g::CODEDEPOSIT * runtime_len)
                ),
            ),
            ("tx base", format!("{} gas", fmt_gas(g::TRANSACTION))),
        ],
    );

    // Shape assertions: same structure as the paper.
    assert!(deploy > 4 * ret, "deploy must dominate return");
    assert!(
        deploy_heavy - deploy < 3_000,
        "reveal() does NOT run inside deployVerifiedInstance in our pair"
    );
    assert!(
        ret_heavy > ret + 50_000,
        "reveal() cost lands in returnDisputeResolution"
    );
}

fn bench(c: &mut Criterion) {
    print_table2();
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("full_dispute_resolution", |b| {
        b.iter(|| {
            run_game(Strategy::SilentLoser, Strategy::Honest, 64)
                .report
                .total_gas()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
