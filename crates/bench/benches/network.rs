//! S3 — multi-node network: partition convergence, orphan rate, and
//! gossip throughput at 2/4/8 nodes.
//!
//! Prints both experiment tables, writes `BENCH_network.json` at the
//! repository root, then Criterion-times the 4-node gossip run.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::network::{artifact_path, measure_gossip, run_and_write, PARTITION_ROUNDS};
use sc_bench::print_gas_table;

fn print_report() {
    let report = run_and_write().expect("write BENCH_network.json");
    let rows: Vec<(&str, String)> = report
        .convergence
        .iter()
        .map(|p| {
            let label: &str = match p.nodes {
                2 => "N = 2",
                4 => "N = 4",
                _ => "N = 8",
            };
            (
                label,
                format!(
                    "{} rounds to converge, {}/{} blocks canonical (orphan rate {:.2}), {} reorgs",
                    p.rounds_to_converge,
                    p.canonical_height,
                    p.blocks_sealed,
                    p.orphan_rate(),
                    p.reorgs,
                ),
            )
        })
        .collect();
    print_gas_table(
        &format!("S3a — convergence after a {PARTITION_ROUNDS}-round partition"),
        &rows,
    );

    let rows: Vec<(&str, String)> = report
        .gossip
        .iter()
        .map(|p| {
            let label: &str = match p.nodes {
                2 => "N = 2",
                4 => "N = 4",
                _ => "N = 8",
            };
            (
                label,
                format!(
                    "{:.2} sessions/s, {} frames ({:.0}/s), {} blocks, {} reorgs",
                    p.sessions_per_sec(),
                    p.frames_delivered,
                    p.frames_per_sec(),
                    p.blocks_sealed,
                    p.reorgs,
                ),
            )
        })
        .collect();
    print_gas_table("S3b — gossip throughput (8 mixed sessions)", &rows);

    let rows: Vec<(&str, String)> = report
        .light_fleet
        .iter()
        .map(|p| {
            (
                "fleet",
                format!(
                    "{} clients / {} nodes: {} rounds to converge, {} headers ({} bytes)",
                    p.clients, p.nodes, p.rounds_to_converge, p.headers_imported, p.header_bytes,
                ),
            )
        })
        .chain(report.light_sessions.iter().map(|p| {
            (
                "sessions",
                format!(
                    "{} stateless sessions / {} nodes: {:.2} sessions/s, {} proofs + {} receipts verified, {} witness bytes ({}/session)",
                    p.sessions,
                    p.nodes,
                    p.sessions_per_sec(),
                    p.proofs_verified,
                    p.receipts_verified,
                    p.witness_bytes,
                    p.witness_bytes_per_session(),
                ),
            )
        }))
        .collect();
    print_gas_table(
        "S3c — light clients (header fleet + stateless sessions)",
        &rows,
    );
    println!("  wrote {}", artifact_path().display());
}

fn bench(c: &mut Criterion) {
    print_report();
    let mut group = c.benchmark_group("network");
    group.sample_size(10);
    group.bench_function("gossip/4_nodes_8_sessions", |b| {
        b.iter(|| measure_gossip(4))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
