//! S4 — optimistic parallel execution: one packed block sealed by the
//! reference serial path, the cached serial path and the Block-STM
//! style parallel executor.
//!
//! Prints the comparison at N ∈ {1, 16, 256} for the conflict-light and
//! conflict-heavy workloads, writes `BENCH_parallel_evm.json` at the
//! repository root, asserts the acceptance bound (≥ 2× seal speedup
//! over the reference at N = 256 conflict-light), then Criterion-times
//! the parallel N = 16 seal.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::parallel_evm::{artifact_path, measure_point, run_and_write, Workload};
use sc_bench::print_gas_table;

fn print_comparison() {
    let report = run_and_write().expect("write BENCH_parallel_evm.json");
    let rows: Vec<(&str, String)> = report
        .points
        .iter()
        .map(|p| {
            let label: &str = match (p.workload, p.n) {
                (Workload::ConflictLight, 1) => "light  N = 1",
                (Workload::ConflictLight, 16) => "light  N = 16",
                (Workload::ConflictLight, _) => "light  N = 256",
                (Workload::ConflictHeavy, 1) => "heavy  N = 1",
                (Workload::ConflictHeavy, 16) => "heavy  N = 16",
                (Workload::ConflictHeavy, _) => "heavy  N = 256",
            };
            (
                label,
                format!(
                    "reference {:>8.2} ms, cached {:>8.2} ms, parallel {:>8.2} ms \
                     ({:.2}x, {} spec / {} reexec)",
                    p.reference_serial_ns as f64 / 1e6,
                    p.cached_serial_ns as f64 / 1e6,
                    p.parallel_ns as f64 / 1e6,
                    p.speedup(),
                    p.speculative,
                    p.reexecuted,
                ),
            )
        })
        .collect();
    print_gas_table(
        &format!(
            "S4 — parallel seal vs serial reference ({} workers)",
            report.workers
        ),
        &rows,
    );
    println!("  wrote {}", artifact_path().display());

    let at_256 = report.light_at(256).expect("N = 256 conflict-light");
    assert!(
        at_256.speedup() >= 2.0,
        "parallel seal below the 2x acceptance bound at N = 256 conflict-light: {:.2}x",
        at_256.speedup()
    );
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let mut group = c.benchmark_group("parallel_evm");
    group.sample_size(10);
    group.bench_function("parallel/light_16", |b| {
        b.iter(|| measure_point(Workload::ConflictLight, 16))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
