//! A1 — ablation: how dispute cost scales with the *size* of the signed
//! off-chain contract.
//!
//! `deployVerifiedInstance` pays for (a) the bytecode as calldata,
//! (b) keccak over it, (c) CREATE execution, and (d) the 200 gas/byte
//! code deposit of the runtime. We inflate the off-chain contract with
//! padding functions and measure the gas growth per byte.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::fmt_gas;
use sc_chain::Testnet;
use sc_contracts::gen::padded_offchain_source;
use sc_contracts::{OnChainContract, Timeline};
use sc_core::SignedCopy;
use sc_lang::compile;
use sc_primitives::abi::Value;
use sc_primitives::{ether, U256};

/// Runs one dispute-deploy against a padded off-chain contract; returns
/// (initcode bytes, gas of deployVerifiedInstance).
fn measure(padding: usize) -> (usize, u64) {
    let mut net = Testnet::new();
    let alice = net.funded_wallet("alice", ether(1000));
    let bob = net.funded_wallet("bob", ether(1000));
    let tl = Timeline::starting_at(net.now(), 3600);
    let on = OnChainContract::new();
    let onchain = net
        .deploy(
            &alice,
            on.initcode(alice.address, bob.address, tl),
            U256::ZERO,
            5_000_000,
        )
        .unwrap()
        .contract_address
        .unwrap();
    for w in [&alice, &bob] {
        assert!(
            net.execute(w, onchain, ether(1), on.deposit(), 300_000)
                .unwrap()
                .success
        );
    }

    let off = compile(&padded_offchain_source(padding), "offChain").expect("padded compiles");
    let initcode = off
        .initcode(&[
            Value::Address(alice.address),
            Value::Address(bob.address),
            Value::Uint(U256::from_u64(1)),
            Value::Uint(U256::from_u64(2)),
            Value::Uint(U256::from_u64(16)),
        ])
        .unwrap();
    let copy = SignedCopy::create(initcode.clone(), &[&alice.key, &bob.key]);

    net.advance_time(4 * 3600);
    let data =
        on.deploy_verified_instance(&copy.bytecode, &copy.signatures[0], &copy.signatures[1]);
    let r = net
        .execute(&bob, onchain, U256::ZERO, data, 7_900_000)
        .unwrap();
    assert!(r.success, "padding {padding}: {:?}", r.failure);
    (initcode.len(), r.gas_used)
}

fn print_ablation() {
    println!();
    println!("=== A1 — deployVerifiedInstance gas vs signed bytecode size ===");
    println!(
        "  {:>10} {:>14} {:>16} {:>12}",
        "padding", "bytecode (B)", "gas", "gas/byte"
    );
    let mut points = Vec::new();
    for padding in [0usize, 4, 8, 16, 32, 64] {
        let (bytes, gas) = measure(padding);
        println!(
            "  {:>10} {:>14} {:>16} {:>12.1}",
            padding,
            bytes,
            fmt_gas(gas),
            gas as f64 / bytes as f64
        );
        points.push((bytes as f64, gas as f64));
    }
    // Least-squares slope: should be ≈ 200 (code deposit) + 68 (calldata)
    // + ~9 (keccak + CREATE memory) per byte ≈ 270–300.
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    println!("  marginal cost: {slope:.1} gas per byte of signed contract");
    println!();
    assert!(
        (150.0..400.0).contains(&slope),
        "marginal gas/byte {slope} outside the code-deposit + calldata band"
    );
}

fn bench(c: &mut Criterion) {
    print_ablation();
    let mut group = c.benchmark_group("ablation_bytecode_size");
    group.sample_size(10);
    group.bench_function("dispute_deploy_padding32", |b| b.iter(|| measure(32)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
