//! A4 — ablation: the two stage-3 designs compared.
//!
//! The paper's published contracts settle by *loser concession*
//! (`reassign()`); the paper's text describes *representative submission
//! with a challenge period*. Both are implemented in this repository —
//! this bench quantifies the trade:
//!
//! * concession needs one tx on the happy path but cannot finalize
//!   without the loser's cooperation (hence the T3 deadline);
//! * submit/challenge finalizes unilaterally after the window but costs
//!   an extra tx and a larger on-chain contract, and adds the
//!   watch-or-lose liveness assumption.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::{fmt_gas, run_game, secrets_bob_wins};
use sc_core::{ChallengeGame, Strategy, SubmitStrategy, WatchStrategy};

fn print_ablation() {
    let weight = 256;

    // Concession design (the paper's Algorithms 2–6).
    let honest = run_game(Strategy::Honest, Strategy::Honest, weight);
    let disputed = run_game(Strategy::SilentLoser, Strategy::Honest, weight);

    // Submit/challenge design (extension).
    let (_g, quiet) = ChallengeGame::new(secrets_bob_wins(weight), 1800)
        .run(SubmitStrategy::Truthful, WatchStrategy::Vigilant);
    let (_g, fought) = ChallengeGame::new(secrets_bob_wins(weight), 1800)
        .run(SubmitStrategy::False, WatchStrategy::Vigilant);

    println!();
    println!("=== A4 — stage-3 designs: concession vs submit/challenge (weight {weight}) ===");
    println!("  {:<44} {:>14}", "path", "total gas");
    println!(
        "  {:<44} {:>14}",
        "concession, honest (deploy+deposits+reassign)",
        fmt_gas(honest.report.total_gas())
    );
    println!(
        "  {:<44} {:>14}",
        "concession, disputed (+verified instance)",
        fmt_gas(disputed.report.total_gas())
    );
    println!(
        "  {:<44} {:>14}",
        "submit/challenge, unchallenged (+finalize)",
        fmt_gas(quiet.total_gas())
    );
    println!(
        "  {:<44} {:>14}",
        "submit/challenge, challenged (+penalty)",
        fmt_gas(fought.total_gas())
    );
    println!();
    println!(
        "  happy-path premium of the challenge design: {} gas",
        fmt_gas(quiet.total_gas().saturating_sub(honest.report.total_gas()))
    );
    println!("  unlike concession, the challenge design finalizes without the loser: ");
    println!(
        "  submitResult {} + finalize {} gas",
        fmt_gas(quiet.gas_of("submitResult").unwrap_or(0)),
        fmt_gas(quiet.gas_of("finalize").unwrap_or(0))
    );
    println!();

    // Shape assertions.
    assert!(
        quiet.total_gas() > honest.report.total_gas(),
        "the challenge design pays a happy-path premium"
    );
    assert!(fought.total_gas() > quiet.total_gas() + 150_000);
    assert!(disputed.report.total_gas() > honest.report.total_gas() + 150_000);
}

fn bench(c: &mut Criterion) {
    print_ablation();
    let mut group = c.benchmark_group("ablation_designs");
    group.sample_size(10);
    group.bench_function("challenge_design_unchallenged", |b| {
        b.iter(|| {
            ChallengeGame::new(secrets_bob_wins(256), 1800)
                .run(SubmitStrategy::Truthful, WatchStrategy::Vigilant)
                .1
                .total_gas()
        })
    });
    group.bench_function("challenge_design_fought", |b| {
        b.iter(|| {
            ChallengeGame::new(secrets_bob_wins(256), 1800)
                .run(SubmitStrategy::False, WatchStrategy::Vigilant)
                .1
                .total_gas()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
