//! C1 — the confidential settle-later stack: commitment-backend
//! throughput, the full channel gas ledger against the monolithic
//! baseline, and settle-later session throughput at N ∈ {1, 16, 256}.
//!
//! Prints all three tables, writes `BENCH_confidential.json` at the
//! repository root, then Criterion-times the N = 16 scheduler run.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::confidential::{artifact_path, measure_point, run_and_write};
use sc_bench::{fmt_gas, print_gas_table};

fn print_report() {
    let report = run_and_write().expect("write BENCH_confidential.json");

    let c = &report.crypto;
    print_gas_table(
        "C1a — commitment backend throughput",
        &[
            (
                "pedersen commit",
                format!("{:>8.0} /s", c.commits_per_sec()),
            ),
            ("range prove (16 bit)", format!("{} ns", c.range_prove_ns)),
            (
                "range verify (16 bit)",
                format!("{:>8.0} /s", c.range_verifies_per_sec()),
            ),
        ],
    );

    let l = &report.lifecycle;
    print_gas_table(
        "C1b — confidential channel gas vs monolithic",
        &[
            ("deploy", fmt_gas(l.deploy_gas)),
            ("fund (public stake)", fmt_gas(l.fund_gas)),
            ("depositCommitted", fmt_gas(l.deposit_committed_gas)),
            ("activate", fmt_gas(l.activate_gas)),
            ("settle (voucher)", fmt_gas(l.settle_gas)),
            ("withdraw", fmt_gas(l.withdraw_gas)),
            ("channel total", fmt_gas(l.total())),
            ("monolithic total", fmt_gas(l.monolithic_total_gas)),
            ("ratio", format!("{:.2}x", l.ratio_vs_monolithic())),
        ],
    );

    let rows: Vec<(&str, String)> = report
        .points
        .iter()
        .map(|p| {
            let label: &str = match p.sessions {
                1 => "N = 1",
                16 => "N = 16",
                _ => "N = 256",
            };
            (
                label,
                format!(
                    "{:>8.2} sessions/s, {} gas/session, {:.2} txs/block",
                    p.sessions_per_sec(),
                    fmt_gas(p.mean_gas_per_session),
                    p.mean_txs_per_block(),
                ),
            )
        })
        .collect();
    print_gas_table("C1c — settle-later session throughput", &rows);
    println!("  wrote {}", artifact_path().display());
}

fn bench(c: &mut Criterion) {
    print_report();
    let mut group = c.benchmark_group("confidential");
    group.sample_size(10);
    group.bench_function("scheduler/16_settle_later", |b| {
        b.iter(|| measure_point(16))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
