//! Microbenchmarks of the substrate itself: hashing, ECDSA, the EVM
//! interpreter, and the MiniSol compiler. Not a paper artifact — these
//! track the performance of the reproduction stack.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use sc_bench::pipeline;
use sc_crypto::ecdsa::{recover_addresses_batch, PrivateKey};
use sc_crypto::{keccak256, recover_address};
use sc_evm::host::{Env, MockHost};
use sc_evm::{Asm, CallParams, Evm, Op};
use sc_lang::compile;
use sc_primitives::{Address, U256};

fn crypto_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto");
    for size in [32usize, 1024, 65_536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("keccak256/{size}"), |b| {
            b.iter(|| keccak256(std::hint::black_box(&data)))
        });
    }
    group.finish();

    let key = PrivateKey::from_seed("bench");
    let digest = keccak256(b"payload");
    let sig = key.sign(digest);
    let mut group = c.benchmark_group("ecdsa");
    group.bench_function("sign", |b| {
        b.iter(|| key.sign(std::hint::black_box(digest)))
    });
    group.bench_function("verify", |b| {
        b.iter(|| key.public_key().verify(digest, std::hint::black_box(&sig)))
    });
    group.bench_function("recover", |b| {
        b.iter(|| recover_address(digest, std::hint::black_box(&sig)).unwrap())
    });

    // Batch recovery: the admission pipeline's hot loop, serial vs fanned out.
    let batch: Vec<_> = (0..64u32)
        .map(|i| {
            let key = PrivateKey::from_seed(&format!("batch-{i}"));
            let digest = keccak256(&i.to_be_bytes());
            (digest, key.sign(digest))
        })
        .collect();
    group.bench_function("recover_batch_64/serial", |b| {
        b.iter(|| {
            std::hint::black_box(&batch)
                .iter()
                .map(|(d, s)| recover_address(*d, s).unwrap())
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("recover_batch_64/parallel", |b| {
        b.iter(|| recover_addresses_batch(std::hint::black_box(&batch)))
    });
    group.finish();
}

/// Times the block pipeline end to end (serial vs batch admission, cold vs
/// warm analysis) and writes `BENCH_pipeline.json` at the repo root.
fn pipeline_benches(c: &mut Criterion) {
    let report = pipeline::run_and_write().expect("write BENCH_pipeline.json");
    println!();
    println!("=== Block pipeline — serial vs parallel admission, cold vs warm analysis ===");
    println!(
        "  admission ({} txs, {} threads): serial {} ns, batch {} ns ({:.2}x)",
        report.tx_count,
        report.threads,
        report.serial_admission_ns,
        report.batch_admission_ns,
        report.admission_speedup()
    );
    println!(
        "  analysis ({} bytes): cold {} ns, warm {} ns ({:.2}x)",
        report.analysis_code_len,
        report.cold_analysis_ns,
        report.warm_analysis_ns,
        report.analysis_speedup()
    );
    println!("  artifact: {}", pipeline::artifact_path().display());
    println!();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("admission_96/serial", |b| {
        b.iter(|| pipeline::measure_admission(96, 1).0)
    });
    group.bench_function("analysis_16k/cold_vs_warm", |b| {
        b.iter(|| pipeline::measure_analysis(16 * 1024, 1))
    });
    group.finish();
}

fn evm_benches(c: &mut Criterion) {
    // A tight arithmetic loop: countdown from N.
    let mut a = Asm::new();
    a.push_u64(10_000); // counter
    a.label("loop");
    a.push_u64(1);
    a.op(Op::Dup2)
        .op(Op::Sub) // counter - 1
        .op(Op::Swap1)
        .op(Op::Pop); // replace counter
    a.op(Op::Dup1);
    a.jumpi("loop");
    a.op(Op::Stop);
    let code = a.assemble().unwrap();

    let mut group = c.benchmark_group("evm");
    group.bench_function("interpreter_10k_iterations", |b| {
        b.iter_batched(
            || {
                let mut host = MockHost::new();
                host.install(Address([0xcc; 20]), code.clone());
                host.fund(Address([1; 20]), sc_primitives::ether(1));
                host
            },
            |mut host| {
                let out = Evm::new(&mut host, Env::default()).call(CallParams::transact(
                    Address([1; 20]),
                    Address([0xcc; 20]),
                    U256::ZERO,
                    vec![],
                    50_000_000,
                ));
                assert!(out.success, "{:?}", out.error);
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn compiler_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("minisol");
    group.bench_function("compile_onchain_contract", |b| {
        b.iter(|| compile(sc_contracts::ONCHAIN_SRC, "onChain").unwrap())
    });
    group.bench_function("compile_offchain_contract", |b| {
        b.iter(|| compile(sc_contracts::OFFCHAIN_SRC, "offChain").unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    crypto_benches,
    evm_benches,
    compiler_benches,
    pipeline_benches
);
criterion_main!(benches);
