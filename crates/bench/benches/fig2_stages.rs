//! E3 — reproduces the mechanism of **Fig. 2**: per-stage cost of the
//! four-stage protocol, honest path vs dispute path, plus the privacy
//! ledger (bytes of off-chain contract revealed on-chain).

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::{fmt_gas, run_game};
use sc_core::{Stage, Strategy};

fn print_fig2() {
    let honest = run_game(Strategy::Honest, Strategy::Honest, 256);
    let dispute = run_game(Strategy::SilentLoser, Strategy::Honest, 256);

    println!();
    println!("=== Fig. 2 — per-stage gas, honest path vs dispute path (weight 256) ===");
    println!("  {:<18} {:>14} {:>14}", "stage", "honest", "dispute");
    for stage in [
        Stage::DeploySign,
        Stage::SubmitChallenge,
        Stage::DisputeResolve,
    ] {
        println!(
            "  {:<18} {:>14} {:>14}",
            stage.to_string(),
            fmt_gas(honest.report.stage_gas(stage)),
            fmt_gas(dispute.report.stage_gas(stage))
        );
    }
    println!(
        "  {:<18} {:>14} {:>14}",
        "TOTAL",
        fmt_gas(honest.report.total_gas()),
        fmt_gas(dispute.report.total_gas())
    );
    println!();
    println!("  privacy: off-chain bytes revealed on-chain");
    println!(
        "    honest path : {:>6} bytes (out of {})",
        honest.report.offchain_bytes_revealed,
        honest.game.offchain_bytecode.len()
    );
    println!(
        "    dispute path: {:>6} bytes (out of {})",
        dispute.report.offchain_bytes_revealed,
        dispute.game.offchain_bytecode.len()
    );
    println!(
        "  off-chain (Whisper) messages: honest {}, dispute {}",
        honest.report.offchain_messages, dispute.report.offchain_messages
    );
    let honest_cache = honest.game.net.analysis_cache().stats();
    let dispute_cache = dispute.game.net.analysis_cache().stats();
    println!("  EVM analysis cache (jumpdest bitmaps memoised across frames):");
    println!(
        "    honest path : {:>4} hits / {:>3} misses ({:.0}% hit ratio)",
        honest_cache.hits,
        honest_cache.misses,
        honest_cache.hit_ratio() * 100.0
    );
    println!(
        "    dispute path: {:>4} hits / {:>3} misses ({:.0}% hit ratio)",
        dispute_cache.hits,
        dispute_cache.misses,
        dispute_cache.hit_ratio() * 100.0
    );
    println!();

    // Shape assertions.
    assert_eq!(honest.report.stage_gas(Stage::DisputeResolve), 0);
    assert_eq!(honest.report.offchain_bytes_revealed, 0);
    assert_eq!(
        dispute.report.offchain_bytes_revealed,
        dispute.game.offchain_bytecode.len()
    );
    assert!(dispute.report.total_gas() > honest.report.total_gas());
    assert!(
        dispute_cache.hits > 0,
        "dispute re-execution should reuse memoised analyses"
    );
}

fn bench(c: &mut Criterion) {
    print_fig2();
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("honest_path", |b| {
        b.iter(|| {
            run_game(Strategy::Honest, Strategy::Honest, 256)
                .report
                .total_gas()
        })
    });
    group.bench_function("dispute_path", |b| {
        b.iter(|| {
            run_game(Strategy::SilentLoser, Strategy::Honest, 256)
                .report
                .total_gas()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
