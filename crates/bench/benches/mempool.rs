//! S2 — fee-market utilization: the same mixed workload mined in
//! legacy outbox mode vs pooled mode with the patient packer.
//!
//! Prints the comparison at N ∈ {1, 16, 256} (txs per shared block in
//! both modes, the utilization gain, pool evictions, per-stage gas),
//! writes `BENCH_mempool.json` at the repository root, then
//! Criterion-times the pooled N = 16 run.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::mempool::{artifact_path, measure_point, run_and_write};
use sc_bench::print_gas_table;

fn print_comparison() {
    let report = run_and_write().expect("write BENCH_mempool.json");
    let rows: Vec<(&str, String)> = report
        .points
        .iter()
        .map(|p| {
            let label: &str = match p.sessions {
                1 => "N = 1",
                16 => "N = 16",
                _ => "N = 256",
            };
            (
                label,
                format!(
                    "outbox {:>5.2} txs/block, pooled {:>5.2} txs/block ({:.2}x, {} evicted)",
                    p.outbox.mean_txs_per_block(),
                    p.pooled.mean_txs_per_block(),
                    p.utilization_gain(),
                    p.pooled.pool_evicted,
                ),
            )
        })
        .collect();
    print_gas_table("S2 — mempool block utilization (8M gas limit)", &rows);
    println!("  wrote {}", artifact_path().display());
}

fn bench(c: &mut Criterion) {
    print_comparison();
    let mut group = c.benchmark_group("mempool");
    group.sample_size(10);
    group.bench_function("pooled/16_mixed", |b| b.iter(|| measure_point(16)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
