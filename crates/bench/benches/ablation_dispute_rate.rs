//! A3 — ablation: expected hybrid cost vs dispute probability, and the
//! crossover against the all-on-chain baseline.
//!
//! The hybrid model's expected miner-gas for one game is
//! `E[hybrid] = honest_cost + p · dispute_extra` where p is the dispute
//! probability. The all-on-chain cost is flat in p but grows with the
//! reveal weight w. For every w there is a crossover probability p*
//! above which splitting stops paying off; the paper's claim is that
//! real disputes are rare (p ≈ 0), where hybrid always wins.

use criterion::{criterion_group, criterion_main, Criterion};
use sc_bench::{fmt_gas, run_game, run_monolithic};
use sc_core::Strategy;

struct Costs {
    honest: u64,
    dispute: u64,
    monolithic: u64,
}

fn measure(weight: u64) -> Costs {
    Costs {
        honest: run_game(Strategy::Honest, Strategy::Honest, weight)
            .report
            .total_gas(),
        dispute: run_game(Strategy::SilentLoser, Strategy::Honest, weight)
            .report
            .total_gas(),
        monolithic: run_monolithic(weight).total(),
    }
}

fn expected_hybrid(c: &Costs, p: f64) -> f64 {
    c.honest as f64 + p * (c.dispute - c.honest) as f64
}

/// The dispute probability at which hybrid = all-on-chain (clamped to
/// [0, 1]; >1 means hybrid wins even with certain disputes).
fn crossover(c: &Costs) -> f64 {
    let extra = (c.dispute - c.honest) as f64;
    if c.monolithic <= c.honest {
        return 0.0;
    }
    ((c.monolithic - c.honest) as f64 / extra).min(1.0)
}

fn print_ablation() {
    println!();
    println!("=== A3 — expected miner gas vs dispute probability ===");
    let weights = [0u64, 100, 1_000, 10_000];
    let probs = [0.0f64, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0];

    for &w in &weights {
        let c = measure(w);
        println!(
            "  weight {w}: honest {} | dispute {} | all-on-chain {} | crossover p* = {:.3}",
            fmt_gas(c.honest),
            fmt_gas(c.dispute),
            fmt_gas(c.monolithic),
            crossover(&c)
        );
        print!("    E[hybrid](p):");
        for &p in &probs {
            print!(" p={p}: {}", fmt_gas(expected_hybrid(&c, p) as u64));
        }
        println!();
    }
    println!();

    // Shape assertions:
    let c0 = measure(0);
    let c_big = measure(10_000);
    // Reproduction finding: with a *trivial* reveal, the hybrid model
    // LOSES even at p=0 — the padded dispute machinery inflates the
    // on-chain contract's deployment beyond the whole monolithic game.
    // Splitting pays only when the off-chained computation is heavy,
    // which is exactly the regime the paper motivates.
    assert!(
        expected_hybrid(&c0, 0.0) > c0.monolithic as f64,
        "padding overhead should dominate at weight 0"
    );
    assert!(expected_hybrid(&c_big, 0.0) < c_big.monolithic as f64);
    // Crossover moves up with weight: heavier reveal ⇒ hybrid tolerates
    // more disputes.
    assert!(crossover(&c_big) >= crossover(&c0));
    // With a heavy reveal, hybrid wins even if EVERY game disputes
    // (the dispute path executes reveal once, the monolithic path also
    // pays deploy of the whole contract).
    assert!(
        expected_hybrid(&c_big, 1.0) < (c_big.monolithic as f64) * 1.2,
        "heavy-reveal dispute path within 20% of monolithic even at p=1"
    );
}

fn bench(c: &mut Criterion) {
    print_ablation();
    let mut group = c.benchmark_group("ablation_dispute_rate");
    group.sample_size(10);
    group.bench_function("measure_cost_triple_w1000", |b| b.iter(|| measure(1_000)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
