//! Measures the confidential settle-later stack on three axes:
//!
//! * **Crypto throughput** — Pedersen commits and range-proof
//!   prove/verify per second, straight against [`PedersenBackend`].
//! * **On-chain gas** — the full confidential channel lifecycle
//!   (deploy, public stakes, committed deposits with range proofs,
//!   activation, voucher settle, withdrawals) measured transaction by
//!   transaction, next to the all-on-chain monolithic betting baseline.
//!   This is the price of hiding the amounts: every commitment check
//!   runs through the verifier precompiles instead of plain arithmetic.
//! * **Session throughput** — N settle-later sessions multiplexed by
//!   the [`SessionScheduler`] at N ∈ {1, 16, 256}, the same curve the
//!   `sessions` bench draws for the public protocols.
//!
//! The numbers land in `BENCH_confidential.json` at the repository
//! root; the gas figures are deterministic and gated by `bench_check`.

use crate::run_monolithic;
use sc_chain::Testnet;
use sc_confidential::{CommitmentBackend, PedersenBackend, SettlementVoucher};
use sc_contracts::confidential::{ConfidentialContracts, ConfidentialParams};
use sc_core::{SessionScheduler, SessionSpec, SettleLaterCrash, SettleLaterSpec};
use sc_crypto::secp256k1::{n as curve_order, scalar};
use sc_primitives::{ether, U256};
use std::time::Instant;

/// Wall-clock throughput of the commitment backend.
#[derive(Debug, Clone)]
pub struct CryptoPoint {
    /// Mean nanoseconds per Pedersen commit.
    pub commit_ns: u128,
    /// Mean nanoseconds to prove a 16-bit range.
    pub range_prove_ns: u128,
    /// Mean nanoseconds to verify a 16-bit range proof.
    pub range_verify_ns: u128,
}

impl CryptoPoint {
    /// Commits per wall-clock second.
    pub fn commits_per_sec(&self) -> f64 {
        1e9 / self.commit_ns.max(1) as f64
    }

    /// Range-proof verifications per wall-clock second.
    pub fn range_verifies_per_sec(&self) -> f64 {
        1e9 / self.range_verify_ns.max(1) as f64
    }
}

/// Gas ledger of one full confidential channel, next to the
/// all-on-chain baseline.
#[derive(Debug, Clone)]
pub struct LifecycleGas {
    /// Contract deployment.
    pub deploy_gas: u64,
    /// One public stake (`fund()`).
    pub fund_gas: u64,
    /// One committed deposit (commitment + 16-bit range proof through
    /// the verifier precompiles).
    pub deposit_committed_gas: u64,
    /// Activation (homomorphic sum + pot opening check).
    pub activate_gas: u64,
    /// Voucher settlement (two `ecrecover`s, sum check, nullifier).
    pub settle_gas: u64,
    /// One withdrawal by opening.
    pub withdraw_gas: u64,
    /// Monolithic all-on-chain betting game, total gas (the public
    /// baseline the paper's Table 2 starts from).
    pub monolithic_total_gas: u64,
}

impl LifecycleGas {
    /// Total miner-executed gas of the confidential channel (both
    /// parties' stakes, deposits and withdrawals).
    pub fn total(&self) -> u64 {
        self.deploy_gas
            + 2 * self.fund_gas
            + 2 * self.deposit_committed_gas
            + self.activate_gas
            + self.settle_gas
            + 2 * self.withdraw_gas
    }

    /// Confidential-channel gas over the monolithic baseline.
    pub fn ratio_vs_monolithic(&self) -> f64 {
        self.total() as f64 / self.monolithic_total_gas.max(1) as f64
    }
}

/// One point of the settle-later session throughput curve.
#[derive(Debug, Clone)]
pub struct SettlePoint {
    /// Concurrent settle-later sessions.
    pub sessions: usize,
    /// Wall-clock nanoseconds for the full scheduler run.
    pub elapsed_ns: u128,
    /// Mean gas charged per session.
    pub mean_gas_per_session: u64,
    /// Shared blocks mined.
    pub blocks_mined: u64,
    /// Transactions admitted into those blocks.
    pub txs_mined: u64,
}

impl SettlePoint {
    /// Completed sessions per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        self.sessions as f64 / (self.elapsed_ns.max(1) as f64 / 1e9)
    }

    /// Mean admitted transactions per shared block.
    pub fn mean_txs_per_block(&self) -> f64 {
        self.txs_mined as f64 / self.blocks_mined.max(1) as f64
    }
}

/// Full results of the confidential measurement.
#[derive(Debug, Clone)]
pub struct ConfidentialReport {
    /// Commitment-backend throughput.
    pub crypto: CryptoPoint,
    /// Per-transaction gas ledger plus the public baseline.
    pub lifecycle: LifecycleGas,
    /// Session throughput at N ∈ {1, 16, 256}.
    pub points: Vec<SettlePoint>,
}

impl ConfidentialReport {
    /// Serialises the report as a small JSON object (hand-rolled: the
    /// workspace is std-only by design).
    pub fn to_json(&self) -> String {
        let crypto = format!(
            concat!(
                "  \"crypto\": {{\n",
                "    \"commit_ns\": {},\n",
                "    \"commits_per_sec\": {:.1},\n",
                "    \"range_prove_ns\": {},\n",
                "    \"range_verify_ns\": {},\n",
                "    \"range_verifies_per_sec\": {:.1}\n",
                "  }}"
            ),
            self.crypto.commit_ns,
            self.crypto.commits_per_sec(),
            self.crypto.range_prove_ns,
            self.crypto.range_verify_ns,
            self.crypto.range_verifies_per_sec(),
        );
        let l = &self.lifecycle;
        let lifecycle = format!(
            concat!(
                "  \"lifecycle\": {{\n",
                "    \"deploy_gas\": {},\n",
                "    \"fund_gas\": {},\n",
                "    \"deposit_committed_gas\": {},\n",
                "    \"activate_gas\": {},\n",
                "    \"settle_gas\": {},\n",
                "    \"withdraw_gas\": {},\n",
                "    \"total_gas\": {},\n",
                "    \"monolithic_total_gas\": {},\n",
                "    \"gas_ratio_vs_monolithic\": {:.3}\n",
                "  }}"
            ),
            l.deploy_gas,
            l.fund_gas,
            l.deposit_committed_gas,
            l.activate_gas,
            l.settle_gas,
            l.withdraw_gas,
            l.total(),
            l.monolithic_total_gas,
            l.ratio_vs_monolithic(),
        );
        let points = self
            .points
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "    {{\n",
                        "      \"sessions\": {},\n",
                        "      \"elapsed_ns\": {},\n",
                        "      \"sessions_per_sec\": {:.3},\n",
                        "      \"mean_gas_per_session\": {},\n",
                        "      \"blocks_mined\": {},\n",
                        "      \"txs_mined\": {},\n",
                        "      \"mean_txs_per_block\": {:.3}\n",
                        "    }}"
                    ),
                    p.sessions,
                    p.elapsed_ns,
                    p.sessions_per_sec(),
                    p.mean_gas_per_session,
                    p.blocks_mined,
                    p.txs_mined,
                    p.mean_txs_per_block(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"bench\": \"confidential\",\n{crypto},\n{lifecycle},\n  \"points\": [\n{points}\n  ]\n}}\n"
        )
    }
}

/// Times the commitment backend: commits, 16-bit range prove, verify.
pub fn measure_crypto() -> CryptoPoint {
    let backend = PedersenBackend;
    let reps = 64u64;

    let start = Instant::now();
    for i in 0..reps {
        let c = backend.commit(U256::from_u64(i), U256::from_u64(0xB11D + i));
        std::hint::black_box(c);
    }
    let commit_ns = start.elapsed().as_nanos() / u128::from(reps);

    let prove_reps = 8u64;
    let start = Instant::now();
    for i in 0..prove_reps {
        let p = backend
            .prove_range(U256::from_u64(1000 + i), U256::from_u64(0xB11D + i), 16)
            .expect("in range");
        std::hint::black_box(p);
    }
    let range_prove_ns = start.elapsed().as_nanos() / u128::from(prove_reps);

    let c = backend.commit(U256::from_u64(1000), U256::from_u64(0xB11D));
    let proof = backend
        .prove_range(U256::from_u64(1000), U256::from_u64(0xB11D), 16)
        .expect("in range");
    let start = Instant::now();
    for _ in 0..prove_reps {
        assert!(backend.verify_range(&c, 16, proof.as_bytes()));
    }
    let range_verify_ns = start.elapsed().as_nanos() / u128::from(prove_reps);

    CryptoPoint {
        commit_ns,
        range_prove_ns,
        range_verify_ns,
    }
}

/// Runs one confidential channel end to end on a fresh chain and
/// records each transaction's gas, plus the monolithic baseline.
pub fn measure_lifecycle() -> LifecycleGas {
    let contracts = ConfidentialContracts::new();
    let backend = PedersenBackend;
    let mut net = Testnet::new();
    let alice = net.funded_wallet("conf-bench-alice", ether(1000));
    let bob = net.funded_wallet("conf-bench-bob", ether(1000));
    let p = ConfidentialParams {
        units_a: 30,
        units_b: 12,
        unit_scale: U256::from_u64(1_000_000_000),
        range_bits: 16,
        deadline: net.now() + 7200,
    };

    let r = net
        .deploy(
            &alice,
            contracts.initcode(alice.address, bob.address, p),
            U256::ZERO,
            5_000_000,
        )
        .unwrap();
    assert!(r.success, "deploy reverted");
    let deploy_gas = r.gas_used;
    let contract = r.contract_address.unwrap();

    let send = |net: &mut Testnet, w, value, data, gas| {
        let r = net.execute(w, contract, value, data, gas).unwrap();
        assert!(r.success, "bench transaction reverted: {:?}", r.failure);
        r.gas_used
    };

    let fund_gas = send(
        &mut net,
        &alice,
        p.stake_wei(p.units_a),
        contracts.fund(),
        300_000,
    );
    send(
        &mut net,
        &bob,
        p.stake_wei(p.units_b),
        contracts.fund(),
        300_000,
    );

    let r_a = scalar::reduce(U256::from_u64(0xC0FF));
    let r_b = curve_order().wrapping_sub(r_a);
    let c_a = backend.commit(U256::from_u64(p.units_a), r_a);
    let c_b = backend.commit(U256::from_u64(p.units_b), r_b);
    let proof_a = backend
        .prove_range(U256::from_u64(p.units_a), r_a, p.range_bits)
        .unwrap();
    let proof_b = backend
        .prove_range(U256::from_u64(p.units_b), r_b, p.range_bits)
        .unwrap();
    let deposit_committed_gas = send(
        &mut net,
        &alice,
        U256::ZERO,
        contracts.deposit_committed(&c_a, p.range_bits, proof_a.as_bytes()),
        2_500_000,
    );
    send(
        &mut net,
        &bob,
        U256::ZERO,
        contracts.deposit_committed(&c_b, p.range_bits, proof_b.as_bytes()),
        2_500_000,
    );
    let activate_gas = send(
        &mut net,
        &alice,
        U256::ZERO,
        contracts.activate(&backend.add(&c_a, &c_b)),
        600_000,
    );

    let out_ra = scalar::reduce(U256::from_u64(0xFACE));
    let out_rb = curve_order().wrapping_sub(out_ra);
    let voucher = SettlementVoucher {
        contract,
        out_a: backend.commit(U256::from_u64(21), out_ra),
        out_b: backend.commit(U256::from_u64(21), out_rb),
    };
    let signed = voucher.co_sign(&alice.key, &bob.key);
    let settle_gas = send(
        &mut net,
        &bob,
        U256::ZERO,
        contracts.settle(&signed),
        1_500_000,
    );
    let withdraw_gas = send(
        &mut net,
        &alice,
        U256::ZERO,
        contracts.withdraw(U256::from_u64(21), out_ra),
        600_000,
    );
    send(
        &mut net,
        &bob,
        U256::ZERO,
        contracts.withdraw(U256::from_u64(21), out_rb),
        600_000,
    );

    LifecycleGas {
        deploy_gas,
        fund_gas,
        deposit_committed_gas,
        activate_gas,
        settle_gas,
        withdraw_gas,
        monolithic_total_gas: run_monolithic(16).total(),
    }
}

/// The benchmark workload: `n` settle-later sessions cycling through
/// the behavioural cells (plain, double-submit, crashed co-signer), a
/// quarter of them fault-seeded, starts staggered like the public
/// session bench.
pub fn settle_specs(n: usize) -> Vec<SessionSpec> {
    let offsets = (n / 8).max(1);
    (0..n)
        .map(|i| {
            let mut spec = SettleLaterSpec {
                start_delay: ((i % offsets) as u64) * 30,
                fault_seed: (i % 4 == 0).then_some(0xC04F_0000_u64 + i as u64),
                ..SettleLaterSpec::default()
            };
            match i % 3 {
                1 => spec.double_submit = true,
                2 => spec.crash = SettleLaterCrash::AAfterCosign,
                _ => {}
            }
            SessionSpec::SettleLater(spec)
        })
        .collect()
}

/// Runs one scheduler over `n` settle-later sessions and measures it,
/// asserting every session terminates in a valid outcome first.
pub fn measure_point(n: usize) -> SettlePoint {
    let mut sched = SessionScheduler::new(settle_specs(n));
    let start = Instant::now();
    let reports = sched.run();
    let elapsed_ns = start.elapsed().as_nanos();

    let mut total_gas = 0u64;
    for r in &reports {
        assert!(
            r.error.is_none() && r.outcome.is_some(),
            "session {} did not settle: {:?}",
            r.id,
            r.error
        );
        total_gas += r.total_gas;
    }
    let stats = sched.stats();
    SettlePoint {
        sessions: n,
        elapsed_ns,
        mean_gas_per_session: total_gas / n.max(1) as u64,
        blocks_mined: stats.blocks_mined,
        txs_mined: stats.txs_mined,
    }
}

/// Measures all three axes (session curve at N ∈ {1, 16, 256}).
pub fn measure() -> ConfidentialReport {
    ConfidentialReport {
        crypto: measure_crypto(),
        lifecycle: measure_lifecycle(),
        points: [1, 16, 256].into_iter().map(measure_point).collect(),
    }
}

/// Path of the JSON artifact at the repository root.
pub fn artifact_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_confidential.json")
}

/// Runs the measurement, writes `BENCH_confidential.json` at the repo
/// root and returns the report.
pub fn run_and_write() -> std::io::Result<ConfidentialReport> {
    let report = measure();
    std::fs::write(artifact_path(), report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_gas_is_deterministic_and_plausible() {
        let a = measure_lifecycle();
        let b = measure_lifecycle();
        assert_eq!(a.deploy_gas, b.deploy_gas);
        assert_eq!(a.deposit_committed_gas, b.deposit_committed_gas);
        assert_eq!(a.settle_gas, b.settle_gas);
        // A committed deposit carries a 16-bit range proof through the
        // precompiles; it must cost visibly more than a public stake.
        assert!(a.deposit_committed_gas > a.fund_gas);
        assert!(a.total() > a.deploy_gas);
        assert!(a.ratio_vs_monolithic() > 0.0);
    }

    #[test]
    fn smoke_4_sessions() {
        let p = measure_point(4);
        assert_eq!(p.sessions, 4);
        assert!(p.elapsed_ns > 0);
        assert!(
            p.mean_gas_per_session > 21_000,
            "sessions reached the chain"
        );
    }

    #[test]
    fn json_shape() {
        let r = ConfidentialReport {
            crypto: CryptoPoint {
                commit_ns: 1000,
                range_prove_ns: 2000,
                range_verify_ns: 500,
            },
            lifecycle: LifecycleGas {
                deploy_gas: 1_000_000,
                fund_gas: 30_000,
                deposit_committed_gas: 200_000,
                activate_gas: 60_000,
                settle_gas: 90_000,
                withdraw_gas: 40_000,
                monolithic_total_gas: 1_000_000,
            },
            points: vec![SettlePoint {
                sessions: 2,
                elapsed_ns: 1_000_000_000,
                mean_gas_per_session: 50_000,
                blocks_mined: 4,
                txs_mined: 10,
            }],
        };
        let json = r.to_json();
        assert!(json.contains("\"bench\": \"confidential\""));
        assert!(json.contains("\"deposit_committed_gas\": 200000"));
        assert!(json.contains("\"total_gas\": 1690000"));
        assert!(json.contains("\"gas_ratio_vs_monolithic\": 1.690"));
        assert!(json.contains("\"sessions_per_sec\": 2.000"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        crate::regress::parse(&json).expect("artifact parses");
    }
}
