//! Shared harness for the paper-reproduction benchmarks.
//!
//! Each Criterion bench target regenerates one table or figure of the
//! paper (see DESIGN.md §4). Gas numbers are deterministic — they are
//! computed once and printed as a paper-style table; Criterion then times
//! the underlying end-to-end operation so `cargo bench` also tracks
//! wall-clock performance of the stack itself.

#![warn(missing_docs)]

pub mod confidential;
pub mod mempool;
pub mod network;
pub mod parallel_evm;
pub mod pipeline;
pub mod regress;
pub mod sessions;
pub mod state;
pub mod trie;

use sc_chain::Testnet;
use sc_contracts::{BetSecrets, MonolithicContract, Timeline};
use sc_core::{BettingGame, GameConfig, Participant, ProtocolReport, Strategy};
use sc_primitives::{ether, U256};

/// Outcome of a full betting game plus the final chain, for inspection.
pub struct GameRun {
    /// The protocol report (per-tx gas, privacy metrics).
    pub report: ProtocolReport,
    /// The game (chain can be inspected further).
    pub game: BettingGame,
}

/// Runs a complete two-party game with the given strategies and reveal
/// weight. Secrets are adjusted so Bob wins (making Alice the loser).
pub fn run_game(alice: Strategy, bob: Strategy, weight: u64) -> GameRun {
    let secrets = secrets_bob_wins(weight);
    let game = BettingGame::new(
        Participant::with_strategy("alice", alice),
        Participant::with_strategy("bob", bob),
        GameConfig {
            phase_seconds: 3600,
            secrets,
        },
    );
    let (game, report) = game.run().expect("protocol run");
    GameRun { report, game }
}

/// Secrets with the given weight whose mixed parity favours Bob.
pub fn secrets_bob_wins(weight: u64) -> BetSecrets {
    let mut s = BetSecrets {
        secret_a: U256::from_u64(0x5eed),
        secret_b: U256::from_u64(0xfeed),
        weight,
    };
    while !s.winner_is_bob() {
        s.secret_a = s.secret_a.wrapping_add(U256::ONE);
    }
    s
}

/// Gas ledger for a full all-on-chain (monolithic) game.
pub struct MonolithicRun {
    /// Gas of the deployment transaction.
    pub deploy_gas: u64,
    /// Gas of each deposit.
    pub deposit_gas: Vec<u64>,
    /// Gas of the `settle()` call (includes on-chain `reveal()`).
    pub settle_gas: u64,
}

impl MonolithicRun {
    /// Total miner-executed gas.
    pub fn total(&self) -> u64 {
        self.deploy_gas + self.deposit_gas.iter().sum::<u64>() + self.settle_gas
    }
}

/// Runs the all-on-chain baseline end to end and returns its gas ledger.
pub fn run_monolithic(weight: u64) -> MonolithicRun {
    let secrets = secrets_bob_wins(weight);
    let mut net = Testnet::new();
    let alice = net.funded_wallet("alice", ether(1000));
    let bob = net.funded_wallet("bob", ether(1000));
    let tl = Timeline::starting_at(net.now(), 3600);
    let mono = MonolithicContract::new();
    let r = net
        .deploy(
            &alice,
            mono.initcode(alice.address, bob.address, tl, secrets),
            U256::ZERO,
            7_900_000,
        )
        .expect("deploy");
    assert!(r.success, "monolithic deploy: {:?}", r.failure);
    let deploy_gas = r.gas_used;
    let addr = r.contract_address.unwrap();

    let mut deposit_gas = Vec::new();
    for w in [&alice, &bob] {
        let r = net
            .execute(w, addr, ether(1), mono.deposit(), 300_000)
            .expect("deposit");
        assert!(r.success);
        deposit_gas.push(r.gas_used);
    }
    net.advance_time(2 * 3600 + 60);
    let r = net
        .execute(&alice, addr, U256::ZERO, mono.settle(), 7_900_000)
        .expect("settle");
    assert!(r.success, "settle: {:?}", r.failure);
    MonolithicRun {
        deploy_gas,
        deposit_gas,
        settle_gas: r.gas_used,
    }
}

/// Pretty-prints a two-column gas table in the paper's style.
pub fn print_gas_table(title: &str, rows: &[(&str, String)]) {
    println!();
    println!("=== {title} ===");
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    for (k, v) in rows {
        println!("  {k:<width$}  {v}");
    }
    println!();
}

/// Formats gas with thousands separators.
pub fn fmt_gas(gas: u64) -> String {
    let s = gas.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_gas_groups_digits() {
        assert_eq!(fmt_gas(0), "0");
        assert_eq!(fmt_gas(999), "999");
        assert_eq!(fmt_gas(225_082), "225,082");
        assert_eq!(fmt_gas(37_745), "37,745");
        assert_eq!(fmt_gas(1_234_567), "1,234,567");
    }

    #[test]
    fn harness_runs_both_models() {
        let hybrid = run_game(Strategy::Honest, Strategy::Honest, 8);
        assert!(!hybrid.report.dispute);
        let mono = run_monolithic(8);
        assert!(mono.settle_gas > 21_000);
        assert!(mono.total() > hybrid.report.total_gas() / 2);
    }
}
