//! Measures the block-pipeline optimisations end to end: parallel batch
//! admission vs serial submits, and cold vs warm code-analysis cache.
//!
//! Every comparison first asserts the two paths produce **identical
//! observable results** (admission outcomes, block hash, gas) — these are
//! perf knobs, not consensus changes — then times them. The numbers land
//! in `BENCH_pipeline.json` at the repository root so CI and the paper
//! artifacts can track regressions.

use sc_chain::{ChainConfig, SignedTransaction, Testnet, Transaction, TxError, Wallet};
use sc_evm::AnalysisCache;
use sc_primitives::{ether, gwei, Address, H256, U256};
use std::sync::Arc;
use std::time::Instant;

/// How many wallets sign the admission workload (senders interleave, so
/// nonce sequencing inside the batch is exercised).
const WALLETS: usize = 8;

/// Wall-clock results of one pipeline measurement run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Transactions per admission batch.
    pub tx_count: usize,
    /// Nanoseconds to admit the batch via per-tx [`Testnet::submit`].
    pub serial_admission_ns: u128,
    /// Nanoseconds to admit the same batch via [`Testnet::submit_batch`].
    pub batch_admission_ns: u128,
    /// Worker threads the batch path could fan out to.
    pub threads: usize,
    /// Bytes of synthetic code used for the analysis measurement.
    pub analysis_code_len: usize,
    /// Nanoseconds per cold analysis (empty cache each lookup).
    pub cold_analysis_ns: u128,
    /// Nanoseconds per warm lookup (cache pre-populated).
    pub warm_analysis_ns: u128,
}

impl PipelineReport {
    /// serial / batch admission time (>1 means the batch path wins).
    pub fn admission_speedup(&self) -> f64 {
        self.serial_admission_ns as f64 / self.batch_admission_ns.max(1) as f64
    }

    /// cold / warm analysis time (>1 means the warm cache wins).
    pub fn analysis_speedup(&self) -> f64 {
        self.cold_analysis_ns as f64 / self.warm_analysis_ns.max(1) as f64
    }

    /// Serialises the report as a small JSON object (hand-rolled: the
    /// workspace is std-only by design).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"pipeline\",\n",
                "  \"tx_count\": {},\n",
                "  \"threads\": {},\n",
                "  \"serial_admission_ns\": {},\n",
                "  \"batch_admission_ns\": {},\n",
                "  \"admission_speedup\": {:.3},\n",
                "  \"analysis_code_len\": {},\n",
                "  \"cold_analysis_ns\": {},\n",
                "  \"warm_analysis_ns\": {},\n",
                "  \"analysis_speedup\": {:.3}\n",
                "}}\n"
            ),
            self.tx_count,
            self.threads,
            self.serial_admission_ns,
            self.batch_admission_ns,
            self.admission_speedup(),
            self.analysis_code_len,
            self.cold_analysis_ns,
            self.warm_analysis_ns,
            self.analysis_speedup(),
        )
    }
}

/// A chain pre-funded with the benchmark wallets, plus a signed batch of
/// `n` interleaved transfers ready to admit.
fn admission_workload(n: usize) -> (Testnet, Vec<SignedTransaction>) {
    let mut net = Testnet::with_config(ChainConfig::default());
    let wallets: Vec<Wallet> = (0..WALLETS)
        .map(|i| net.funded_wallet(&format!("pipeline-{i}"), ether(100)))
        .collect();
    let mut next_nonce = [0u64; WALLETS];
    let txs = (0..n)
        .map(|i| {
            let w = i % WALLETS;
            let tx = Transaction {
                nonce: next_nonce[w],
                gas_price: gwei(1),
                gas_limit: 21_000,
                to: Some(Address([0x99; 20])),
                value: U256::from_u64(i as u64 + 1),
                data: vec![],
            };
            next_nonce[w] += 1;
            tx.sign(&wallets[w].key)
        })
        .collect();
    (net, txs)
}

/// Admits `txs` one by one, returning outcomes plus the mined block hash.
fn admit_serial(
    net: &mut Testnet,
    txs: Vec<SignedTransaction>,
) -> (Vec<Result<H256, TxError>>, H256) {
    let outcomes: Vec<_> = txs.into_iter().map(|t| net.submit(t)).collect();
    (outcomes, net.mine_block_serial().hash)
}

/// Admits `txs` via the parallel batch path, returning the same shape.
fn admit_batch(
    net: &mut Testnet,
    txs: Vec<SignedTransaction>,
) -> (Vec<Result<H256, TxError>>, H256) {
    let outcomes = net.submit_batch(txs);
    (outcomes, net.mine_block().hash)
}

/// Times serial vs batch admission of an `n`-transaction workload,
/// asserting both paths agree before trusting either number.
pub fn measure_admission(n: usize, rounds: usize) -> (u128, u128) {
    // Equivalence gate first (untimed).
    let (mut net_a, txs) = admission_workload(n);
    let (mut net_b, _) = admission_workload(n);
    let (serial_out, serial_hash) = admit_serial(&mut net_a, txs.clone());
    let (batch_out, batch_hash) = admit_batch(&mut net_b, txs);
    assert_eq!(serial_out, batch_out, "admission outcomes diverged");
    assert_eq!(serial_hash, batch_hash, "mined blocks diverged");

    let mut best_serial = u128::MAX;
    let mut best_batch = u128::MAX;
    for _ in 0..rounds {
        let (mut net, txs) = admission_workload(n);
        let start = Instant::now();
        let _ = admit_serial(&mut net, txs);
        best_serial = best_serial.min(start.elapsed().as_nanos());

        let (mut net, txs) = admission_workload(n);
        let start = Instant::now();
        let _ = admit_batch(&mut net, txs);
        best_batch = best_batch.min(start.elapsed().as_nanos());
    }
    (best_serial, best_batch)
}

/// Synthetic bytecode alternating `JUMPDEST`s and `PUSH2` immediates, the
/// worst case for the analyser (every push must be skipped).
pub fn analysis_workload(len: usize) -> Vec<u8> {
    let mut code = Vec::with_capacity(len);
    while code.len() + 4 <= len {
        code.extend_from_slice(&[0x5b, 0x61, 0x5b, 0x5b]); // JUMPDEST, PUSH2 0x5b5b
    }
    code.resize(len, 0x5b);
    code
}

/// Times cold (cleared cache) vs warm (pre-populated) analysis lookups of
/// the same code, asserting the warm result is the same analysis.
pub fn measure_analysis(code_len: usize, rounds: usize) -> (u128, u128) {
    let code = analysis_workload(code_len);
    let hash = sc_crypto::keccak256(&code);
    let cache = Arc::new(AnalysisCache::new());

    let reference = cache.get_or_analyze(hash, &code);

    let mut best_cold = u128::MAX;
    let mut best_warm = u128::MAX;
    for _ in 0..rounds {
        cache.clear();
        let start = Instant::now();
        let cold = cache.get_or_analyze(hash, &code);
        best_cold = best_cold.min(start.elapsed().as_nanos());
        assert_eq!(*cold, *reference);

        let start = Instant::now();
        let warm = cache.get_or_analyze(hash, &code);
        best_warm = best_warm.min(start.elapsed().as_nanos());
        assert!(Arc::ptr_eq(&warm, &cold), "warm lookup must hit");
    }
    (best_cold, best_warm)
}

/// Runs the full pipeline measurement with default sizes.
pub fn measure(tx_count: usize, rounds: usize) -> PipelineReport {
    let (serial_admission_ns, batch_admission_ns) = measure_admission(tx_count, rounds);
    let analysis_code_len = 16 * 1024;
    let (cold_analysis_ns, warm_analysis_ns) = measure_analysis(analysis_code_len, 64);
    PipelineReport {
        tx_count,
        serial_admission_ns,
        batch_admission_ns,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        analysis_code_len,
        cold_analysis_ns,
        warm_analysis_ns,
    }
}

/// Path of the JSON artifact at the repository root.
pub fn artifact_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_pipeline.json")
}

/// Runs the measurement, writes `BENCH_pipeline.json` at the repo root
/// and returns the report.
pub fn run_and_write() -> std::io::Result<PipelineReport> {
    let report = measure(96, 3);
    std::fs::write(artifact_path(), report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_paths_agree_and_time() {
        let (serial, batch) = measure_admission(16, 1);
        assert!(serial > 0 && batch > 0);
    }

    #[test]
    fn analysis_warm_beats_cold() {
        let (cold, warm) = measure_analysis(16 * 1024, 16);
        assert!(
            warm < cold,
            "warm lookup ({warm} ns) should beat cold analysis ({cold} ns)"
        );
    }

    #[test]
    fn workload_code_shape() {
        let code = analysis_workload(1000);
        assert_eq!(code.len(), 1000);
        let analysis = sc_evm::CodeAnalysis::analyze(&code);
        assert!(analysis.is_jumpdest(0));
        assert!(!analysis.is_jumpdest(2), "inside PUSH2 immediate");
    }

    #[test]
    fn json_shape() {
        let r = PipelineReport {
            tx_count: 4,
            serial_admission_ns: 100,
            batch_admission_ns: 50,
            threads: 2,
            analysis_code_len: 8,
            cold_analysis_ns: 10,
            warm_analysis_ns: 2,
        };
        let json = r.to_json();
        assert!(json.contains("\"admission_speedup\": 2.000"));
        assert!(json.contains("\"analysis_speedup\": 5.000"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
