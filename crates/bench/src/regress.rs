//! Bench-regression gate: compares freshly produced `BENCH_*.json`
//! artifacts against the baselines committed at the repository root.
//!
//! Every artifact is hand-rolled JSON (the workspace is std-only), so
//! this module carries its own minimal recursive-descent parser — just
//! enough for objects, arrays, strings, numbers and literals. On top of
//! it sits a registry of *gated metrics*, each with a directional
//! tolerance:
//!
//! * ratios that must not sink (admission speedup, parallel seal
//!   speedup, pooled txs-per-block), and
//! * costs that must not blow an absolute budget (root-commitment
//!   overhead, conflict-light abort rate).
//!
//! Raw nanosecond timings are deliberately *not* gated — CI machines
//! vary too much — the gated numbers are ratios measured inside one
//! process, which are stable. `cargo run -p sc-bench --bin bench_check
//! -- <baseline_dir> <fresh_dir>` renders a per-metric table and fails
//! if any row does.

use std::fmt::Write as _;
use std::path::Path;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (all benches emit f64-representable values).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// First array element under `key` for which `pred` holds.
    pub fn find_in(&self, key: &str, pred: impl Fn(&Json) -> bool) -> Option<&Json> {
        self.get(key)?.as_arr()?.iter().find(|item| pred(item))
    }
}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let token = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    token
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number {token:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escaped = match bytes.get(*pos) {
                    Some(b'"') => '"',
                    Some(b'\\') => '\\',
                    Some(b'/') => '/',
                    Some(b'n') => '\n',
                    Some(b't') => '\t',
                    Some(b'r') => '\r',
                    other => return Err(format!("unsupported escape {other:?}")),
                };
                out.push(escaped);
                *pos += 1;
            }
            Some(&b) => {
                out.push(b as char);
                *pos += 1;
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']', found {other:?}")),
        }
    }
}

/// How a gated metric is allowed to move between baseline and fresh.
#[derive(Debug, Clone, Copy)]
pub enum Tolerance {
    /// Bigger is better; fresh may sink at most this many percent below
    /// the baseline (it may rise freely).
    MaxDropPct(f64),
    /// Smaller is better; fresh may rise at most this many percent
    /// above the baseline (it may sink freely).
    MaxRisePct(f64),
    /// The fresh value must not exceed this absolute cap — the
    /// baseline is shown for context only.
    AbsoluteMax(f64),
}

impl Tolerance {
    fn passes(self, baseline: f64, fresh: f64) -> bool {
        match self {
            Tolerance::MaxDropPct(pct) => fresh >= baseline * (1.0 - pct / 100.0),
            Tolerance::MaxRisePct(pct) => fresh <= baseline * (1.0 + pct / 100.0),
            Tolerance::AbsoluteMax(cap) => fresh <= cap,
        }
    }

    fn describe(self) -> String {
        match self {
            Tolerance::MaxDropPct(pct) => format!("may drop ≤ {pct:.0}%"),
            Tolerance::MaxRisePct(pct) => format!("may rise ≤ {pct:.0}%"),
            Tolerance::AbsoluteMax(cap) => format!("must be ≤ {cap:.1}"),
        }
    }
}

/// One gated metric: where it lives, how to pull it out of the parsed
/// artifact, and how far it may move.
pub struct Metric {
    /// Artifact file name (same at the baseline and fresh roots).
    pub file: &'static str,
    /// Human-readable metric name for the table.
    pub name: &'static str,
    /// Pulls the value out of a parsed artifact.
    pub extract: fn(&Json) -> Option<f64>,
    /// The allowed movement.
    pub tolerance: Tolerance,
}

fn pipeline_admission_speedup(doc: &Json) -> Option<f64> {
    doc.get("admission_speedup")?.as_f64()
}

fn mempool_pooled_txs_per_block_256(doc: &Json) -> Option<f64> {
    doc.find_in("points", |p| {
        p.get("sessions").and_then(Json::as_f64) == Some(256.0)
    })?
    .find_in("modes", |m| {
        m.get("mode").and_then(Json::as_str) == Some("pooled")
    })?
    .get("mean_txs_per_block")?
    .as_f64()
}

fn trie_overhead_pct_256(doc: &Json) -> Option<f64> {
    doc.find_in("points", |p| {
        p.get("n").and_then(Json::as_f64) == Some(256.0)
    })?
    .get("overhead_pct")?
    .as_f64()
}

fn parallel_point_256<'a>(doc: &'a Json, workload: &str) -> Option<&'a Json> {
    doc.find_in("points", |p| {
        p.get("workload").and_then(Json::as_str) == Some(workload)
            && p.get("n").and_then(Json::as_f64) == Some(256.0)
    })
}

fn parallel_light_speedup_256(doc: &Json) -> Option<f64> {
    parallel_point_256(doc, "conflict_light")?
        .get("speedup")?
        .as_f64()
}

fn parallel_light_abort_rate_256(doc: &Json) -> Option<f64> {
    parallel_point_256(doc, "conflict_light")?
        .get("abort_rate")?
        .as_f64()
}

fn network_point_at<'a>(doc: &'a Json, section: &str, nodes: f64) -> Option<&'a Json> {
    doc.find_in(section, |p| {
        p.get("nodes").and_then(Json::as_f64) == Some(nodes)
    })
}

fn network_convergence_rounds_8(doc: &Json) -> Option<f64> {
    network_point_at(doc, "convergence", 8.0)?
        .get("rounds_to_converge")?
        .as_f64()
}

fn network_orphan_rate_8(doc: &Json) -> Option<f64> {
    network_point_at(doc, "convergence", 8.0)?
        .get("orphan_rate")?
        .as_f64()
}

fn light_fleet_convergence_rounds_1000(doc: &Json) -> Option<f64> {
    doc.find_in("light_fleet", |p| {
        p.get("clients").and_then(Json::as_f64) == Some(1000.0)
    })?
    .get("rounds_to_converge")?
    .as_f64()
}

fn light_witness_bytes_per_session_8(doc: &Json) -> Option<f64> {
    doc.find_in("light_sessions", |p| {
        p.get("sessions").and_then(Json::as_f64) == Some(8.0)
    })?
    .get("witness_bytes_per_session")?
    .as_f64()
}

fn state_read_ratio(doc: &Json) -> Option<f64> {
    doc.get("read_ratio_largest_over_smallest")?.as_f64()
}

fn state_plateau_ratio(doc: &Json) -> Option<f64> {
    doc.get("seal")?.get("plateau_ratio")?.as_f64()
}

fn confidential_deposit_gas(doc: &Json) -> Option<f64> {
    doc.get("lifecycle")?.get("deposit_committed_gas")?.as_f64()
}

fn confidential_settle_gas(doc: &Json) -> Option<f64> {
    doc.get("lifecycle")?.get("settle_gas")?.as_f64()
}

fn confidential_gas_ratio(doc: &Json) -> Option<f64> {
    doc.get("lifecycle")?
        .get("gas_ratio_vs_monolithic")?
        .as_f64()
}

/// Every metric the CI gate enforces.
pub fn registry() -> Vec<Metric> {
    vec![
        Metric {
            file: "BENCH_pipeline.json",
            name: "pipeline admission_speedup",
            extract: pipeline_admission_speedup,
            tolerance: Tolerance::MaxDropPct(25.0),
        },
        Metric {
            file: "BENCH_mempool.json",
            name: "mempool pooled txs/block @256",
            extract: mempool_pooled_txs_per_block_256,
            tolerance: Tolerance::MaxDropPct(5.0),
        },
        Metric {
            file: "BENCH_trie.json",
            name: "trie seal overhead_pct @256",
            extract: trie_overhead_pct_256,
            tolerance: Tolerance::AbsoluteMax(25.0),
        },
        Metric {
            file: "BENCH_parallel_evm.json",
            name: "parallel light speedup @256",
            extract: parallel_light_speedup_256,
            tolerance: Tolerance::MaxDropPct(25.0),
        },
        Metric {
            file: "BENCH_parallel_evm.json",
            name: "parallel light abort_rate @256",
            extract: parallel_light_abort_rate_256,
            tolerance: Tolerance::AbsoluteMax(0.0),
        },
        // Deterministic network numbers: convergence is a pure function
        // of the round protocol, so any rise means gossip or fork
        // choice regressed, not the machine.
        Metric {
            file: "BENCH_network.json",
            name: "network convergence rounds @8",
            extract: network_convergence_rounds_8,
            tolerance: Tolerance::MaxRisePct(50.0),
        },
        Metric {
            file: "BENCH_network.json",
            name: "network orphan_rate @8",
            extract: network_orphan_rate_8,
            tolerance: Tolerance::AbsoluteMax(0.6),
        },
        // Light clients: fleet convergence is deterministic (headers +
        // fork choice only), and witness bytes per stateless session
        // are a pure function of the protocol's read pattern — a rise
        // means reads got heavier or proofs got fatter.
        Metric {
            file: "BENCH_network.json",
            name: "light fleet convergence rounds @1000",
            extract: light_fleet_convergence_rounds_1000,
            tolerance: Tolerance::MaxRisePct(50.0),
        },
        Metric {
            file: "BENCH_network.json",
            name: "light witness bytes/session @8",
            extract: light_witness_bytes_per_session_8,
            tolerance: Tolerance::MaxRisePct(50.0),
        },
        // Flat-state engine: reads must stay O(1) in account count and
        // the pruning window must bound trie-node memory.
        Metric {
            file: "BENCH_state.json",
            name: "state flat-read ratio 1M/10k",
            extract: state_read_ratio,
            tolerance: Tolerance::AbsoluteMax(1.5),
        },
        Metric {
            file: "BENCH_state.json",
            name: "state trie-node plateau ratio",
            extract: state_plateau_ratio,
            tolerance: Tolerance::AbsoluteMax(1.5),
        },
        // Confidential channel: the gas figures are deterministic
        // (fixed contract, fixed proofs), so any rise means the
        // compiler, the precompile pricing, or the range-proof encoding
        // regressed. Wall-clock crypto timings are deliberately ungated.
        Metric {
            file: "BENCH_confidential.json",
            name: "confidential depositCommitted gas",
            extract: confidential_deposit_gas,
            tolerance: Tolerance::MaxRisePct(10.0),
        },
        Metric {
            file: "BENCH_confidential.json",
            name: "confidential settle gas",
            extract: confidential_settle_gas,
            tolerance: Tolerance::MaxRisePct(10.0),
        },
        Metric {
            file: "BENCH_confidential.json",
            name: "confidential gas ratio vs monolithic",
            extract: confidential_gas_ratio,
            tolerance: Tolerance::MaxRisePct(15.0),
        },
    ]
}

/// One row of the comparison table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Metric name.
    pub name: &'static str,
    /// Baseline value, or the reason it is unavailable.
    pub baseline: Result<f64, String>,
    /// Fresh value, or the reason it is unavailable.
    pub fresh: Result<f64, String>,
    /// The tolerance applied.
    pub tolerance: Tolerance,
    /// Whether the row passes the gate.
    pub pass: bool,
}

/// Outcome of a full baseline-vs-fresh comparison.
#[derive(Debug, Clone)]
pub struct RegressionReport {
    /// One row per registry metric.
    pub rows: Vec<Row>,
}

impl RegressionReport {
    /// True iff every metric passed.
    pub fn pass(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }

    /// Renders the per-metric table shown in CI logs.
    pub fn render(&self) -> String {
        let name_w = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(0)
            .max("metric".len());
        let fmt_val = |v: &Result<f64, String>| match v {
            Ok(n) => format!("{n:>10.3}"),
            Err(reason) => format!("{reason:>10}"),
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>10}  {:>10}  {:<16}  result",
            "metric", "baseline", "fresh", "tolerance"
        );
        let _ = writeln!(out, "{}", "-".repeat(name_w + 16 + 26 + 12));
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:<name_w$}  {}  {}  {:<16}  {}",
                row.name,
                fmt_val(&row.baseline),
                fmt_val(&row.fresh),
                row.tolerance.describe(),
                if row.pass { "ok" } else { "FAIL" },
            );
        }
        out
    }
}

fn load_metric(dir: &Path, metric: &Metric) -> Result<f64, String> {
    let path = dir.join(metric.file);
    let text = std::fs::read_to_string(&path).map_err(|_| "missing".to_string())?;
    let doc = parse(&text).map_err(|_| "unparsable".to_string())?;
    (metric.extract)(&doc).ok_or_else(|| "absent".to_string())
}

/// Compares every registry metric between the two artifact directories.
pub fn compare(baseline_dir: &Path, fresh_dir: &Path) -> RegressionReport {
    let rows = registry()
        .into_iter()
        .map(|metric| {
            let baseline = load_metric(baseline_dir, &metric);
            let fresh = load_metric(fresh_dir, &metric);
            let pass = match (&baseline, &fresh) {
                (Ok(b), Ok(f)) => metric.tolerance.passes(*b, *f),
                // An absolute cap needs no baseline — gate on fresh alone.
                (Err(_), Ok(f)) => {
                    matches!(metric.tolerance, Tolerance::AbsoluteMax(cap) if *f <= cap)
                }
                _ => false,
            };
            Row {
                name: metric.name,
                baseline,
                fresh,
                tolerance: metric.tolerance,
                pass,
            }
        })
        .collect();
    RegressionReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_round_trips_artifact_shapes() {
        let doc = parse(
            r#"{
              "bench": "demo",
              "neg": -6.39,
              "flag": true,
              "nothing": null,
              "points": [ {"n": 1, "v": 2.5}, {"n": 256, "v": 9.952} ]
            }"#,
        )
        .expect("parses");
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("demo"));
        assert_eq!(doc.get("neg").and_then(Json::as_f64), Some(-6.39));
        assert_eq!(doc.get("flag"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("nothing"), Some(&Json::Null));
        let p256 = doc
            .find_in("points", |p| {
                p.get("n").and_then(Json::as_f64) == Some(256.0)
            })
            .expect("found");
        assert_eq!(p256.get("v").and_then(Json::as_f64), Some(9.952));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("123 456").is_err());
    }

    #[test]
    fn tolerances_gate_directionally() {
        assert!(Tolerance::MaxDropPct(25.0).passes(2.0, 1.6));
        assert!(!Tolerance::MaxDropPct(25.0).passes(2.0, 1.4));
        assert!(Tolerance::MaxDropPct(25.0).passes(2.0, 99.0));
        assert!(Tolerance::MaxRisePct(10.0).passes(100.0, 109.0));
        assert!(!Tolerance::MaxRisePct(10.0).passes(100.0, 120.0));
        assert!(Tolerance::AbsoluteMax(25.0).passes(0.0, 24.9));
        assert!(!Tolerance::AbsoluteMax(25.0).passes(0.0, 25.1));
    }

    #[test]
    fn registry_extracts_from_committed_baselines() {
        // The committed repo-root artifacts must satisfy every
        // extractor — otherwise the CI gate would report "absent".
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        for metric in registry() {
            let value = load_metric(&root, &metric);
            assert!(
                value.is_ok(),
                "{} not extractable from committed {}: {:?}",
                metric.name,
                metric.file,
                value
            );
        }
    }

    #[test]
    fn compare_of_identical_dirs_passes() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = compare(&root, &root);
        assert!(
            report.pass(),
            "self-comparison failed:\n{}",
            report.render()
        );
        let table = report.render();
        assert!(table.contains("pipeline admission_speedup"));
        assert!(table.contains("ok"));
    }

    #[test]
    fn regressions_fail_and_render() {
        let tmp = std::env::temp_dir().join("sc_bench_regress_test");
        let _ = std::fs::create_dir_all(&tmp);
        std::fs::write(
            tmp.join("BENCH_pipeline.json"),
            r#"{"bench": "pipeline", "admission_speedup": 1.0}"#,
        )
        .expect("write fresh artifact");
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = compare(&root, &tmp);
        assert!(!report.pass());
        let pipeline_row = report
            .rows
            .iter()
            .find(|r| r.name == "pipeline admission_speedup")
            .expect("row present");
        assert!(!pipeline_row.pass, "1.0 vs 2.031 must fail the 25% gate");
        assert!(report.render().contains("FAIL"));
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
