//! Measures the multi-node network: partition convergence, orphan
//! rate, and gossip throughput at 2/4/8 nodes.
//!
//! Two experiments land in `BENCH_network.json`:
//!
//! * **Convergence** — a bare N-node network is cut in half for a fixed
//!   number of rounds; both sides seal competing blocks, then the cut
//!   heals. Reported per N: rounds from heal to one canonical head on
//!   every node, blocks sealed vs canonical height, and the orphan rate
//!   (sealed blocks the canonical chain abandoned). All deterministic —
//!   the regression gate pins them exactly.
//! * **Gossip throughput** — a fixed 8-session protocol workload runs
//!   over 2, 4 and 8 nodes. Reported per N: wall-clock sessions/sec,
//!   frames delivered (and per second), blocks sealed and reorgs. The
//!   frame counts are deterministic; the wall-clock rates are context
//!   only.

use sc_chain::{HeaderClient, PoolConfig};
use sc_core::{FaultPlan, Network, NetworkScheduler};
use std::time::Instant;

use crate::sessions::mixed_specs;

/// Node counts measured by both experiments.
pub const NODE_COUNTS: [usize; 3] = [2, 4, 8];

/// Rounds the forced partition lasts in the convergence experiment.
pub const PARTITION_ROUNDS: u64 = 6;

/// Sessions in the gossip-throughput workload (fixed across N so the
/// curve isolates the cost of fan-out, not of extra work).
pub const GOSSIP_SESSIONS: usize = 8;

/// Header clients in the light-fleet convergence experiment.
pub const LIGHT_FLEET: usize = 1000;

/// Nodes serving the light experiments.
pub const LIGHT_NODES: usize = 4;

/// Sessions in the light-session throughput workload.
pub const LIGHT_SESSIONS: usize = 8;

/// One point of the convergence experiment.
#[derive(Debug, Clone)]
pub struct ConvergencePoint {
    /// Nodes in the network.
    pub nodes: usize,
    /// Rounds from heal to every node agreeing on one head.
    pub rounds_to_converge: u64,
    /// Blocks sealed across all miners (both fork sides).
    pub blocks_sealed: u64,
    /// Height of the canonical chain after convergence.
    pub canonical_height: u64,
    /// Reorgs executed while converging.
    pub reorgs: u64,
}

impl ConvergencePoint {
    /// Fraction of sealed blocks the canonical chain abandoned.
    pub fn orphan_rate(&self) -> f64 {
        if self.blocks_sealed == 0 {
            return 0.0;
        }
        1.0 - self.canonical_height as f64 / self.blocks_sealed as f64
    }
}

/// One point of the gossip-throughput experiment.
#[derive(Debug, Clone)]
pub struct GossipPoint {
    /// Nodes the sessions were homed across.
    pub nodes: usize,
    /// Sessions in the workload.
    pub sessions: usize,
    /// Wall-clock nanoseconds for the full run.
    pub elapsed_ns: u128,
    /// Gossip frames delivered into inboxes.
    pub frames_delivered: u64,
    /// Blocks sealed across all nodes.
    pub blocks_sealed: u64,
    /// Reorgs executed.
    pub reorgs: u64,
}

impl GossipPoint {
    /// Completed sessions per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        self.sessions as f64 / (self.elapsed_ns.max(1) as f64 / 1e9)
    }

    /// Delivered gossip frames per wall-clock second.
    pub fn frames_per_sec(&self) -> f64 {
        self.frames_delivered as f64 / (self.elapsed_ns.max(1) as f64 / 1e9)
    }
}

/// One point of the light-fleet convergence experiment: how fast a
/// fleet of header-only clients re-converges on one head after a
/// partition heals under them, and what the header traffic costs.
#[derive(Debug, Clone)]
pub struct LightFleetPoint {
    /// Header clients in the fleet.
    pub clients: usize,
    /// Full nodes the fleet is homed across.
    pub nodes: usize,
    /// Rounds from heal to every client tracking the canonical head.
    pub rounds_to_converge: u64,
    /// Headers imported across the whole fleet (reorg branches
    /// included).
    pub headers_imported: u64,
    /// Encoded header bytes the fleet downloaded.
    pub header_bytes: u64,
}

/// One point of the light-session throughput experiment: the gossip
/// workload rerun with every session stateless on a [`sc_core::LightPort`].
#[derive(Debug, Clone)]
pub struct LightSessionPoint {
    /// Nodes the sessions' relays span.
    pub nodes: usize,
    /// Sessions in the workload.
    pub sessions: usize,
    /// Wall-clock nanoseconds for the full run.
    pub elapsed_ns: u128,
    /// State/account witnesses verified across all sessions.
    pub proofs_verified: u64,
    /// Receipt-inclusion witnesses verified across all sessions.
    pub receipts_verified: u64,
    /// Merkle-path bytes downloaded across all sessions.
    pub witness_bytes: u64,
}

impl LightSessionPoint {
    /// Completed sessions per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        self.sessions as f64 / (self.elapsed_ns.max(1) as f64 / 1e9)
    }

    /// Witness download per session — the marginal bandwidth cost of
    /// running one session stateless.
    pub fn witness_bytes_per_session(&self) -> u64 {
        self.witness_bytes / self.sessions.max(1) as u64
    }
}

/// Results of all experiments across all node counts.
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Convergence points, ascending node count.
    pub convergence: Vec<ConvergencePoint>,
    /// Gossip points, ascending node count.
    pub gossip: Vec<GossipPoint>,
    /// Light-fleet convergence points.
    pub light_fleet: Vec<LightFleetPoint>,
    /// Light-session throughput points.
    pub light_sessions: Vec<LightSessionPoint>,
}

impl NetworkReport {
    /// Serialises the report as a small JSON object (hand-rolled: the
    /// workspace is std-only by design).
    pub fn to_json(&self) -> String {
        let convergence = self
            .convergence
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "    {{\n",
                        "      \"nodes\": {},\n",
                        "      \"partition_rounds\": {},\n",
                        "      \"rounds_to_converge\": {},\n",
                        "      \"blocks_sealed\": {},\n",
                        "      \"canonical_height\": {},\n",
                        "      \"reorgs\": {},\n",
                        "      \"orphan_rate\": {:.3}\n",
                        "    }}"
                    ),
                    p.nodes,
                    PARTITION_ROUNDS,
                    p.rounds_to_converge,
                    p.blocks_sealed,
                    p.canonical_height,
                    p.reorgs,
                    p.orphan_rate(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let gossip = self
            .gossip
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "    {{\n",
                        "      \"nodes\": {},\n",
                        "      \"sessions\": {},\n",
                        "      \"elapsed_ns\": {},\n",
                        "      \"sessions_per_sec\": {:.3},\n",
                        "      \"frames_delivered\": {},\n",
                        "      \"frames_per_sec\": {:.1},\n",
                        "      \"blocks_sealed\": {},\n",
                        "      \"reorgs\": {}\n",
                        "    }}"
                    ),
                    p.nodes,
                    p.sessions,
                    p.elapsed_ns,
                    p.sessions_per_sec(),
                    p.frames_delivered,
                    p.frames_per_sec(),
                    p.blocks_sealed,
                    p.reorgs,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let light_fleet = self
            .light_fleet
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "    {{\n",
                        "      \"clients\": {},\n",
                        "      \"nodes\": {},\n",
                        "      \"partition_rounds\": {},\n",
                        "      \"rounds_to_converge\": {},\n",
                        "      \"headers_imported\": {},\n",
                        "      \"header_bytes\": {}\n",
                        "    }}"
                    ),
                    p.clients,
                    p.nodes,
                    PARTITION_ROUNDS,
                    p.rounds_to_converge,
                    p.headers_imported,
                    p.header_bytes,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let light_sessions = self
            .light_sessions
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "    {{\n",
                        "      \"nodes\": {},\n",
                        "      \"sessions\": {},\n",
                        "      \"elapsed_ns\": {},\n",
                        "      \"sessions_per_sec\": {:.3},\n",
                        "      \"proofs_verified\": {},\n",
                        "      \"receipts_verified\": {},\n",
                        "      \"witness_bytes\": {},\n",
                        "      \"witness_bytes_per_session\": {}\n",
                        "    }}"
                    ),
                    p.nodes,
                    p.sessions,
                    p.elapsed_ns,
                    p.sessions_per_sec(),
                    p.proofs_verified,
                    p.receipts_verified,
                    p.witness_bytes,
                    p.witness_bytes_per_session(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            concat!(
                "{{\n  \"bench\": \"network\",\n  \"convergence\": [\n{}\n  ],\n",
                "  \"gossip\": [\n{}\n  ],\n",
                "  \"light_fleet\": [\n{}\n  ],\n",
                "  \"light_sessions\": [\n{}\n  ]\n}}\n"
            ),
            convergence, gossip, light_fleet, light_sessions
        )
    }
}

/// Cuts an idle `n`-node network in half for [`PARTITION_ROUNDS`]
/// rounds (both sides seal competing empty blocks), heals it, and
/// counts the rounds until every node agrees on one head.
pub fn measure_convergence(n: usize) -> ConvergencePoint {
    let mut net = Network::new(n, &FaultPlan::none(), PoolConfig::default(), &[]);
    net.force_partition((0..n / 2).collect(), PARTITION_ROUNDS);
    // Play out the cut itself.
    for _ in 0..PARTITION_ROUNDS {
        net.round();
    }
    let rounds_to_converge = net.run_until_converged(10_000);
    let stats = net.stats();
    ConvergencePoint {
        nodes: n,
        rounds_to_converge,
        blocks_sealed: stats.blocks_sealed,
        canonical_height: net.node(0).head().number,
        reorgs: stats.reorgs,
    }
}

/// Runs the fixed [`GOSSIP_SESSIONS`]-session workload over `n` nodes
/// and measures it, asserting convergence and termination first.
pub fn measure_gossip(n: usize) -> GossipPoint {
    let mut sched =
        NetworkScheduler::new(mixed_specs(GOSSIP_SESSIONS), n, PoolConfig::default(), None);
    let start = Instant::now();
    let reports = sched.run();
    let elapsed_ns = start.elapsed().as_nanos();
    for r in &reports {
        assert!(
            r.outcome.is_some() || r.error.is_some(),
            "session {} did not settle",
            r.id
        );
    }
    assert!(sched.network().converged(), "network failed to converge");
    let stats = sched.network().stats();
    GossipPoint {
        nodes: n,
        sessions: GOSSIP_SESSIONS,
        elapsed_ns,
        frames_delivered: stats.frames_delivered,
        blocks_sealed: stats.blocks_sealed,
        reorgs: stats.reorgs,
    }
}

/// Catches a fleet of header clients up to their home nodes' canonical
/// heads (the [`sc_core::LightPort`] pull path, inlined over bare
/// headers), counting imports and downloaded header bytes.
fn sync_fleet(net: &Network, clients: &mut [HeaderClient], imported: &mut u64, bytes: &mut u64) {
    let nodes = net.len();
    for (i, client) in clients.iter_mut().enumerate() {
        let node = net.node(i % nodes);
        if client.head().hash == node.head().hash {
            continue;
        }
        let mut missing = Vec::new();
        let mut cur = node.head().header();
        loop {
            if client.header_by_hash(cur.hash).is_some() {
                break;
            }
            let parent_hash = cur.parent_hash;
            let number = cur.number;
            missing.push(cur);
            if number == 0 {
                break;
            }
            match node.block_by_hash(parent_hash) {
                Some(b) => cur = b.header(),
                None => break,
            }
        }
        for h in missing.into_iter().rev() {
            *bytes += h.encode().len() as u64;
            if client.import_header(h).is_ok() {
                *imported += 1;
            }
        }
    }
}

/// Cuts a [`LIGHT_NODES`]-node network in half under a fleet of
/// [`LIGHT_FLEET`] header clients, heals it, and counts the rounds
/// until **every client** tracks the one canonical head — the fleet
/// follows forks and reorgs from header gossip alone, so this measures
/// fork choice at light-client scale plus the header bandwidth it
/// costs. Deterministic; the regression gate pins it.
pub fn measure_light_fleet() -> LightFleetPoint {
    let nodes = LIGHT_NODES;
    let mut net = Network::new(nodes, &FaultPlan::none(), PoolConfig::default(), &[]);
    let mut clients: Vec<HeaderClient> = (0..LIGHT_FLEET)
        .map(|i| HeaderClient::new(net.node(i % nodes).block(0).expect("genesis").header()))
        .collect();
    let mut headers_imported = 0u64;
    let mut header_bytes = 0u64;
    net.force_partition((0..nodes / 2).collect(), PARTITION_ROUNDS);
    for _ in 0..PARTITION_ROUNDS {
        net.round();
        sync_fleet(&net, &mut clients, &mut headers_imported, &mut header_bytes);
    }
    let mut rounds = 0u64;
    let fleet_converged = |net: &Network, clients: &[HeaderClient]| {
        net.converged()
            && !net.frames_in_flight()
            && clients
                .iter()
                .all(|c| c.head().hash == net.node(0).head().hash)
    };
    while !fleet_converged(&net, &clients) {
        net.round();
        sync_fleet(&net, &mut clients, &mut headers_imported, &mut header_bytes);
        rounds += 1;
        assert!(rounds <= 10_000, "light fleet failed to converge");
    }
    LightFleetPoint {
        clients: LIGHT_FLEET,
        nodes,
        rounds_to_converge: rounds,
        headers_imported,
        header_bytes,
    }
}

/// Runs the fixed [`LIGHT_SESSIONS`]-session workload with every
/// session stateless over [`LIGHT_NODES`] relay nodes and measures the
/// witness traffic statelessness costs. The witness counts are
/// deterministic (quiet network, fixed specs); the wall-clock rate is
/// context only.
pub fn measure_light_sessions() -> LightSessionPoint {
    let mut sched = NetworkScheduler::new_light(
        mixed_specs(LIGHT_SESSIONS),
        LIGHT_NODES,
        PoolConfig::default(),
        None,
    );
    let start = Instant::now();
    let reports = sched.run();
    let elapsed_ns = start.elapsed().as_nanos();
    for r in &reports {
        assert!(
            r.outcome.is_some() || r.error.is_some(),
            "light session {} did not settle",
            r.id
        );
    }
    assert!(sched.network().converged(), "network failed to converge");
    let stats = sched.light_stats();
    LightSessionPoint {
        nodes: LIGHT_NODES,
        sessions: LIGHT_SESSIONS,
        elapsed_ns,
        proofs_verified: stats.proofs_verified,
        receipts_verified: stats.receipts_verified,
        witness_bytes: stats.witness_bytes,
    }
}

/// Measures all experiments at every node count.
pub fn measure() -> NetworkReport {
    NetworkReport {
        convergence: NODE_COUNTS.into_iter().map(measure_convergence).collect(),
        gossip: NODE_COUNTS.into_iter().map(measure_gossip).collect(),
        light_fleet: vec![measure_light_fleet()],
        light_sessions: vec![measure_light_sessions()],
    }
}

/// Path of the JSON artifact at the repository root.
pub fn artifact_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_network.json")
}

/// Runs the measurement, writes `BENCH_network.json` at the repo root
/// and returns the report.
pub fn run_and_write() -> std::io::Result<NetworkReport> {
    let report = measure();
    std::fs::write(artifact_path(), report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_smoke_4_nodes() {
        let p = measure_convergence(4);
        assert_eq!(p.nodes, 4);
        assert!(p.blocks_sealed > 0, "partition must seal competing blocks");
        assert!(p.reorgs > 0, "healing must reorg the losing side");
        assert!(p.orphan_rate() > 0.0 && p.orphan_rate() < 1.0);
    }

    #[test]
    fn gossip_smoke_2_nodes() {
        let p = measure_gossip(2);
        assert_eq!(p.sessions, GOSSIP_SESSIONS);
        assert!(p.frames_delivered > 0, "gossip must actually flow");
        assert!(p.blocks_sealed > 0);
    }

    #[test]
    fn json_shape() {
        let r = NetworkReport {
            convergence: vec![ConvergencePoint {
                nodes: 4,
                rounds_to_converge: 3,
                blocks_sealed: 12,
                canonical_height: 6,
                reorgs: 2,
            }],
            gossip: vec![GossipPoint {
                nodes: 4,
                sessions: 8,
                elapsed_ns: 2_000_000_000,
                frames_delivered: 100,
                blocks_sealed: 20,
                reorgs: 0,
            }],
            light_fleet: vec![LightFleetPoint {
                clients: 1000,
                nodes: 4,
                rounds_to_converge: 5,
                headers_imported: 9000,
                header_bytes: 1_000_000,
            }],
            light_sessions: vec![LightSessionPoint {
                nodes: 4,
                sessions: 8,
                elapsed_ns: 1_000_000_000,
                proofs_verified: 64,
                receipts_verified: 48,
                witness_bytes: 40_000,
            }],
        };
        let json = r.to_json();
        assert!(json.contains("\"orphan_rate\": 0.500"));
        assert!(json.contains("\"sessions_per_sec\": 4.000"));
        assert!(json.contains("\"frames_per_sec\": 50.0"));
        assert!(json.contains("\"clients\": 1000"));
        assert!(json.contains("\"witness_bytes_per_session\": 5000"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn light_fleet_smoke() {
        let p = measure_light_fleet();
        assert_eq!(p.clients, LIGHT_FLEET);
        assert!(
            p.headers_imported >= LIGHT_FLEET as u64,
            "fleet never synced"
        );
        assert!(p.header_bytes > 0);
        // Determinism: the gate pins this number, so it must replay.
        let q = measure_light_fleet();
        assert_eq!(p.rounds_to_converge, q.rounds_to_converge);
        assert_eq!(p.header_bytes, q.header_bytes);
    }
}
