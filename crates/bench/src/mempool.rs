//! Measures what the fee-market mempool buys the session engine: the
//! same mixed workload as the sessions bench, run twice per N — once in
//! legacy outbox mode (every flush seals its own block) and once in
//! pooled mode (flushes feed the [`sc_chain::PoolConfig`]ured mempool
//! and a patient miner packs blocks under the 8M gas limit).
//!
//! Reported per point and mode: utilization (mean admitted txs per
//! shared block), blocks/txs mined, pool evictions, and the per-stage
//! gas breakdown `[deploy, deposit, submit, dispute]` aggregated across
//! sessions. The numbers land in `BENCH_mempool.json` at the repository
//! root.

use crate::sessions::mixed_specs;
use sc_chain::PoolConfig;
use sc_core::{SessionScheduler, STAGE_NAMES};
use std::time::Instant;

/// One scheduler run's worth of numbers, for one mining mode.
#[derive(Debug, Clone)]
pub struct ModePoint {
    /// `"outbox"` or `"pooled"`.
    pub mode: &'static str,
    /// Wall-clock nanoseconds for the full scheduler run.
    pub elapsed_ns: u128,
    /// Shared blocks mined (non-empty only).
    pub blocks_mined: u64,
    /// Transactions admitted into those blocks.
    pub txs_mined: u64,
    /// Transactions displaced from the pool and re-priced (0 in outbox
    /// mode).
    pub pool_evicted: u64,
    /// Total gas per protocol stage `[deploy, deposit, submit,
    /// dispute]`, summed across all sessions.
    pub stage_gas: [u64; 4],
}

impl ModePoint {
    /// Mean admitted transactions per shared block — the utilization
    /// metric the pool exists to raise.
    pub fn mean_txs_per_block(&self) -> f64 {
        self.txs_mined as f64 / self.blocks_mined.max(1) as f64
    }

    fn to_json(&self) -> String {
        let stages = STAGE_NAMES
            .iter()
            .zip(self.stage_gas.iter())
            .map(|(name, gas)| format!("\"{name}\": {gas}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            concat!(
                "      {{\n",
                "        \"mode\": \"{}\",\n",
                "        \"elapsed_ns\": {},\n",
                "        \"blocks_mined\": {},\n",
                "        \"txs_mined\": {},\n",
                "        \"mean_txs_per_block\": {:.3},\n",
                "        \"pool_evicted\": {},\n",
                "        \"stage_gas\": {{ {} }}\n",
                "      }}"
            ),
            self.mode,
            self.elapsed_ns,
            self.blocks_mined,
            self.txs_mined,
            self.mean_txs_per_block(),
            self.pool_evicted,
            stages,
        )
    }
}

/// Outbox and pooled runs of the same N-session workload.
#[derive(Debug, Clone)]
pub struct MempoolPoint {
    /// Concurrent sessions multiplexed over the shared chain.
    pub sessions: usize,
    /// The legacy one-flush-one-block baseline.
    pub outbox: ModePoint,
    /// The fee-market pool with the patient packer.
    pub pooled: ModePoint,
}

impl MempoolPoint {
    /// How many times more transactions each shared block carries under
    /// the pool than under the outbox baseline.
    pub fn utilization_gain(&self) -> f64 {
        self.pooled.mean_txs_per_block() / self.outbox.mean_txs_per_block().max(f64::MIN_POSITIVE)
    }
}

/// Results of the mempool measurement across all N.
#[derive(Debug, Clone)]
pub struct MempoolReport {
    /// Block gas limit both modes mined under.
    pub block_gas_limit: u64,
    /// One point per measured N, in ascending order.
    pub points: Vec<MempoolPoint>,
}

impl MempoolReport {
    /// Serialises the report as a small JSON object (hand-rolled: the
    /// workspace is std-only by design).
    pub fn to_json(&self) -> String {
        let points = self
            .points
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "    {{\n",
                        "      \"sessions\": {},\n",
                        "      \"utilization_gain\": {:.3},\n",
                        "      \"modes\": [\n{},\n{}\n      ]\n",
                        "    }}"
                    ),
                    p.sessions,
                    p.utilization_gain(),
                    p.outbox.to_json(),
                    p.pooled.to_json(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"mempool\",\n",
                "  \"block_gas_limit\": {},\n",
                "  \"points\": [\n{}\n  ]\n",
                "}}\n"
            ),
            self.block_gas_limit, points,
        )
    }
}

/// Runs one scheduler to completion and folds its reports and stats
/// into a [`ModePoint`], asserting every session settled validly.
fn run_mode(mode: &'static str, mut sched: SessionScheduler) -> ModePoint {
    let start = Instant::now();
    let reports = sched.run();
    let elapsed_ns = start.elapsed().as_nanos();

    let mut stage_gas = [0u64; 4];
    for r in &reports {
        assert!(
            r.error.is_none() && r.outcome.is_some(),
            "{mode} session {} ({}) did not settle: {:?}",
            r.id,
            r.kind,
            r.error
        );
        for (bucket, gas) in stage_gas.iter_mut().zip(r.stage_gas.iter()) {
            *bucket += gas;
        }
    }
    let stats = sched.stats();
    ModePoint {
        mode,
        elapsed_ns,
        blocks_mined: stats.blocks_mined,
        txs_mined: stats.txs_mined,
        pool_evicted: stats.pool_evicted,
        stage_gas,
    }
}

/// Measures one N twice — outbox baseline, then pooled — over the same
/// spec list.
pub fn measure_point(n: usize) -> MempoolPoint {
    let outbox = run_mode("outbox", SessionScheduler::new(mixed_specs(n)));
    let pooled = run_mode(
        "pooled",
        SessionScheduler::new_pooled(mixed_specs(n), PoolConfig::default()),
    );
    MempoolPoint {
        sessions: n,
        outbox,
        pooled,
    }
}

/// Measures the full comparison at N ∈ {1, 16, 256}.
pub fn measure() -> MempoolReport {
    MempoolReport {
        block_gas_limit: sc_chain::ChainConfig::default().block_gas_limit,
        points: [1, 16, 256].into_iter().map(measure_point).collect(),
    }
}

/// Path of the JSON artifact at the repository root.
pub fn artifact_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_mempool.json")
}

/// Runs the measurement, writes `BENCH_mempool.json` at the repo root
/// and returns the report.
pub fn run_and_write() -> std::io::Result<MempoolReport> {
    let report = measure();
    std::fs::write(artifact_path(), report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_pooled_beats_outbox_at_16() {
        let p = measure_point(16);
        assert_eq!(p.sessions, 16);
        assert_eq!(p.outbox.pool_evicted, 0, "outbox mode has no pool");
        assert_eq!(
            p.outbox.txs_mined, p.pooled.txs_mined,
            "both modes mine the same workload"
        );
        assert!(
            p.pooled.mean_txs_per_block() > p.outbox.mean_txs_per_block(),
            "pool must raise utilization: pooled {:.2} vs outbox {:.2}",
            p.pooled.mean_txs_per_block(),
            p.outbox.mean_txs_per_block()
        );
        let total: u64 = p.pooled.stage_gas.iter().sum();
        assert!(total > 0, "stage gas breakdown is populated");
    }

    #[test]
    fn json_shape() {
        let point = ModePoint {
            mode: "outbox",
            elapsed_ns: 1,
            blocks_mined: 4,
            txs_mined: 10,
            pool_evicted: 0,
            stage_gas: [1, 2, 3, 4],
        };
        let r = MempoolReport {
            block_gas_limit: 8_000_000,
            points: vec![MempoolPoint {
                sessions: 2,
                outbox: point.clone(),
                pooled: ModePoint {
                    mode: "pooled",
                    blocks_mined: 2,
                    ..point
                },
            }],
        };
        let json = r.to_json();
        assert!(json.contains("\"block_gas_limit\": 8000000"));
        assert!(json.contains("\"utilization_gain\": 2.000"));
        assert!(json.contains("\"deploy\": 1, \"deposit\": 2, \"submit\": 3, \"dispute\": 4"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
