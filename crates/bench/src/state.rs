//! Flat-state engine measurements: read latency that must not grow
//! with account count, seal-time trie folding, and the pruning
//! archive's bounded node memory under a long block churn.
//!
//! Three claims of the storage-engine design are quantified here and
//! land in `BENCH_state.json` at the repository root:
//!
//! 1. **Flat reads are O(1) in state size** — a storage read is one
//!    hash-map probe, so the mean read latency at 1 000 000 accounts
//!    must stay within 1.5× of the latency at 10 000 (gated).
//! 2. **Roots stay out of the write path** — a block's worth of writes
//!    folds into the tries once at seal; the mean seal time over a long
//!    churn is reported.
//! 3. **Pruning bounds trie memory** — with a retention window armed,
//!    the archived node count across thousands of sealed blocks must
//!    plateau instead of growing with chain length (gated).

use sc_chain::WorldState;
use sc_evm::host::Host;
use sc_primitives::{Address, U256};
use std::time::Instant;

/// Mean flat-read latency at one account-count point.
#[derive(Debug, Clone)]
pub struct ReadPoint {
    /// Accounts resident in the overlay when reading.
    pub accounts: usize,
    /// Storage reads timed.
    pub reads: u64,
    /// Mean nanoseconds per read.
    pub mean_read_ns: f64,
}

/// Seal-time and pruning numbers from the block-churn run.
#[derive(Debug, Clone)]
pub struct SealStats {
    /// Blocks sealed (fold + archive commit each).
    pub blocks: u64,
    /// Pruning retention window (sealed roots kept provable).
    pub window: usize,
    /// Mean nanoseconds per seal (fold + archive commit).
    pub mean_seal_ns: f64,
    /// Archived trie nodes halfway through the churn.
    pub mid_trie_nodes: usize,
    /// Peak archived trie nodes over the whole churn.
    pub peak_trie_nodes: usize,
    /// Nodes held by the live (unarchived) tries at the end.
    pub live_trie_nodes: usize,
}

impl SealStats {
    /// Peak archived nodes over the halfway point: ~1.0 when the
    /// window bounds memory, grows with chain length when it leaks.
    pub fn plateau_ratio(&self) -> f64 {
        self.peak_trie_nodes as f64 / self.mid_trie_nodes.max(1) as f64
    }
}

/// Results of the full state-engine measurement.
#[derive(Debug, Clone)]
pub struct StateReport {
    /// Read-latency points in ascending account count.
    pub read_points: Vec<ReadPoint>,
    /// Seal + pruning numbers.
    pub seal: SealStats,
}

impl StateReport {
    /// Mean read latency at the largest point over the smallest — the
    /// gated "flat reads don't scale with state" number.
    pub fn read_ratio_largest_over_smallest(&self) -> f64 {
        let first = self.read_points.first().map_or(1.0, |p| p.mean_read_ns);
        let last = self.read_points.last().map_or(1.0, |p| p.mean_read_ns);
        last / first.max(f64::MIN_POSITIVE)
    }

    /// Serialises the report as a small JSON object (hand-rolled: the
    /// workspace is std-only by design).
    pub fn to_json(&self) -> String {
        let points = self
            .read_points
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "    {{\n",
                        "      \"accounts\": {},\n",
                        "      \"reads\": {},\n",
                        "      \"mean_read_ns\": {:.3}\n",
                        "    }}"
                    ),
                    p.accounts, p.reads, p.mean_read_ns,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"state\",\n",
                "  \"read_points\": [\n{}\n  ],\n",
                "  \"read_ratio_largest_over_smallest\": {:.3},\n",
                "  \"seal\": {{\n",
                "    \"blocks\": {},\n",
                "    \"window\": {},\n",
                "    \"mean_seal_ns\": {:.1},\n",
                "    \"mid_trie_nodes\": {},\n",
                "    \"peak_trie_nodes\": {},\n",
                "    \"live_trie_nodes\": {},\n",
                "    \"plateau_ratio\": {:.3}\n",
                "  }}\n",
                "}}\n"
            ),
            points,
            self.read_ratio_largest_over_smallest(),
            self.seal.blocks,
            self.seal.window,
            self.seal.mean_seal_ns,
            self.seal.mid_trie_nodes,
            self.seal.peak_trie_nodes,
            self.seal.live_trie_nodes,
            self.seal.plateau_ratio(),
        )
    }
}

/// splitmix64: scrambles an index into a well-spread 64-bit value so
/// addresses and the read sequence don't correlate with map layout.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Deterministic address for account index `i`.
fn addr(i: u64) -> Address {
    let mut a = [0u8; 20];
    a[..8].copy_from_slice(&mix(i).to_be_bytes());
    a[8..16].copy_from_slice(&mix(i ^ 0xabcd).to_be_bytes());
    Address(a)
}

/// Populates a state with `n` accounts: every account holds a balance,
/// every 16th also one storage slot (so reads mix hits and misses the
/// way a live chain would). No trie is ever folded — this measures the
/// write path the engine actually runs between seals.
fn populate(n: usize) -> WorldState {
    let mut s = WorldState::new();
    for i in 0..n as u64 {
        s.mint(addr(i), U256::from_u64(1 + i));
        if i % 16 == 0 {
            s.set_storage(addr(i), U256::from_u64(i % 4), U256::from_u64(i + 7));
        }
    }
    s.clear_tx_scratch();
    s
}

/// Times `reads` storage reads against a state holding `accounts`
/// accounts.
pub fn measure_read_point(accounts: usize, reads: u64) -> ReadPoint {
    let s = populate(accounts);
    let start = Instant::now();
    let mut sink = U256::ZERO;
    for r in 0..reads {
        let i = mix(r) % accounts as u64;
        sink = sink.wrapping_add(s.storage(addr(i), U256::from_u64(r % 4)));
    }
    let elapsed = start.elapsed().as_nanos();
    std::hint::black_box(sink);
    ReadPoint {
        accounts,
        reads,
        mean_read_ns: elapsed as f64 / reads.max(1) as f64,
    }
}

/// Seals `blocks` blocks over a churning working set with the pruning
/// archive armed at `window`: each block writes 16 slots across 8 hot
/// accounts and bumps one rotating cold account's balance, folds the
/// root and commits the archive. The account population is fixed —
/// state growth is the application's business; what the window must
/// bound is the *archive's* node count at fixed state size, so the
/// halfway mark and the peak must come out nearly equal.
pub fn measure_seal_churn(blocks: u64, window: usize) -> SealStats {
    const POPULATION: u64 = 1024;
    let mut s = WorldState::new();
    s.enable_pruning(window);
    for a in 0..POPULATION {
        s.mint(addr(a), U256::from_u64(1_000_000));
    }
    s.clear_tx_scratch();
    s.state_root();
    s.commit_archive();

    let mut total_seal_ns: u128 = 0;
    let mut peak = 0usize;
    let mut mid = 0usize;
    for b in 0..blocks {
        for w in 0..16u64 {
            let who = addr(mix(b * 16 + w) % 8);
            let slot = U256::from_u64(mix(b + w) % 64);
            s.set_storage(who, slot, U256::from_u64(b + w + 1));
        }
        // One cold-account balance bump per block, so every seal also
        // moves an account-trie leaf outside the hot set.
        s.mint(addr(mix(b) % POPULATION), U256::ONE);
        s.clear_tx_scratch();
        let start = Instant::now();
        s.state_root();
        s.commit_archive();
        total_seal_ns += start.elapsed().as_nanos();
        peak = peak.max(s.archived_node_count());
        if b == blocks / 2 {
            mid = s.archived_node_count();
        }
    }
    SealStats {
        blocks,
        window,
        mean_seal_ns: total_seal_ns as f64 / blocks.max(1) as f64,
        mid_trie_nodes: mid,
        peak_trie_nodes: peak,
        live_trie_nodes: s.live_trie_node_count(),
    }
}

/// The full measurement: read latency at 10k / 100k / 1M accounts and
/// a 10 000-block pruning churn.
pub fn measure() -> StateReport {
    StateReport {
        read_points: [10_000, 100_000, 1_000_000]
            .into_iter()
            .map(|n| measure_read_point(n, 1_000_000))
            .collect(),
        seal: measure_seal_churn(10_000, 128),
    }
}

/// Path of the JSON artifact at the repository root.
pub fn artifact_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_state.json")
}

/// Runs the measurement, writes `BENCH_state.json` at the repo root
/// and returns the report.
pub fn run_and_write() -> std::io::Result<StateReport> {
    let report = measure();
    std::fs::write(artifact_path(), report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_point_and_report_shape() {
        let p = measure_read_point(2_000, 20_000);
        assert_eq!(p.accounts, 2_000);
        assert!(p.mean_read_ns > 0.0);
        let seal = measure_seal_churn(200, 16);
        assert_eq!(seal.blocks, 200);
        assert!(seal.mean_seal_ns > 0.0);
        assert!(seal.mid_trie_nodes > 0, "archive holds the window");
        assert!(
            seal.plateau_ratio() <= 1.5,
            "windowed archive must plateau, got {:.3}",
            seal.plateau_ratio()
        );
        let report = StateReport {
            read_points: vec![p],
            seal,
        };
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"state\""));
        assert!(json.contains("\"read_ratio_largest_over_smallest\""));
        assert!(json.contains("\"plateau_ratio\""));
        assert!(sc_bench_parses(&json));
    }

    /// The artifact must stay parseable by the regress gate's parser.
    fn sc_bench_parses(json: &str) -> bool {
        crate::regress::parse(json).is_ok()
    }

    #[test]
    fn flat_reads_do_not_scale_with_account_count() {
        // The smoke-scale version of the gated claim: 16× more accounts
        // must not multiply read latency (generous 3× bound here — the
        // bench artifact gates the tight 1.5× at full scale).
        let small = measure_read_point(5_000, 200_000);
        let large = measure_read_point(80_000, 200_000);
        assert!(
            large.mean_read_ns <= small.mean_read_ns * 3.0,
            "flat read latency scaled with state: {:.1}ns -> {:.1}ns",
            small.mean_read_ns,
            large.mean_read_ns
        );
    }
}
