//! Measures the session engine's multiplexing throughput: N mixed
//! honest/Byzantine sessions driven by one [`SessionScheduler`] over a
//! single shared chain.
//!
//! For each N the workload is the same behavioural mix the session test
//! suite uses (all six betting strategy pairs plus four challenge
//! cells, a quarter of the sessions under seeded fault schedules,
//! staggered starts). Reported per point: wall-clock sessions/sec, mean
//! gas per session, and the block-sharing ratio (admitted txs per
//! shared block — above 1 means batching is real). The numbers land in
//! `BENCH_sessions.json` at the repository root.

use sc_core::{
    BettingSpec, ChallengeSpec, CrashPoint, SessionScheduler, SessionSpec, Strategy,
    SubmitStrategy, WatchStrategy,
};
use std::time::Instant;

use crate::secrets_bob_wins;

/// One behavioural cell of the benchmark mix (same ten cells the
/// session test suite randomises over).
fn spec_cell(code: u8, fault_seed: Option<u64>, start_delay: u64) -> SessionSpec {
    let secrets = secrets_bob_wins(16);
    let betting = |alice, bob| {
        SessionSpec::Betting(BettingSpec {
            alice,
            bob,
            secrets,
            fault_seed,
            start_delay,
            ..BettingSpec::default()
        })
    };
    let challenge = |submit, watch, crash| {
        SessionSpec::Challenge(ChallengeSpec {
            secrets,
            submit,
            watch,
            crash,
            fault_seed,
            start_delay,
            ..ChallengeSpec::default()
        })
    };
    match code % 10 {
        0 => betting(Strategy::Honest, Strategy::Honest),
        1 => betting(Strategy::SilentLoser, Strategy::Honest),
        2 => betting(Strategy::ForgingLoser, Strategy::Honest),
        3 => betting(Strategy::Honest, Strategy::NoShow),
        4 => betting(Strategy::Honest, Strategy::RefusesToSign),
        5 => betting(Strategy::SignsTampered, Strategy::Honest),
        6 => challenge(
            SubmitStrategy::Truthful,
            WatchStrategy::Vigilant,
            CrashPoint::None,
        ),
        7 => challenge(
            SubmitStrategy::False,
            WatchStrategy::Vigilant,
            CrashPoint::None,
        ),
        8 => challenge(
            SubmitStrategy::False,
            WatchStrategy::Asleep,
            CrashPoint::None,
        ),
        _ => challenge(
            SubmitStrategy::Truthful,
            WatchStrategy::Vigilant,
            CrashPoint::BeforeSubmit,
        ),
    }
}

/// The benchmark workload: `n` sessions cycling through all ten cells,
/// a quarter of them fault-seeded. Starts are staggered over
/// `max(1, n/8)` 30-second offsets, so ~8 sessions contend for each
/// block at every scale.
pub fn mixed_specs(n: usize) -> Vec<SessionSpec> {
    let offsets = (n / 8).max(1);
    (0..n)
        .map(|i| {
            let code = (i % 10) as u8;
            let seed = (i % 4 == 0).then_some(0xBE4C_0000_u64 + i as u64);
            spec_cell(code, seed, ((i % offsets) as u64) * 30)
        })
        .collect()
}

/// One measured point of the throughput curve.
#[derive(Debug, Clone)]
pub struct SessionsPoint {
    /// Concurrent sessions multiplexed over the shared chain.
    pub sessions: usize,
    /// Wall-clock nanoseconds for the full scheduler run.
    pub elapsed_ns: u128,
    /// Mean gas charged per session (all transactions it sent).
    pub mean_gas_per_session: u64,
    /// Shared blocks mined.
    pub blocks_mined: u64,
    /// Transactions admitted into those blocks.
    pub txs_mined: u64,
}

impl SessionsPoint {
    /// Completed sessions per wall-clock second.
    pub fn sessions_per_sec(&self) -> f64 {
        self.sessions as f64 / (self.elapsed_ns.max(1) as f64 / 1e9)
    }

    /// Mean admitted transactions per shared block (the batching ratio).
    pub fn mean_txs_per_block(&self) -> f64 {
        self.txs_mined as f64 / self.blocks_mined.max(1) as f64
    }
}

/// Wall-clock results of the sessions measurement across all N.
#[derive(Debug, Clone)]
pub struct SessionsReport {
    /// One point per measured N, in ascending order.
    pub points: Vec<SessionsPoint>,
}

impl SessionsReport {
    /// Serialises the report as a small JSON object (hand-rolled: the
    /// workspace is std-only by design).
    pub fn to_json(&self) -> String {
        let points = self
            .points
            .iter()
            .map(|p| {
                format!(
                    concat!(
                        "    {{\n",
                        "      \"sessions\": {},\n",
                        "      \"elapsed_ns\": {},\n",
                        "      \"sessions_per_sec\": {:.3},\n",
                        "      \"mean_gas_per_session\": {},\n",
                        "      \"blocks_mined\": {},\n",
                        "      \"txs_mined\": {},\n",
                        "      \"mean_txs_per_block\": {:.3}\n",
                        "    }}"
                    ),
                    p.sessions,
                    p.elapsed_ns,
                    p.sessions_per_sec(),
                    p.mean_gas_per_session,
                    p.blocks_mined,
                    p.txs_mined,
                    p.mean_txs_per_block(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        format!("{{\n  \"bench\": \"sessions\",\n  \"points\": [\n{points}\n  ]\n}}\n")
    }
}

/// Runs one scheduler over `n` mixed sessions and measures it,
/// asserting every session terminates in a valid outcome first.
pub fn measure_point(n: usize) -> SessionsPoint {
    let mut sched = SessionScheduler::new(mixed_specs(n));
    let start = Instant::now();
    let reports = sched.run();
    let elapsed_ns = start.elapsed().as_nanos();

    let mut total_gas = 0u64;
    for r in &reports {
        assert!(
            r.error.is_none() && r.outcome.is_some(),
            "session {} ({}) did not settle: {:?}",
            r.id,
            r.kind,
            r.error
        );
        total_gas += r.total_gas;
    }
    let stats = sched.stats();
    SessionsPoint {
        sessions: n,
        elapsed_ns,
        mean_gas_per_session: total_gas / n.max(1) as u64,
        blocks_mined: stats.blocks_mined,
        txs_mined: stats.txs_mined,
    }
}

/// Measures the full throughput curve at N ∈ {1, 16, 256}.
pub fn measure() -> SessionsReport {
    SessionsReport {
        points: [1, 16, 256].into_iter().map(measure_point).collect(),
    }
}

/// Path of the JSON artifact at the repository root.
pub fn artifact_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sessions.json")
}

/// Runs the measurement, writes `BENCH_sessions.json` at the repo root
/// and returns the report.
pub fn run_and_write() -> std::io::Result<SessionsReport> {
    let report = measure();
    std::fs::write(artifact_path(), report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_16_sessions() {
        let p = measure_point(16);
        assert_eq!(p.sessions, 16);
        assert!(p.elapsed_ns > 0);
        assert!(
            p.mean_gas_per_session > 21_000,
            "sessions reached the chain"
        );
        assert!(
            p.mean_txs_per_block() > 1.0,
            "16 sessions must share blocks: {} txs over {} blocks",
            p.txs_mined,
            p.blocks_mined
        );
    }

    #[test]
    fn json_shape() {
        let r = SessionsReport {
            points: vec![SessionsPoint {
                sessions: 2,
                elapsed_ns: 1_000_000_000,
                mean_gas_per_session: 50_000,
                blocks_mined: 4,
                txs_mined: 10,
            }],
        };
        let json = r.to_json();
        assert!(json.contains("\"sessions_per_sec\": 2.000"));
        assert!(json.contains("\"mean_txs_per_block\": 2.500"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
