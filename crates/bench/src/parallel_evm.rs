//! Measures what optimistic parallel execution buys at the seal: the
//! same packed block committed three ways —
//!
//! * **reference serial** — [`Testnet::mine_block_serial`], the
//!   determinism baseline that re-derives every sender and hash before
//!   executing one-by-one;
//! * **cached serial** — [`Testnet::mine_block`] with
//!   [`ExecMode::Serial`], admission caches hot;
//! * **parallel** — [`Testnet::mine_block`] with
//!   [`ExecMode::Parallel`], Block-STM-style speculation plus in-order
//!   validation.
//!
//! Two workloads per N: *conflict-light* (every sender writes its own
//! storage slot — the whole block validates speculatively) and
//! *conflict-heavy* (every transaction read-modify-writes slot 0 of one
//! contract — only the first speculation survives, the rest re-execute
//! serially). The three blocks are asserted byte-identical before any
//! number is reported. Results land in `BENCH_parallel_evm.json` at the
//! repository root; the acceptance bound is ≥ 2× seal speedup over the
//! reference at N = 256 conflict-light.

use sc_chain::{ChainConfig, ExecMode, SealReport, Testnet, Transaction};
use sc_primitives::{gwei, U256};
use std::time::Instant;

/// Runtime that stores calldata word 1 at the slot named by calldata
/// word 0 (shared with the trie bench).
const STORE_RUNTIME: [u8; 8] = [0x60, 0x20, 0x35, 0x60, 0x00, 0x35, 0x55, 0x00];

/// Runtime that increments slot 0 — `PUSH1 0 SLOAD PUSH1 1 ADD PUSH1 0
/// SSTORE STOP` — so every call both reads and writes the same hot
/// slot: the worst case for speculation.
const RMW_RUNTIME: [u8; 10] = [0x60, 0x00, 0x54, 0x60, 0x01, 0x01, 0x60, 0x00, 0x55, 0x00];

/// The two block shapes measured at every N.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Disjoint senders, disjoint slots — zero conflicts.
    ConflictLight,
    /// Every transaction read-modify-writes the same slot.
    ConflictHeavy,
}

impl Workload {
    /// Stable label used in the JSON artifact.
    pub fn label(self) -> &'static str {
        match self {
            Workload::ConflictLight => "conflict_light",
            Workload::ConflictHeavy => "conflict_heavy",
        }
    }
}

/// One (workload, N) measurement.
#[derive(Debug, Clone)]
pub struct ParallelPoint {
    /// Transactions in the measured block.
    pub n: usize,
    /// Which block shape was mined.
    pub workload: Workload,
    /// Seal time of [`Testnet::mine_block_serial`] (re-derivation +
    /// serial execution), nanoseconds.
    pub reference_serial_ns: u128,
    /// Seal time of the cached serial path, nanoseconds.
    pub cached_serial_ns: u128,
    /// Seal time of the parallel executor, nanoseconds.
    pub parallel_ns: u128,
    /// Transactions whose speculation validated and committed directly.
    pub speculative: usize,
    /// Transactions that conflicted and re-executed in commit order.
    pub reexecuted: usize,
    /// Worker threads available to the speculation fan-out.
    pub workers: usize,
}

impl ParallelPoint {
    /// Headline speedup: reference serial seal time over parallel seal
    /// time.
    pub fn speedup(&self) -> f64 {
        self.reference_serial_ns as f64 / self.parallel_ns.max(1) as f64
    }

    /// Fraction of the block that conflicted (0.0 for a fully
    /// speculative block).
    pub fn abort_rate(&self) -> f64 {
        self.reexecuted as f64 / (self.speculative + self.reexecuted).max(1) as f64
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"workload\": \"{}\",\n",
                "      \"n\": {},\n",
                "      \"reference_serial_ns\": {},\n",
                "      \"cached_serial_ns\": {},\n",
                "      \"parallel_ns\": {},\n",
                "      \"speculative\": {},\n",
                "      \"reexecuted\": {},\n",
                "      \"abort_rate\": {:.4},\n",
                "      \"speedup\": {:.3}\n",
                "    }}"
            ),
            self.workload.label(),
            self.n,
            self.reference_serial_ns,
            self.cached_serial_ns,
            self.parallel_ns,
            self.speculative,
            self.reexecuted,
            self.abort_rate(),
            self.speedup(),
        )
    }
}

/// Results of the parallel-execution measurement across all points.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Worker threads the fan-out could use.
    pub workers: usize,
    /// Every (workload, N) point, conflict-light first, N ascending.
    pub points: Vec<ParallelPoint>,
}

impl ParallelReport {
    /// The conflict-light point at the given N, if measured.
    pub fn light_at(&self, n: usize) -> Option<&ParallelPoint> {
        self.points
            .iter()
            .find(|p| p.workload == Workload::ConflictLight && p.n == n)
    }

    /// Serialises the report as a small JSON object (hand-rolled: the
    /// workspace is std-only by design).
    pub fn to_json(&self) -> String {
        let points = self
            .points
            .iter()
            .map(ParallelPoint::to_json)
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"parallel_evm\",\n",
                "  \"workers\": {},\n",
                "  \"points\": [\n{}\n  ]\n",
                "}}\n"
            ),
            self.workers, points,
        )
    }
}

/// Initcode deploying an arbitrary short runtime (≤ 32 bytes).
fn initcode(runtime: &[u8]) -> Vec<u8> {
    sc_evm::wrap_initcode(runtime)
}

/// `store(slot, value)` calldata for [`STORE_RUNTIME`].
fn store_calldata(slot: u64, value: u64) -> Vec<u8> {
    let mut data = Vec::with_capacity(64);
    data.extend_from_slice(&U256::from_u64(slot).to_be_bytes());
    data.extend_from_slice(&U256::from_u64(value).to_be_bytes());
    data
}

/// Boots one chain in `mode`, deploys the workload contract and queues
/// the block's transactions without mining them.
fn prepare(mode: ExecMode, workload: Workload, n: usize) -> Testnet {
    let mut net = Testnet::with_config(ChainConfig {
        exec: mode,
        // All N calls must land in ONE block — the unit this bench
        // times — so the limit scales with the widest point.
        block_gas_limit: 64_000_000,
        ..ChainConfig::default()
    });
    let deployer = net.funded_wallet("deployer", sc_primitives::ether(10));
    let runtime: &[u8] = match workload {
        Workload::ConflictLight => &STORE_RUNTIME,
        Workload::ConflictHeavy => &RMW_RUNTIME,
    };
    let r = net
        .deploy(&deployer, initcode(runtime), U256::ZERO, 200_000)
        .expect("workload contract deploy admitted");
    assert!(r.success, "workload deploy failed: {:?}", r.failure);
    let target = r.contract_address.expect("created");

    for i in 0..n {
        let w = net.funded_wallet(&format!("w{i}"), sc_primitives::ether(1));
        let data = match workload {
            Workload::ConflictLight => store_calldata(i as u64, 0x1000 + i as u64),
            Workload::ConflictHeavy => Vec::new(),
        };
        let tx = Transaction {
            nonce: 0,
            gas_price: gwei(1),
            gas_limit: 80_000,
            to: Some(target),
            value: U256::ZERO,
            data,
        };
        net.submit(tx.sign(&w.key)).expect("bench tx admitted");
    }
    net
}

/// Measures one (workload, N): three identically-prepared chains, one
/// timed seal each, blocks asserted byte-identical before reporting.
pub fn measure_point(workload: Workload, n: usize) -> ParallelPoint {
    let mut reference = prepare(ExecMode::Serial, workload, n);
    let mut cached = prepare(ExecMode::Serial, workload, n);
    let mut parallel = prepare(ExecMode::Parallel, workload, n);

    let start = Instant::now();
    let ref_block = reference.mine_block_serial();
    let reference_serial_ns = start.elapsed().as_nanos();

    let start = Instant::now();
    let cached_block = cached.mine_block();
    let cached_serial_ns = start.elapsed().as_nanos();

    let start = Instant::now();
    let par_block = parallel.mine_block();
    let parallel_ns = start.elapsed().as_nanos();

    assert_eq!(ref_block.hash, cached_block.hash, "cached serial diverged");
    assert_eq!(ref_block.hash, par_block.hash, "parallel seal diverged");
    assert_eq!(ref_block.transactions.len(), n, "block dropped txs");

    let SealReport {
        speculative,
        reexecuted,
        ..
    } = parallel.last_seal_report().expect("sealed");
    ParallelPoint {
        n,
        workload,
        reference_serial_ns,
        cached_serial_ns,
        parallel_ns,
        speculative,
        reexecuted,
        workers: std::thread::available_parallelism().map_or(1, |p| p.get()),
    }
}

/// Measures both workloads at N ∈ {1, 16, 256}.
pub fn measure() -> ParallelReport {
    let mut points = Vec::new();
    for workload in [Workload::ConflictLight, Workload::ConflictHeavy] {
        for n in [1usize, 16, 256] {
            points.push(measure_point(workload, n));
        }
    }
    ParallelReport {
        workers: std::thread::available_parallelism().map_or(1, |p| p.get()),
        points,
    }
}

/// Path of the JSON artifact at the repository root.
pub fn artifact_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_parallel_evm.json")
}

/// Runs the measurement, writes `BENCH_parallel_evm.json` at the repo
/// root and returns the report.
pub fn run_and_write() -> std::io::Result<ParallelReport> {
    let report = measure();
    std::fs::write(artifact_path(), report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_point_is_fully_speculative() {
        let p = measure_point(Workload::ConflictLight, 8);
        assert_eq!(p.n, 8);
        assert_eq!(p.speculative, 8);
        assert_eq!(p.reexecuted, 0);
        assert_eq!(p.abort_rate(), 0.0);
        assert!(p.reference_serial_ns > 0 && p.parallel_ns > 0);
    }

    #[test]
    fn heavy_point_conflicts_everywhere_but_first() {
        let p = measure_point(Workload::ConflictHeavy, 8);
        assert_eq!(p.speculative, 1, "only the first RMW validates");
        assert_eq!(p.reexecuted, 7);
        assert!(p.abort_rate() > 0.8);
    }

    #[test]
    fn report_json_shape() {
        let report = ParallelReport {
            workers: 4,
            points: vec![measure_point(Workload::ConflictLight, 4)],
        };
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"parallel_evm\""));
        assert!(json.contains("\"workload\": \"conflict_light\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"abort_rate\""));
        assert!(report.light_at(4).is_some());
        assert!(report.light_at(999).is_none());
    }
}
