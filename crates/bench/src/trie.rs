//! Measures what the authenticated state costs: the same transfer +
//! storage-write workload mined twice per N — once with Merkle-root
//! commitments disabled (`commit_roots: false`, headers carry zero
//! roots) and once with the default full commitment (account trie,
//! per-account storage tries, receipts trie folded at every seal).
//!
//! Reported per point: raw trie build time and mean proof size at N
//! keys, plus baseline vs rooted wall-clock for the chain workload and
//! the seal-time overhead percentage. The numbers land in
//! `BENCH_trie.json` at the repository root; the acceptance bound is
//! ≤ 25% added block-seal time at N = 256.

use sc_chain::{ChainConfig, Testnet};
use sc_crypto::keccak256;
use sc_primitives::{Address, U256};
use sc_trie::SecureTrie;
use std::time::Instant;

/// Runtime that stores calldata word 1 at the slot named by calldata
/// word 0: `PUSH1 32 CALLDATALOAD PUSH1 0 CALLDATALOAD SSTORE STOP`.
const SSTORE_RUNTIME: [u8; 8] = [0x60, 0x20, 0x35, 0x60, 0x00, 0x35, 0x55, 0x00];

/// Initcode returning [`SSTORE_RUNTIME`]: `PUSH8 <runtime> PUSH1 0
/// MSTORE` leaves the 8 code bytes at memory 24..32, then `RETURN(24, 8)`.
fn sstore_initcode() -> Vec<u8> {
    let mut code = vec![0x67];
    code.extend_from_slice(&SSTORE_RUNTIME);
    code.extend_from_slice(&[0x60, 0x00, 0x52, 0x60, 0x08, 0x60, 0x18, 0xf3]);
    code
}

/// `store(key, value)` calldata for the [`SSTORE_RUNTIME`] contract.
fn store_calldata(key: U256, value: U256) -> Vec<u8> {
    let mut data = Vec::with_capacity(64);
    data.extend_from_slice(&key.to_be_bytes());
    data.extend_from_slice(&value.to_be_bytes());
    data
}

/// One N's worth of numbers.
#[derive(Debug, Clone)]
pub struct TriePoint {
    /// Distinct accounts in the chain workload / keys in the raw trie.
    pub n: usize,
    /// Nanoseconds to insert `n` hashed keys into a fresh [`SecureTrie`]
    /// and compute its root.
    pub trie_build_ns: u128,
    /// Mean Merkle-path length (nodes) across all `n` inclusion proofs.
    pub mean_proof_nodes: f64,
    /// Wall-clock nanoseconds of the workload with `commit_roots: false`.
    pub baseline_ns: u128,
    /// Wall-clock nanoseconds of the same workload with commitments on.
    pub rooted_ns: u128,
    /// Blocks each run mined (identical by construction).
    pub blocks_mined: u64,
}

impl TriePoint {
    /// Added block-seal time of root commitment, in percent of the
    /// uncommitted baseline.
    pub fn overhead_pct(&self) -> f64 {
        let base = self.baseline_ns.max(1) as f64;
        (self.rooted_ns as f64 - base) / base * 100.0
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"trie_build_ns\": {},\n",
                "      \"mean_proof_nodes\": {:.2},\n",
                "      \"baseline_ns\": {},\n",
                "      \"rooted_ns\": {},\n",
                "      \"blocks_mined\": {},\n",
                "      \"overhead_pct\": {:.2}\n",
                "    }}"
            ),
            self.n,
            self.trie_build_ns,
            self.mean_proof_nodes,
            self.baseline_ns,
            self.rooted_ns,
            self.blocks_mined,
            self.overhead_pct(),
        )
    }
}

/// Results of the trie measurement across all N.
#[derive(Debug, Clone)]
pub struct TrieReport {
    /// One point per measured N, in ascending order.
    pub points: Vec<TriePoint>,
}

impl TrieReport {
    /// Serialises the report as a small JSON object (hand-rolled: the
    /// workspace is std-only by design).
    pub fn to_json(&self) -> String {
        let points = self
            .points
            .iter()
            .map(TriePoint::to_json)
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            concat!(
                "{{\n",
                "  \"bench\": \"trie\",\n",
                "  \"points\": [\n{}\n  ]\n",
                "}}\n"
            ),
            points,
        )
    }
}

/// Deterministic 32-byte key for index `i`.
fn key(i: usize) -> [u8; 32] {
    keccak256(&(i as u64).to_be_bytes()).0
}

/// Times inserting `n` keys into a fresh secure trie + one root fold,
/// and measures the mean inclusion-proof length.
fn measure_raw_trie(n: usize) -> (u128, f64) {
    let start = Instant::now();
    let mut secure = SecureTrie::new();
    for i in 0..n {
        secure.insert(&key(i), key(i).to_vec());
    }
    let _root = secure.root();
    let build_ns = start.elapsed().as_nanos();

    // Mean Merkle-path length — the nodes a light client replays.
    let total_nodes: usize = (0..n).map(|i| secure.prove(&key(i)).len()).sum();
    (build_ns, total_nodes as f64 / n.max(1) as f64)
}

/// Runs the chain workload — `n` funded accounts, each storing two
/// slots in a shared contract and sending one plain transfer — and
/// returns `(elapsed_ns, blocks_mined)`. Every transaction mines its
/// own block, so the run times `3n + 1` seals end to end.
fn run_workload(n: usize, commit_roots: bool) -> (u128, u64) {
    let config = ChainConfig {
        commit_roots,
        ..ChainConfig::default()
    };
    let start = Instant::now();
    let mut net = Testnet::with_config(config);
    let wallets: Vec<_> = (0..n)
        .map(|i| net.funded_wallet(&format!("w{i}"), sc_primitives::ether(10)))
        .collect();
    let r = net
        .deploy(&wallets[0], sstore_initcode(), U256::ZERO, 100_000)
        .expect("deploy store contract");
    assert!(r.success, "store contract deploy failed: {:?}", r.failure);
    let store = r.contract_address.expect("created");

    for (i, w) in wallets.iter().enumerate() {
        for round in 0..2u64 {
            let slot = U256::from_u64((i as u64) * 2 + round);
            let value = U256::from_u64(0x1000 + i as u64);
            let r = net
                .execute(w, store, U256::ZERO, store_calldata(slot, value), 60_000)
                .expect("store call");
            assert!(r.success, "store call failed: {:?}", r.failure);
        }
        net.execute(
            w,
            Address([0xba; 20]),
            U256::from_u64(1),
            Vec::new(),
            21_000,
        )
        .expect("transfer");
    }
    let blocks = net.head().number;
    (start.elapsed().as_nanos(), blocks)
}

/// Measures one N: raw trie timings plus the baseline/rooted workload
/// pair.
pub fn measure_point(n: usize) -> TriePoint {
    let (trie_build_ns, mean_proof_nodes) = measure_raw_trie(n);
    let (baseline_ns, baseline_blocks) = run_workload(n, false);
    let (rooted_ns, rooted_blocks) = run_workload(n, true);
    assert_eq!(baseline_blocks, rooted_blocks, "identical workloads");
    TriePoint {
        n,
        trie_build_ns,
        mean_proof_nodes,
        baseline_ns,
        rooted_ns,
        blocks_mined: rooted_blocks,
    }
}

/// Measures the full comparison at N ∈ {1, 16, 256}.
pub fn measure() -> TrieReport {
    TrieReport {
        points: [1, 16, 256].into_iter().map(measure_point).collect(),
    }
}

/// Path of the JSON artifact at the repository root.
pub fn artifact_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_trie.json")
}

/// Runs the measurement, writes `BENCH_trie.json` at the repo root and
/// returns the report.
pub fn run_and_write() -> std::io::Result<TrieReport> {
    let report = measure();
    std::fs::write(artifact_path(), report.to_json())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_workload_and_report_shape() {
        let p = measure_point(4);
        assert_eq!(p.n, 4);
        // Deploy + 4 × (2 stores + 1 transfer) = 13 blocks.
        assert_eq!(p.blocks_mined, 13);
        assert!(p.trie_build_ns > 0);
        assert!(p.mean_proof_nodes >= 1.0);
        let json = TrieReport { points: vec![p] }.to_json();
        assert!(json.contains("\"bench\": \"trie\""));
        assert!(json.contains("\"n\": 4"));
        assert!(json.contains("\"overhead_pct\""));
    }

    #[test]
    fn store_contract_writes_the_named_slot() {
        let mut net = Testnet::new();
        let w = net.funded_wallet("w", sc_primitives::ether(1));
        let r = net
            .deploy(&w, sstore_initcode(), U256::ZERO, 100_000)
            .unwrap();
        assert!(r.success, "deploy: {:?}", r.failure);
        let store = r.contract_address.unwrap();
        let r = net
            .execute(
                &w,
                store,
                U256::ZERO,
                store_calldata(U256::from_u64(5), U256::from_u64(77)),
                60_000,
            )
            .unwrap();
        assert!(r.success, "store: {:?}", r.failure);
        assert_eq!(net.storage_at(store, U256::from_u64(5)), U256::from_u64(77));
    }
}
