//! CI bench-regression gate: `bench_check <baseline_dir> <fresh_dir>`.
//!
//! Compares the fresh `BENCH_*.json` artifacts against the committed
//! baselines through the metric registry in [`sc_bench::regress`],
//! prints the per-metric table and exits non-zero if any gated metric
//! regressed beyond its tolerance.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline, fresh] = args.as_slice() else {
        eprintln!("usage: bench_check <baseline_dir> <fresh_dir>");
        return ExitCode::from(2);
    };
    let report = sc_bench::regress::compare(Path::new(baseline), Path::new(fresh));
    println!("bench regression gate: {baseline} (baseline) vs {fresh} (fresh)");
    println!();
    print!("{}", report.render());
    println!();
    if report.pass() {
        println!("all gated metrics within tolerance");
        ExitCode::SUCCESS
    } else {
        println!("bench regression detected — see FAIL rows above");
        ExitCode::FAILURE
    }
}
