//! End-to-end tests: MiniSol source → bytecode → executed on the EVM.

use sc_evm::host::{Env, Host, MockHost};
use sc_evm::{CallParams, Evm};
use sc_lang::compile;
use sc_primitives::abi::Value;
use sc_primitives::{ether, Address, U256};

struct Deployed {
    host: MockHost,
    address: Address,
    contract: sc_lang::CompiledContract,
    env: Env,
}

const DEPLOYER: Address = Address([0xdd; 20]);
const CALLER: Address = Address([0xee; 20]);

fn deploy(src: &str, name: &str, ctor_args: &[Value]) -> Deployed {
    let contract = compile(src, name).expect("compile");
    let initcode = contract.initcode(ctor_args).expect("initcode");
    let mut host = MockHost::new();
    host.fund(DEPLOYER, ether(100));
    host.fund(CALLER, ether(100));
    let env = Env::default();
    let out = Evm::new(&mut host, env.clone()).create(DEPLOYER, U256::ZERO, initcode, 10_000_000);
    assert!(out.success, "deploy failed: {:?}", out.error);
    Deployed {
        host,
        address: out.address.unwrap(),
        contract,
        env,
    }
}

impl Deployed {
    fn call(&mut self, func: &str, args: &[Value], value: U256) -> sc_evm::CallOutcome {
        self.call_from(CALLER, func, args, value)
    }

    fn call_from(
        &mut self,
        from: Address,
        func: &str,
        args: &[Value],
        value: U256,
    ) -> sc_evm::CallOutcome {
        let data = self.contract.calldata(func, args).expect("calldata");
        Evm::new(&mut self.host, self.env.clone()).call(CallParams::transact(
            from,
            self.address,
            value,
            data,
            5_000_000,
        ))
    }

    fn call_word(&mut self, func: &str, args: &[Value]) -> U256 {
        let out = self.call(func, args, U256::ZERO);
        assert!(out.success, "{func} failed: {:?}", out.error);
        assert_eq!(out.output.len(), 32, "{func} returned {:?}", out.output);
        U256::from_be_slice(&out.output)
    }
}

#[test]
fn storage_set_get() {
    let src = r#"
        contract kv {
            uint256 x;
            function set(uint256 v) public { x = v; }
            function get() public returns (uint256) { return x; }
        }
    "#;
    let mut d = deploy(src, "kv", &[]);
    assert_eq!(d.call_word("get", &[]), U256::ZERO);
    assert!(
        d.call("set", &[Value::Uint(U256::from_u64(77))], U256::ZERO)
            .success
    );
    assert_eq!(d.call_word("get", &[]), U256::from_u64(77));
}

#[test]
fn constructor_args_reach_storage() {
    let src = r#"
        contract timed {
            uint256 T1;
            address owner;
            constructor(uint256 t1, address o) public { T1 = t1; owner = o; }
            function getT1() public returns (uint256) { return T1; }
            function getOwner() public returns (address) { return owner; }
        }
    "#;
    let owner = Address([0xab; 20]);
    let mut d = deploy(
        src,
        "timed",
        &[Value::Uint(U256::from_u64(12345)), Value::Address(owner)],
    );
    assert_eq!(d.call_word("getT1", &[]), U256::from_u64(12345));
    assert_eq!(d.call_word("getOwner", &[]), owner.to_u256());
}

#[test]
fn arithmetic_and_comparisons() {
    let src = r#"
        contract math {
            function calc(uint256 a, uint256 b) public returns (uint256) {
                uint256 s = a + b;
                uint256 d = a - b;
                uint256 p = a * b;
                uint256 q = a / b;
                uint256 m = a % b;
                return s + d + p + q + m;
            }
            function cmp(uint256 a, uint256 b) public returns (bool) {
                return a < b && b >= a && a != b && !(a == b) && (a <= b || a > b);
            }
        }
    "#;
    let mut d = deploy(src, "math", &[]);
    // a=10 b=3: 13 + 7 + 30 + 3 + 1 = 54
    assert_eq!(
        d.call_word(
            "calc",
            &[
                Value::Uint(U256::from_u64(10)),
                Value::Uint(U256::from_u64(3))
            ]
        ),
        U256::from_u64(54)
    );
    assert_eq!(
        d.call_word(
            "cmp",
            &[
                Value::Uint(U256::from_u64(2)),
                Value::Uint(U256::from_u64(5))
            ]
        ),
        U256::ONE
    );
    assert_eq!(
        d.call_word(
            "cmp",
            &[
                Value::Uint(U256::from_u64(5)),
                Value::Uint(U256::from_u64(5))
            ]
        ),
        U256::ZERO
    );
}

#[test]
fn short_circuit_prevents_side_effects() {
    // `false && f()` must not execute f. We detect execution via storage.
    let src = r#"
        contract sc {
            uint256 hits;
            function bump() private returns (bool) { hits = hits + 1; return true; }
            function and_false() public { bool r = false && bump(); require(!r); }
            function or_true() public { bool r = true || bump(); require(r); }
            function hitCount() public returns (uint256) { return hits; }
        }
    "#;
    let mut d = deploy(src, "sc", &[]);
    assert!(d.call("and_false", &[], U256::ZERO).success);
    assert!(d.call("or_true", &[], U256::ZERO).success);
    assert_eq!(d.call_word("hitCount", &[]), U256::ZERO);
}

#[test]
fn mappings_and_fixed_arrays() {
    let src = r#"
        contract book {
            mapping(address => uint256) balances;
            address[2] participant;
            constructor(address a, address b) public {
                participant[0] = a;
                participant[1] = b;
            }
            function credit(address who, uint256 amt) public {
                balances[who] = balances[who] + amt;
            }
            function balanceOf(address who) public returns (uint256) {
                return balances[who];
            }
            function participantAt(uint256 i) public returns (address) {
                return participant[i];
            }
        }
    "#;
    let a = Address([1; 20]);
    let b = Address([2; 20]);
    let mut d = deploy(src, "book", &[Value::Address(a), Value::Address(b)]);
    d.call(
        "credit",
        &[Value::Address(a), Value::Uint(U256::from_u64(5))],
        U256::ZERO,
    );
    d.call(
        "credit",
        &[Value::Address(a), Value::Uint(U256::from_u64(7))],
        U256::ZERO,
    );
    assert_eq!(
        d.call_word("balanceOf", &[Value::Address(a)]),
        U256::from_u64(12)
    );
    assert_eq!(d.call_word("balanceOf", &[Value::Address(b)]), U256::ZERO);
    assert_eq!(
        d.call_word("participantAt", &[Value::Uint(U256::ZERO)]),
        a.to_u256()
    );
    assert_eq!(
        d.call_word("participantAt", &[Value::Uint(U256::ONE)]),
        b.to_u256()
    );
    // Out-of-bounds reverts.
    let out = d.call(
        "participantAt",
        &[Value::Uint(U256::from_u64(2))],
        U256::ZERO,
    );
    assert!(!out.success);
}

#[test]
fn require_and_revert() {
    let src = r#"
        contract guard {
            function check(uint256 x) public returns (uint256) {
                require(x > 10, "too small");
                if (x > 100) { revert(); }
                return x;
            }
        }
    "#;
    let mut d = deploy(src, "guard", &[]);
    assert!(
        !d.call("check", &[Value::Uint(U256::from_u64(5))], U256::ZERO)
            .success
    );
    assert_eq!(
        d.call_word("check", &[Value::Uint(U256::from_u64(50))]),
        U256::from_u64(50)
    );
    assert!(
        !d.call("check", &[Value::Uint(U256::from_u64(200))], U256::ZERO)
            .success
    );
}

#[test]
fn payable_gate() {
    let src = r#"
        contract pay {
            mapping(address => uint256) deposits;
            function deposit() public payable { deposits[msg.sender] = msg.value; }
            function plain() public { }
            function myDeposit() public returns (uint256) { return deposits[msg.sender]; }
        }
    "#;
    let mut d = deploy(src, "pay", &[]);
    assert!(d.call("deposit", &[], ether(1)).success);
    assert_eq!(d.call_word("myDeposit", &[]), ether(1));
    // Sending value to a non-payable function reverts.
    let out = d.call("plain", &[], ether(1));
    assert!(!out.success, "non-payable accepted value");
    assert!(d.call("plain", &[], U256::ZERO).success);
    assert_eq!(d.host.balance(d.address), ether(1));
}

#[test]
fn modifiers_enforce_and_compose() {
    let src = r#"
        contract modded {
            address owner;
            uint256 T1;
            uint256 calls;
            constructor(address o, uint256 t1) public { owner = o; T1 = t1; }
            modifier ownerOnly { require(msg.sender == owner); _; }
            modifier beforeT1 { require(block.timestamp < T1); _; }
            function f() public ownerOnly beforeT1 { calls = calls + 1; }
            function count() public returns (uint256) { return calls; }
        }
    "#;
    let owner = CALLER;
    let mut d = deploy(
        src,
        "modded",
        &[
            Value::Address(owner),
            Value::Uint(U256::from_u64(1_000_000)),
        ],
    );
    d.env.block.timestamp = 500_000;
    assert!(d.call_from(owner, "f", &[], U256::ZERO).success);
    assert!(
        !d.call_from(DEPLOYER, "f", &[], U256::ZERO).success,
        "non-owner must be rejected"
    );
    d.env.block.timestamp = 2_000_000;
    assert!(
        !d.call_from(owner, "f", &[], U256::ZERO).success,
        "after T1 must be rejected"
    );
    assert_eq!(d.call_word("count", &[]), U256::ONE);
}

#[test]
fn loops_compute() {
    let src = r#"
        contract looper {
            function sum(uint256 n) public returns (uint256) {
                uint256 acc = 0;
                for (uint256 i = 1; i <= n; i = i + 1) { acc = acc + i; }
                return acc;
            }
            function countdown(uint256 n) public returns (uint256) {
                uint256 steps = 0;
                while (n > 0) { n = n - 1; steps = steps + 1; }
                return steps;
            }
        }
    "#;
    let mut d = deploy(src, "looper", &[]);
    assert_eq!(
        d.call_word("sum", &[Value::Uint(U256::from_u64(100))]),
        U256::from_u64(5050)
    );
    assert_eq!(
        d.call_word("countdown", &[Value::Uint(U256::from_u64(13))]),
        U256::from_u64(13)
    );
}

#[test]
fn private_function_inlined_with_return() {
    let src = r#"
        contract inliner {
            function helper(uint256 x) private returns (uint256) {
                if (x > 10) { return x * 2; }
                return x + 1;
            }
            function f(uint256 x) public returns (uint256) {
                uint256 a = helper(x);
                uint256 b = helper(x + 20);
                return a + b;
            }
        }
    "#;
    let mut d = deploy(src, "inliner", &[]);
    // x=5: helper(5)=6, helper(25)=50 → 56
    assert_eq!(
        d.call_word("f", &[Value::Uint(U256::from_u64(5))]),
        U256::from_u64(56)
    );
}

#[test]
fn transfer_moves_ether() {
    let src = r#"
        contract vault {
            function fund() public payable { }
            function payout(address to, uint256 amt) public {
                to.transfer(amt);
            }
        }
    "#;
    let mut d = deploy(src, "vault", &[]);
    assert!(d.call("fund", &[], ether(5)).success);
    let dest = Address([0x77; 20]);
    assert!(
        d.call(
            "payout",
            &[Value::Address(dest), Value::Uint(ether(2))],
            U256::ZERO
        )
        .success
    );
    assert_eq!(d.host.balance(dest), ether(2));
    assert_eq!(d.host.balance(d.address), ether(3));
    // Overdraw reverts.
    assert!(
        !d.call(
            "payout",
            &[Value::Address(dest), Value::Uint(ether(10))],
            U256::ZERO
        )
        .success
    );
}

#[test]
fn balance_reads() {
    let src = r#"
        contract peek {
            function fund() public payable { }
            function myBalance() public returns (uint256) {
                return address(this).balance;
            }
        }
    "#;
    let mut d = deploy(src, "peek", &[]);
    d.call("fund", &[], ether(3));
    assert_eq!(d.call_word("myBalance", &[]), ether(3));
}

#[test]
fn bytes_arg_keccak_matches_native() {
    let src = r#"
        contract hasher {
            function h(bytes memory data) public returns (bytes32) {
                return keccak256(data);
            }
        }
    "#;
    let mut d = deploy(src, "hasher", &[]);
    for payload in [vec![], vec![1u8, 2, 3], vec![0xab; 100], vec![0x5a; 32]] {
        let out = d.call("h", &[Value::Bytes(payload.clone())], U256::ZERO);
        assert!(out.success, "len {}: {:?}", payload.len(), out.error);
        assert_eq!(
            out.output,
            sc_crypto::keccak256(&payload).as_bytes(),
            "keccak mismatch for len {}",
            payload.len()
        );
    }
}

#[test]
fn ecrecover_in_contract() {
    let src = r#"
        contract verifier {
            function check(bytes32 h, uint8 v, bytes32 r, bytes32 s) public returns (address) {
                return ecrecover(h, v, r, s);
            }
        }
    "#;
    let mut d = deploy(src, "verifier", &[]);
    let key = sc_crypto::ecdsa::PrivateKey::from_seed("alice");
    let digest = sc_crypto::keccak256(b"the off-chain bytecode");
    let sig = key.sign(digest);
    let out = d.call_word(
        "check",
        &[
            Value::Bytes32(digest),
            Value::Uint(U256::from_u64(sig.v as u64)),
            Value::Bytes32(sig.r),
            Value::Bytes32(sig.s),
        ],
    );
    assert_eq!(out, key.address().to_u256());
    // A corrupted signature recovers to some other address (or zero).
    let bad = d.call_word(
        "check",
        &[
            Value::Bytes32(digest),
            Value::Uint(U256::from_u64(sig.v as u64)),
            Value::Bytes32(sig.s), // swapped
            Value::Bytes32(sig.r),
        ],
    );
    assert_ne!(bad, key.address().to_u256());
}

#[test]
fn create_from_bytes_deploys() {
    // Deploy a child whose runtime returns 99, from raw initcode passed in.
    let src = r#"
        contract factory {
            address public child;
            function make(bytes memory code) public returns (address) {
                address a = create(code);
                require(a != address(0));
                child = a;
                return a;
            }
        }
    "#;
    let mut d = deploy(src, "factory", &[]);
    let child_runtime = vec![0x60, 0x63, 0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3];
    let child_init = sc_evm::wrap_initcode(&child_runtime);
    let out = d.call_word("make", &[Value::Bytes(child_init)]);
    let child = Address::from_u256(out);
    assert_eq!(*d.host.code(child), child_runtime);
    // The factory (not the EOA) is the creator: CA = f(factory, nonce 1).
    assert_eq!(child, sc_evm::contract_address(d.address, 1));
}

#[test]
fn interface_call_between_contracts() {
    let callee_src = r#"
        contract callee {
            uint256 public last;
            bool ok;
            function poke(uint256 x) public returns (bool) {
                last = x;
                return true;
            }
            function getLast() public returns (uint256) { return last; }
        }
    "#;
    let caller_src = r#"
        interface Callee {
            function poke(uint256 x) external returns (bool);
        }
        contract caller {
            function relay(address target, uint256 x) public returns (bool) {
                return Callee(target).poke(x);
            }
        }
    "#;
    let mut d = deploy(callee_src, "callee", &[]);
    // Deploy the caller into the same host.
    let caller_c = compile(caller_src, "caller").unwrap();
    let out = Evm::new(&mut d.host, d.env.clone()).create(
        DEPLOYER,
        U256::ZERO,
        caller_c.initcode(&[]).unwrap(),
        5_000_000,
    );
    assert!(out.success);
    let caller_addr = out.address.unwrap();

    let data = caller_c
        .calldata(
            "relay",
            &[Value::Address(d.address), Value::Uint(U256::from_u64(4242))],
        )
        .unwrap();
    let out = Evm::new(&mut d.host, d.env.clone()).call(CallParams::transact(
        CALLER,
        caller_addr,
        U256::ZERO,
        data,
        5_000_000,
    ));
    assert!(out.success, "{:?}", out.error);
    assert_eq!(
        U256::from_be_slice(&out.output),
        U256::ONE,
        "poke returned true"
    );
    assert_eq!(d.call_word("getLast", &[]), U256::from_u64(4242));
}

#[test]
fn msg_sender_is_caller() {
    let src = r#"
        contract who {
            function me() public returns (address) { return msg.sender; }
        }
    "#;
    let mut d = deploy(src, "who", &[]);
    assert_eq!(d.call_word("me", &[]), CALLER.to_u256());
}

#[test]
fn timestamp_windows() {
    let src = r#"
        contract windows {
            uint256 T1;
            uint256 T2;
            constructor(uint256 t1, uint256 t2) public { T1 = t1; T2 = t2; }
            function phase() public returns (uint256) {
                if (block.timestamp < T1) { return 1; }
                if (block.timestamp < T2) { return 2; }
                return 3;
            }
        }
    "#;
    let mut d = deploy(
        src,
        "windows",
        &[
            Value::Uint(U256::from_u64(100)),
            Value::Uint(U256::from_u64(200)),
        ],
    );
    d.env.block.timestamp = 50;
    assert_eq!(d.call_word("phase", &[]), U256::ONE);
    d.env.block.timestamp = 150;
    assert_eq!(d.call_word("phase", &[]), U256::from_u64(2));
    d.env.block.timestamp = 250;
    assert_eq!(d.call_word("phase", &[]), U256::from_u64(3));
}

#[test]
fn unknown_selector_reverts() {
    let src = "contract c { function f() public { } }";
    let mut d = deploy(src, "c", &[]);
    let out = Evm::new(&mut d.host, d.env.clone()).call(CallParams::transact(
        CALLER,
        d.address,
        U256::ZERO,
        vec![0xde, 0xad, 0xbe, 0xef],
        100_000,
    ));
    assert!(!out.success);
    // Short calldata also reverts rather than misdispatching.
    let out = Evm::new(&mut d.host, d.env.clone()).call(CallParams::transact(
        CALLER,
        d.address,
        U256::ZERO,
        vec![0x01],
        100_000,
    ));
    assert!(!out.success);
}

#[test]
fn plain_ether_to_contract_rejected() {
    // No fallback function: a bare transfer to the contract reverts.
    let src = "contract c { function f() public { } }";
    let mut d = deploy(src, "c", &[]);
    let out = Evm::new(&mut d.host, d.env.clone()).call(CallParams::transact(
        CALLER,
        d.address,
        ether(1),
        vec![],
        100_000,
    ));
    assert!(!out.success);
    assert_eq!(d.host.balance(d.address), U256::ZERO);
}

#[test]
fn uint8_args_are_masked() {
    let src = r#"
        contract m {
            function id(uint8 v) public returns (uint256) { return v; }
        }
    "#;
    let mut d = deploy(src, "m", &[]);
    // Dirty high bits in the calldata word must be masked off.
    let out = d.call_word("id", &[Value::Uint(U256::from_u64(0xabcd))]);
    assert_eq!(out, U256::from_u64(0xcd));
}

#[test]
fn abi_bool_normalized() {
    let src = r#"
        contract b {
            function flip(bool x) public returns (bool) { return !x; }
        }
    "#;
    let mut d = deploy(src, "b", &[]);
    assert_eq!(d.call_word("flip", &[Value::Bool(false)]), U256::ONE);
    assert_eq!(d.call_word("flip", &[Value::Bool(true)]), U256::ZERO);
}

#[test]
fn hash2_matches_native() {
    let src = r#"
        contract pairhash {
            function h(bytes32 a, bytes32 b) public returns (bytes32) {
                return hash2(a, b);
            }
            function nested(bytes32 a, bytes32 b, bytes32 c) public returns (bytes32) {
                return hash2(hash2(a, b), c);
            }
        }
    "#;
    let mut d = deploy(src, "pairhash", &[]);
    let a = sc_crypto::keccak256(b"left");
    let b = sc_crypto::keccak256(b"right");
    let c = sc_crypto::keccak256(b"tail");
    let out = d.call("h", &[Value::Bytes32(a), Value::Bytes32(b)], U256::ZERO);
    assert!(out.success, "{:?}", out.error);
    assert_eq!(out.output, sc_confidential::hash2(a, b).as_bytes());
    // Nested calls must not clobber each other's scratch space.
    let out = d.call(
        "nested",
        &[Value::Bytes32(a), Value::Bytes32(b), Value::Bytes32(c)],
        U256::ZERO,
    );
    assert!(out.success, "{:?}", out.error);
    assert_eq!(
        out.output,
        sc_confidential::hash2(sc_confidential::hash2(a, b), c).as_bytes()
    );
}

#[test]
fn nullifier_builtin_matches_native() {
    let src = r#"
        contract nul {
            function n(bytes32 d) public returns (bytes32) {
                return nullifier(d);
            }
        }
    "#;
    let mut d = deploy(src, "nul", &[]);
    let digest = sc_crypto::keccak256(b"settlement voucher digest");
    let out = d.call("n", &[Value::Bytes32(digest)], U256::ZERO);
    assert!(out.success, "{:?}", out.error);
    assert_eq!(
        out.output,
        sc_confidential::nullifier(digest.as_bytes()).as_bytes()
    );
}

#[test]
fn commit_builtins_verify_real_commitments() {
    use sc_confidential::{CommitmentBackend, PedersenBackend};
    let src = r#"
        contract comm {
            function open(uint256 cx, uint256 cy, uint256 v, uint256 r) public returns (bool) {
                return commit_verify(cx, cy, v, r);
            }
            function sum(uint256 ax, uint256 ay, uint256 bx, uint256 by, uint256 tx, uint256 ty)
                public returns (bool)
            {
                return commit_add_check(ax, ay, bx, by, tx, ty);
            }
        }
    "#;
    let mut d = deploy(src, "comm", &[]);
    let backend = PedersenBackend;
    let a = backend.commit(U256::from_u64(30), U256::from_u64(5));
    let b = backend.commit(U256::from_u64(12), U256::from_u64(6));
    let total = backend.add(&a, &b);

    let open = |d: &mut Deployed, c: &sc_confidential::Commitment, v: u64, r: u64| {
        d.call_word(
            "open",
            &[
                Value::Uint(c.x()),
                Value::Uint(c.y()),
                Value::Uint(U256::from_u64(v)),
                Value::Uint(U256::from_u64(r)),
            ],
        )
    };
    assert_eq!(open(&mut d, &a, 30, 5), U256::ONE);
    assert_eq!(open(&mut d, &a, 31, 5), U256::ZERO);
    assert_eq!(open(&mut d, &a, 30, 6), U256::ZERO);

    let sum = |d: &mut Deployed, t: &sc_confidential::Commitment| {
        d.call_word(
            "sum",
            &[
                Value::Uint(a.x()),
                Value::Uint(a.y()),
                Value::Uint(b.x()),
                Value::Uint(b.y()),
                Value::Uint(t.x()),
                Value::Uint(t.y()),
            ],
        )
    };
    assert_eq!(sum(&mut d, &total), U256::ONE);
    // Note commit(42, 11) would pass — homomorphism — so perturb the value.
    let wrong = backend.commit(U256::from_u64(43), U256::from_u64(11));
    assert_eq!(sum(&mut d, &wrong), U256::ZERO);
}

#[test]
fn range_verify_builtin_checks_real_proof() {
    use sc_confidential::{CommitmentBackend, PedersenBackend};
    let src = r#"
        contract ranged {
            function check(uint256 cx, uint256 cy, uint256 bits, bytes memory proof)
                public returns (bool)
            {
                return range_verify(cx, cy, bits, proof);
            }
        }
    "#;
    let mut d = deploy(src, "ranged", &[]);
    let backend = PedersenBackend;
    let value = U256::from_u64(777);
    let blinding = U256::from_u64(123_456);
    let c = backend.commit(value, blinding);
    let proof = backend.prove_range(value, blinding, 16).expect("prove");

    let args = |proof_bytes: Vec<u8>| {
        vec![
            Value::Uint(c.x()),
            Value::Uint(c.y()),
            Value::Uint(U256::from_u64(16)),
            Value::Bytes(proof_bytes),
        ]
    };
    assert_eq!(
        d.call_word("check", &args(proof.as_bytes().to_vec())),
        U256::ONE
    );
    // Tampered proof fails cleanly (returns false, does not revert).
    let mut bad = proof.as_bytes().to_vec();
    bad[0] ^= 1;
    assert_eq!(d.call_word("check", &args(bad)), U256::ZERO);
    // Truncated proof also returns false.
    let short = proof.as_bytes()[..proof.as_bytes().len() - 1].to_vec();
    assert_eq!(d.call_word("check", &args(short)), U256::ZERO);
}
