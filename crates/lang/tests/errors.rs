//! Compiler error paths and tricky codegen corners.

use sc_evm::host::{Env, MockHost};
use sc_evm::{CallParams, Evm};
use sc_lang::{compile, CompileError};
use sc_primitives::abi::Value;
use sc_primitives::{ether, Address, U256};

fn expect_err(src: &str, name: &str, needle: &str) {
    match compile(src, name) {
        Err(e) => {
            let msg = e.to_string();
            assert!(msg.contains(needle), "error `{msg}` missing `{needle}`");
        }
        Ok(_) => panic!("expected failure containing `{needle}`"),
    }
}

#[test]
fn parse_errors_carry_positions() {
    match compile("contract c {\n  function }\n}", "c") {
        Err(CompileError::Parse(e)) => {
            assert_eq!(e.line, 2);
        }
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn unterminated_constructs() {
    expect_err("contract c { /* never closed", "c", "unterminated");
    expect_err(
        "contract c { function f() public { require(true, \"oops); } }",
        "c",
        "unterminated",
    );
}

#[test]
fn semantic_rejections() {
    expect_err(
        "contract c { uint256 x; uint256 x; }",
        "c",
        "duplicate state variable",
    );
    expect_err(
        "contract c { function f() public {} function f() public {} }",
        "c",
        "duplicate function",
    );
    expect_err(
        "contract c { function f() public { undefined_thing = 1; } }",
        "c",
        "unknown variable",
    );
    expect_err(
        "contract c { function f() public returns (uint256) { return true; } }",
        "c",
        "type mismatch",
    );
    expect_err(
        "contract c { function f() public { return 5; } }",
        "c",
        "void function",
    );
    expect_err(
        "contract c { function f() public returns (uint256) { return; } }",
        "c",
        "missing return value",
    );
    expect_err(
        "contract c { bytes stored; }",
        "c",
        "`bytes` state variables",
    );
    expect_err(
        "contract c { function f(address a) public { Unknown(a).poke(); } }",
        "c",
        "unknown",
    );
}

#[test]
fn arity_and_argument_checks() {
    expect_err(
        "contract c { function g(uint256 a, uint256 b) private returns (uint256) { return a + b; } \
         function f() public returns (uint256) { return g(1, 2, 3); } }",
        "c",
        "expected 2 args",
    );
    expect_err(
        "interface I { function m(uint256 a, bool b) external; } \
         contract c { function f(address t) public { I(t).m(1); } }",
        "c",
        "expected 2 args",
    );
}

#[test]
fn interface_method_existence() {
    expect_err(
        "interface I { function m() external; } \
         contract c { function f(address t) public { I(t).other(); } }",
        "c",
        "no method",
    );
}

#[test]
fn bool_arith_rejected() {
    expect_err(
        "contract c { function f(bool b) public returns (uint256) { return b + 1; } }",
        "c",
        "arithmetic operand",
    );
    expect_err(
        "contract c { function f(uint256 x) public returns (bool) { return x && true; } }",
        "c",
        "logical operand",
    );
}

// ---- tricky-but-valid codegen corners ----

struct Harness {
    host: MockHost,
    address: Address,
    contract: sc_lang::CompiledContract,
}

fn deploy(src: &str, name: &str) -> Harness {
    let contract = compile(src, name).expect("compiles");
    let mut host = MockHost::new();
    host.fund(Address([1; 20]), ether(100));
    let out = Evm::new(&mut host, Env::default()).create(
        Address([1; 20]),
        U256::ZERO,
        contract.initcode(&[]).unwrap(),
        10_000_000,
    );
    assert!(out.success, "{:?}", out.error);
    Harness {
        host,
        address: out.address.unwrap(),
        contract,
    }
}

impl Harness {
    fn call_word(&mut self, func: &str, args: &[Value]) -> U256 {
        let data = self.contract.calldata(func, args).unwrap();
        let out = Evm::new(&mut self.host, Env::default()).call(CallParams::transact(
            Address([1; 20]),
            self.address,
            U256::ZERO,
            data,
            10_000_000,
        ));
        assert!(out.success, "{func}: {:?}", out.error);
        U256::from_be_slice(&out.output)
    }
}

#[test]
fn shadowing_in_nested_scopes() {
    // An inner block's variable shadows the outer one and disappears
    // after the block.
    let src = r#"
        contract s {
            function f(uint256 x) public returns (uint256) {
                uint256 y = 1;
                if (x > 0) {
                    uint256 y2 = y + 10;
                    y = y2;
                }
                return y;
            }
        }
    "#;
    let mut h = deploy(src, "s");
    assert_eq!(
        h.call_word("f", &[Value::Uint(U256::ONE)]),
        U256::from_u64(11)
    );
    assert_eq!(h.call_word("f", &[Value::Uint(U256::ZERO)]), U256::ONE);
}

#[test]
fn modifier_with_branching_around_placeholder() {
    // A modifier whose `_;` sits inside an if-branch: the function body
    // only runs when the condition holds, else the modifier reverts.
    let src = r#"
        contract m {
            uint256 hits;
            modifier gated {
                if (hits < 2) {
                    _;
                } else {
                    revert();
                }
            }
            function bump() public gated { hits = hits + 1; }
            function count() public returns (uint256) { return hits; }
        }
    "#;
    let mut h = deploy(src, "m");
    h.call_word("count", &[]);
    let data = h.contract.calldata("bump", &[]).unwrap();
    for expect_ok in [true, true, false, false] {
        let out = Evm::new(&mut h.host, Env::default()).call(CallParams::transact(
            Address([1; 20]),
            h.address,
            U256::ZERO,
            data.clone(),
            1_000_000,
        ));
        assert_eq!(out.success, expect_ok);
    }
    assert_eq!(h.call_word("count", &[]), U256::from_u64(2));
}

#[test]
fn return_inside_loop_and_branch() {
    let src = r#"
        contract r {
            function firstFactor(uint256 n) public returns (uint256) {
                uint256 i = 2;
                while (i * i <= n) {
                    if (n % i == 0) { return i; }
                    i = i + 1;
                }
                return n;
            }
        }
    "#;
    let mut h = deploy(src, "r");
    assert_eq!(
        h.call_word("firstFactor", &[Value::Uint(U256::from_u64(91))]),
        U256::from_u64(7)
    );
    assert_eq!(
        h.call_word("firstFactor", &[Value::Uint(U256::from_u64(97))]),
        U256::from_u64(97)
    );
}

#[test]
fn deeply_nested_expressions_fit_the_stack() {
    // 64 nested additions: well past any accidental small-stack bug.
    let mut expr = String::from("a");
    for i in 0..64 {
        expr = format!("({expr} + {i})");
    }
    let src = format!(
        "contract d {{ function f(uint256 a) public returns (uint256) {{ return {expr}; }} }}"
    );
    let mut h = deploy(&src, "d");
    let expected: u64 = 5 + (0..64).sum::<u64>();
    assert_eq!(
        h.call_word("f", &[Value::Uint(U256::from_u64(5))]),
        U256::from_u64(expected)
    );
}

#[test]
fn multiple_inlines_of_same_function_are_independent() {
    let src = r#"
        contract i {
            function inc(uint256 x) private returns (uint256) {
                uint256 local = x + 1;
                return local;
            }
            function f() public returns (uint256) {
                uint256 a = inc(10);
                uint256 b = inc(20);
                uint256 c = inc(inc(30));
                return a + b + c;
            }
        }
    "#;
    let mut h = deploy(src, "i");
    // 11 + 21 + 32 = 64
    assert_eq!(h.call_word("f", &[]), U256::from_u64(64));
}

#[test]
fn division_and_modulo_by_zero_yield_zero() {
    // 0.4-era semantics in our MiniSol: EVM-level div by zero is 0 (no
    // checked panic).
    let src = r#"
        contract z {
            function d(uint256 a, uint256 b) public returns (uint256) { return a / b; }
            function m(uint256 a, uint256 b) public returns (uint256) { return a % b; }
        }
    "#;
    let mut h = deploy(src, "z");
    assert_eq!(
        h.call_word(
            "d",
            &[Value::Uint(U256::from_u64(5)), Value::Uint(U256::ZERO)]
        ),
        U256::ZERO
    );
    assert_eq!(
        h.call_word(
            "m",
            &[Value::Uint(U256::from_u64(5)), Value::Uint(U256::ZERO)]
        ),
        U256::ZERO
    );
}

#[test]
fn for_loop_with_compound_operators() {
    let src = r#"
        contract f {
            function sumEven(uint256 n) public returns (uint256) {
                uint256 acc = 0;
                for (uint256 i = 0; i <= n; i += 2) {
                    acc += i;
                }
                return acc;
            }
        }
    "#;
    let mut h = deploy(src, "f");
    // 0+2+4+6+8+10 = 30
    assert_eq!(
        h.call_word("sumEven", &[Value::Uint(U256::from_u64(10))]),
        U256::from_u64(30)
    );
}

#[test]
fn unary_negation_wraps() {
    let src = "contract n { function f(uint256 x) public returns (uint256) { return -x; } }";
    let mut h = deploy(src, "n");
    assert_eq!(h.call_word("f", &[Value::Uint(U256::ONE)]), U256::MAX);
    assert_eq!(h.call_word("f", &[Value::Uint(U256::ZERO)]), U256::ZERO);
}
