//! Tests for MiniSol events: emission to `LOG1`, topic derivation,
//! data encoding, receipt propagation and chain-level log queries.

use sc_chain::Testnet;
use sc_crypto::keccak256;
use sc_lang::printer::print_program;
use sc_lang::{compile, parse};
use sc_primitives::abi::Value;
use sc_primitives::{ether, U256};

const SRC: &str = r#"
    contract bank {
        mapping(address => uint256) balances;

        event Deposited(address who, uint256 amount);
        event Withdrawn(address who, uint256 amount, uint256 remaining);

        function deposit() public payable {
            balances[msg.sender] = balances[msg.sender] + msg.value;
            emit Deposited(msg.sender, msg.value);
        }

        function withdraw(uint256 amount) public {
            require(balances[msg.sender] >= amount);
            balances[msg.sender] = balances[msg.sender] - amount;
            msg.sender.transfer(amount);
            emit Withdrawn(msg.sender, amount, balances[msg.sender]);
        }
    }
"#;

#[test]
fn events_reach_receipts_with_topic_and_data() {
    let bank = compile(SRC, "bank").unwrap();
    let mut net = Testnet::new();
    let w = net.funded_wallet("w", ether(10));
    let addr = net
        .deploy(&w, bank.initcode(&[]).unwrap(), U256::ZERO, 3_000_000)
        .unwrap()
        .contract_address
        .unwrap();

    let r = net
        .execute(
            &w,
            addr,
            ether(2),
            bank.calldata("deposit", &[]).unwrap(),
            300_000,
        )
        .unwrap();
    assert!(r.success, "{:?}", r.failure);
    assert_eq!(r.logs.len(), 1);
    let log = &r.logs[0];
    assert_eq!(log.address, addr);
    assert_eq!(log.topics.len(), 1);
    assert_eq!(
        log.topics[0],
        keccak256(b"Deposited(address,uint256)"),
        "topic 0 is the event signature hash"
    );
    assert_eq!(log.data.len(), 64);
    assert_eq!(U256::from_be_slice(&log.data[..32]), w.address.to_u256());
    assert_eq!(U256::from_be_slice(&log.data[32..]), ether(2));
}

#[test]
fn three_arg_event_encodes_in_order() {
    let bank = compile(SRC, "bank").unwrap();
    let mut net = Testnet::new();
    let w = net.funded_wallet("w", ether(10));
    let addr = net
        .deploy(&w, bank.initcode(&[]).unwrap(), U256::ZERO, 3_000_000)
        .unwrap()
        .contract_address
        .unwrap();
    net.execute(
        &w,
        addr,
        ether(5),
        bank.calldata("deposit", &[]).unwrap(),
        300_000,
    )
    .unwrap();
    let r = net
        .execute(
            &w,
            addr,
            U256::ZERO,
            bank.calldata("withdraw", &[Value::Uint(ether(2))]).unwrap(),
            300_000,
        )
        .unwrap();
    assert!(r.success, "{:?}", r.failure);
    let log = &r.logs[0];
    assert_eq!(
        log.topics[0],
        keccak256(b"Withdrawn(address,uint256,uint256)")
    );
    assert_eq!(log.data.len(), 96);
    assert_eq!(U256::from_be_slice(&log.data[32..64]), ether(2));
    assert_eq!(U256::from_be_slice(&log.data[64..]), ether(3), "remaining");
}

#[test]
fn chain_log_query_filters_by_address_and_range() {
    let bank = compile(SRC, "bank").unwrap();
    let mut net = Testnet::new();
    let w = net.funded_wallet("w", ether(10));
    let a1 = net
        .deploy(&w, bank.initcode(&[]).unwrap(), U256::ZERO, 3_000_000)
        .unwrap()
        .contract_address
        .unwrap();
    let a2 = net
        .deploy(&w, bank.initcode(&[]).unwrap(), U256::ZERO, 3_000_000)
        .unwrap()
        .contract_address
        .unwrap();
    for target in [a1, a2, a1] {
        net.execute(
            &w,
            target,
            ether(1),
            bank.calldata("deposit", &[]).unwrap(),
            300_000,
        )
        .unwrap();
    }
    let head = net.head().number;
    assert_eq!(net.logs(0, head, None).len(), 3);
    assert_eq!(net.logs(0, head, Some(a1)).len(), 2);
    assert_eq!(net.logs(0, head, Some(a2)).len(), 1);
    // Range filtering: the first deposit landed in block 3.
    assert_eq!(net.logs(4, head, None).len(), 2);
    assert_eq!(net.logs(0, 2, None).len(), 0);
}

#[test]
fn reverted_tx_logs_are_discarded() {
    let bank = compile(SRC, "bank").unwrap();
    let mut net = Testnet::new();
    let w = net.funded_wallet("w", ether(10));
    let addr = net
        .deploy(&w, bank.initcode(&[]).unwrap(), U256::ZERO, 3_000_000)
        .unwrap()
        .contract_address
        .unwrap();
    // Withdraw without balance: reverts after… actually before the emit,
    // but the point stands — no logs survive a revert.
    let r = net
        .execute(
            &w,
            addr,
            U256::ZERO,
            bank.calldata("withdraw", &[Value::Uint(ether(1))]).unwrap(),
            300_000,
        )
        .unwrap();
    assert!(!r.success);
    assert!(r.logs.is_empty());
    assert!(net.logs(0, net.head().number, None).is_empty());
}

#[test]
fn zero_arg_event() {
    let src = r#"
        contract p {
            event Pinged();
            function ping() public { emit Pinged(); }
        }
    "#;
    let c = compile(src, "p").unwrap();
    let mut net = Testnet::new();
    let w = net.funded_wallet("w", ether(10));
    let addr = net
        .deploy(&w, c.initcode(&[]).unwrap(), U256::ZERO, 2_000_000)
        .unwrap()
        .contract_address
        .unwrap();
    let r = net
        .execute(
            &w,
            addr,
            U256::ZERO,
            c.calldata("ping", &[]).unwrap(),
            200_000,
        )
        .unwrap();
    assert!(r.success, "{:?}", r.failure);
    assert_eq!(r.logs[0].topics[0], keccak256(b"Pinged()"));
    assert!(r.logs[0].data.is_empty());
}

#[test]
fn emit_validation() {
    let err = compile("contract c { function f() public { emit Ghost(); } }", "c").unwrap_err();
    assert!(err.to_string().contains("unknown event"));

    let err = compile(
        "contract c { event E(uint256 a); function f() public { emit E(); } }",
        "c",
    )
    .unwrap_err();
    assert!(err.to_string().contains("expected 1 args"));

    let err = compile(
        "contract c { event E(bool a); function f() public { emit E(3); } }",
        "c",
    )
    .unwrap_err();
    assert!(err.to_string().contains("event argument"));

    let err = compile("contract c { event E(bytes d); }", "c").unwrap_err();
    assert!(err.to_string().contains("value type"));
}

#[test]
fn printer_roundtrips_events() {
    let p1 = parse(SRC).unwrap();
    let printed = print_program(&p1);
    let p2 = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
    assert_eq!(p1, p2);
    // And the printed source compiles to identical code.
    let direct = compile(SRC, "bank").unwrap();
    let reprinted = compile(&printed, "bank").unwrap();
    assert_eq!(direct.runtime, reprinted.runtime);
}

#[test]
fn event_gas_cost_is_log_priced() {
    // Pinged(): LOG1 with 0 data = 375 + 375 = 750 gas + buffer ops.
    let src = r#"
        contract g {
            event Pinged();
            function on() public { emit Pinged(); }
            function off() public { }
        }
    "#;
    let c = compile(src, "g").unwrap();
    let mut net = Testnet::new();
    let w = net.funded_wallet("w", ether(10));
    let addr = net
        .deploy(&w, c.initcode(&[]).unwrap(), U256::ZERO, 2_000_000)
        .unwrap()
        .contract_address
        .unwrap();
    let with = net
        .execute(
            &w,
            addr,
            U256::ZERO,
            c.calldata("on", &[]).unwrap(),
            200_000,
        )
        .unwrap()
        .gas_used;
    let without = net
        .execute(
            &w,
            addr,
            U256::ZERO,
            c.calldata("off", &[]).unwrap(),
            200_000,
        )
        .unwrap()
        .gas_used;
    let delta = with - without;
    assert!(
        (750..1000).contains(&delta),
        "LOG1 cost plus encoding overhead, got {delta}"
    );
}
