//! Differential property tests: randomly generated MiniSol expressions
//! are compiled to EVM bytecode and executed; the result must equal a
//! native Rust reference evaluation with EVM semantics (wrapping
//! arithmetic, division by zero = 0, short-circuit logic).
//!
//! This exercises the parser, sema, codegen, assembler, interpreter and
//! gas accounting in one loop.

use proptest::prelude::*;
use sc_evm::host::{Env, MockHost};
use sc_evm::{CallParams, Evm};
use sc_lang::compile;
use sc_primitives::abi::Value;
use sc_primitives::{Address, U256};

/// A little expression AST that renders to MiniSol and evaluates natively.
#[derive(Debug, Clone)]
enum E {
    // uint-typed
    Lit(u64),
    A,
    B,
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Mod(Box<E>, Box<E>),
}

#[derive(Debug, Clone)]
enum B {
    Lt(Box<E>, Box<E>),
    Gt(Box<E>, Box<E>),
    Le(Box<E>, Box<E>),
    Ge(Box<E>, Box<E>),
    Eq(Box<E>, Box<E>),
    Ne(Box<E>, Box<E>),
    And(Box<B>, Box<B>),
    Or(Box<B>, Box<B>),
    Not(Box<B>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::Lit(v) => v.to_string(),
            E::A => "a".into(),
            E::B => "b".into(),
            E::Add(x, y) => format!("({} + {})", x.render(), y.render()),
            E::Sub(x, y) => format!("({} - {})", x.render(), y.render()),
            E::Mul(x, y) => format!("({} * {})", x.render(), y.render()),
            E::Div(x, y) => format!("({} / {})", x.render(), y.render()),
            E::Mod(x, y) => format!("({} % {})", x.render(), y.render()),
        }
    }

    fn eval(&self, a: U256, b: U256) -> U256 {
        match self {
            E::Lit(v) => U256::from_u64(*v),
            E::A => a,
            E::B => b,
            E::Add(x, y) => x.eval(a, b).wrapping_add(y.eval(a, b)),
            E::Sub(x, y) => x.eval(a, b).wrapping_sub(y.eval(a, b)),
            E::Mul(x, y) => x.eval(a, b).wrapping_mul(y.eval(a, b)),
            E::Div(x, y) => x.eval(a, b).div_rem(y.eval(a, b)).0,
            E::Mod(x, y) => x.eval(a, b).div_rem(y.eval(a, b)).1,
        }
    }
}

impl B {
    fn render(&self) -> String {
        match self {
            B::Lt(x, y) => format!("({} < {})", x.render(), y.render()),
            B::Gt(x, y) => format!("({} > {})", x.render(), y.render()),
            B::Le(x, y) => format!("({} <= {})", x.render(), y.render()),
            B::Ge(x, y) => format!("({} >= {})", x.render(), y.render()),
            B::Eq(x, y) => format!("({} == {})", x.render(), y.render()),
            B::Ne(x, y) => format!("({} != {})", x.render(), y.render()),
            B::And(x, y) => format!("({} && {})", x.render(), y.render()),
            B::Or(x, y) => format!("({} || {})", x.render(), y.render()),
            B::Not(x) => format!("(!{})", x.render()),
        }
    }

    fn eval(&self, a: U256, b: U256) -> bool {
        match self {
            B::Lt(x, y) => x.eval(a, b) < y.eval(a, b),
            B::Gt(x, y) => x.eval(a, b) > y.eval(a, b),
            B::Le(x, y) => x.eval(a, b) <= y.eval(a, b),
            B::Ge(x, y) => x.eval(a, b) >= y.eval(a, b),
            B::Eq(x, y) => x.eval(a, b) == y.eval(a, b),
            B::Ne(x, y) => x.eval(a, b) != y.eval(a, b),
            B::And(x, y) => x.eval(a, b) && y.eval(a, b),
            B::Or(x, y) => x.eval(a, b) || y.eval(a, b),
            B::Not(x) => !x.eval(a, b),
        }
    }
}

fn arb_uint_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (0u64..1000).prop_map(E::Lit),
        Just(E::A),
        Just(E::B),
        any::<u64>().prop_map(E::Lit),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Add(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Sub(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Mul(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Div(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| E::Mod(Box::new(x), Box::new(y))),
        ]
    })
}

fn arb_bool_expr() -> impl Strategy<Value = B> {
    let cmp = (arb_uint_expr(), arb_uint_expr(), 0u8..6).prop_map(|(x, y, k)| {
        let (x, y) = (Box::new(x), Box::new(y));
        match k {
            0 => B::Lt(x, y),
            1 => B::Gt(x, y),
            2 => B::Le(x, y),
            3 => B::Ge(x, y),
            4 => B::Eq(x, y),
            _ => B::Ne(x, y),
        }
    });
    cmp.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| B::And(Box::new(x), Box::new(y))),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| B::Or(Box::new(x), Box::new(y))),
            inner.prop_map(|x| B::Not(Box::new(x))),
        ]
    })
}

/// Compiles a wrapper contract around the expression and runs it.
fn run_on_evm(body: &str, a: U256, b: U256) -> U256 {
    let src = format!(
        "contract t {{ function f(uint256 a, uint256 b) public returns (uint256) {{ {body} }} }}"
    );
    let compiled = compile(&src, "t").expect("generated source compiles");
    let mut host = MockHost::new();
    host.fund(Address([1; 20]), sc_primitives::ether(1));
    let out = Evm::new(&mut host, Env::default()).create(
        Address([1; 20]),
        U256::ZERO,
        compiled.initcode(&[]).unwrap(),
        10_000_000,
    );
    assert!(out.success, "deploy: {:?}", out.error);
    let data = compiled
        .calldata("f", &[Value::Uint(a), Value::Uint(b)])
        .unwrap();
    let out = Evm::new(&mut host, Env::default()).call(CallParams::transact(
        Address([1; 20]),
        out.address.unwrap(),
        U256::ZERO,
        data,
        30_000_000,
    ));
    assert!(out.success, "call: {:?}", out.error);
    U256::from_be_slice(&out.output)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compiled_uint_expr_matches_reference(
        e in arb_uint_expr(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let a = U256::from_u64(a);
        let b = U256::from_u64(b);
        let body = format!("return {};", e.render());
        prop_assert_eq!(run_on_evm(&body, a, b), e.eval(a, b));
    }

    #[test]
    fn compiled_bool_expr_matches_reference(
        c in arb_bool_expr(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let a = U256::from_u64(a);
        let b = U256::from_u64(b);
        let body = format!("if ({}) {{ return 1; }} return 0;", c.render());
        let expect = U256::from(c.eval(a, b));
        prop_assert_eq!(run_on_evm(&body, a, b), expect);
    }

    #[test]
    fn compiled_expr_via_locals_matches_direct(
        e in arb_uint_expr(),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        // Routing the value through a local must not change it.
        let a = U256::from_u64(a);
        let b = U256::from_u64(b);
        let body = format!("uint256 tmp = {}; return tmp;", e.render());
        prop_assert_eq!(run_on_evm(&body, a, b), e.eval(a, b));
    }

    #[test]
    fn compiled_loop_sum_matches_closed_form(n in 0u64..200) {
        let body = "uint256 acc = 0; uint256 i = 0; while (i < a) { i = i + 1; acc = acc + i; } return acc;";
        let got = run_on_evm(body, U256::from_u64(n), U256::ZERO);
        prop_assert_eq!(got, U256::from_u64(n * (n + 1) / 2));
    }

    #[test]
    fn compilation_is_deterministic_for_random_sources(e in arb_uint_expr()) {
        let src = format!(
            "contract t {{ function f(uint256 a, uint256 b) public returns (uint256) {{ return {}; }} }}",
            e.render()
        );
        let c1 = compile(&src, "t").unwrap();
        let c2 = compile(&src, "t").unwrap();
        prop_assert_eq!(c1.runtime, c2.runtime);
        prop_assert_eq!(c1.init_prefix, c2.init_prefix);
    }
}
