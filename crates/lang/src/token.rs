//! Lexer for MiniSol, the Solidity subset the paper's contracts use.

use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (keywords are distinguished by the parser
    /// via [`Token::is_kw`] so error messages can echo the source text).
    Ident(String),
    /// A decimal or hex number literal.
    Number(String),
    /// A string literal (revert reasons; semantically ignored).
    Str(String),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl Token {
    /// True iff this token is the given keyword / identifier.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == kw)
    }

    /// True iff this token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.tok, Tok::Punct(q) if *q == p)
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Number(s) => write!(f, "{s}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Punct(p) => write!(f, "{p}"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// Lexing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lex error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for LexError {}

/// Multi-character operators, longest first so maximal munch works.
const MULTI_PUNCT: &[&str] = &[
    "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "++", "--",
];

const SINGLE_PUNCT: &[char] = &[
    '(', ')', '{', '}', '[', ']', ';', ',', '.', '=', '+', '-', '*', '/', '%', '<', '>', '!', '&',
    '|', '^', '~', '?', ':',
];

/// Tokenizes MiniSol source. Handles `//` and `/* */` comments and the
/// `pragma ...;` directive (skipped entirely for Solidity-compatibility).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        // Whitespace
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Comments
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
                continue;
            }
            if chars[i + 1] == '*' {
                let (start_line, start_col) = (line, col);
                bump!();
                bump!();
                loop {
                    if i + 1 >= chars.len() {
                        return Err(LexError {
                            message: "unterminated block comment".into(),
                            line: start_line,
                            col: start_col,
                        });
                    }
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
                continue;
            }
        }
        // Identifiers / keywords
        if c.is_ascii_alphabetic() || c == '_' {
            let (l, co) = (line, col);
            let mut s = String::new();
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                s.push(chars[i]);
                bump!();
            }
            if s == "pragma" {
                // Skip the whole directive up to ';'.
                while i < chars.len() && chars[i] != ';' {
                    bump!();
                }
                if i < chars.len() {
                    bump!();
                }
                continue;
            }
            out.push(Token {
                tok: Tok::Ident(s),
                line: l,
                col: co,
            });
            continue;
        }
        // Numbers (decimal or 0x hex, with optional `ether` suffix handled
        // by the parser as a separate ident token)
        if c.is_ascii_digit() {
            let (l, co) = (line, col);
            let mut s = String::new();
            if c == '0' && i + 1 < chars.len() && (chars[i + 1] == 'x' || chars[i + 1] == 'X') {
                s.push(chars[i]);
                bump!();
                s.push(chars[i]);
                bump!();
                while i < chars.len() && chars[i].is_ascii_hexdigit() {
                    s.push(chars[i]);
                    bump!();
                }
            } else {
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    if chars[i] != '_' {
                        s.push(chars[i]);
                    }
                    bump!();
                }
            }
            out.push(Token {
                tok: Tok::Number(s),
                line: l,
                col: co,
            });
            continue;
        }
        // Strings
        if c == '"' {
            let (l, co) = (line, col);
            bump!();
            let mut s = String::new();
            loop {
                if i >= chars.len() {
                    return Err(LexError {
                        message: "unterminated string".into(),
                        line: l,
                        col: co,
                    });
                }
                if chars[i] == '"' {
                    bump!();
                    break;
                }
                s.push(chars[i]);
                bump!();
            }
            out.push(Token {
                tok: Tok::Str(s),
                line: l,
                col: co,
            });
            continue;
        }
        // Multi-char punctuation
        let mut matched = false;
        for p in MULTI_PUNCT {
            let pc: Vec<char> = p.chars().collect();
            if chars[i..].starts_with(&pc) {
                out.push(Token {
                    tok: Tok::Punct(p),
                    line,
                    col,
                });
                for _ in 0..pc.len() {
                    bump!();
                }
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        // Single-char punctuation
        if SINGLE_PUNCT.contains(&c) {
            let p = SINGLE_PUNCT
                .iter()
                .find(|&&s| s == c)
                .expect("checked contains");
            // Leak-free static str lookup.
            let stat: &'static str = match *p {
                '(' => "(",
                ')' => ")",
                '{' => "{",
                '}' => "}",
                '[' => "[",
                ']' => "]",
                ';' => ";",
                ',' => ",",
                '.' => ".",
                '=' => "=",
                '+' => "+",
                '-' => "-",
                '*' => "*",
                '/' => "/",
                '%' => "%",
                '<' => "<",
                '>' => ">",
                '!' => "!",
                '&' => "&",
                '|' => "|",
                '^' => "^",
                '~' => "~",
                '?' => "?",
                ':' => ":",
                _ => unreachable!(),
            };
            out.push(Token {
                tok: Tok::Punct(stat),
                line,
                col,
            });
            bump!();
            continue;
        }
        return Err(LexError {
            message: format!("unexpected character {c:?}"),
            line,
            col,
        });
    }
    out.push(Token {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn identifiers_numbers_puncts() {
        let toks = kinds("uint256 x = 42;");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("uint256".into()),
                Tok::Ident("x".into()),
                Tok::Punct("="),
                Tok::Number("42".into()),
                Tok::Punct(";"),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn hex_numbers_and_underscores() {
        let toks = kinds("0xdeadBEEF 1_000_000");
        assert_eq!(
            toks,
            vec![
                Tok::Number("0xdeadBEEF".into()),
                Tok::Number("1000000".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("a // line\n/* block\nmore */ b");
        assert_eq!(
            toks,
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn pragma_is_skipped() {
        let toks = kinds("pragma solidity ^0.4.24; contract c {}");
        assert_eq!(toks[0], Tok::Ident("contract".into()));
    }

    #[test]
    fn multi_char_operators_munch_maximally() {
        let toks = kinds("a==b !=c =>d <= >=");
        assert!(toks.contains(&Tok::Punct("==")));
        assert!(toks.contains(&Tok::Punct("!=")));
        assert!(toks.contains(&Tok::Punct("=>")));
        assert!(toks.contains(&Tok::Punct("<=")));
        assert!(toks.contains(&Tok::Punct(">=")));
    }

    #[test]
    fn strings() {
        let toks = kinds(r#"require(x, "not allowed");"#);
        assert!(toks.contains(&Tok::Str("not allowed".into())));
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn errors_on_garbage() {
        assert!(lex("contract €").is_err());
        assert!(lex("\"open").is_err());
        assert!(lex("/* open").is_err());
    }
}
