//! Abstract syntax tree for MiniSol.

use sc_primitives::U256;

/// A MiniSol type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// `uint256` (also what numeric literals infer to).
    Uint256,
    /// `uint8` — a full word at runtime, masked on ABI decode; kept
    /// distinct so function signatures match the paper's.
    Uint8,
    /// `bool`.
    Bool,
    /// `address`.
    Address,
    /// `bytes32`.
    Bytes32,
    /// Dynamic `bytes` (memory pointer at runtime).
    Bytes,
    /// `mapping(K => V)` — storage only.
    Mapping(Box<Type>, Box<Type>),
    /// Fixed-size array `T[n]` — storage only.
    FixedArray(Box<Type>, u64),
    /// An interface handle (an address with a known ABI).
    Interface(String),
}

impl Type {
    /// Canonical ABI name used in function signatures.
    pub fn abi_name(&self) -> String {
        match self {
            Type::Uint256 => "uint256".into(),
            Type::Uint8 => "uint8".into(),
            Type::Bool => "bool".into(),
            Type::Address | Type::Interface(_) => "address".into(),
            Type::Bytes32 => "bytes32".into(),
            Type::Bytes => "bytes".into(),
            Type::Mapping(_, _) | Type::FixedArray(_, _) => {
                unreachable!("storage-only types never appear in signatures")
            }
        }
    }

    /// True for types representable as one stack word.
    pub fn is_value_type(&self) -> bool {
        !matches!(
            self,
            Type::Bytes | Type::Mapping(_, _) | Type::FixedArray(_, _)
        )
    }

    /// Number of storage slots a state variable of this type occupies.
    pub fn storage_slots(&self) -> u64 {
        match self {
            Type::FixedArray(inner, n) => inner.storage_slots() * n,
            _ => 1,
        }
    }
}

/// Function/modifier parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Declared type.
    pub ty: Type,
    /// Name.
    pub name: String,
}

/// Visibility of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Callable externally and internally.
    Public,
    /// Callable externally only.
    External,
    /// Callable internally only (inlined at call sites).
    Private,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (wrapping, 0.4 semantics).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/` (0 on division by zero, EVM semantics).
    Div,
    /// `%`.
    Mod,
    /// `<`.
    Lt,
    /// `>`.
    Gt,
    /// `<=`.
    Le,
    /// `>=`.
    Ge,
    /// `==`.
    Eq,
    /// `!=`.
    Ne,
    /// `&&` (short-circuit).
    And,
    /// `||` (short-circuit).
    Or,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Number literal.
    Number(U256),
    /// `true` / `false`.
    Bool(bool),
    /// A reference to a state var, local, or parameter.
    Ident(String),
    /// `msg.sender`.
    MsgSender,
    /// `msg.value`.
    MsgValue,
    /// `block.timestamp` (and `now`).
    BlockTimestamp,
    /// `block.number`.
    BlockNumber,
    /// `address(this)`.
    This,
    /// `<expr>.balance` on an address.
    Balance(Box<Expr>),
    /// Indexing: mapping or fixed array.
    Index(Box<Expr>, Box<Expr>),
    /// Unary `!`.
    Not(Box<Expr>),
    /// Unary `-` (two's-complement negate).
    Neg(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `keccak256(expr)` over a `bytes` value.
    Keccak(Box<Expr>),
    /// `ecrecover(h, v, r, s)`.
    EcRecover(Box<Expr>, Box<Expr>, Box<Expr>, Box<Expr>),
    /// `create(bytes)` — deploy raw bytecode, returns the address
    /// (MiniSol's stand-in for the paper's inline assembly `create`).
    Create(Box<Expr>),
    /// `hash2(a, b)` — `keccak256(a ‖ b)` over two 32-byte words; the
    /// digest-chain primitive settlement vouchers are built from.
    Hash2(Box<Expr>, Box<Expr>),
    /// `commit_verify(cx, cy, v, r)` — Pedersen opening check via the
    /// 0x09 precompile.
    CommitVerify(Box<Expr>, Box<Expr>, Box<Expr>, Box<Expr>),
    /// `commit_add_check(ax, ay, bx, by, cx, cy)` — homomorphic
    /// `A + B == C` check via the 0x0a precompile.
    CommitAddCheck(Box<[Expr; 6]>),
    /// `nullifier(x)` — domain-separated nullifier of one word via the
    /// 0x0b precompile.
    Nullifier(Box<Expr>),
    /// `range_verify(cx, cy, bits, proof)` — range-proof check over a
    /// `bytes` proof via the 0x0c precompile.
    RangeVerify(Box<Expr>, Box<Expr>, Box<Expr>, Box<Expr>),
    /// Internal call to a contract function (inlined).
    InternalCall(String, Vec<Expr>),
    /// External call: `Iface(addr).method(args)`.
    ExternalCall {
        /// Interface name.
        iface: String,
        /// The address expression.
        addr: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Type cast, e.g. `address(x)` or `uint256(x)`.
    Cast(Type, Box<Expr>),
    /// `<array-state-var>.length` (fixed arrays: a constant).
    ArrayLength(Box<Expr>),
}

/// Assignable places.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LValue {
    /// A named state variable or local.
    Ident(String),
    /// Indexed mapping/array element.
    Index(Box<Expr>, Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `type name = expr;` (initializer required).
    VarDecl(Param, Expr),
    /// `lvalue = expr;`
    Assign(LValue, Expr),
    /// `require(cond);` or `require(cond, "msg");` — message discarded.
    Require(Expr),
    /// `revert();`
    Revert,
    /// `if (c) {..} else {..}`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (c) {..}`. `for` loops are desugared by the parser into a
    /// declaration followed by a `while`, so they never reach codegen.
    While(Expr, Vec<Stmt>),
    /// `return;` or `return expr;`.
    Return(Option<Expr>),
    /// Bare expression (external call, transfer, …).
    ExprStmt(Expr),
    /// `emit EventName(args…);`
    Emit(String, Vec<Expr>),
    /// `<addr-expr>.transfer(amount);`
    Transfer(Expr, Expr),
    /// The `_;` placeholder inside a modifier body.
    Placeholder,
}

/// A modifier definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Modifier {
    /// Name.
    pub name: String,
    /// Body (contains exactly one [`Stmt::Placeholder`]).
    pub body: Vec<Stmt>,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Visibility.
    pub visibility: Visibility,
    /// Accepts value transfers.
    pub payable: bool,
    /// Applied modifiers, outermost first.
    pub modifiers: Vec<String>,
    /// Single optional return type.
    pub returns: Option<Type>,
    /// Body.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Canonical signature, e.g. `deposit()` or
    /// `deployVerifiedInstance(bytes,uint8,bytes32,bytes32,uint8,bytes32,bytes32)`.
    pub fn signature(&self) -> String {
        let args: Vec<String> = self.params.iter().map(|p| p.ty.abi_name()).collect();
        format!("{}({})", self.name, args.join(","))
    }
}

/// A state variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateVar {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: Type,
    /// First storage slot (assigned by sema).
    pub slot: u64,
}

/// An event declaration. All parameters are unindexed (they travel in
/// the log's data payload); the event signature hash is topic 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Name.
    pub name: String,
    /// Parameters (value types only).
    pub params: Vec<Param>,
}

impl Event {
    /// Canonical signature, e.g. `Deposit(address,uint256)`.
    pub fn signature(&self) -> String {
        let args: Vec<String> = self.params.iter().map(|p| p.ty.abi_name()).collect();
        format!("{}({})", self.name, args.join(","))
    }
}

/// A contract definition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Contract {
    /// Name.
    pub name: String,
    /// State variables in declaration order.
    pub state: Vec<StateVar>,
    /// Constructor (params, payable, body).
    pub constructor: Option<(Vec<Param>, bool, Vec<Stmt>)>,
    /// Modifiers.
    pub modifiers: Vec<Modifier>,
    /// Functions.
    pub functions: Vec<Function>,
    /// Event declarations.
    pub events: Vec<Event>,
}

/// A method in an interface declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IfaceMethod {
    /// Name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Optional single return type.
    pub returns: Option<Type>,
}

impl IfaceMethod {
    /// Canonical signature.
    pub fn signature(&self) -> String {
        let args: Vec<String> = self.params.iter().map(Type::abi_name).collect();
        format!("{}({})", self.name, args.join(","))
    }
}

/// An interface declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interface {
    /// Name.
    pub name: String,
    /// Methods.
    pub methods: Vec<IfaceMethod>,
}

/// A parsed source file: interfaces + contracts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Interface declarations.
    pub interfaces: Vec<Interface>,
    /// Contract definitions.
    pub contracts: Vec<Contract>,
}
