//! Semantic analysis: slot assignment, name resolution, type checking,
//! modifier expansion checks and inlining-cycle detection.

use crate::ast::*;
use sc_crypto::keccak::selector;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Semantic errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemaError(pub String);

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "semantic error: {}", self.0)
    }
}

impl std::error::Error for SemaError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SemaError> {
    Err(SemaError(msg.into()))
}

/// A contract after analysis: slots assigned, ambiguous casts resolved,
/// selectors computed.
#[derive(Debug, Clone)]
pub struct AnalyzedContract {
    /// The rewritten contract.
    pub contract: Contract,
    /// Interfaces visible to it.
    pub interfaces: HashMap<String, Interface>,
    /// `(function index, selector, canonical signature)` for every
    /// dispatchable (public/external) function.
    pub selectors: Vec<(usize, [u8; 4], String)>,
}

impl AnalyzedContract {
    /// Looks up a dispatchable function's selector by name.
    pub fn selector_of(&self, name: &str) -> Option<[u8; 4]> {
        self.selectors
            .iter()
            .find(|(i, _, _)| self.contract.functions[*i].name == name)
            .map(|(_, sel, _)| *sel)
    }
}

/// Analyzes one contract of a parsed program.
pub fn analyze(program: &Program, contract_name: &str) -> Result<AnalyzedContract, SemaError> {
    let contract = program
        .contracts
        .iter()
        .find(|c| c.name == contract_name)
        .ok_or_else(|| SemaError(format!("contract `{contract_name}` not found")))?;
    let interfaces: HashMap<String, Interface> = program
        .interfaces
        .iter()
        .map(|i| (i.name.clone(), i.clone()))
        .collect();

    let mut contract = contract.clone();

    // ---- storage slots ----
    let mut slot = 0u64;
    let mut seen = HashSet::new();
    for sv in &mut contract.state {
        if !seen.insert(sv.name.clone()) {
            return err(format!("duplicate state variable `{}`", sv.name));
        }
        if matches!(sv.ty, Type::Bytes) {
            return err("`bytes` state variables are not supported");
        }
        sv.slot = slot;
        slot += sv.ty.storage_slots();
    }

    // ---- symbol tables ----
    let fn_names: HashMap<String, usize> = contract
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i))
        .collect();
    if fn_names.len() != contract.functions.len() {
        return err("duplicate function name (overloading unsupported)");
    }
    let modifier_names: HashSet<String> =
        contract.modifiers.iter().map(|m| m.name.clone()).collect();

    // ---- modifier validity ----
    for m in &contract.modifiers {
        let count = count_placeholders(&m.body);
        if count != 1 {
            return err(format!(
                "modifier `{}` must contain exactly one `_;` (found {count})",
                m.name
            ));
        }
    }
    for f in &contract.functions {
        for m in &f.modifiers {
            if !modifier_names.contains(m) {
                return err(format!(
                    "function `{}` uses undefined modifier `{m}`",
                    f.name
                ));
            }
        }
    }

    // ---- resolve ambiguous casts in all bodies ----
    let resolver = Resolver {
        fn_names: &fn_names,
        interfaces: &interfaces,
    };
    for f in &mut contract.functions {
        for s in &mut f.body {
            resolver.resolve_stmt(s)?;
        }
    }
    for m in &mut contract.modifiers {
        for s in &mut m.body {
            resolver.resolve_stmt(s)?;
        }
    }
    if let Some((_, _, body)) = &mut contract.constructor {
        for s in body {
            resolver.resolve_stmt(s)?;
        }
    }

    // ---- inlining cycle detection ----
    detect_cycles(&contract, &fn_names)?;

    // ---- type checking ----
    let checker = TypeChecker {
        contract: &contract,
        interfaces: &interfaces,
    };
    for f in &contract.functions {
        checker.check_function(f)?;
    }
    if let Some((params, _, body)) = &contract.constructor {
        let mut scope = Scope::new(params.clone());
        for s in body {
            checker.check_stmt(s, &mut scope, &None)?;
        }
    }
    for m in &contract.modifiers {
        let mut scope = Scope::new(Vec::new());
        for s in &m.body {
            checker.check_stmt(s, &mut scope, &None)?;
        }
    }

    // ---- events ----
    let mut seen_ev = HashSet::new();
    for ev in &contract.events {
        if !seen_ev.insert(ev.name.clone()) {
            return err(format!("duplicate event `{}`", ev.name));
        }
        for p in &ev.params {
            if !p.ty.is_value_type() {
                return err(format!(
                    "event `{}`: parameter `{}` must be a value type",
                    ev.name, p.name
                ));
            }
        }
    }

    // ---- selectors ----
    let mut selectors = Vec::new();
    let mut seen_sel = HashMap::new();
    for (i, f) in contract.functions.iter().enumerate() {
        if matches!(f.visibility, Visibility::Public | Visibility::External) {
            for p in &f.params {
                if !matches!(
                    p.ty,
                    Type::Uint256
                        | Type::Uint8
                        | Type::Bool
                        | Type::Address
                        | Type::Bytes32
                        | Type::Bytes
                ) {
                    return err(format!(
                        "function `{}`: parameter type not ABI-encodable",
                        f.name
                    ));
                }
            }
            let sig = f.signature();
            let sel = selector(&sig);
            if let Some(prev) = seen_sel.insert(sel, sig.clone()) {
                return err(format!("selector collision between `{prev}` and `{sig}`"));
            }
            selectors.push((i, sel, sig));
        }
    }

    Ok(AnalyzedContract {
        contract,
        interfaces,
        selectors,
    })
}

fn count_placeholders(body: &[Stmt]) -> usize {
    body.iter()
        .map(|s| match s {
            Stmt::Placeholder => 1,
            Stmt::If(_, a, b) => count_placeholders(a) + count_placeholders(b),
            Stmt::While(_, b) => count_placeholders(b),
            _ => 0,
        })
        .sum()
}

struct Resolver<'a> {
    fn_names: &'a HashMap<String, usize>,
    interfaces: &'a HashMap<String, Interface>,
}

impl Resolver<'_> {
    fn resolve_stmt(&self, s: &mut Stmt) -> Result<(), SemaError> {
        match s {
            Stmt::VarDecl(_, e) | Stmt::Require(e) | Stmt::Return(Some(e)) | Stmt::ExprStmt(e) => {
                self.resolve_expr(e)
            }
            Stmt::Assign(lv, e) => {
                if let LValue::Index(base, idx) = lv {
                    self.resolve_expr(base)?;
                    self.resolve_expr(idx)?;
                }
                self.resolve_expr(e)
            }
            Stmt::Transfer(a, v) => {
                self.resolve_expr(a)?;
                self.resolve_expr(v)
            }
            Stmt::If(c, a, b) => {
                self.resolve_expr(c)?;
                for s in a.iter_mut().chain(b.iter_mut()) {
                    self.resolve_stmt(s)?;
                }
                Ok(())
            }
            Stmt::While(c, b) => {
                self.resolve_expr(c)?;
                for s in b {
                    self.resolve_stmt(s)?;
                }
                Ok(())
            }
            Stmt::Emit(_, args) => {
                for a in args {
                    self.resolve_expr(a)?;
                }
                Ok(())
            }
            Stmt::Return(None) | Stmt::Revert | Stmt::Placeholder => Ok(()),
        }
    }

    /// Rewrites `Cast(Interface(name), x)` into an internal call when
    /// `name` is actually a contract function, and validates interface
    /// names otherwise.
    fn resolve_expr(&self, e: &mut Expr) -> Result<(), SemaError> {
        // First recurse.
        match e {
            Expr::Balance(x)
            | Expr::Not(x)
            | Expr::Neg(x)
            | Expr::Keccak(x)
            | Expr::Create(x)
            | Expr::Nullifier(x)
            | Expr::ArrayLength(x)
            | Expr::Cast(_, x) => self.resolve_expr(x)?,
            Expr::Index(a, b) | Expr::Bin(_, a, b) | Expr::Hash2(a, b) => {
                self.resolve_expr(a)?;
                self.resolve_expr(b)?;
            }
            Expr::EcRecover(a, b, c, d)
            | Expr::CommitVerify(a, b, c, d)
            | Expr::RangeVerify(a, b, c, d) => {
                self.resolve_expr(a)?;
                self.resolve_expr(b)?;
                self.resolve_expr(c)?;
                self.resolve_expr(d)?;
            }
            Expr::CommitAddCheck(parts) => {
                for part in parts.iter_mut() {
                    self.resolve_expr(part)?;
                }
            }
            Expr::InternalCall(_, args) => {
                for a in args {
                    self.resolve_expr(a)?;
                }
            }
            Expr::ExternalCall { addr, args, .. } => {
                self.resolve_expr(addr)?;
                for a in args {
                    self.resolve_expr(a)?;
                }
            }
            _ => {}
        }
        // Then rewrite this node if it is the ambiguous cast form.
        if let Expr::Cast(Type::Interface(name), inner) = e {
            if self.fn_names.contains_key(name.as_str()) {
                let name = name.clone();
                let inner = (**inner).clone();
                *e = Expr::InternalCall(name, vec![inner]);
            } else if !self.interfaces.contains_key(name.as_str()) {
                return err(format!("unknown type or function `{name}`"));
            }
        }
        if let Expr::InternalCall(name, _) = e {
            if !self.fn_names.contains_key(name.as_str()) {
                return err(format!("unknown function `{name}`"));
            }
        }
        Ok(())
    }
}

fn detect_cycles(contract: &Contract, fn_names: &HashMap<String, usize>) -> Result<(), SemaError> {
    // DFS over the internal-call graph.
    fn calls_of(body: &[Stmt], out: &mut Vec<String>) {
        fn expr(e: &Expr, out: &mut Vec<String>) {
            match e {
                Expr::InternalCall(n, args) => {
                    out.push(n.clone());
                    for a in args {
                        expr(a, out);
                    }
                }
                Expr::Balance(x)
                | Expr::Not(x)
                | Expr::Neg(x)
                | Expr::Keccak(x)
                | Expr::Create(x)
                | Expr::Nullifier(x)
                | Expr::ArrayLength(x)
                | Expr::Cast(_, x) => expr(x, out),
                Expr::Index(a, b) | Expr::Bin(_, a, b) | Expr::Hash2(a, b) => {
                    expr(a, out);
                    expr(b, out);
                }
                Expr::EcRecover(a, b, c, d)
                | Expr::CommitVerify(a, b, c, d)
                | Expr::RangeVerify(a, b, c, d) => {
                    expr(a, out);
                    expr(b, out);
                    expr(c, out);
                    expr(d, out);
                }
                Expr::CommitAddCheck(parts) => {
                    for part in parts.iter() {
                        expr(part, out);
                    }
                }
                Expr::ExternalCall { addr, args, .. } => {
                    expr(addr, out);
                    for a in args {
                        expr(a, out);
                    }
                }
                _ => {}
            }
        }
        for s in body {
            match s {
                Stmt::VarDecl(_, e)
                | Stmt::Require(e)
                | Stmt::Return(Some(e))
                | Stmt::ExprStmt(e) => expr(e, out),
                Stmt::Assign(lv, e) => {
                    if let LValue::Index(b, i) = lv {
                        expr(b, out);
                        expr(i, out);
                    }
                    expr(e, out);
                }
                Stmt::Transfer(a, v) => {
                    expr(a, out);
                    expr(v, out);
                }
                Stmt::Emit(_, args) => {
                    for a in args {
                        expr(a, out);
                    }
                }
                Stmt::If(c, a, b) => {
                    expr(c, out);
                    calls_of(a, out);
                    calls_of(b, out);
                }
                Stmt::While(c, b) => {
                    expr(c, out);
                    calls_of(b, out);
                }
                _ => {}
            }
        }
    }

    let mut edges: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, f) in contract.functions.iter().enumerate() {
        let mut calls = Vec::new();
        calls_of(&f.body, &mut calls);
        let targets: Vec<usize> = calls
            .iter()
            .filter_map(|n| fn_names.get(n).copied())
            .collect();
        edges.insert(i, targets);
    }
    // Colors: 0 = white, 1 = gray, 2 = black.
    fn dfs(
        node: usize,
        edges: &HashMap<usize, Vec<usize>>,
        color: &mut Vec<u8>,
        contract: &Contract,
    ) -> Result<(), SemaError> {
        color[node] = 1;
        for &next in &edges[&node] {
            match color[next] {
                1 => {
                    return err(format!(
                        "recursive internal call involving `{}` (inlining forbids recursion)",
                        contract.functions[next].name
                    ))
                }
                0 => dfs(next, edges, color, contract)?,
                _ => {}
            }
        }
        color[node] = 2;
        Ok(())
    }
    let mut color = vec![0u8; contract.functions.len()];
    for i in 0..contract.functions.len() {
        if color[i] == 0 {
            dfs(i, &edges, &mut color, contract)?;
        }
    }
    Ok(())
}

/// Local variable scope during checking.
struct Scope {
    vars: Vec<(String, Type)>,
}

impl Scope {
    fn new(params: Vec<Param>) -> Scope {
        Scope {
            vars: params.into_iter().map(|p| (p.name, p.ty)).collect(),
        }
    }

    fn lookup(&self, name: &str) -> Option<&Type> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }

    fn declare(&mut self, name: String, ty: Type) {
        self.vars.push((name, ty));
    }
}

struct TypeChecker<'a> {
    contract: &'a Contract,
    interfaces: &'a HashMap<String, Interface>,
}

impl TypeChecker<'_> {
    fn state_ty(&self, name: &str) -> Option<&Type> {
        self.contract
            .state
            .iter()
            .find(|sv| sv.name == name)
            .map(|sv| &sv.ty)
    }

    fn check_function(&self, f: &Function) -> Result<(), SemaError> {
        let mut scope = Scope::new(f.params.clone());
        for s in &f.body {
            self.check_stmt(s, &mut scope, &f.returns)?;
        }
        Ok(())
    }

    fn check_stmt(&self, s: &Stmt, scope: &mut Scope, ret: &Option<Type>) -> Result<(), SemaError> {
        match s {
            Stmt::VarDecl(p, init) => {
                let ity = self.infer(init, scope)?;
                self.require_assignable(&p.ty, &ity, &p.name)?;
                scope.declare(p.name.clone(), p.ty.clone());
                Ok(())
            }
            Stmt::Assign(lv, e) => {
                let lty = match lv {
                    LValue::Ident(n) => scope
                        .lookup(n)
                        .or_else(|| self.state_ty(n))
                        .cloned()
                        .ok_or_else(|| SemaError(format!("unknown variable `{n}`")))?,
                    LValue::Index(base, idx) => {
                        let bty = self.infer(base, scope)?;
                        let ity = self.infer(idx, scope)?;
                        match bty {
                            Type::Mapping(k, v) => {
                                self.require_assignable(&k, &ity, "mapping key")?;
                                *v
                            }
                            Type::FixedArray(elem, _) => {
                                self.require_assignable(&Type::Uint256, &ity, "array index")?;
                                *elem
                            }
                            other => {
                                return err(format!("cannot index into {other:?}"));
                            }
                        }
                    }
                };
                let rty = self.infer(e, scope)?;
                self.require_assignable(&lty, &rty, "assignment")
            }
            Stmt::Require(e) => {
                let t = self.infer(e, scope)?;
                self.require_assignable(&Type::Bool, &t, "require condition")
            }
            Stmt::Revert | Stmt::Placeholder => Ok(()),
            Stmt::If(c, a, b) => {
                let t = self.infer(c, scope)?;
                self.require_assignable(&Type::Bool, &t, "if condition")?;
                for s in a.iter().chain(b.iter()) {
                    self.check_stmt(s, scope, ret)?;
                }
                Ok(())
            }
            Stmt::While(c, body) => {
                let t = self.infer(c, scope)?;
                self.require_assignable(&Type::Bool, &t, "while condition")?;
                for s in body {
                    self.check_stmt(s, scope, ret)?;
                }
                Ok(())
            }
            Stmt::Return(opt) => match (opt, ret) {
                (None, None) => Ok(()),
                (Some(e), Some(rt)) => {
                    let t = self.infer(e, scope)?;
                    self.require_assignable(rt, &t, "return value")
                }
                (Some(_), None) => err("return with value in void function"),
                (None, Some(_)) => err("missing return value"),
            },
            Stmt::ExprStmt(e) => {
                self.infer(e, scope)?;
                Ok(())
            }
            Stmt::Transfer(a, v) => {
                let at = self.infer(a, scope)?;
                self.require_assignable(&Type::Address, &at, "transfer target")?;
                let vt = self.infer(v, scope)?;
                self.require_assignable(&Type::Uint256, &vt, "transfer amount")
            }
            Stmt::Emit(name, args) => {
                let ev = self
                    .contract
                    .events
                    .iter()
                    .find(|e| &e.name == name)
                    .ok_or_else(|| SemaError(format!("unknown event `{name}`")))?;
                if ev.params.len() != args.len() {
                    return err(format!(
                        "emit {name}: expected {} args, got {}",
                        ev.params.len(),
                        args.len()
                    ));
                }
                for (p, a) in ev.params.iter().zip(args) {
                    let t = self.infer(a, scope)?;
                    self.require_assignable(&p.ty, &t, "event argument")?;
                }
                Ok(())
            }
        }
    }

    fn require_assignable(&self, want: &Type, got: &Type, what: &str) -> Result<(), SemaError> {
        let compatible = match (want, got) {
            (a, b) if a == b => true,
            // uint8 and uint256 interconvert (single word).
            (Type::Uint256, Type::Uint8) | (Type::Uint8, Type::Uint256) => true,
            // bytes32 and uint256 interconvert via explicit use.
            (Type::Bytes32, Type::Uint256) | (Type::Uint256, Type::Bytes32) => true,
            // An interface handle is an address.
            (Type::Address, Type::Interface(_)) | (Type::Interface(_), Type::Address) => true,
            _ => false,
        };
        if compatible {
            Ok(())
        } else {
            err(format!(
                "type mismatch in {what}: expected {want:?}, got {got:?}"
            ))
        }
    }

    fn infer(&self, e: &Expr, scope: &Scope) -> Result<Type, SemaError> {
        Ok(match e {
            Expr::Number(_) => Type::Uint256,
            Expr::Bool(_) => Type::Bool,
            Expr::MsgSender | Expr::This => Type::Address,
            Expr::MsgValue | Expr::BlockTimestamp | Expr::BlockNumber => Type::Uint256,
            Expr::Ident(n) => scope
                .lookup(n)
                .or_else(|| self.state_ty(n))
                .cloned()
                .ok_or_else(|| SemaError(format!("unknown identifier `{n}`")))?,
            Expr::Balance(a) => {
                let t = self.infer(a, scope)?;
                self.require_assignable(&Type::Address, &t, ".balance")?;
                Type::Uint256
            }
            Expr::ArrayLength(a) => match self.infer(a, scope)? {
                Type::FixedArray(_, _) => Type::Uint256,
                other => return err(format!(".length on non-array {other:?}")),
            },
            Expr::Index(base, idx) => {
                let bty = self.infer(base, scope)?;
                let ity = self.infer(idx, scope)?;
                match bty {
                    Type::Mapping(k, v) => {
                        self.require_assignable(&k, &ity, "mapping key")?;
                        *v
                    }
                    Type::FixedArray(elem, _) => {
                        self.require_assignable(&Type::Uint256, &ity, "array index")?;
                        *elem
                    }
                    other => return err(format!("cannot index into {other:?}")),
                }
            }
            Expr::Not(a) => {
                let t = self.infer(a, scope)?;
                self.require_assignable(&Type::Bool, &t, "!")?;
                Type::Bool
            }
            Expr::Neg(a) => {
                let t = self.infer(a, scope)?;
                self.require_assignable(&Type::Uint256, &t, "unary -")?;
                Type::Uint256
            }
            Expr::Bin(op, a, b) => {
                let ta = self.infer(a, scope)?;
                let tb = self.infer(b, scope)?;
                match op {
                    BinOp::And | BinOp::Or => {
                        self.require_assignable(&Type::Bool, &ta, "logical operand")?;
                        self.require_assignable(&Type::Bool, &tb, "logical operand")?;
                        Type::Bool
                    }
                    BinOp::Eq | BinOp::Ne => {
                        self.require_assignable(&ta, &tb, "comparison")?;
                        Type::Bool
                    }
                    BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => {
                        self.require_assignable(&Type::Uint256, &ta, "comparison operand")?;
                        self.require_assignable(&Type::Uint256, &tb, "comparison operand")?;
                        Type::Bool
                    }
                    _ => {
                        self.require_assignable(&Type::Uint256, &ta, "arithmetic operand")?;
                        self.require_assignable(&Type::Uint256, &tb, "arithmetic operand")?;
                        Type::Uint256
                    }
                }
            }
            Expr::Keccak(a) => {
                let t = self.infer(a, scope)?;
                if t != Type::Bytes {
                    return err("keccak256 expects a `bytes` value");
                }
                Type::Bytes32
            }
            Expr::EcRecover(h, v, r, s) => {
                let th = self.infer(h, scope)?;
                self.require_assignable(&Type::Bytes32, &th, "ecrecover hash")?;
                let tv = self.infer(v, scope)?;
                self.require_assignable(&Type::Uint256, &tv, "ecrecover v")?;
                let tr = self.infer(r, scope)?;
                self.require_assignable(&Type::Bytes32, &tr, "ecrecover r")?;
                let ts = self.infer(s, scope)?;
                self.require_assignable(&Type::Bytes32, &ts, "ecrecover s")?;
                Type::Address
            }
            Expr::Create(code) => {
                let t = self.infer(code, scope)?;
                if t != Type::Bytes {
                    return err("create expects a `bytes` value");
                }
                Type::Address
            }
            Expr::Hash2(a, b) => {
                let ta = self.infer(a, scope)?;
                self.require_assignable(&Type::Bytes32, &ta, "hash2 first word")?;
                let tb = self.infer(b, scope)?;
                self.require_assignable(&Type::Bytes32, &tb, "hash2 second word")?;
                Type::Bytes32
            }
            Expr::CommitVerify(cx, cy, v, r) => {
                for (e, what) in [
                    (cx, "commit_verify cx"),
                    (cy, "commit_verify cy"),
                    (v, "commit_verify value"),
                    (r, "commit_verify blinding"),
                ] {
                    let t = self.infer(e, scope)?;
                    self.require_assignable(&Type::Uint256, &t, what)?;
                }
                Type::Bool
            }
            Expr::CommitAddCheck(parts) => {
                for part in parts.iter() {
                    let t = self.infer(part, scope)?;
                    self.require_assignable(&Type::Uint256, &t, "commit_add_check coordinate")?;
                }
                Type::Bool
            }
            Expr::Nullifier(x) => {
                let t = self.infer(x, scope)?;
                self.require_assignable(&Type::Bytes32, &t, "nullifier preimage")?;
                Type::Bytes32
            }
            Expr::RangeVerify(cx, cy, bits, proof) => {
                for (e, what) in [
                    (cx, "range_verify cx"),
                    (cy, "range_verify cy"),
                    (bits, "range_verify bits"),
                ] {
                    let t = self.infer(e, scope)?;
                    self.require_assignable(&Type::Uint256, &t, what)?;
                }
                let tp = self.infer(proof, scope)?;
                if tp != Type::Bytes {
                    return err("range_verify expects a `bytes` proof");
                }
                Type::Bool
            }
            Expr::InternalCall(name, args) => {
                let f = self
                    .contract
                    .functions
                    .iter()
                    .find(|f| &f.name == name)
                    .ok_or_else(|| SemaError(format!("unknown function `{name}`")))?;
                if f.params.len() != args.len() {
                    return err(format!(
                        "call to `{name}`: expected {} args, got {}",
                        f.params.len(),
                        args.len()
                    ));
                }
                for (p, a) in f.params.iter().zip(args) {
                    let t = self.infer(a, scope)?;
                    self.require_assignable(&p.ty, &t, &p.name)?;
                }
                f.returns.clone().unwrap_or(Type::Bool) // void calls: dummy
            }
            Expr::ExternalCall {
                iface,
                addr,
                method,
                args,
            } => {
                if iface.is_empty() {
                    // `.transfer` sentinel should have been converted to a
                    // statement; reaching here means it was used as a value.
                    return err("transfer(...) cannot be used as an expression");
                }
                let i = self
                    .interfaces
                    .get(iface)
                    .ok_or_else(|| SemaError(format!("unknown interface `{iface}`")))?;
                let m = i
                    .methods
                    .iter()
                    .find(|m| &m.name == method)
                    .ok_or_else(|| {
                        SemaError(format!("interface `{iface}` has no method `{method}`"))
                    })?;
                let at = self.infer(addr, scope)?;
                self.require_assignable(&Type::Address, &at, "call target")?;
                if m.params.len() != args.len() {
                    return err(format!(
                        "call to `{iface}.{method}`: expected {} args, got {}",
                        m.params.len(),
                        args.len()
                    ));
                }
                for (pt, a) in m.params.iter().zip(args) {
                    if !pt.is_value_type() {
                        return err("external call arguments must be value types");
                    }
                    let t = self.infer(a, scope)?;
                    self.require_assignable(pt, &t, "external call argument")?;
                }
                m.returns.clone().unwrap_or(Type::Bool)
            }
            Expr::Cast(ty, inner) => {
                // Any single-word value casts to any single-word type.
                let t = self.infer(inner, scope)?;
                if !t.is_value_type() {
                    return err(format!("cannot cast {t:?}"));
                }
                ty.clone()
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyze_src(src: &str, name: &str) -> Result<AnalyzedContract, SemaError> {
        let p = parse(src).expect("parse");
        analyze(&p, name)
    }

    #[test]
    fn slots_assigned_in_order() {
        let a = analyze_src(
            "contract c { uint256 a; address[2] ps; mapping(address => uint256) m; bool z; }",
            "c",
        )
        .unwrap();
        let slots: Vec<u64> = a.contract.state.iter().map(|s| s.slot).collect();
        assert_eq!(slots, vec![0, 1, 3, 4], "array takes two slots");
    }

    #[test]
    fn selector_matches_solidity() {
        let a = analyze_src(
            "contract c { function transfer(address to, uint256 v) public { } }",
            "c",
        )
        .unwrap();
        assert_eq!(a.selector_of("transfer"), Some([0xa9, 0x05, 0x9c, 0xbb]));
    }

    #[test]
    fn private_functions_have_no_selector() {
        let a = analyze_src(
            "contract c { function f() public {} function g() private {} }",
            "c",
        )
        .unwrap();
        assert_eq!(a.selectors.len(), 1);
        assert!(a.selector_of("g").is_none());
    }

    #[test]
    fn ambiguous_cast_resolves_to_internal_call() {
        let a = analyze_src(
            "contract c { function sq(uint256 x) private returns (uint256) { return x * x; } \
             function f() public returns (uint256) { return sq(4); } }",
            "c",
        )
        .unwrap();
        match &a.contract.functions[1].body[0] {
            Stmt::Return(Some(Expr::InternalCall(n, args))) => {
                assert_eq!(n, "sq");
                assert_eq!(args.len(), 1);
            }
            other => panic!("not resolved: {other:?}"),
        }
    }

    #[test]
    fn interface_cast_stays_cast() {
        let src = "interface I { function m(bool x) external; } \
                   contract c { function f(address a) public { I(a).m(true); } }";
        let a = analyze_src(src, "c").unwrap();
        match &a.contract.functions[0].body[0] {
            Stmt::ExprStmt(Expr::ExternalCall { iface, .. }) => assert_eq!(iface, "I"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_recursion() {
        let e = analyze_src(
            "contract c { function f(uint256 x) private returns (uint256) { return f(x); } \
             function g() public { } }",
            "c",
        )
        .unwrap_err();
        assert!(e.0.contains("recursive"));
    }

    #[test]
    fn rejects_unknown_modifier() {
        let e = analyze_src("contract c { function f() public nope { } }", "c").unwrap_err();
        assert!(e.0.contains("undefined modifier"));
    }

    #[test]
    fn rejects_modifier_without_placeholder() {
        let e = analyze_src(
            "contract c { modifier m { require(true); } function f() public m { } }",
            "c",
        )
        .unwrap_err();
        assert!(e.0.contains("exactly one"));
    }

    #[test]
    fn rejects_type_mismatch() {
        let e = analyze_src(
            "contract c { bool b; function f() public { b = 1 + 2; } }",
            "c",
        )
        .unwrap_err();
        assert!(e.0.contains("type mismatch"));
    }

    #[test]
    fn rejects_unknown_identifier() {
        let e = analyze_src("contract c { function f() public { ghost = 1; } }", "c").unwrap_err();
        assert!(e.0.contains("unknown variable"));
    }

    #[test]
    fn rejects_keccak_of_non_bytes() {
        let e = analyze_src(
            "contract c { function f() public { bytes32 h = keccak256(5); } }",
            "c",
        )
        .unwrap_err();
        assert!(e.0.contains("keccak256 expects"));
    }

    #[test]
    fn mapping_key_type_enforced() {
        let e = analyze_src(
            "contract c { mapping(address => uint256) m; function f() public { m[true] = 1; } }",
            "c",
        )
        .unwrap_err();
        assert!(e.0.contains("mapping key"));
    }

    #[test]
    fn accepts_the_paper_shaped_contract() {
        let src = r#"
            interface OnChainLike {
                function enforceDisputeResolution(bool winner) external;
            }
            contract offChain {
                address onchainAddr;
                function reveal() private returns (bool) {
                    return true;
                }
                function returnDisputeResolution(address addr) public {
                    OnChainLike(addr).enforceDisputeResolution(reveal());
                }
            }
        "#;
        let a = analyze_src(src, "offChain").unwrap();
        assert_eq!(a.selectors.len(), 1);
        assert_eq!(
            a.selectors[0].2,
            "returnDisputeResolution(address)".to_string()
        );
    }
}
