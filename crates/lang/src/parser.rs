//! Recursive-descent parser for MiniSol.

use crate::ast::*;
use crate::token::{lex, LexError, Tok, Token};
use sc_primitives::U256;
use std::fmt;

/// Parse errors with positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// Parses MiniSol source into a [`Program`].
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let t = self.peek();
        Err(ParseError {
            message: message.into(),
            line: t.line,
            col: t.col,
        })
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.peek().is_punct(p) {
            self.advance();
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found `{}`", self.peek().tok))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.peek().is_kw(kw) {
            self.advance();
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found `{}`", self.peek().tok))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek().is_punct(p) {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Parses one of the confidential-value builtins after its name
    /// token has been consumed. Out of line from `primary` so the
    /// recursive expression path keeps a small stack frame.
    fn confidential_builtin(&mut self, name: &str) -> Result<Expr, ParseError> {
        match name {
            "hash2" => {
                let mut args = self.builtin_args(2)?;
                let b = args.pop().expect("arity checked");
                let a = args.pop().expect("arity checked");
                Ok(Expr::Hash2(Box::new(a), Box::new(b)))
            }
            "commit_verify" => {
                let mut args = self.builtin_args(4)?;
                let r = args.pop().expect("arity checked");
                let v = args.pop().expect("arity checked");
                let cy = args.pop().expect("arity checked");
                let cx = args.pop().expect("arity checked");
                Ok(Expr::CommitVerify(
                    Box::new(cx),
                    Box::new(cy),
                    Box::new(v),
                    Box::new(r),
                ))
            }
            "commit_add_check" => {
                let args = self.builtin_args(6)?;
                let arr: [Expr; 6] = args.try_into().expect("arity checked");
                Ok(Expr::CommitAddCheck(Box::new(arr)))
            }
            "nullifier" => {
                let mut args = self.builtin_args(1)?;
                let e = args.pop().expect("arity checked");
                Ok(Expr::Nullifier(Box::new(e)))
            }
            "range_verify" => {
                let mut args = self.builtin_args(4)?;
                let proof = args.pop().expect("arity checked");
                let bits = args.pop().expect("arity checked");
                let cy = args.pop().expect("arity checked");
                let cx = args.pop().expect("arity checked");
                Ok(Expr::RangeVerify(
                    Box::new(cx),
                    Box::new(cy),
                    Box::new(bits),
                    Box::new(proof),
                ))
            }
            other => self.err(format!("unknown builtin `{other}`")),
        }
    }

    /// Parses `(e1, …, eN)` for a fixed-arity builtin.
    fn builtin_args(&mut self, arity: usize) -> Result<Vec<Expr>, ParseError> {
        self.expect_punct("(")?;
        let mut args = Vec::with_capacity(arity);
        for i in 0..arity {
            if i > 0 {
                self.expect_punct(",")?;
            }
            args.push(self.expr()?);
        }
        self.expect_punct(")")?;
        Ok(args)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    // ---- grammar ----

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        loop {
            if matches!(self.peek().tok, Tok::Eof) {
                break;
            }
            if self.peek().is_kw("interface") {
                prog.interfaces.push(self.interface()?);
            } else if self.peek().is_kw("contract") {
                prog.contracts.push(self.contract()?);
            } else {
                return self.err("expected `contract` or `interface`");
            }
        }
        Ok(prog)
    }

    fn interface(&mut self) -> Result<Interface, ParseError> {
        self.expect_kw("interface")?;
        let name = self.expect_ident()?;
        self.expect_punct("{")?;
        let mut methods = Vec::new();
        while !self.eat_punct("}") {
            self.expect_kw("function")?;
            let mname = self.expect_ident()?;
            self.expect_punct("(")?;
            let mut params = Vec::new();
            if !self.peek().is_punct(")") {
                loop {
                    let ty = self.parse_type()?;
                    // Optional data-location and name.
                    self.eat_kw("memory");
                    self.eat_kw("calldata");
                    if let Tok::Ident(_) = self.peek().tok {
                        // Parameter names in interfaces are optional noise.
                        if !self.peek().is_kw("memory") {
                            self.advance();
                        }
                    }
                    params.push(ty);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
            }
            self.expect_punct(")")?;
            // Qualifiers: external/public/payable in any order.
            while self.eat_kw("external") || self.eat_kw("public") || self.eat_kw("payable") {}
            let returns = if self.eat_kw("returns") {
                self.expect_punct("(")?;
                let t = self.parse_type()?;
                self.expect_punct(")")?;
                Some(t)
            } else {
                None
            };
            self.expect_punct(";")?;
            methods.push(IfaceMethod {
                name: mname,
                params,
                returns,
            });
        }
        Ok(Interface { name, methods })
    }

    fn contract(&mut self) -> Result<Contract, ParseError> {
        self.expect_kw("contract")?;
        let name = self.expect_ident()?;
        self.expect_punct("{")?;
        let mut c = Contract {
            name,
            ..Default::default()
        };
        while !self.eat_punct("}") {
            if self.peek().is_kw("constructor") {
                self.advance();
                let params = self.param_list()?;
                let mut payable = false;
                while self.eat_kw("public") || self.eat_kw("internal") || {
                    if self.peek().is_kw("payable") {
                        payable = true;
                        self.advance();
                        true
                    } else {
                        false
                    }
                } {}
                let body = self.block()?;
                if c.constructor.is_some() {
                    return self.err("duplicate constructor");
                }
                c.constructor = Some((params, payable, body));
            } else if self.peek().is_kw("modifier") {
                self.advance();
                let mname = self.expect_ident()?;
                if self.peek().is_punct("(") {
                    let params = self.param_list()?;
                    if !params.is_empty() {
                        return self.err("modifier parameters are not supported");
                    }
                }
                let body = self.block()?;
                c.modifiers.push(Modifier { name: mname, body });
            } else if self.peek().is_kw("function") {
                c.functions.push(self.function()?);
            } else if self.peek().is_kw("event") {
                self.advance();
                let ename = self.expect_ident()?;
                let params = self.param_list()?;
                self.expect_punct(";")?;
                c.events.push(Event {
                    name: ename,
                    params,
                });
            } else {
                // State variable: `type [public] name;`
                let ty = self.parse_type()?;
                self.eat_kw("public");
                self.eat_kw("internal");
                self.eat_kw("private");
                let vname = self.expect_ident()?;
                self.expect_punct(";")?;
                c.state.push(StateVar {
                    name: vname,
                    ty,
                    slot: 0, // assigned by sema
                });
            }
        }
        Ok(c)
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        self.expect_kw("function")?;
        let name = self.expect_ident()?;
        let params = self.param_list()?;
        let mut visibility = Visibility::Public;
        let mut payable = false;
        let mut modifiers = Vec::new();
        let mut returns = None;
        loop {
            if self.eat_kw("public") {
                visibility = Visibility::Public;
            } else if self.eat_kw("external") {
                visibility = Visibility::External;
            } else if self.eat_kw("private") || self.eat_kw("internal") {
                visibility = Visibility::Private;
            } else if self.eat_kw("payable") {
                payable = true;
            } else if self.eat_kw("view") || self.eat_kw("pure") || self.eat_kw("constant") {
                // Mutability annotations are accepted and ignored.
            } else if self.eat_kw("returns") {
                self.expect_punct("(")?;
                let t = self.parse_type()?;
                self.eat_kw("memory");
                self.expect_punct(")")?;
                returns = Some(t);
            } else if let Tok::Ident(m) = &self.peek().tok {
                let m = m.clone();
                self.advance();
                // Allow `mod()` with empty parens.
                if self.eat_punct("(") {
                    self.expect_punct(")")?;
                }
                modifiers.push(m);
            } else {
                break;
            }
        }
        let body = self.block()?;
        Ok(Function {
            name,
            params,
            visibility,
            payable,
            modifiers,
            returns,
            body,
        })
    }

    fn param_list(&mut self) -> Result<Vec<Param>, ParseError> {
        self.expect_punct("(")?;
        let mut out = Vec::new();
        if !self.peek().is_punct(")") {
            loop {
                let ty = self.parse_type()?;
                self.eat_kw("memory");
                self.eat_kw("calldata");
                let name = self.expect_ident()?;
                out.push(Param { ty, name });
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        Ok(out)
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let base = self.expect_ident()?;
        let mut ty = match base.as_str() {
            "uint256" | "uint" => Type::Uint256,
            "uint8" => Type::Uint8,
            "bool" => Type::Bool,
            "address" => Type::Address,
            "bytes32" => Type::Bytes32,
            "bytes" => Type::Bytes,
            "mapping" => {
                self.expect_punct("(")?;
                let k = self.parse_type()?;
                self.expect_punct("=>")?;
                let v = self.parse_type()?;
                self.expect_punct(")")?;
                Type::Mapping(Box::new(k), Box::new(v))
            }
            other => Type::Interface(other.to_string()),
        };
        while self.peek().is_punct("[") {
            self.advance();
            let n = match &self.peek().tok {
                Tok::Number(s) => {
                    let s = s.clone();
                    self.advance();
                    s.parse::<u64>()
                        .map_err(|_| ())
                        .or_else(|_| self.err::<u64>("bad array length").map(|_| 0))?
                }
                _ => return self.err("dynamic arrays are not supported"),
            };
            self.expect_punct("]")?;
            ty = Type::FixedArray(Box::new(ty), n);
        }
        Ok(ty)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut out = Vec::new();
        while !self.eat_punct("}") {
            out.extend(self.statement()?);
        }
        Ok(out)
    }

    /// Parses one statement; may expand to several (for-desugaring).
    fn statement(&mut self) -> Result<Vec<Stmt>, ParseError> {
        // `_;` placeholder
        if self.peek().is_kw("_") {
            self.advance();
            self.expect_punct(";")?;
            return Ok(vec![Stmt::Placeholder]);
        }
        if self.eat_kw("require") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            if self.eat_punct(",") {
                // Discard the reason string.
                match &self.peek().tok {
                    Tok::Str(_) => {
                        self.advance();
                    }
                    _ => return self.err("expected string reason"),
                }
            }
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(vec![Stmt::Require(cond)]);
        }
        if self.eat_kw("revert") {
            if self.eat_punct("(") {
                if let Tok::Str(_) = self.peek().tok {
                    self.advance();
                }
                self.expect_punct(")")?;
            }
            self.expect_punct(";")?;
            return Ok(vec![Stmt::Revert]);
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_branch = self.branch_body()?;
            let else_branch = if self.eat_kw("else") {
                if self.peek().is_kw("if") {
                    self.statement()?
                } else {
                    self.branch_body()?
                }
            } else {
                Vec::new()
            };
            return Ok(vec![Stmt::If(cond, then_branch, else_branch)]);
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.branch_body()?;
            return Ok(vec![Stmt::While(cond, body)]);
        }
        if self.eat_kw("for") {
            // for (uint256 i = 0; i < n; i = i + 1) { body }
            self.expect_punct("(")?;
            let init = self.simple_statement()?;
            let cond = self.expr()?;
            self.expect_punct(";")?;
            let post = self.for_post()?;
            self.expect_punct(")")?;
            let mut body = self.branch_body()?;
            body.push(post);
            let mut out = init;
            out.push(Stmt::While(cond, body));
            return Ok(out);
        }
        if self.eat_kw("emit") {
            let name = self.expect_ident()?;
            self.expect_punct("(")?;
            let mut args = Vec::new();
            if !self.peek().is_punct(")") {
                loop {
                    args.push(self.expr()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
            }
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(vec![Stmt::Emit(name, args)]);
        }
        if self.eat_kw("return") {
            if self.eat_punct(";") {
                return Ok(vec![Stmt::Return(None)]);
            }
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(vec![Stmt::Return(Some(e))]);
        }
        let stmts = self.simple_statement()?;
        Ok(stmts)
    }

    fn branch_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if self.peek().is_punct("{") {
            self.block()
        } else {
            self.statement()
        }
    }

    /// `i = i + 1` or `i++`/`i += k` inside a for-header (no semicolon).
    fn for_post(&mut self) -> Result<Stmt, ParseError> {
        let name = self.expect_ident()?;
        if self.eat_punct("++") {
            return Ok(Stmt::Assign(
                LValue::Ident(name.clone()),
                Expr::Bin(
                    BinOp::Add,
                    Box::new(Expr::Ident(name)),
                    Box::new(Expr::Number(U256::ONE)),
                ),
            ));
        }
        if self.eat_punct("+=") {
            let rhs = self.expr()?;
            return Ok(Stmt::Assign(
                LValue::Ident(name.clone()),
                Expr::Bin(BinOp::Add, Box::new(Expr::Ident(name)), Box::new(rhs)),
            ));
        }
        self.expect_punct("=")?;
        let rhs = self.expr()?;
        Ok(Stmt::Assign(LValue::Ident(name), rhs))
    }

    /// Declaration, assignment or expression statement (consumes `;`).
    fn simple_statement(&mut self) -> Result<Vec<Stmt>, ParseError> {
        // Declaration: starts with a type keyword.
        if let Tok::Ident(id) = &self.peek().tok {
            let is_type_kw = matches!(
                id.as_str(),
                "uint256" | "uint" | "uint8" | "bool" | "address" | "bytes32" | "bytes"
            );
            if is_type_kw
                && matches!(&self.peek2().tok, Tok::Ident(kw2) if kw2 != "(")
                && !self.peek2().is_punct("(")
            {
                let ty = self.parse_type()?;
                self.eat_kw("memory");
                let name = self.expect_ident()?;
                self.expect_punct("=")?;
                let init = self.expr()?;
                self.expect_punct(";")?;
                return Ok(vec![Stmt::VarDecl(Param { ty, name }, init)]);
            }
        }
        // Otherwise parse an expression, then look for `=` / `.transfer`.
        let e = self.expr()?;
        if self.eat_punct("=") {
            let lv = match e {
                Expr::Ident(n) => LValue::Ident(n),
                Expr::Index(base, idx) => LValue::Index(base, idx),
                _ => return self.err("invalid assignment target"),
            };
            let rhs = self.expr()?;
            self.expect_punct(";")?;
            return Ok(vec![Stmt::Assign(lv, rhs)]);
        }
        if self.eat_punct("+=") {
            let (lv, base) = match e.clone() {
                Expr::Ident(n) => (LValue::Ident(n.clone()), Expr::Ident(n)),
                Expr::Index(b, i) => (LValue::Index(b.clone(), i.clone()), Expr::Index(b, i)),
                _ => return self.err("invalid assignment target"),
            };
            let rhs = self.expr()?;
            self.expect_punct(";")?;
            return Ok(vec![Stmt::Assign(
                lv,
                Expr::Bin(BinOp::Add, Box::new(base), Box::new(rhs)),
            )]);
        }
        if self.eat_punct("-=") {
            let (lv, base) = match e.clone() {
                Expr::Ident(n) => (LValue::Ident(n.clone()), Expr::Ident(n)),
                Expr::Index(b, i) => (LValue::Index(b.clone(), i.clone()), Expr::Index(b, i)),
                _ => return self.err("invalid assignment target"),
            };
            let rhs = self.expr()?;
            self.expect_punct(";")?;
            return Ok(vec![Stmt::Assign(
                lv,
                Expr::Bin(BinOp::Sub, Box::new(base), Box::new(rhs)),
            )]);
        }
        self.expect_punct(";")?;
        // `x.transfer(v)` parses as Expr::Transfer sentinel via expr();
        // expr() encodes it as ExternalCall with the reserved name — see
        // postfix(). Here we just wrap whatever came out.
        if let Expr::ExternalCall {
            iface,
            addr,
            method,
            args,
        } = &e
        {
            if iface.is_empty() && method == "transfer" && args.len() == 1 {
                return Ok(vec![Stmt::Transfer(*addr.clone(), args[0].clone())]);
            }
            let _ = (iface, addr, method, args);
        }
        Ok(vec![Stmt::ExprStmt(e)])
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_punct("&&") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        for (p, op) in [
            ("==", BinOp::Eq),
            ("!=", BinOp::Ne),
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ] {
            if self.eat_punct(p) {
                let rhs = self.add_expr()?;
                return Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat_punct("+") {
                let rhs = self.mul_expr()?;
                lhs = Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.eat_punct("-") {
                let rhs = self.mul_expr()?;
                lhs = Expr::Bin(BinOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.eat_punct("*") {
                let rhs = self.unary_expr()?;
                lhs = Expr::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs));
            } else if self.eat_punct("/") {
                let rhs = self.unary_expr()?;
                lhs = Expr::Bin(BinOp::Div, Box::new(lhs), Box::new(rhs));
            } else if self.eat_punct("%") {
                let rhs = self.unary_expr()?;
                lhs = Expr::Bin(BinOp::Mod, Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("!") {
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        if self.eat_punct("-") {
            return Ok(Expr::Neg(Box::new(self.unary_expr()?)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if self.peek().is_punct(".") {
                self.advance();
                let member = self.expect_ident()?;
                match member.as_str() {
                    "balance" => e = Expr::Balance(Box::new(e)),
                    "length" => e = Expr::ArrayLength(Box::new(e)),
                    "transfer" => {
                        self.expect_punct("(")?;
                        let amount = self.expr()?;
                        self.expect_punct(")")?;
                        // Encoded as a sentinel external call; the
                        // statement layer turns it into Stmt::Transfer.
                        e = Expr::ExternalCall {
                            iface: String::new(),
                            addr: Box::new(e),
                            method: "transfer".into(),
                            args: vec![amount],
                        };
                    }
                    m => {
                        // Interface method call: Iface(addr).m(args)
                        self.expect_punct("(")?;
                        let mut args = Vec::new();
                        if !self.peek().is_punct(")") {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat_punct(",") {
                                    break;
                                }
                            }
                        }
                        self.expect_punct(")")?;
                        let (iface, addr) = match e {
                            Expr::Cast(Type::Interface(name), inner) => (name, inner),
                            _ => {
                                return self.err(format!(
                                    "method `{m}` requires an interface cast like Iface(addr)"
                                ))
                            }
                        };
                        e = Expr::ExternalCall {
                            iface,
                            addr,
                            method: m.to_string(),
                            args,
                        };
                    }
                }
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let t = self.peek().clone();
        match &t.tok {
            Tok::Number(s) => {
                self.advance();
                let mut v = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X"))
                {
                    U256::from_hex_str(hex).map_err(|e| ParseError {
                        message: format!("bad hex literal: {e}"),
                        line: t.line,
                        col: t.col,
                    })?
                } else {
                    U256::from_dec_str(s).map_err(|e| ParseError {
                        message: format!("bad number literal: {e}"),
                        line: t.line,
                        col: t.col,
                    })?
                };
                // Unit suffixes.
                if self.eat_kw("ether") {
                    v = v.wrapping_mul(U256::from_u128(sc_primitives::ETHER));
                } else if self.eat_kw("gwei") {
                    v = v.wrapping_mul(U256::from_u64(1_000_000_000));
                } else if self.eat_kw("wei") || self.eat_kw("seconds") {
                    // already in base units
                } else if self.eat_kw("minutes") {
                    v = v.wrapping_mul(U256::from_u64(60));
                } else if self.eat_kw("hours") {
                    v = v.wrapping_mul(U256::from_u64(3600));
                } else if self.eat_kw("days") {
                    v = v.wrapping_mul(U256::from_u64(86400));
                }
                Ok(Expr::Number(v))
            }
            Tok::Ident(id) => match id.as_str() {
                "true" => {
                    self.advance();
                    Ok(Expr::Bool(true))
                }
                "false" => {
                    self.advance();
                    Ok(Expr::Bool(false))
                }
                "msg" => {
                    self.advance();
                    self.expect_punct(".")?;
                    let field = self.expect_ident()?;
                    match field.as_str() {
                        "sender" => Ok(Expr::MsgSender),
                        "value" => Ok(Expr::MsgValue),
                        other => self.err(format!("unknown msg field `{other}`")),
                    }
                }
                "block" => {
                    self.advance();
                    self.expect_punct(".")?;
                    let field = self.expect_ident()?;
                    match field.as_str() {
                        "timestamp" => Ok(Expr::BlockTimestamp),
                        "number" => Ok(Expr::BlockNumber),
                        other => self.err(format!("unknown block field `{other}`")),
                    }
                }
                "now" => {
                    self.advance();
                    Ok(Expr::BlockTimestamp)
                }
                "this" => {
                    self.advance();
                    Ok(Expr::This)
                }
                "keccak256" => {
                    self.advance();
                    self.expect_punct("(")?;
                    let e = self.expr()?;
                    self.expect_punct(")")?;
                    Ok(Expr::Keccak(Box::new(e)))
                }
                "ecrecover" => {
                    self.advance();
                    self.expect_punct("(")?;
                    let h = self.expr()?;
                    self.expect_punct(",")?;
                    let v = self.expr()?;
                    self.expect_punct(",")?;
                    let r = self.expr()?;
                    self.expect_punct(",")?;
                    let s = self.expr()?;
                    self.expect_punct(")")?;
                    Ok(Expr::EcRecover(
                        Box::new(h),
                        Box::new(v),
                        Box::new(r),
                        Box::new(s),
                    ))
                }
                "create" => {
                    self.advance();
                    self.expect_punct("(")?;
                    let code = self.expr()?;
                    self.expect_punct(")")?;
                    Ok(Expr::Create(Box::new(code)))
                }
                "hash2" | "commit_verify" | "commit_add_check" | "nullifier" | "range_verify" => {
                    // Parsed out of line to keep this (deeply recursive)
                    // frame small.
                    let name = id.clone();
                    self.advance();
                    self.confidential_builtin(&name)
                }
                "address" | "uint256" | "uint" | "uint8" | "bool" | "bytes32" => {
                    let ty = match id.as_str() {
                        "address" => Type::Address,
                        "uint8" => Type::Uint8,
                        "bool" => Type::Bool,
                        "bytes32" => Type::Bytes32,
                        _ => Type::Uint256,
                    };
                    self.advance();
                    self.expect_punct("(")?;
                    let inner = self.expr()?;
                    self.expect_punct(")")?;
                    Ok(Expr::Cast(ty, Box::new(inner)))
                }
                name => {
                    let name = name.to_string();
                    self.advance();
                    if self.peek().is_punct("(") {
                        self.advance();
                        let mut args = Vec::new();
                        if !self.peek().is_punct(")") {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat_punct(",") {
                                    break;
                                }
                            }
                        }
                        self.expect_punct(")")?;
                        // Could be an interface cast `Iface(addr)` (one
                        // arg, capitalized by convention) or an internal
                        // call. Sema disambiguates; the parser encodes a
                        // single-argument call to an unknown name as a
                        // cast candidate.
                        if args.len() == 1 {
                            return Ok(Expr::Cast(
                                Type::Interface(name),
                                Box::new(args.pop_expr()),
                            ));
                        }
                        return Ok(Expr::InternalCall(name, args));
                    }
                    Ok(Expr::Ident(name))
                }
            },
            Tok::Punct("(") => {
                self.advance();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => self.err(format!("unexpected token `{other}` in expression")),
        }
    }
}

trait PopExpr {
    fn pop_expr(self) -> Expr;
}

impl PopExpr for Vec<Expr> {
    fn pop_expr(mut self) -> Expr {
        self.pop().expect("len checked by caller")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_contract() {
        let p = parse("contract c { uint256 x; function f() public { x = 1; } }").unwrap();
        assert_eq!(p.contracts.len(), 1);
        let c = &p.contracts[0];
        assert_eq!(c.name, "c");
        assert_eq!(c.state.len(), 1);
        assert_eq!(c.functions.len(), 1);
    }

    #[test]
    fn parses_interface() {
        let p =
            parse("interface OnChain { function enforceDisputeResolution(bool winner) external; }")
                .unwrap();
        let i = &p.interfaces[0];
        assert_eq!(i.methods[0].signature(), "enforceDisputeResolution(bool)");
    }

    #[test]
    fn parses_mapping_and_fixed_array() {
        let p = parse(
            "contract c { mapping(address => uint256) accountBalance; address[2] participant; }",
        )
        .unwrap();
        let c = &p.contracts[0];
        assert_eq!(
            c.state[0].ty,
            Type::Mapping(Box::new(Type::Address), Box::new(Type::Uint256))
        );
        assert_eq!(c.state[1].ty, Type::FixedArray(Box::new(Type::Address), 2));
    }

    #[test]
    fn parses_modifier_with_placeholder() {
        let p = parse(
            "contract c { uint256 T1; modifier beforeT1 { require(block.timestamp < T1); _; } }",
        )
        .unwrap();
        let m = &p.contracts[0].modifiers[0];
        assert_eq!(m.name, "beforeT1");
        assert!(matches!(m.body[1], Stmt::Placeholder));
    }

    #[test]
    fn parses_function_with_modifiers_and_payable() {
        let p = parse("contract c { function deposit() public payable beforeT1 certified { } }")
            .unwrap();
        let f = &p.contracts[0].functions[0];
        assert!(f.payable);
        assert_eq!(f.modifiers, vec!["beforeT1", "certified"]);
        assert_eq!(f.signature(), "deposit()");
    }

    #[test]
    fn signature_with_bytes_and_sigs() {
        let p = parse(
            "contract c { function deployVerifiedInstance(bytes memory bytecode, uint8 va, \
             bytes32 ra, bytes32 sa, uint8 vb, bytes32 rb, bytes32 sb) public { } }",
        )
        .unwrap();
        assert_eq!(
            p.contracts[0].functions[0].signature(),
            "deployVerifiedInstance(bytes,uint8,bytes32,bytes32,uint8,bytes32,bytes32)"
        );
    }

    #[test]
    fn parses_ether_units() {
        let p =
            parse("contract c { function f() public { require(msg.value == 1 ether); } }").unwrap();
        let f = &p.contracts[0].functions[0];
        match &f.body[0] {
            Stmt::Require(Expr::Bin(BinOp::Eq, _, rhs)) => {
                assert_eq!(**rhs, Expr::Number(sc_primitives::ether(1)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_if_else_and_transfer() {
        let src = r#"
            contract c {
                address[2] participant;
                function f(bool winner) public {
                    if (winner == true) {
                        participant[1].transfer(2 ether);
                    } else {
                        participant[0].transfer(2 ether);
                    }
                }
            }
        "#;
        let p = parse(src).unwrap();
        let f = &p.contracts[0].functions[0];
        match &f.body[0] {
            Stmt::If(_, then_b, else_b) => {
                assert!(matches!(then_b[0], Stmt::Transfer(_, _)));
                assert!(matches!(else_b[0], Stmt::Transfer(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_external_interface_call() {
        let src = r#"
            contract c {
                function g(address addr) public {
                    OnChain(addr).enforceDisputeResolution(true);
                }
            }
        "#;
        let p = parse(src).unwrap();
        match &p.contracts[0].functions[0].body[0] {
            Stmt::ExprStmt(Expr::ExternalCall {
                iface,
                method,
                args,
                ..
            }) => {
                assert_eq!(iface, "OnChain");
                assert_eq!(method, "enforceDisputeResolution");
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_while_and_for() {
        let src = r#"
            contract c {
                function f(uint256 n) public returns (uint256) {
                    uint256 acc = 0;
                    for (uint256 i = 0; i < n; i = i + 1) {
                        acc = acc + i;
                    }
                    while (acc > 100) { acc = acc - 100; }
                    return acc;
                }
            }
        "#;
        let p = parse(src).unwrap();
        let f = &p.contracts[0].functions[0];
        // VarDecl(acc), VarDecl(i), While(for), While, Return
        assert_eq!(f.body.len(), 5);
        assert!(matches!(f.body[2], Stmt::While(_, _)));
    }

    #[test]
    fn parses_builtins() {
        let src = r#"
            contract c {
                function f(bytes memory code, uint8 v, bytes32 r, bytes32 s) public {
                    bytes32 h = keccak256(code);
                    address a = ecrecover(h, v, r, s);
                    address inst = create(code);
                    require(a != address(0) && inst != address(0));
                }
            }
        "#;
        let p = parse(src).unwrap();
        let f = &p.contracts[0].functions[0];
        assert!(matches!(&f.body[0], Stmt::VarDecl(_, Expr::Keccak(_))));
        assert!(matches!(&f.body[1], Stmt::VarDecl(_, Expr::EcRecover(..))));
        assert!(matches!(&f.body[2], Stmt::VarDecl(_, Expr::Create(_))));
    }

    #[test]
    fn parses_constructor() {
        let src = "contract c { uint256 t; constructor(uint256 x) public { t = x; } }";
        let p = parse(src).unwrap();
        let (params, payable, body) = p.contracts[0].constructor.as_ref().unwrap();
        assert_eq!(params.len(), 1);
        assert!(!payable);
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("contract c { function }").unwrap_err();
        assert!(err.line >= 1);
        assert!(err.message.contains("identifier"));
    }

    #[test]
    fn compound_assignment_desugars() {
        let p = parse("contract c { uint256 x; function f() public { x += 2; x -= 1; } }").unwrap();
        let f = &p.contracts[0].functions[0];
        assert!(matches!(
            &f.body[0],
            Stmt::Assign(LValue::Ident(_), Expr::Bin(BinOp::Add, _, _))
        ));
        assert!(matches!(
            &f.body[1],
            Stmt::Assign(LValue::Ident(_), Expr::Bin(BinOp::Sub, _, _))
        ));
    }
}
