//! EVM code generation for MiniSol.
//!
//! Conventions (Solidity-compatible where it matters):
//!
//! * Memory: `0x00..0x40` scratch (mapping-slot hashing), `0x40` free
//!   memory pointer, locals at fixed offsets from `0x80`, dynamic data
//!   (decoded `bytes`, call-encoding buffers) allocated via the FMP.
//! * Every expression leaves exactly one word on the stack; statements
//!   are stack-neutral.
//! * Internal calls are inlined (sema rejects recursion); modifiers are
//!   expanded around bodies by substituting the `_;` placeholder.
//! * Dispatch: selector from `calldataload(0) >> 224`, one `EQ`+`JUMPI`
//!   per public function, fallback reverts.
//! * Constructor arguments are ABI-appended to the initcode and read via
//!   `CODECOPY(codesize - 32n)`, as solc does.

use crate::ast::*;
use crate::sema::{AnalyzedContract, SemaError};
use sc_crypto::keccak::selector;
use sc_evm::{Asm, Op};
use sc_primitives::U256;
use std::collections::HashMap;

/// Code generation errors (post-sema internal inconsistencies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenError(pub String);

impl std::fmt::Display for CodegenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codegen error: {}", self.0)
    }
}

impl std::error::Error for CodegenError {}

impl From<SemaError> for CodegenError {
    fn from(e: SemaError) -> Self {
        CodegenError(e.0)
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, CodegenError> {
    Err(CodegenError(msg.into()))
}

const ADDR_MASK_HEX: &str = "ffffffffffffffffffffffffffffffffffffffff";

/// Result of compiling a contract: runtime code plus the constructor
/// prefix needed to build initcode.
#[derive(Debug, Clone)]
pub struct CompiledContract {
    /// Contract name.
    pub name: String,
    /// Deployed (runtime) bytecode.
    pub runtime: Vec<u8>,
    /// Initcode without constructor arguments (append ABI-encoded args).
    pub init_prefix: Vec<u8>,
    /// Constructor parameter types, for arg validation.
    pub constructor_params: Vec<Type>,
    /// The analysis this was generated from.
    pub analyzed: AnalyzedContract,
}

impl CompiledContract {
    /// Builds deployable initcode for the given constructor arguments.
    pub fn initcode(&self, args: &[sc_primitives::abi::Value]) -> Result<Vec<u8>, CodegenError> {
        if args.len() != self.constructor_params.len() {
            return err(format!(
                "constructor expects {} args, got {}",
                self.constructor_params.len(),
                args.len()
            ));
        }
        for (ty, v) in self.constructor_params.iter().zip(args) {
            use sc_primitives::abi::Value as V;
            let ok = matches!(
                (ty, v),
                (Type::Uint256 | Type::Uint8, V::Uint(_))
                    | (Type::Bool, V::Bool(_))
                    | (Type::Address, V::Address(_))
                    | (Type::Bytes32, V::Bytes32(_))
            );
            if !ok {
                return err(format!("constructor arg type mismatch for {ty:?}"));
            }
        }
        let mut code = self.init_prefix.clone();
        code.extend_from_slice(&sc_primitives::abi::encode(args));
        Ok(code)
    }

    /// ABI-encodes a call to a public function by name.
    pub fn calldata(
        &self,
        function: &str,
        args: &[sc_primitives::abi::Value],
    ) -> Result<Vec<u8>, CodegenError> {
        let sel = self
            .analyzed
            .selector_of(function)
            .ok_or_else(|| CodegenError(format!("no public function `{function}`")))?;
        Ok(sc_primitives::abi::encode_call(sel, args))
    }
}

/// Compiles an analyzed contract to runtime bytecode + init prefix.
pub fn compile_contract(analyzed: &AnalyzedContract) -> Result<CompiledContract, CodegenError> {
    let gen = Gen {
        contract: &analyzed.contract,
        interfaces: &analyzed.interfaces,
    };
    let runtime = gen.runtime(analyzed)?;
    let (init_prefix, ctor_params) = gen.init_prefix(&runtime)?;
    Ok(CompiledContract {
        name: analyzed.contract.name.clone(),
        runtime,
        init_prefix,
        constructor_params: ctor_params,
        analyzed: analyzed.clone(),
    })
}

/// Expands a function's modifiers around its body (`_;` substitution).
fn expand_modifiers(f: &Function, contract: &Contract) -> Vec<Stmt> {
    let mut body = f.body.clone();
    for mname in f.modifiers.iter().rev() {
        let m = contract
            .modifiers
            .iter()
            .find(|m| &m.name == mname)
            .expect("sema validated modifiers");
        body = substitute_placeholder(&m.body, &body);
    }
    body
}

fn substitute_placeholder(template: &[Stmt], inner: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::new();
    for s in template {
        match s {
            Stmt::Placeholder => out.extend_from_slice(inner),
            Stmt::If(c, a, b) => out.push(Stmt::If(
                c.clone(),
                substitute_placeholder(a, inner),
                substitute_placeholder(b, inner),
            )),
            Stmt::While(c, b) => out.push(Stmt::While(c.clone(), substitute_placeholder(b, inner))),
            other => out.push(other.clone()),
        }
    }
    out
}

/// Per-compilation-unit state: local slots, scopes, return plumbing.
struct FnCtx {
    /// Lexically scoped name → (memory offset, type).
    scopes: Vec<HashMap<String, (u64, Type)>>,
    next_local: u64,
    /// Memory slot holding the pending return value (wrapper epilogue or
    /// inline-exit), when the unit returns a value.
    ret_slot: Option<u64>,
    /// Label to jump to on `return`.
    end_label: String,
}

impl FnCtx {
    fn new(end_label: String) -> FnCtx {
        FnCtx {
            scopes: vec![HashMap::new()],
            next_local: 0,
            ret_slot: None,
            end_label,
        }
    }

    fn alloc_local(&mut self, name: &str, ty: Type) -> u64 {
        let off = 0x80 + 32 * self.next_local;
        self.next_local += 1;
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_string(), (off, ty));
        off
    }

    fn alloc_anon(&mut self) -> u64 {
        let off = 0x80 + 32 * self.next_local;
        self.next_local += 1;
        off
    }

    fn lookup(&self, name: &str) -> Option<(u64, Type)> {
        for scope in self.scopes.iter().rev() {
            if let Some(v) = scope.get(name) {
                return Some(v.clone());
            }
        }
        None
    }

    fn fmp_init(&self) -> u64 {
        0x80 + 32 * self.next_local
    }
}

struct Gen<'a> {
    contract: &'a Contract,
    interfaces: &'a HashMap<String, Interface>,
}

impl Gen<'_> {
    fn state_var(&self, name: &str) -> Option<&StateVar> {
        self.contract.state.iter().find(|sv| sv.name == name)
    }

    // ---- top level ----

    fn runtime(&self, analyzed: &AnalyzedContract) -> Result<Vec<u8>, CodegenError> {
        let mut a = Asm::new();
        // Dispatcher.
        // calldatasize < 4 -> fallback revert
        a.push_u64(4).op(Op::CallDataSize).op(Op::Lt);
        // LT pops size(top? -- push order: 4 then CALLDATASIZE -> top is
        // size; computes size < 4)
        a.jumpi("revert");
        a.push_u64(0)
            .op(Op::CallDataLoad)
            .push_u64(0xe0)
            .op(Op::Shr);
        for (idx, sel, _sig) in &analyzed.selectors {
            let f = &self.contract.functions[*idx];
            a.op(Op::Dup1);
            a.push(U256::from_u64(u32::from_be_bytes(*sel) as u64));
            a.op(Op::Eq);
            a.jumpi(&format!("fn_{}", f.name));
        }
        a.jump("revert");

        // Function wrappers.
        for (idx, _sel, _sig) in &analyzed.selectors {
            let f = &self.contract.functions[*idx];
            let wrapper = self.function_wrapper(f)?;
            a.append(wrapper);
        }

        // Shared revert.
        a.label("revert");
        a.push_u64(0).push_u64(0).op(Op::Revert);

        a.assemble()
            .map_err(|e| CodegenError(format!("assembly failed: {e}")))
    }

    fn function_wrapper(&self, f: &Function) -> Result<Asm, CodegenError> {
        let end_label = format!("fn_{}_end", f.name);
        let mut ctx = FnCtx::new(end_label.clone());
        let mut body_asm = Asm::new();

        // Argument decoding (args become ordinary locals).
        for (i, p) in f.params.iter().enumerate() {
            let head = 4 + 32 * i as u64;
            match p.ty {
                Type::Bytes => {
                    let off = ctx.alloc_local(&p.name, p.ty.clone());
                    self.gen_decode_bytes_arg(&mut body_asm, head, off);
                }
                _ => {
                    body_asm.push_u64(head).op(Op::CallDataLoad);
                    self.gen_mask(&mut body_asm, &p.ty);
                    let off = ctx.alloc_local(&p.name, p.ty.clone());
                    body_asm.push_u64(off).op(Op::MStore);
                }
            }
        }

        if f.returns.is_some() {
            ctx.ret_slot = Some(ctx.alloc_anon());
        }
        let ret_slot = ctx.ret_slot;

        // Expanded body (modifiers substituted).
        let body = expand_modifiers(f, self.contract);
        ctx.scopes.push(HashMap::new());
        self.gen_stmts(&mut body_asm, &mut ctx, &body)?;
        ctx.scopes.pop();

        // Stitch: entry label, selector POP, payability, FMP init, body,
        // epilogue.
        let mut a = Asm::new();
        a.label(&format!("fn_{}", f.name));
        a.op(Op::Pop); // the dup'd selector
        if !f.payable {
            a.op(Op::CallValue);
            a.jumpi("revert");
        }
        a.push_u64(ctx.fmp_init()).push_u64(0x40).op(Op::MStore);
        a.append(body_asm);
        a.label(&end_label);
        match (f.returns.as_ref(), ret_slot) {
            (Some(_), Some(slot)) => {
                a.push_u64(slot).op(Op::MLoad);
                a.push_u64(0).op(Op::MStore);
                a.push_u64(32).push_u64(0).op(Op::Return);
            }
            _ => {
                a.op(Op::Stop);
            }
        }
        Ok(a)
    }

    fn init_prefix(&self, runtime: &[u8]) -> Result<(Vec<u8>, Vec<Type>), CodegenError> {
        let (params, payable, body) = match &self.contract.constructor {
            Some((p, pay, b)) => (p.clone(), *pay, b.clone()),
            None => (Vec::new(), false, Vec::new()),
        };
        for p in &params {
            if !p.ty.is_value_type() {
                return err("constructor parameters must be value types");
            }
        }

        let mut ctx = FnCtx::new("ctor_end".to_string());
        let mut body_asm = Asm::new();

        // Copy ABI-appended args from the end of the code into the first
        // param locals (which are contiguous from 0x80).
        let nargs = params.len() as u64;
        for p in &params {
            ctx.alloc_local(&p.name, p.ty.clone());
        }
        if nargs > 0 {
            // CODECOPY(0x80, codesize - 32n, 32n)
            body_asm.push_u64(32 * nargs); // len
            body_asm.push_u64(32 * nargs).op(Op::CodeSize).op(Op::Sub); // src = cs - 32n
            body_asm.push_u64(0x80); // dest
            body_asm.op(Op::CodeCopy);
        }

        ctx.scopes.push(HashMap::new());
        self.gen_stmts(&mut body_asm, &mut ctx, &body)?;
        ctx.scopes.pop();

        let mut a = Asm::new();
        if !payable {
            a.op(Op::CallValue);
            a.jumpi("revert");
        }
        a.push_u64(ctx.fmp_init()).push_u64(0x40).op(Op::MStore);
        a.append(body_asm);
        a.label("ctor_end");
        // Deploy: CODECOPY(0, runtime_start, len); RETURN(0, len)
        a.push_u64(runtime.len() as u64);
        a.push_label("runtime_start");
        a.push_u64(0);
        a.op(Op::CodeCopy);
        a.push_u64(runtime.len() as u64).push_u64(0).op(Op::Return);
        a.label("revert");
        a.push_u64(0).push_u64(0).op(Op::Revert);
        a.label("runtime_start");
        let mut code = a
            .assemble()
            .map_err(|e| CodegenError(format!("assembly failed: {e}")))?;
        code.pop(); // drop the marker JUMPDEST; runtime starts here
        code.extend_from_slice(runtime);
        Ok((code, params.into_iter().map(|p| p.ty).collect()))
    }

    // ---- statements ----

    fn gen_stmts(&self, a: &mut Asm, ctx: &mut FnCtx, stmts: &[Stmt]) -> Result<(), CodegenError> {
        for s in stmts {
            self.gen_stmt(a, ctx, s)?;
        }
        Ok(())
    }

    fn gen_stmt(&self, a: &mut Asm, ctx: &mut FnCtx, s: &Stmt) -> Result<(), CodegenError> {
        match s {
            Stmt::VarDecl(p, init) => {
                self.gen_expr(a, ctx, init)?;
                let off = ctx.alloc_local(&p.name, p.ty.clone());
                a.push_u64(off).op(Op::MStore);
                Ok(())
            }
            Stmt::Assign(lv, e) => match lv {
                LValue::Ident(name) => {
                    self.gen_expr(a, ctx, e)?;
                    if let Some((off, _)) = ctx.lookup(name) {
                        a.push_u64(off).op(Op::MStore);
                        Ok(())
                    } else if let Some(sv) = self.state_var(name) {
                        a.push_u64(sv.slot).op(Op::SStore);
                        Ok(())
                    } else {
                        err(format!("unknown assignment target `{name}`"))
                    }
                }
                LValue::Index(base, idx) => {
                    self.gen_expr(a, ctx, e)?; // [v]
                    self.gen_indexed_slot(a, ctx, base, idx)?; // [v, slot]
                    a.op(Op::SStore);
                    Ok(())
                }
            },
            Stmt::Require(cond) => {
                self.gen_expr(a, ctx, cond)?;
                a.op(Op::IsZero);
                a.jumpi("revert");
                Ok(())
            }
            Stmt::Revert => {
                a.push_u64(0).push_u64(0).op(Op::Revert);
                Ok(())
            }
            Stmt::If(cond, then_b, else_b) => {
                let else_l = a.fresh_label("else");
                let end_l = a.fresh_label("endif");
                self.gen_expr(a, ctx, cond)?;
                a.op(Op::IsZero);
                a.jumpi(&else_l);
                ctx.scopes.push(HashMap::new());
                self.gen_stmts(a, ctx, then_b)?;
                ctx.scopes.pop();
                a.jump(&end_l);
                a.label(&else_l);
                ctx.scopes.push(HashMap::new());
                self.gen_stmts(a, ctx, else_b)?;
                ctx.scopes.pop();
                a.label(&end_l);
                Ok(())
            }
            Stmt::While(cond, body) => {
                let start_l = a.fresh_label("while");
                let end_l = a.fresh_label("wend");
                a.label(&start_l);
                self.gen_expr(a, ctx, cond)?;
                a.op(Op::IsZero);
                a.jumpi(&end_l);
                ctx.scopes.push(HashMap::new());
                self.gen_stmts(a, ctx, body)?;
                ctx.scopes.pop();
                a.jump(&start_l);
                a.label(&end_l);
                Ok(())
            }
            Stmt::Return(opt) => {
                if let Some(e) = opt {
                    self.gen_expr(a, ctx, e)?;
                    let slot = ctx
                        .ret_slot
                        .ok_or_else(|| CodegenError("return value without slot".into()))?;
                    a.push_u64(slot).op(Op::MStore);
                }
                a.jump(&ctx.end_label.clone());
                Ok(())
            }
            Stmt::ExprStmt(e) => {
                let pushed = self.gen_expr_maybe_void(a, ctx, e)?;
                if pushed {
                    a.op(Op::Pop);
                }
                Ok(())
            }
            Stmt::Transfer(addr, amount) => {
                // CALL(gas=0, to, value, 0,0,0,0) — stipend covers EOAs and
                // cheap fallbacks, exactly like Solidity `transfer`.
                a.push_u64(0); // out_len
                a.push_u64(0); // out_off
                a.push_u64(0); // in_len
                a.push_u64(0); // in_off
                self.gen_expr(a, ctx, amount)?; // value
                self.gen_expr(a, ctx, addr)?; // to
                a.push_u64(0); // gas
                a.op(Op::Call);
                a.op(Op::IsZero);
                a.jumpi("revert");
                Ok(())
            }
            Stmt::Emit(name, args) => {
                let ev = self
                    .contract
                    .events
                    .iter()
                    .find(|e| &e.name == name)
                    .ok_or_else(|| CodegenError(format!("unknown event `{name}`")))?;
                let topic = sc_crypto::keccak256(ev.signature().as_bytes()).to_u256();
                let n = args.len() as u64;
                // Allocate a buffer for the ABI-encoded (static) args.
                a.push_u64(0x40).op(Op::MLoad); // [p]
                a.op(Op::Dup1).push_u64(32 * n.max(1)).op(Op::Add);
                a.push_u64(0x40).op(Op::MStore); // [p], FMP bumped
                for (k, arg) in args.iter().enumerate() {
                    self.gen_expr(a, ctx, arg)?; // [p, v]
                    a.op(Op::Dup2);
                    if k > 0 {
                        a.push_u64(32 * k as u64).op(Op::Add);
                    }
                    a.op(Op::MStore); // [p]
                }
                // LOG1 pops offset, len, topic.
                a.push(topic); // [p, topic]
                a.push_u64(32 * n); // [p, topic, len]
                a.op(Op::Dup3); // [p, topic, len, p=offset]
                                // Stack order for pops (offset top-first): need
                                // offset, len, topic from the top — currently topic is
                                // deepest. Rearrange: we have [p, topic, len, p].
                                // LOG1 pops offset=p, len, topic. Correct already.
                a.op(Op::Log1);
                a.op(Op::Pop); // drop the buffer pointer
                Ok(())
            }
            Stmt::Placeholder => err("placeholder outside modifier expansion"),
        }
    }

    // ---- expressions ----

    /// Generates an expression that must produce a value.
    fn gen_expr(&self, a: &mut Asm, ctx: &mut FnCtx, e: &Expr) -> Result<(), CodegenError> {
        let pushed = self.gen_expr_maybe_void(a, ctx, e)?;
        if !pushed {
            return err("void call used where a value is required");
        }
        Ok(())
    }

    /// Generates an expression; returns whether a value was pushed (void
    /// calls push nothing).
    fn gen_expr_maybe_void(
        &self,
        a: &mut Asm,
        ctx: &mut FnCtx,
        e: &Expr,
    ) -> Result<bool, CodegenError> {
        match e {
            Expr::Number(v) => {
                a.push(*v);
            }
            Expr::Bool(b) => {
                a.push_u64(*b as u64);
            }
            Expr::Ident(name) => {
                if let Some((off, _)) = ctx.lookup(name) {
                    a.push_u64(off).op(Op::MLoad);
                } else if let Some(sv) = self.state_var(name) {
                    if !sv.ty.is_value_type() {
                        return err(format!("`{name}` is not a value (index it instead)"));
                    }
                    a.push_u64(sv.slot).op(Op::SLoad);
                } else {
                    return err(format!("unknown identifier `{name}`"));
                }
            }
            Expr::MsgSender => {
                a.op(Op::Caller);
            }
            Expr::MsgValue => {
                a.op(Op::CallValue);
            }
            Expr::BlockTimestamp => {
                a.op(Op::Timestamp);
            }
            Expr::BlockNumber => {
                a.op(Op::Number);
            }
            Expr::This => {
                a.op(Op::Address);
            }
            Expr::Balance(inner) => {
                self.gen_expr(a, ctx, inner)?;
                a.op(Op::Balance);
            }
            Expr::ArrayLength(inner) => {
                let n = match self.expr_type(ctx, inner)? {
                    Type::FixedArray(_, n) => n,
                    other => return err(format!(".length on {other:?}")),
                };
                a.push_u64(n);
            }
            Expr::Index(base, idx) => {
                self.gen_indexed_slot(a, ctx, base, idx)?;
                a.op(Op::SLoad);
            }
            Expr::Not(inner) => {
                self.gen_expr(a, ctx, inner)?;
                a.op(Op::IsZero);
            }
            Expr::Neg(inner) => {
                self.gen_expr(a, ctx, inner)?;
                a.push_u64(0);
                a.op(Op::Sub); // pops 0 (top), x → 0 - x
            }
            Expr::Bin(op, lhs, rhs) => {
                self.gen_binop(a, ctx, *op, lhs, rhs)?;
            }
            Expr::Keccak(inner) => {
                self.gen_expr(a, ctx, inner)?; // [ptr]
                a.op(Op::Dup1).op(Op::MLoad); // [ptr, len]
                a.op(Op::Swap1); // [len, ptr]
                a.push_u64(32).op(Op::Add); // [len, ptr+32]
                a.op(Op::Keccak256); // pops offset, len
            }
            Expr::EcRecover(h, v, r, s) => {
                self.gen_precompile_words(
                    a,
                    ctx,
                    1,
                    &[h.as_ref(), v.as_ref(), r.as_ref(), s.as_ref()],
                )?;
            }
            Expr::Hash2(lhs, rhs) => {
                // keccak256(a ‖ b) with scratch at 0x00 — evaluate both
                // operands *before* touching the scratch so nested
                // hash2/mapping hashes can't clobber it.
                self.gen_expr(a, ctx, lhs)?;
                self.gen_expr(a, ctx, rhs)?; // [a, b]
                a.push_u64(0x20).op(Op::MStore); // mem[0x20] = b
                a.push_u64(0).op(Op::MStore); // mem[0x00] = a
                a.push_u64(0x40).push_u64(0).op(Op::Keccak256);
            }
            Expr::CommitVerify(cx, cy, v, r) => {
                self.gen_precompile_words(
                    a,
                    ctx,
                    9,
                    &[cx.as_ref(), cy.as_ref(), v.as_ref(), r.as_ref()],
                )?;
            }
            Expr::CommitAddCheck(parts) => {
                let refs: Vec<&Expr> = parts.iter().collect();
                self.gen_precompile_words(a, ctx, 10, &refs)?;
            }
            Expr::Nullifier(x) => {
                self.gen_precompile_words(a, ctx, 11, &[x.as_ref()])?;
            }
            Expr::RangeVerify(cx, cy, bits, proof) => {
                self.gen_range_verify(a, ctx, cx, cy, bits, proof)?;
            }
            Expr::Create(code) => {
                self.gen_expr(a, ctx, code)?; // [ptr]
                a.op(Op::Dup1).op(Op::MLoad); // [ptr, len]
                a.op(Op::Swap1).push_u64(32).op(Op::Add); // [len, ptr+32]
                a.push_u64(0); // [len, off, value]
                a.op(Op::Create);
            }
            Expr::InternalCall(name, args) => {
                return self.gen_internal_call(a, ctx, name, args);
            }
            Expr::ExternalCall {
                iface,
                addr,
                method,
                args,
            } => {
                return self.gen_external_call(a, ctx, iface, addr, method, args);
            }
            Expr::Cast(ty, inner) => {
                self.gen_expr(a, ctx, inner)?;
                self.gen_mask(a, ty);
            }
        }
        Ok(true)
    }

    fn gen_binop(
        &self,
        a: &mut Asm,
        ctx: &mut FnCtx,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<(), CodegenError> {
        match op {
            BinOp::And => {
                let end = a.fresh_label("and_end");
                self.gen_expr(a, ctx, lhs)?;
                a.op(Op::Dup1).op(Op::IsZero);
                a.jumpi(&end); // lhs false: short-circuit, result = lhs (0)
                a.op(Op::Pop);
                self.gen_expr(a, ctx, rhs)?;
                a.label(&end);
                Ok(())
            }
            BinOp::Or => {
                let end = a.fresh_label("or_end");
                self.gen_expr(a, ctx, lhs)?;
                a.op(Op::Dup1);
                a.jumpi(&end); // lhs true: short-circuit, result = lhs (1)
                a.op(Op::Pop);
                self.gen_expr(a, ctx, rhs)?;
                a.label(&end);
                Ok(())
            }
            _ => {
                // Evaluate right first so the left operand ends on top,
                // matching the EVM's pop order for non-commutative ops.
                self.gen_expr(a, ctx, rhs)?;
                self.gen_expr(a, ctx, lhs)?;
                match op {
                    BinOp::Add => a.op(Op::Add),
                    BinOp::Sub => a.op(Op::Sub),
                    BinOp::Mul => a.op(Op::Mul),
                    BinOp::Div => a.op(Op::Div),
                    BinOp::Mod => a.op(Op::Mod),
                    BinOp::Lt => a.op(Op::Lt),
                    BinOp::Gt => a.op(Op::Gt),
                    BinOp::Le => a.op(Op::Gt).op(Op::IsZero),
                    BinOp::Ge => a.op(Op::Lt).op(Op::IsZero),
                    BinOp::Eq => a.op(Op::Eq),
                    BinOp::Ne => a.op(Op::Eq).op(Op::IsZero),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                };
                Ok(())
            }
        }
    }

    /// STATICCALLs a precompile over `parts.len()` fixed 32-byte input
    /// words, leaving the single output word on the stack. The scratch
    /// region is FMP-allocated (and the FMP bumped first) so argument
    /// sub-expressions can't clobber it; the output word is pre-zeroed
    /// so a failed precompile reads as 0.
    fn gen_precompile_words(
        &self,
        a: &mut Asm,
        ctx: &mut FnCtx,
        precompile: u64,
        parts: &[&Expr],
    ) -> Result<(), CodegenError> {
        let in_len = 32 * parts.len() as u64;
        let tmp = ctx.alloc_anon(); // hold p across sub-exprs
        a.push_u64(0x40).op(Op::MLoad); // [p]
        a.op(Op::Dup1).push_u64(in_len + 32).op(Op::Add);
        a.push_u64(0x40).op(Op::MStore); // FMP += in_len + 32
        a.push_u64(tmp).op(Op::MStore);
        for (i, part) in parts.iter().enumerate() {
            self.gen_expr(a, ctx, part)?; // [val]
            a.push_u64(tmp).op(Op::MLoad);
            if i > 0 {
                a.push_u64(32 * i as u64).op(Op::Add);
            }
            a.op(Op::MStore);
        }
        // Zero the output word.
        a.push_u64(0);
        a.push_u64(tmp).op(Op::MLoad).push_u64(in_len).op(Op::Add);
        a.op(Op::MStore);
        // STATICCALL pops gas,to,in_off,in_len,out_off,out_len →
        // push reverse.
        a.push_u64(32); // out_len
        a.push_u64(tmp).op(Op::MLoad).push_u64(in_len).op(Op::Add); // out_off
        a.push_u64(in_len); // in_len
        a.push_u64(tmp).op(Op::MLoad); // in_off
        a.push_u64(precompile); // to
        a.op(Op::Gas); // gas
        a.op(Op::StaticCall);
        a.op(Op::Pop); // ignore success flag (output pre-zeroed)
        a.push_u64(tmp).op(Op::MLoad).push_u64(in_len).op(Op::Add);
        a.op(Op::MLoad);
        Ok(())
    }

    /// `range_verify(cx, cy, bits, proof)` — assembles the 0x0c
    /// precompile input `cx ‖ cy ‖ bits ‖ proof-bytes` in FMP scratch
    /// (the proof is length-dynamic, copied via the identity
    /// precompile) and leaves the verifier's bool word on the stack.
    fn gen_range_verify(
        &self,
        a: &mut Asm,
        ctx: &mut FnCtx,
        cx: &Expr,
        cy: &Expr,
        bits: &Expr,
        proof: &Expr,
    ) -> Result<(), CodegenError> {
        let tmp = ctx.alloc_anon(); // input region base `p`
        let tproof = ctx.alloc_anon(); // proof pointer `pp` (len-prefixed)
        self.gen_expr(a, ctx, proof)?; // [pp]
        a.push_u64(tproof).op(Op::MStore);
        // p = FMP; FMP += 96 (header) + len + 32 (output word).
        a.push_u64(0x40).op(Op::MLoad); // [p]
        a.op(Op::Dup1); // [p, p]
        a.push_u64(tproof).op(Op::MLoad).op(Op::MLoad); // [p, p, len]
        a.op(Op::Add).push_u64(128).op(Op::Add); // [p, p+len+128]
        a.push_u64(0x40).op(Op::MStore); // [p]
        a.push_u64(tmp).op(Op::MStore);
        for (i, part) in [cx, cy, bits].into_iter().enumerate() {
            self.gen_expr(a, ctx, part)?; // [val]
            a.push_u64(tmp).op(Op::MLoad);
            if i > 0 {
                a.push_u64(32 * i as u64).op(Op::Add);
            }
            a.op(Op::MStore);
        }
        // Copy the proof bytes to p+96 with the identity precompile.
        a.push_u64(tproof).op(Op::MLoad).op(Op::MLoad); // out_len = len
        a.push_u64(tmp).op(Op::MLoad).push_u64(96).op(Op::Add); // out_off
        a.push_u64(tproof).op(Op::MLoad).op(Op::MLoad); // in_len = len
        a.push_u64(tproof).op(Op::MLoad).push_u64(32).op(Op::Add); // in_off
        a.push_u64(4); // to = identity
        a.op(Op::Gas);
        a.op(Op::StaticCall).op(Op::Pop);
        // Zero the output word at p + 96 + len.
        a.push_u64(0);
        a.push_u64(tmp).op(Op::MLoad).push_u64(96).op(Op::Add);
        a.push_u64(tproof).op(Op::MLoad).op(Op::MLoad).op(Op::Add);
        a.op(Op::MStore);
        // STATICCALL range_verify: in = p .. p+96+len, out = one word.
        a.push_u64(32); // out_len
        a.push_u64(tmp).op(Op::MLoad).push_u64(96).op(Op::Add);
        a.push_u64(tproof).op(Op::MLoad).op(Op::MLoad).op(Op::Add); // out_off
        a.push_u64(tproof)
            .op(Op::MLoad)
            .op(Op::MLoad)
            .push_u64(96)
            .op(Op::Add); // in_len
        a.push_u64(tmp).op(Op::MLoad); // in_off
        a.push_u64(12); // to = range_verify
        a.op(Op::Gas);
        a.op(Op::StaticCall).op(Op::Pop);
        a.push_u64(tmp).op(Op::MLoad).push_u64(96).op(Op::Add);
        a.push_u64(tproof).op(Op::MLoad).op(Op::MLoad).op(Op::Add);
        a.op(Op::MLoad);
        Ok(())
    }

    /// Leaves the storage slot of `base[idx]` on the stack.
    fn gen_indexed_slot(
        &self,
        a: &mut Asm,
        ctx: &mut FnCtx,
        base: &Expr,
        idx: &Expr,
    ) -> Result<(), CodegenError> {
        let Expr::Ident(name) = base else {
            return err("only state variables can be indexed");
        };
        if ctx.lookup(name).is_some() {
            return err("only state variables can be indexed");
        }
        let sv = self
            .state_var(name)
            .ok_or_else(|| CodegenError(format!("unknown state variable `{name}`")))?;
        match &sv.ty {
            Type::Mapping(_, _) => {
                // slot = keccak256(key . base_slot) with scratch at 0x00.
                self.gen_expr(a, ctx, idx)?;
                a.push_u64(0).op(Op::MStore);
                a.push_u64(sv.slot);
                a.push_u64(0x20).op(Op::MStore);
                a.push_u64(0x40).push_u64(0).op(Op::Keccak256);
                Ok(())
            }
            Type::FixedArray(_, n) => {
                self.gen_expr(a, ctx, idx)?; // [idx]
                a.op(Op::Dup1).push_u64(*n).op(Op::Gt); // n > idx ≡ idx < n
                let ok = a.fresh_label("idx_ok");
                a.jumpi(&ok);
                a.jump("revert");
                a.label(&ok);
                a.push_u64(sv.slot).op(Op::Add);
                Ok(())
            }
            other => err(format!("cannot index into {other:?}")),
        }
    }

    fn gen_internal_call(
        &self,
        a: &mut Asm,
        ctx: &mut FnCtx,
        name: &str,
        args: &[Expr],
    ) -> Result<bool, CodegenError> {
        let f = self
            .contract
            .functions
            .iter()
            .find(|f| f.name == name)
            .ok_or_else(|| CodegenError(format!("unknown function `{name}`")))?;
        if f.params.len() != args.len() {
            return err(format!("arity mismatch calling `{name}`"));
        }
        // Evaluate args in the caller's scope, then bind them as fresh
        // locals in the inlined scope.
        let mut arg_offsets = Vec::new();
        for arg in args {
            self.gen_expr(a, ctx, arg)?;
            let off = ctx.alloc_anon();
            a.push_u64(off).op(Op::MStore);
            arg_offsets.push(off);
        }

        let end_label = a.fresh_label(&format!("inline_{name}_end"));
        let saved_end = std::mem::replace(&mut ctx.end_label, end_label.clone());
        let saved_ret = ctx.ret_slot;

        ctx.scopes.push(HashMap::new());
        for (p, off) in f.params.iter().zip(&arg_offsets) {
            ctx.scopes
                .last_mut()
                .expect("scope pushed")
                .insert(p.name.clone(), (*off, p.ty.clone()));
        }
        ctx.ret_slot = if f.returns.is_some() {
            Some(ctx.alloc_anon())
        } else {
            None
        };
        let inline_ret = ctx.ret_slot;

        let body = expand_modifiers(f, self.contract);
        self.gen_stmts(a, ctx, &body)?;
        a.label(&end_label);

        ctx.scopes.pop();
        ctx.end_label = saved_end;
        ctx.ret_slot = saved_ret;

        if let Some(slot) = inline_ret {
            a.push_u64(slot).op(Op::MLoad);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn gen_external_call(
        &self,
        a: &mut Asm,
        ctx: &mut FnCtx,
        iface: &str,
        addr: &Expr,
        method: &str,
        args: &[Expr],
    ) -> Result<bool, CodegenError> {
        if iface.is_empty() {
            return err("transfer used as an expression");
        }
        let i = self
            .interfaces
            .get(iface)
            .ok_or_else(|| CodegenError(format!("unknown interface `{iface}`")))?;
        let m = i
            .methods
            .iter()
            .find(|m| m.name == method)
            .ok_or_else(|| CodegenError(format!("no method `{method}` on `{iface}`")))?;
        let sel = selector(&m.signature());
        let n = args.len() as u64;
        let in_len = 4 + 32 * n;
        let has_ret = m.returns.is_some();

        // Allocate the encoding buffer (FMP bump so nested expressions
        // can't clobber it).
        a.push_u64(0x40).op(Op::MLoad); // [p]
        a.op(Op::Dup1)
            .push_u64(in_len.div_ceil(32) * 32)
            .op(Op::Add);
        a.push_u64(0x40).op(Op::MStore); // [p], FMP bumped
                                         // Selector word (left-aligned).
        let sel_word = U256::from_u64(u32::from_be_bytes(sel) as u64).shl_bits(224);
        a.push(sel_word);
        a.op(Op::Dup2).op(Op::MStore); // [p]
                                       // Arguments.
        for (k, arg) in args.iter().enumerate() {
            self.gen_expr(a, ctx, arg)?; // [p, v]
            a.op(Op::Dup2).push_u64(4 + 32 * k as u64).op(Op::Add); // [p, v, dst]
            a.op(Op::MStore); // [p]
        }
        // CALL(gas, to, 0, p, in_len, p, out_len)
        a.push_u64(if has_ret { 32 } else { 0 }); // out_len
        a.op(Op::Dup2); // out_off = p
        a.push_u64(in_len); // in_len
        a.op(Op::Dup4); // in_off = p
        a.push_u64(0); // value
        self.gen_expr(a, ctx, addr)?; // to
        a.op(Op::Gas); // gas
        a.op(Op::Call); // [p, success]
        a.op(Op::IsZero);
        a.jumpi("revert"); // [p]
        if has_ret {
            a.op(Op::MLoad);
            Ok(true)
        } else {
            a.op(Op::Pop);
            Ok(false)
        }
    }

    /// Normalizes a stack value to its type's canonical representation.
    fn gen_mask(&self, a: &mut Asm, ty: &Type) {
        match ty {
            Type::Address | Type::Interface(_) => {
                a.push(U256::from_hex_str(ADDR_MASK_HEX).expect("const mask"));
                a.op(Op::And);
            }
            Type::Uint8 => {
                a.push_u64(0xff);
                a.op(Op::And);
            }
            Type::Bool => {
                a.op(Op::IsZero).op(Op::IsZero);
            }
            _ => {}
        }
    }

    /// Decodes a dynamic `bytes` argument into a fresh memory allocation
    /// and stores the pointer into the local at `local_off`.
    fn gen_decode_bytes_arg(&self, a: &mut Asm, head: u64, local_off: u64) {
        // pos = 4 + calldataload(head)        (absolute offset of length)
        a.push_u64(head).op(Op::CallDataLoad);
        a.push_u64(4).op(Op::Add); // [pos]
        a.op(Op::Dup1).op(Op::CallDataLoad); // [pos, len]
                                             // p = MLOAD(0x40)
        a.push_u64(0x40).op(Op::MLoad); // [pos, len, p]
                                        // MSTORE(p, len)
        a.op(Op::Dup1).op(Op::Dup3).op(Op::Swap1).op(Op::MStore); // [pos, len, p]
                                                                  // FMP = p + 32 + ceil32(len)
        a.op(Op::Dup2).push_u64(31).op(Op::Add); // [.., p, len+31]
        a.push(U256::MAX.shl_bits(5)); // ~31 mask
        a.op(Op::And).push_u64(32).op(Op::Add); // [.., p, sz]
        a.op(Op::Dup2).op(Op::Add); // [pos, len, p, p+sz]
        a.push_u64(0x40).op(Op::MStore); // [pos, len, p]
                                         // CALLDATACOPY(p+32, pos+32, len)
        a.op(Op::Dup2); // [pos, len, p, len]
        a.op(Op::Dup4).push_u64(32).op(Op::Add); // [.., len, pos+32]
        a.op(Op::Dup3).push_u64(32).op(Op::Add); // [.., len, src, dest]
        a.op(Op::CallDataCopy); // [pos, len, p]
                                // Store p into the local; drop scratch.
        a.op(Op::Swap2).op(Op::Pop).op(Op::Pop); // [p]
        a.push_u64(local_off).op(Op::MStore);
    }

    /// Minimal type inference for codegen decisions (sema already
    /// validated; this only resolves Ident/Index shapes).
    fn expr_type(&self, ctx: &FnCtx, e: &Expr) -> Result<Type, CodegenError> {
        match e {
            Expr::Ident(n) => {
                if let Some((_, t)) = ctx.lookup(n) {
                    Ok(t)
                } else if let Some(sv) = self.state_var(n) {
                    Ok(sv.ty.clone())
                } else {
                    err(format!("unknown identifier `{n}`"))
                }
            }
            Expr::Cast(t, _) => Ok(t.clone()),
            _ => Ok(Type::Uint256),
        }
    }
}
