//! Pretty-printer: renders a MiniSol AST back to compilable source.
//!
//! Used by the automatic contract splitter to emit the generated
//! on/off-chain pair, and by round-trip tests (`parse ∘ print ≡ id`).

use crate::ast::*;

/// Renders a full program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for i in &p.interfaces {
        out.push_str(&print_interface(i));
        out.push('\n');
    }
    for c in &p.contracts {
        out.push_str(&print_contract(c));
        out.push('\n');
    }
    out
}

/// Renders an interface declaration.
pub fn print_interface(i: &Interface) -> String {
    let mut out = format!("interface {} {{\n", i.name);
    for m in &i.methods {
        let params: Vec<String> = m
            .params
            .iter()
            .enumerate()
            .map(|(k, t)| format!("{} x{k}", print_type(t)))
            .collect();
        out.push_str(&format!(
            "    function {}({}) external",
            m.name,
            params.join(", ")
        ));
        if let Some(r) = &m.returns {
            out.push_str(&format!(" returns ({})", print_type(r)));
        }
        out.push_str(";\n");
    }
    out.push_str("}\n");
    out
}

/// Renders a contract definition.
pub fn print_contract(c: &Contract) -> String {
    let mut out = format!("contract {} {{\n", c.name);
    for sv in &c.state {
        out.push_str(&format!("    {} {};\n", print_type(&sv.ty), sv.name));
    }
    if let Some((params, payable, body)) = &c.constructor {
        out.push_str(&format!(
            "    constructor({}) public{} {{\n",
            print_params(params),
            if *payable { " payable" } else { "" }
        ));
        print_stmts(&mut out, body, 2);
        out.push_str("    }\n");
    }
    for ev in &c.events {
        out.push_str(&format!(
            "    event {}({});\n",
            ev.name,
            print_params(&ev.params)
        ));
    }
    for m in &c.modifiers {
        out.push_str(&format!("    modifier {} {{\n", m.name));
        print_stmts(&mut out, &m.body, 2);
        out.push_str("    }\n");
    }
    for f in &c.functions {
        let vis = match f.visibility {
            Visibility::Public => "public",
            Visibility::External => "external",
            Visibility::Private => "private",
        };
        out.push_str(&format!(
            "    function {}({}) {}{}{}",
            f.name,
            print_params(&f.params),
            vis,
            if f.payable { " payable" } else { "" },
            f.modifiers
                .iter()
                .map(|m| format!(" {m}"))
                .collect::<String>(),
        ));
        if let Some(r) = &f.returns {
            out.push_str(&format!(" returns ({})", print_type(r)));
        }
        out.push_str(" {\n");
        print_stmts(&mut out, &f.body, 2);
        out.push_str("    }\n");
    }
    out.push_str("}\n");
    out
}

fn print_params(params: &[Param]) -> String {
    params
        .iter()
        .map(|p| {
            let loc = if matches!(p.ty, Type::Bytes) {
                " memory"
            } else {
                ""
            };
            format!("{}{loc} {}", print_type(&p.ty), p.name)
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders a type.
pub fn print_type(t: &Type) -> String {
    match t {
        Type::Uint256 => "uint256".into(),
        Type::Uint8 => "uint8".into(),
        Type::Bool => "bool".into(),
        Type::Address => "address".into(),
        Type::Bytes32 => "bytes32".into(),
        Type::Bytes => "bytes".into(),
        Type::Mapping(k, v) => format!("mapping({} => {})", print_type(k), print_type(v)),
        Type::FixedArray(inner, n) => format!("{}[{n}]", print_type(inner)),
        Type::Interface(name) => name.clone(),
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_stmts(out: &mut String, stmts: &[Stmt], level: usize) {
    for s in stmts {
        print_stmt(out, s, level);
    }
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match s {
        Stmt::VarDecl(p, init) => {
            let loc = if matches!(p.ty, Type::Bytes) {
                " memory"
            } else {
                ""
            };
            out.push_str(&format!(
                "{}{loc} {} = {};\n",
                print_type(&p.ty),
                p.name,
                print_expr(init)
            ));
        }
        Stmt::Assign(lv, e) => match lv {
            LValue::Ident(n) => out.push_str(&format!("{n} = {};\n", print_expr(e))),
            LValue::Index(b, i) => out.push_str(&format!(
                "{}[{}] = {};\n",
                print_expr(b),
                print_expr(i),
                print_expr(e)
            )),
        },
        Stmt::Require(e) => out.push_str(&format!("require({});\n", print_expr(e))),
        Stmt::Revert => out.push_str("revert();\n"),
        Stmt::If(c, a, b) => {
            out.push_str(&format!("if ({}) {{\n", print_expr(c)));
            print_stmts(out, a, level + 1);
            indent(out, level);
            if b.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                print_stmts(out, b, level + 1);
                indent(out, level);
                out.push_str("}\n");
            }
        }
        Stmt::While(c, body) => {
            out.push_str(&format!("while ({}) {{\n", print_expr(c)));
            print_stmts(out, body, level + 1);
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::Return(None) => out.push_str("return;\n"),
        Stmt::Return(Some(e)) => out.push_str(&format!("return {};\n", print_expr(e))),
        Stmt::ExprStmt(e) => out.push_str(&format!("{};\n", print_expr(e))),
        Stmt::Transfer(a, v) => {
            out.push_str(&format!("{}.transfer({});\n", print_expr(a), print_expr(v)))
        }
        Stmt::Emit(name, args) => out.push_str(&format!(
            "emit {name}({});\n",
            args.iter().map(print_expr).collect::<Vec<_>>().join(", ")
        )),
        Stmt::Placeholder => out.push_str("_;\n"),
    }
}

/// Renders an expression (fully parenthesized where precedence matters).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Number(v) => v.to_dec_string(),
        Expr::Bool(b) => b.to_string(),
        Expr::Ident(n) => n.clone(),
        Expr::MsgSender => "msg.sender".into(),
        Expr::MsgValue => "msg.value".into(),
        Expr::BlockTimestamp => "block.timestamp".into(),
        Expr::BlockNumber => "block.number".into(),
        Expr::This => "this".into(),
        Expr::Balance(x) => format!("{}.balance", print_expr(x)),
        Expr::ArrayLength(x) => format!("{}.length", print_expr(x)),
        Expr::Index(b, i) => format!("{}[{}]", print_expr(b), print_expr(i)),
        Expr::Not(x) => format!("(!{})", print_expr(x)),
        Expr::Neg(x) => format!("(-{})", print_expr(x)),
        Expr::Bin(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
                BinOp::Lt => "<",
                BinOp::Gt => ">",
                BinOp::Le => "<=",
                BinOp::Ge => ">=",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            format!("({} {sym} {})", print_expr(a), print_expr(b))
        }
        Expr::Keccak(x) => format!("keccak256({})", print_expr(x)),
        Expr::EcRecover(h, v, r, s) => format!(
            "ecrecover({}, {}, {}, {})",
            print_expr(h),
            print_expr(v),
            print_expr(r),
            print_expr(s)
        ),
        Expr::Create(x) => format!("create({})", print_expr(x)),
        Expr::Hash2(a, b) => format!("hash2({}, {})", print_expr(a), print_expr(b)),
        Expr::CommitVerify(cx, cy, v, r) => format!(
            "commit_verify({}, {}, {}, {})",
            print_expr(cx),
            print_expr(cy),
            print_expr(v),
            print_expr(r)
        ),
        Expr::CommitAddCheck(parts) => format!(
            "commit_add_check({})",
            parts.iter().map(print_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::Nullifier(x) => format!("nullifier({})", print_expr(x)),
        Expr::RangeVerify(cx, cy, bits, proof) => format!(
            "range_verify({}, {}, {}, {})",
            print_expr(cx),
            print_expr(cy),
            print_expr(bits),
            print_expr(proof)
        ),
        Expr::InternalCall(n, args) => format!(
            "{n}({})",
            args.iter().map(print_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::ExternalCall {
            iface,
            addr,
            method,
            args,
        } => format!(
            "{iface}({}).{method}({})",
            print_expr(addr),
            args.iter().map(print_expr).collect::<Vec<_>>().join(", ")
        ),
        Expr::Cast(t, x) => format!("{}({})", print_type(t), print_expr(x)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// parse → print → parse must be a fixed point (ASTs equal up to the
    /// slot numbers sema assigns later).
    fn roundtrip(src: &str) {
        let p1 = parse(src).expect("first parse");
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        assert_eq!(p1, p2, "printed:\n{printed}");
    }

    #[test]
    fn roundtrip_simple_contract() {
        roundtrip("contract c { uint256 x; function f(uint256 v) public { x = v + 1; } }");
    }

    #[test]
    fn roundtrip_the_papers_onchain_contract() {
        roundtrip(sc_test_sources::ONCHAIN_LIKE);
    }

    #[test]
    fn roundtrip_interfaces_and_calls() {
        roundtrip(
            "interface I { function m(bool x) external returns (uint256); } \
             contract c { function f(address a) public returns (uint256) { return I(a).m(true); } }",
        );
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip(
            "contract c { function f(uint256 n) public returns (uint256) { \
             uint256 acc = 0; while (n > 0) { if (n % 2 == 0) { acc = acc + n; } else { acc = acc + 1; } n = n - 1; } \
             return acc; } }",
        );
    }

    #[test]
    fn roundtrip_modifiers_and_builtins() {
        roundtrip(
            "contract c { address owner; modifier onlyOwner { require(msg.sender == owner); _; } \
             function f(bytes memory d, uint8 v, bytes32 r, bytes32 s) public onlyOwner returns (address) { \
             bytes32 h = keccak256(d); address a = ecrecover(h, v, r, s); address i = create(d); \
             require(a != address(0) && i != address(0)); return a; } }",
        );
    }

    #[test]
    fn printed_source_compiles_identically() {
        // print ∘ parse must preserve generated bytecode.
        let src = sc_test_sources::ONCHAIN_LIKE;
        let direct = crate::compile(src, "onChainLike").unwrap();
        let printed = print_program(&parse(src).unwrap());
        let reprinted = crate::compile(&printed, "onChainLike").unwrap();
        assert_eq!(direct.runtime, reprinted.runtime);
    }

    /// A compact contract shaped like the paper's on-chain contract, for
    /// printer tests.
    mod sc_test_sources {
        pub const ONCHAIN_LIKE: &str = r#"
            contract onChainLike {
                address[2] participant;
                mapping(address => uint256) accountBalance;
                uint256 T1;
                address deployedAddr;
                constructor(address a, address b, uint256 t1) public {
                    participant[0] = a;
                    participant[1] = b;
                    T1 = t1;
                }
                modifier beforeT1 { require(block.timestamp < T1); _; }
                modifier certified {
                    require(msg.sender == participant[0] || msg.sender == participant[1]);
                    _;
                }
                function deposit() public payable beforeT1 certified {
                    require(msg.value == 1000000000000000000);
                    accountBalance[msg.sender] = accountBalance[msg.sender] + msg.value;
                }
                function refund() public beforeT1 certified {
                    uint256 amt = accountBalance[msg.sender];
                    require(amt > 0);
                    accountBalance[msg.sender] = 0;
                    msg.sender.transfer(amt);
                }
                function deployVerifiedInstance(bytes memory bytecode, uint8 va, bytes32 ra, bytes32 sa) public certified {
                    bytes32 h = keccak256(bytecode);
                    address a = ecrecover(h, va, ra, sa);
                    require(a == participant[0]);
                    address addr = create(bytecode);
                    require(addr != address(0));
                    deployedAddr = addr;
                }
            }
        "#;
    }
}
