//! MiniSol: a deterministic compiler for the Solidity subset used by the
//! paper's contracts.
//!
//! Pipeline: [`token`] → [`parser`] → [`sema`] → [`codegen`] targeting the
//! `sc-evm` instruction set. Determinism is a protocol requirement — the
//! paper's participants must each compile the off-chain contract and get
//! *byte-identical* code, since the signed copy binds keccak256(bytecode).
//!
//! Supported: state variables (value types, `mapping`, fixed arrays),
//! constructors with value-type args, no-arg modifiers with `_;`,
//! public/external/private functions (private calls are inlined),
//! `payable`, `require`/`revert`, `if`/`while`/`for`, local variables,
//! `msg.sender`/`msg.value`/`block.timestamp`/`now`, `.transfer`,
//! `.balance`, `keccak256(bytes)`, `ecrecover`, `create(bytes)` (the
//! stand-in for the paper's inline-assembly `create`), interface calls,
//! dynamic `bytes` parameters, ether/time unit literals.
//!
//! Deliberately absent (not needed by the paper, documented for users):
//! inheritance, events, strings, dynamic arrays, structs, overloading,
//! recursion (inlining), revert reason strings (parsed, discarded).

#![warn(missing_docs)]

pub mod ast;
pub mod codegen;
pub mod parser;
pub mod printer;
pub mod sema;
pub mod token;

pub use codegen::{compile_contract, CodegenError, CompiledContract};
pub use parser::{parse, ParseError};
pub use sema::{analyze, AnalyzedContract, SemaError};

use std::fmt;

/// Any error from the compilation pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Semantic analysis failed.
    Sema(SemaError),
    /// Code generation failed.
    Codegen(CodegenError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Sema(e) => write!(f, "{e}"),
            CompileError::Codegen(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles `contract_name` from MiniSol source text.
pub fn compile(src: &str, contract_name: &str) -> Result<CompiledContract, CompileError> {
    let program = parse(src).map_err(CompileError::Parse)?;
    let analyzed = analyze(&program, contract_name).map_err(CompileError::Sema)?;
    compile_contract(&analyzed).map_err(CompileError::Codegen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_empty_contract() {
        let c = compile("contract c { }", "c").unwrap();
        assert!(!c.runtime.is_empty());
        assert!(c.init_prefix.len() > c.runtime.len());
    }

    #[test]
    fn compilation_is_deterministic() {
        let src = r#"
            contract c {
                uint256 x;
                function set(uint256 v) public { x = v; }
                function get() public returns (uint256) { return x; }
            }
        "#;
        let a = compile(src, "c").unwrap();
        let b = compile(src, "c").unwrap();
        assert_eq!(
            a.runtime, b.runtime,
            "byte-identical output is a protocol requirement"
        );
        assert_eq!(a.init_prefix, b.init_prefix);
    }

    #[test]
    fn unknown_contract_errors() {
        assert!(matches!(
            compile("contract c { }", "d"),
            Err(CompileError::Sema(_))
        ));
    }

    #[test]
    fn initcode_validates_args() {
        use sc_primitives::abi::Value;
        let c = compile(
            "contract c { uint256 t; constructor(uint256 x) public { t = x; } }",
            "c",
        )
        .unwrap();
        assert!(c.initcode(&[]).is_err());
        assert!(c.initcode(&[Value::Bool(true)]).is_err());
        assert!(c
            .initcode(&[Value::Uint(sc_primitives::U256::from_u64(5))])
            .is_ok());
    }

    #[test]
    fn calldata_helper_uses_selector() {
        let c = compile(
            "contract c { function transfer(address to, uint256 v) public { } }",
            "c",
        )
        .unwrap();
        let data = c
            .calldata(
                "transfer",
                &[
                    sc_primitives::abi::Value::Address(sc_primitives::Address([0; 20])),
                    sc_primitives::abi::Value::Uint(sc_primitives::U256::ONE),
                ],
            )
            .unwrap();
        assert_eq!(&data[..4], &[0xa9, 0x05, 0x9c, 0xbb]);
        assert!(c.calldata("nope", &[]).is_err());
    }
}
