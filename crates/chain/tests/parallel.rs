//! Serial ≡ parallel equivalence: a block mined by the optimistic
//! parallel executor must be byte-for-byte what `mine_block_serial`
//! produces — block hash, `state_root`, `receipts_root`, gas, every
//! receipt, every log — on *adversarial, conflict-heavy* blocks: many
//! transactions hammering the same account and the same storage slot,
//! read-modify-write chains, deploys and reverts mixed in, several
//! transactions per sender.

use proptest::prelude::*;
use sc_chain::{ChainConfig, ExecMode, Testnet, Transaction, Wallet};
use sc_primitives::{ether, Address, U256};

/// Runtime that stores calldata word 1 at the slot named by calldata
/// word 0 (same contract as the trie bench).
const STORE_RUNTIME: [u8; 8] = [0x60, 0x20, 0x35, 0x60, 0x00, 0x35, 0x55, 0x00];

/// Runtime that increments slot 0: `PUSH1 0 SLOAD PUSH1 1 ADD PUSH1 0
/// SSTORE STOP` — every call reads *and* writes the same hot slot.
const RMW_RUNTIME: [u8; 10] = [0x60, 0x00, 0x54, 0x60, 0x01, 0x01, 0x60, 0x00, 0x55, 0x00];

/// Runtime that always reverts with empty data.
const REVERT_RUNTIME: [u8; 5] = [0x60, 0x00, 0x60, 0x00, 0xfd];

/// Runtime that emits one empty LOG0 entry.
const LOG_RUNTIME: [u8; 6] = [0x60, 0x00, 0x60, 0x00, 0xa0, 0x00];

const SENDERS: usize = 6;

/// One transaction of the adversarial block.
#[derive(Debug, Clone, Copy)]
struct Op {
    sender: usize,
    kind: Kind,
    wei: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Plain transfer into one shared hot account.
    TransferHot,
    /// Plain transfer into a sender-specific cold account.
    TransferCold,
    /// `store(0, wei)` — every such tx writes the same slot of the same
    /// contract.
    StoreHotSlot,
    /// `store(sender-disjoint slot, wei)` — same contract, disjoint
    /// slots.
    StoreColdSlot,
    /// Read-modify-write of the shared counter slot.
    Incr,
    /// Call into the always-reverting contract.
    Revert,
    /// Call into the log emitter.
    Log,
    /// Deploy a fresh contract (initcode returning the store runtime).
    Deploy,
}

const KINDS: [Kind; 8] = [
    Kind::TransferHot,
    Kind::TransferCold,
    Kind::StoreHotSlot,
    Kind::StoreColdSlot,
    Kind::Incr,
    Kind::Revert,
    Kind::Log,
    Kind::Deploy,
];

fn arb_op() -> impl Strategy<Value = Op> {
    (0usize..SENDERS, 0usize..KINDS.len(), 1u64..1_000_000_000).prop_map(|(sender, k, wei)| Op {
        sender,
        kind: KINDS[k],
        wei,
    })
}

fn arb_block() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(arb_op(), 1..32)
}

fn store_calldata(slot: u64, value: u64) -> Vec<u8> {
    let mut data = Vec::with_capacity(64);
    data.extend_from_slice(&U256::from_u64(slot).to_be_bytes());
    data.extend_from_slice(&U256::from_u64(value).to_be_bytes());
    data
}

struct Fixture {
    net: Testnet,
    wallets: Vec<Wallet>,
    store: Address,
    rmw: Address,
    reverter: Address,
    logger: Address,
}

/// Boots a chain in `mode`, funds the senders and deploys the four
/// fixture contracts (each in its own setup block).
fn fixture(mode: ExecMode) -> Fixture {
    let mut net = Testnet::with_config(ChainConfig {
        exec: mode,
        ..ChainConfig::default()
    });
    let wallets: Vec<Wallet> = (0..SENDERS)
        .map(|i| net.funded_wallet(&format!("w{i}"), ether(100)))
        .collect();
    let deployer = net.funded_wallet("deployer", ether(100));
    let mut deploy = |runtime: &[u8]| {
        let r = net
            .deploy(
                &deployer,
                sc_evm::wrap_initcode(runtime),
                U256::ZERO,
                200_000,
            )
            .expect("fixture deploy admitted");
        assert!(r.success, "fixture deploy failed: {:?}", r.failure);
        r.contract_address.expect("created")
    };
    let store = deploy(&STORE_RUNTIME);
    let rmw = deploy(&RMW_RUNTIME);
    let reverter = deploy(&REVERT_RUNTIME);
    let logger = deploy(&LOG_RUNTIME);
    Fixture {
        net,
        wallets,
        store,
        rmw,
        reverter,
        logger,
    }
}

/// Submits the whole adversarial op list, mines ONE block through the
/// requested path, and returns the digest of everything observable.
#[allow(clippy::type_complexity)]
fn run(
    ops: &[Op],
    mode: ExecMode,
    reference_serial: bool,
) -> (Fixture, sc_chain::Block, Vec<Option<sc_chain::Receipt>>) {
    let mut fx = fixture(mode);
    let mut hashes = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        let w = &fx.wallets[op.sender];
        let nonce = fx.net.effective_nonce(w.address);
        let price = sc_primitives::gwei(1);
        let tx = match op.kind {
            Kind::TransferHot => Transaction {
                nonce,
                gas_price: price,
                gas_limit: 21_000,
                to: Some(Address([0x99; 20])),
                value: U256::from_u64(op.wei),
                data: vec![],
            },
            Kind::TransferCold => Transaction {
                nonce,
                gas_price: price,
                gas_limit: 21_000,
                to: Some(Address([0xa0 + op.sender as u8; 20])),
                value: U256::from_u64(op.wei),
                data: vec![],
            },
            Kind::StoreHotSlot => Transaction {
                nonce,
                gas_price: price,
                gas_limit: 80_000,
                to: Some(fx.store),
                value: U256::ZERO,
                data: store_calldata(0, op.wei),
            },
            Kind::StoreColdSlot => Transaction {
                nonce,
                gas_price: price,
                gas_limit: 80_000,
                to: Some(fx.store),
                value: U256::ZERO,
                data: store_calldata(64 + (op.sender as u64) * 1024 + i as u64, op.wei),
            },
            Kind::Incr => Transaction {
                nonce,
                gas_price: price,
                gas_limit: 80_000,
                to: Some(fx.rmw),
                value: U256::ZERO,
                data: vec![],
            },
            Kind::Revert => Transaction {
                nonce,
                gas_price: price,
                gas_limit: 80_000,
                to: Some(fx.reverter),
                value: U256::ZERO,
                data: vec![],
            },
            Kind::Log => Transaction {
                nonce,
                gas_price: price,
                gas_limit: 80_000,
                to: Some(fx.logger),
                value: U256::ZERO,
                data: vec![],
            },
            Kind::Deploy => Transaction {
                nonce,
                gas_price: price,
                gas_limit: 200_000,
                to: None,
                value: U256::ZERO,
                data: sc_evm::wrap_initcode(&STORE_RUNTIME),
            },
        };
        hashes.push(fx.net.submit(tx.sign(&w.key)).ok());
    }
    let block = if reference_serial {
        fx.net.mine_block_serial()
    } else {
        fx.net.mine_block()
    };
    let receipts = hashes
        .iter()
        .map(|h| h.and_then(|h| fx.net.receipt(h).cloned()))
        .collect();
    (fx, block, receipts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: one conflict-heavy block, mined by the
    /// optimistic parallel executor vs the serial reference path, is
    /// byte-for-byte identical in every observable way.
    #[test]
    fn parallel_block_equals_serial_reference(ops in arb_block()) {
        let (pfx, pblock, preceipts) = run(&ops, ExecMode::Parallel, false);
        let (sfx, sblock, sreceipts) = run(&ops, ExecMode::Serial, true);

        prop_assert_eq!(pblock.hash, sblock.hash, "block hash diverged");
        prop_assert_eq!(pblock.state_root, sblock.state_root);
        prop_assert_eq!(pblock.receipts_root, sblock.receipts_root);
        prop_assert_eq!(pblock.gas_used, sblock.gas_used);
        prop_assert_eq!(&preceipts, &sreceipts, "receipts diverged");

        let head = pblock.number;
        prop_assert_eq!(
            pfx.net.logs(0, head, None),
            sfx.net.logs(0, head, None),
            "logs diverged"
        );
        for (pw, sw) in pfx.wallets.iter().zip(&sfx.wallets) {
            prop_assert_eq!(pfx.net.balance_of(pw.address), sfx.net.balance_of(sw.address));
            prop_assert_eq!(pfx.net.nonce_of(pw.address), sfx.net.nonce_of(sw.address));
        }
        prop_assert_eq!(
            pfx.net.balance_of(pfx.net.config().coinbase),
            sfx.net.balance_of(sfx.net.config().coinbase),
            "coinbase fees diverged"
        );
        prop_assert_eq!(
            pfx.net.storage_at(pfx.store, U256::ZERO),
            sfx.net.storage_at(sfx.store, U256::ZERO)
        );
        prop_assert_eq!(
            pfx.net.storage_at(pfx.rmw, U256::ZERO),
            sfx.net.storage_at(sfx.rmw, U256::ZERO)
        );

        // The report accounts for every transaction in the block.
        let report = pfx.net.last_seal_report().expect("sealed at least once");
        prop_assert_eq!(report.mode, ExecMode::Parallel);
        prop_assert_eq!(report.txs, pblock.transactions.len());
        prop_assert_eq!(report.speculative + report.reexecuted, report.txs);
    }

    /// Same-sender nonce chains: every tx after a sender's first reads
    /// the nonce the previous one bumped, so chains re-execute — and
    /// still land byte-identical.
    #[test]
    fn nonce_chains_from_one_sender_stay_identical(n in 2usize..12) {
        let ops: Vec<Op> = (0..n)
            .map(|i| Op {
                sender: 0,
                kind: KINDS[i % KINDS.len()],
                wei: 1 + i as u64,
            })
            .collect();
        let (pfx, pblock, _) = run(&ops, ExecMode::Parallel, false);
        let (_, sblock, _) = run(&ops, ExecMode::Serial, true);
        prop_assert_eq!(pblock.hash, sblock.hash);
        let report = pfx.net.last_seal_report().expect("sealed");
        // The first tx in the chain speculates against the true base
        // state and commits; later ones conflict on the sender nonce
        // and balance.
        prop_assert!(
            report.reexecuted >= report.txs.saturating_sub(1).min(1),
            "chained txs must conflict: {:?}",
            report
        );
    }
}

/// Deterministic conflict accounting: N read-modify-write txs on one
/// slot from distinct senders — the first commits speculatively, every
/// other conflicts, regardless of thread scheduling.
#[test]
fn rmw_hot_slot_conflicts_are_deterministic() {
    let ops: Vec<Op> = (0..SENDERS)
        .map(|sender| Op {
            sender,
            kind: Kind::Incr,
            wei: 1,
        })
        .collect();
    let (pfx, pblock, _) = run(&ops, ExecMode::Parallel, false);
    let (_, sblock, _) = run(&ops, ExecMode::Serial, true);
    assert_eq!(pblock.hash, sblock.hash);
    assert_eq!(
        pfx.net.storage_at(pfx.rmw, U256::ZERO),
        U256::from_u64(SENDERS as u64),
        "every increment landed exactly once"
    );
    let report = pfx.net.last_seal_report().expect("sealed");
    assert_eq!(report.txs, SENDERS);
    assert_eq!(report.speculative, 1, "only the first RMW validates");
    assert_eq!(report.reexecuted, SENDERS - 1);
}

/// Disjoint workload: distinct senders, distinct slots, distinct
/// recipients — everything commits speculatively.
#[test]
fn disjoint_block_commits_fully_speculatively() {
    let ops: Vec<Op> = (0..SENDERS)
        .map(|sender| Op {
            sender,
            kind: if sender % 2 == 0 {
                Kind::StoreColdSlot
            } else {
                Kind::TransferCold
            },
            wei: 10 + sender as u64,
        })
        .collect();
    let (pfx, pblock, _) = run(&ops, ExecMode::Parallel, false);
    let (_, sblock, _) = run(&ops, ExecMode::Serial, true);
    assert_eq!(pblock.hash, sblock.hash);
    let report = pfx.net.last_seal_report().expect("sealed");
    assert_eq!(report.txs, SENDERS);
    assert_eq!(
        report.speculative, SENDERS,
        "no conflicts in disjoint block"
    );
    assert_eq!(report.reexecuted, 0);
}
