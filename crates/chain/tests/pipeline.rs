//! Determinism tests for the parallel block pipeline: the batch admission
//! path plus pipelined mining must be observably identical to the serial
//! reference path (`submit` one-by-one + `mine_block_serial`), and a warm
//! analysis cache must change nothing but wall-clock time.

use sc_chain::{ChainConfig, SignedTransaction, Testnet, Transaction, TxError, Wallet};
use sc_evm::contract_address;
use sc_primitives::{ether, gwei, Address, U256};

/// Runtime code `SSTORE(0, 42); STOP`, preceded by initcode returning it.
const STORE_INITCODE: [u8; 15] = [
    0x65, 0x60, 0x2a, 0x60, 0x00, 0x55, 0x00, // PUSH6 <runtime>
    0x60, 0x00, 0x52, // MSTORE at 0
    0x60, 0x06, 0x60, 0x1a, 0xf3, // RETURN(26, 6)
];

/// Runtime code `RETURN(0, 0)` — state-independent, so every call costs
/// exactly the same gas regardless of prior calls.
const PURE_INITCODE: [u8; 14] = [
    0x64, 0x60, 0x00, 0x60, 0x00, 0xf3, // PUSH5 <runtime>
    0x60, 0x00, 0x52, // MSTORE at 0
    0x60, 0x05, 0x60, 0x1b, 0xf3, // RETURN(27, 5)
];

fn transfer(nonce: u64, to: Address, wei: u64, gas_limit: u64) -> Transaction {
    Transaction {
        nonce,
        gas_price: gwei(1),
        gas_limit,
        to: Some(to),
        value: U256::from_u64(wei),
        data: vec![],
    }
}

/// A fresh chain with three wallets: two rich, one nearly broke.
fn fresh_net() -> (Testnet, Vec<Wallet>) {
    let mut net = Testnet::with_config(ChainConfig::default());
    let wallets = vec![
        net.funded_wallet("pipe-rich-0", ether(50)),
        net.funded_wallet("pipe-rich-1", ether(50)),
        net.funded_wallet("pipe-poor", U256::from_u64(30_000)),
    ];
    (net, wallets)
}

/// A batch mixing every admission outcome: valid transfers from two
/// senders, a contract creation, a call to the created contract, a
/// tampered signature, a nonce gap, and an underfunded sender.
fn mixed_batch(wallets: &[Wallet]) -> Vec<SignedTransaction> {
    let (rich0, rich1, poor) = (&wallets[0], &wallets[1], &wallets[2]);
    let sink = Address([0x77; 20]);
    let contract = contract_address(rich0.address, 1);

    let create = Transaction {
        nonce: 1,
        gas_price: gwei(1),
        gas_limit: 200_000,
        to: None,
        value: U256::ZERO,
        data: STORE_INITCODE.to_vec(),
    };
    let call = Transaction {
        nonce: 2,
        gas_price: gwei(1),
        gas_limit: 120_000,
        to: Some(contract),
        value: U256::ZERO,
        data: vec![],
    };

    let mut bad_sig = transfer(0, sink, 5, 21_000).sign(&rich1.key);
    bad_sig.signature.v ^= 0x40; // tampered: recovery id no longer 27/28

    vec![
        transfer(0, sink, 1, 21_000).sign(&rich0.key),
        create.sign(&rich0.key),
        call.sign(&rich0.key),
        bad_sig,
        transfer(0, rich0.address, 7, 21_000).sign(&rich1.key),
        transfer(5, sink, 9, 21_000).sign(&rich1.key), // nonce gap → reject
        transfer(1, sink, 11, 21_000).sign(&rich1.key),
        transfer(0, sink, 1, 21_000).sign(&poor.key), // cannot cover gas → reject
    ]
}

/// Everything a block observer could compare between two runs.
#[derive(Debug, PartialEq)]
struct Observation {
    outcomes: Vec<Result<sc_primitives::H256, TxError>>,
    block: sc_chain::Block,
    receipts: Vec<sc_chain::Receipt>,
    balances: Vec<U256>,
    nonces: Vec<u64>,
    contract_storage: U256,
}

fn observe(
    net: &Testnet,
    wallets: &[Wallet],
    outcomes: Vec<Result<sc_primitives::H256, TxError>>,
) -> Observation {
    let head = net.head().clone();
    let receipts = net
        .receipts_in_block(head.number)
        .into_iter()
        .cloned()
        .collect();
    Observation {
        outcomes,
        receipts,
        balances: wallets.iter().map(|w| net.balance_of(w.address)).collect(),
        nonces: wallets.iter().map(|w| net.nonce_of(w.address)).collect(),
        contract_storage: net.storage_at(contract_address(wallets[0].address, 1), U256::ZERO),
        block: head,
    }
}

#[test]
fn batch_pipeline_is_observably_identical_to_serial_reference() {
    let (mut serial_net, wallets) = fresh_net();
    let txs = mixed_batch(&wallets);

    let serial_outcomes: Vec<_> = txs.iter().map(|t| serial_net.submit(t.clone())).collect();
    serial_net.mine_block_serial();
    let serial = observe(&serial_net, &wallets, serial_outcomes);

    let (mut batch_net, _) = fresh_net();
    let batch_outcomes = batch_net.submit_batch(txs);
    batch_net.mine_block();
    let batch = observe(&batch_net, &wallets, batch_outcomes);

    assert_eq!(serial, batch);

    // Sanity on the mix itself: the rejects rejected, the contract ran.
    assert_eq!(serial.outcomes[3], Err(TxError::BadSignature));
    assert!(matches!(serial.outcomes[5], Err(TxError::BadNonce { .. })));
    assert!(matches!(
        serial.outcomes[7],
        Err(TxError::InsufficientFunds)
    ));
    assert_eq!(serial.outcomes.iter().filter(|o| o.is_ok()).count(), 5);
    assert_eq!(serial.contract_storage, U256::from_u64(42));
    assert!(serial.receipts.iter().all(|r| r.success));
}

#[test]
fn warm_analysis_cache_changes_gas_and_results_in_no_way() {
    let (mut net, _) = fresh_net();
    let owner = net.funded_wallet("cache-owner", ether(10));

    let deploy = net
        .deploy(&owner, PURE_INITCODE.to_vec(), U256::ZERO, 200_000)
        .expect("deploy");
    assert!(deploy.success);
    let contract = deploy.contract_address.unwrap();

    // First call analyses the runtime code cold; later calls must hit the
    // cache and be byte-identical in every receipt field that matters.
    let cold = net
        .execute(&owner, contract, U256::ZERO, vec![], 120_000)
        .expect("cold call");
    let cold_stats = net.analysis_cache().stats();

    let mut warm_receipts = Vec::new();
    for _ in 0..4 {
        warm_receipts.push(
            net.execute(&owner, contract, U256::ZERO, vec![], 120_000)
                .expect("warm call"),
        );
    }
    let warm_stats = net.analysis_cache().stats();

    for warm in &warm_receipts {
        assert_eq!(warm.success, cold.success);
        assert_eq!(warm.gas_used, cold.gas_used, "warm cache altered gas");
        assert_eq!(warm.output, cold.output);
        assert_eq!(warm.logs, cold.logs);
    }
    assert_eq!(
        warm_stats.misses, cold_stats.misses,
        "warm calls must not re-analyse"
    );
    assert!(warm_stats.hits >= cold_stats.hits + 4);
}

#[test]
fn empty_and_reject_only_batches_mine_empty_blocks() {
    let (mut net, wallets) = fresh_net();
    assert!(net.submit_batch(vec![]).is_empty());
    let block = net.mine_block();
    assert!(block.transactions.is_empty());

    // A batch where every entry is rejected must leave state untouched.
    let mut bad = transfer(0, Address([0x77; 20]), 1, 21_000).sign(&wallets[0].key);
    bad.signature.v ^= 0x40;
    let outcomes = net.submit_batch(vec![
        bad,
        transfer(9, Address([0x77; 20]), 1, 21_000).sign(&wallets[0].key),
    ]);
    assert_eq!(outcomes[0], Err(TxError::BadSignature));
    assert!(matches!(outcomes[1], Err(TxError::BadNonce { .. })));
    let before: Vec<_> = wallets.iter().map(|w| net.balance_of(w.address)).collect();
    let block = net.mine_block();
    assert!(block.transactions.is_empty());
    let after: Vec<_> = wallets.iter().map(|w| net.balance_of(w.address)).collect();
    assert_eq!(before, after);
}
