//! Property tests for the flat-state overlay engine: whatever sequence
//! of mutations, seals and rollbacks runs, the flat reads and the trie
//! commitments must describe the same world.
//!
//! * Every storage proof generated at the current root proves exactly
//!   the value the flat overlay answers.
//! * Rolling back a sealed layer restores the prior root bit for bit.
//! * The canonical snapshot round-trips: export → import → fold lands
//!   on the identical root, and re-export reproduces identical bytes —
//!   i.e. the flat content alone determines the commitment.

use proptest::prelude::*;
use sc_chain::WorldState;
use sc_evm::host::Host;
use sc_primitives::{Address, H256, U256};

#[derive(Debug, Clone)]
enum Step {
    /// Faucet-style mint (out-of-band balance write).
    Mint { who: u8, wei: u64 },
    /// Storage write; `val == 0` deletes the slot.
    Store { who: u8, slot: u8, val: u64 },
    /// Nonce bump (journaled mutator).
    Bump { who: u8 },
    /// Seal a "block": fold the root, close the undo layer.
    Seal,
    /// Roll the newest sealed layer back (no-op when none remain).
    Rollback,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..4, 1u64..1_000_000).prop_map(|(who, wei)| Step::Mint { who, wei }),
        (0u8..4, 0u8..6, 0u64..50).prop_map(|(who, slot, val)| Step::Store { who, slot, val }),
        (0u8..4, 0u8..6, 0u64..50).prop_map(|(who, slot, val)| Step::Store { who, slot, val }),
        (0u8..4).prop_map(|who| Step::Bump { who }),
        Just(Step::Seal),
        Just(Step::Seal),
        Just(Step::Rollback),
    ]
}

fn addr(b: u8) -> Address {
    Address([b + 1; 20])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn overlay_reads_match_trie_commitments(
        steps in proptest::collection::vec(arb_step(), 1..60)
    ) {
        let mut s = WorldState::new();
        s.begin_undo_layer();
        let base_root = s.state_root();
        // Stacks of sealed layers and the roots they sealed at.
        let mut layers = Vec::new();
        let mut roots: Vec<H256> = Vec::new();

        for step in &steps {
            match *step {
                Step::Mint { who, wei } => s.mint(addr(who), U256::from_u64(wei)),
                Step::Store { who, slot, val } => {
                    s.set_storage(addr(who), U256::from_u64(slot as u64), U256::from_u64(val));
                    s.clear_tx_scratch();
                }
                Step::Bump { who } => {
                    s.bump_nonce(addr(who));
                    s.clear_tx_scratch();
                }
                Step::Seal => {
                    roots.push(s.state_root());
                    layers.push(s.take_undo_layer());
                }
                Step::Rollback => {
                    if let Some(layer) = layers.pop() {
                        // Open writes since the seal first, then the
                        // sealed block's own layer — newest first.
                        let open = s.take_undo_layer();
                        s.apply_undo(open);
                        s.apply_undo(layer);
                        roots.pop();
                        let expect = roots.last().copied().unwrap_or(base_root);
                        prop_assert_eq!(
                            s.state_root(),
                            expect,
                            "rollback must restore the prior commitment"
                        );
                    }
                }
            }
        }

        // Trie-backed reads (via proof replay) agree with flat reads on
        // every (account, slot) the workload could have touched.
        let root = s.state_root();
        for who in 0u8..4 {
            let exists = s.account_exists(addr(who));
            for slot in 0u8..6 {
                let key = U256::from_u64(slot as u64);
                let flat = s.storage(addr(who), key);
                // A non-existent account is absent from the account
                // trie, so the root commits all its slots to zero even
                // though the overlay retains them for resurrection —
                // the same semantics the account-map engine had.
                let committed = if exists { flat } else { U256::ZERO };
                let proof = s.prove_storage(addr(who), key);
                prop_assert_eq!(proof.value, flat, "proof claims the flat value");
                prop_assert_eq!(
                    proof.proven_value(root).expect("proof verifies"),
                    committed,
                    "root commits the existing account's flat value"
                );
            }
        }

        // Snapshot round-trip: flat content alone determines the root.
        let blob = s.export_snapshot();
        let mut imported = WorldState::import_snapshot(&blob).expect("canonical blob");
        prop_assert_eq!(imported.state_root(), root, "imported fold matches");
        prop_assert_eq!(imported.export_snapshot(), blob, "re-export is bit-identical");
    }
}
