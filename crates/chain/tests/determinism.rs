//! Determinism pins: golden block hashes, state roots and storage
//! proofs captured from the storage engine, asserted bit-identical on
//! every future engine revision.
//!
//! The values below were recorded on the pre-overlay engine (PR 7's
//! `WorldState` folding dirty sets straight into the tries). The flat
//! overlay refactor — and anything after it — must reproduce them
//! byte for byte: a changed pin means the engine no longer commits the
//! same authenticated state, which would fork every existing chain.
//!
//! The workload deliberately crosses every engine surface: funded
//! wallets (faucet mints), contract creation, storage writes and
//! overwrites, zeroing a slot, plain transfers, history tracking with
//! a rollback + divergent re-mine, and a storage proof against the
//! head commitment.

use sc_chain::{ChainConfig, Testnet};
use sc_crypto::keccak256;
use sc_primitives::{ether, Address, U256};

/// Runtime that stores calldata word 1 at the slot named by calldata
/// word 0: `PUSH1 32 CALLDATALOAD PUSH1 0 CALLDATALOAD SSTORE STOP`.
const SSTORE_RUNTIME: [u8; 8] = [0x60, 0x20, 0x35, 0x60, 0x00, 0x35, 0x55, 0x00];

fn sstore_initcode() -> Vec<u8> {
    let mut code = vec![0x67];
    code.extend_from_slice(&SSTORE_RUNTIME);
    code.extend_from_slice(&[0x60, 0x00, 0x52, 0x60, 0x08, 0x60, 0x18, 0xf3]);
    code
}

fn store_calldata(key: U256, value: U256) -> Vec<u8> {
    let mut data = Vec::with_capacity(64);
    data.extend_from_slice(&key.to_be_bytes());
    data.extend_from_slice(&value.to_be_bytes());
    data
}

/// Drives the pinned workload and returns
/// `(net, store_contract_address)` at the final head.
fn pinned_workload() -> (Testnet, Address) {
    let mut net = Testnet::with_config(ChainConfig::default());
    let alice = net.funded_wallet("pin-alice", ether(100));
    let bob = net.funded_wallet("pin-bob", ether(100));

    let r = net
        .deploy(&alice, sstore_initcode(), U256::ZERO, 100_000)
        .expect("deploy");
    assert!(r.success, "deploy failed: {:?}", r.failure);
    let store = r.contract_address.expect("created");

    // Storage writes: fresh slots, an overwrite, and a zeroing.
    for (slot, value) in [(1u64, 0xa1u64), (2, 0xa2), (1, 0xb1), (2, 0)] {
        let r = net
            .execute(
                &alice,
                store,
                U256::ZERO,
                store_calldata(U256::from_u64(slot), U256::from_u64(value)),
                60_000,
            )
            .expect("store");
        assert!(r.success, "store failed: {:?}", r.failure);
    }

    // Plain transfer between the wallets.
    net.execute(&bob, alice.address, ether(3), Vec::new(), 21_000)
        .expect("transfer");

    // A rollback + divergent re-mine: history rollback must restore the
    // exact parent boundary, and the replacement block must hash the
    // same as if the orphaned block never existed.
    net.enable_history();
    let r = net
        .execute(
            &bob,
            store,
            U256::ZERO,
            store_calldata(U256::from_u64(7), U256::from_u64(0x77)),
            60_000,
        )
        .expect("store");
    assert!(r.success);
    let orphaned = net.rollback_head_block().expect("rollback");
    assert_eq!(net.storage_at(store, U256::from_u64(7)), U256::ZERO);
    let r = net
        .execute(
            &bob,
            store,
            U256::ZERO,
            store_calldata(U256::from_u64(8), U256::from_u64(0x88)),
            60_000,
        )
        .expect("store");
    assert!(r.success);
    assert_ne!(net.head().hash, orphaned.hash, "divergent re-mine");

    (net, store)
}

#[test]
fn golden_chain_commitments_replay_bit_identically() {
    let (mut net, store) = pinned_workload();
    let head = net.head().clone();

    assert_eq!(head.number, 7, "workload shape changed");
    assert_eq!(
        format!("{}", head.hash),
        "0xc4da10aeee643942414aa698fae10bd8e9a653200e8635bbac93a19976f1a069",
        "head block hash diverged from the pinned engine"
    );
    assert_eq!(
        format!("{}", head.state_root),
        "0x36a25f768eb14a596a3cbabf689ada9279881ad4edf16240d948f8163559ad04",
        "state root diverged from the pinned engine"
    );
    assert_eq!(
        format!("{}", head.receipts_root),
        "0x19f7cf5d2bb182fe08a7265c7054339a6181ebbc2419a1a0e94256ec59b3696d",
        "receipts root diverged from the pinned engine"
    );

    // The storage proof for the overwritten slot: anchored to the head
    // root, its witness bytes are part of the pinned surface too (a
    // light client replays exactly these nodes).
    let proof = net.prove_storage(store, U256::ONE);
    assert_eq!(proof.value, U256::from_u64(0xb1));
    assert_eq!(proof.root, head.state_root, "proof anchors to the head");
    proof.verify(head.state_root).expect("proof verifies");
    let mut witness = Vec::new();
    for node in proof.account_proof.iter().chain(&proof.storage_proof) {
        witness.extend_from_slice(node);
    }
    assert_eq!(
        format!("{}", keccak256(&witness)),
        "0xb0e79d7fb44d64507b6bedb055a5b0326e1b6da403f1bc2a0e707cc6a7e8d0db",
        "proof witness bytes diverged from the pinned engine"
    );

    // Zeroed slot proves exclusion under the same root.
    let gone = net.prove_storage(store, U256::from_u64(2));
    assert_eq!(gone.value, U256::ZERO);
    gone.verify(head.state_root)
        .expect("exclusion proof verifies");
}

#[test]
fn golden_run_is_rerun_stable() {
    let (mut a, _) = pinned_workload();
    let (mut b, _) = pinned_workload();
    assert_eq!(a.head().hash, b.head().hash);
    assert_eq!(a.state.state_root(), b.state.state_root());
}

/// Prints the pin values (run with `--nocapture` to recapture after an
/// intentional, consensus-breaking format change).
#[test]
fn print_pins() {
    let (mut net, store) = pinned_workload();
    let head = net.head().clone();
    let proof = net.prove_storage(store, U256::ONE);
    let mut witness = Vec::new();
    for node in proof.account_proof.iter().chain(&proof.storage_proof) {
        witness.extend_from_slice(node);
    }
    println!("PIN head.number    = {}", head.number);
    println!("PIN head.hash      = {}", head.hash);
    println!("PIN state_root     = {}", head.state_root);
    println!("PIN receipts_root  = {}", head.receipts_root);
    println!("PIN proof_digest   = {}", keccak256(&witness));
}
