//! Property tests for the chain: value conservation, nonce monotonicity
//! and determinism under random transaction workloads.

use proptest::prelude::*;
use sc_chain::{Testnet, Transaction, Wallet};
use sc_primitives::{ether, U256};

#[derive(Debug, Clone)]
struct Op {
    from: usize,
    to: usize,
    wei: u64,
    gas_limit: u64,
}

fn arb_op() -> impl Strategy<Value = Op> {
    (0usize..4, 0usize..4, 0u64..2_000_000_000, 21_000u64..60_000).prop_map(
        |(from, to, wei, gas_limit)| Op {
            from,
            to,
            wei,
            gas_limit,
        },
    )
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(arb_op(), 0..24)
}

/// How a batch entry should be constructed: valid, or corrupted into one
/// of the admission rejects the parallel pipeline must mirror exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BatchKind {
    Valid,
    BadSig,
    BadNonce,
}

#[derive(Debug, Clone)]
struct BatchOp {
    op: Op,
    kind: BatchKind,
}

fn arb_batch_ops() -> impl Strategy<Value = Vec<BatchOp>> {
    proptest::collection::vec(
        (arb_op(), 0u8..10).prop_map(|(op, k)| BatchOp {
            op,
            kind: match k {
                0 => BatchKind::BadSig,
                1 => BatchKind::BadNonce,
                _ => BatchKind::Valid,
            },
        }),
        0..24,
    )
}

fn wallets() -> Vec<Wallet> {
    (0..4)
        .map(|i| Wallet::from_seed(&format!("w{i}")))
        .collect()
}

fn total_supply(net: &Testnet, wallets: &[Wallet]) -> U256 {
    let mut sum = net.balance_of(net.config().coinbase);
    for w in wallets {
        sum = sum.wrapping_add(net.balance_of(w.address));
    }
    sum
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn value_is_conserved(ops in arb_ops()) {
        let mut net = Testnet::new();
        let ws = wallets();
        for w in &ws {
            net.faucet(w.address, ether(10));
        }
        let initial = total_supply(&net, &ws);
        for op in &ops {
            let from = &ws[op.from];
            let tx = Transaction {
                nonce: net.nonce_of(from.address),
                gas_price: sc_primitives::gwei(1),
                gas_limit: op.gas_limit,
                to: Some(ws[op.to].address),
                value: U256::from_u64(op.wei),
                data: vec![],
            };
            // Some submissions are legitimately rejected (balance); both
            // paths must conserve value.
            let _ = net.submit(tx.sign(&from.key));
            net.mine_block();
        }
        prop_assert_eq!(total_supply(&net, &ws), initial, "wei created or destroyed");
    }

    #[test]
    fn nonces_count_accepted_transactions(ops in arb_ops()) {
        let mut net = Testnet::new();
        let ws = wallets();
        for w in &ws {
            net.faucet(w.address, ether(10));
        }
        let mut accepted = [0u64; 4];
        for op in &ops {
            let from = &ws[op.from];
            let tx = Transaction {
                nonce: net.nonce_of(from.address),
                gas_price: sc_primitives::gwei(1),
                gas_limit: op.gas_limit,
                to: Some(ws[op.to].address),
                value: U256::from_u64(op.wei),
                data: vec![],
            };
            if net.submit(tx.sign(&from.key)).is_ok() {
                accepted[op.from] += 1;
            }
            net.mine_block();
        }
        for (i, w) in ws.iter().enumerate() {
            prop_assert_eq!(net.nonce_of(w.address), accepted[i]);
        }
    }

    #[test]
    fn batch_admission_matches_serial_reference(ops in arb_batch_ops()) {
        // Pre-sign one batch: per-sender sequential nonces, with some
        // entries corrupted into rejects (tampered signature / nonce gap).
        let build_txs = || {
            let ws = wallets();
            let mut next_nonce = [0u64; 4];
            ops.iter()
                .map(|op| {
                    let from = &ws[op.op.from];
                    let nonce = match op.kind {
                        BatchKind::BadNonce => next_nonce[op.op.from] + 7,
                        _ => {
                            let n = next_nonce[op.op.from];
                            next_nonce[op.op.from] += 1;
                            n
                        }
                    };
                    let tx = Transaction {
                        nonce,
                        gas_price: sc_primitives::gwei(1),
                        gas_limit: op.op.gas_limit,
                        to: Some(ws[op.op.to].address),
                        value: U256::from_u64(op.op.wei),
                        data: vec![],
                    };
                    let mut signed = tx.sign(&from.key);
                    if op.kind == BatchKind::BadSig {
                        signed.signature.v ^= 0x40;
                    }
                    signed
                })
                .collect::<Vec<_>>()
        };

        let fresh = || {
            let mut net = Testnet::new();
            for w in &wallets() {
                net.faucet(w.address, ether(10));
            }
            net
        };

        let mut serial_net = fresh();
        let serial: Vec<_> = build_txs()
            .into_iter()
            .map(|t| serial_net.submit(t))
            .collect();
        let serial_block = serial_net.mine_block_serial();

        let mut batch_net = fresh();
        let batch = batch_net.submit_batch(build_txs());
        let batch_block = batch_net.mine_block();

        prop_assert_eq!(&serial, &batch, "admission outcomes diverged");
        prop_assert_eq!(serial_block.hash, batch_block.hash, "blocks diverged");
        for w in &wallets() {
            prop_assert_eq!(
                serial_net.balance_of(w.address),
                batch_net.balance_of(w.address)
            );
            prop_assert_eq!(serial_net.nonce_of(w.address), batch_net.nonce_of(w.address));
        }
    }

    #[test]
    fn workload_is_deterministic(ops in arb_ops()) {
        let run = |ops: &[Op]| {
            let mut net = Testnet::new();
            let ws = wallets();
            for w in &ws {
                net.faucet(w.address, ether(10));
            }
            for op in ops {
                let from = &ws[op.from];
                let tx = Transaction {
                    nonce: net.nonce_of(from.address),
                    gas_price: sc_primitives::gwei(1),
                    gas_limit: op.gas_limit,
                    to: Some(ws[op.to].address),
                    value: U256::from_u64(op.wei),
                    data: vec![],
                };
                let _ = net.submit(tx.sign(&from.key));
                net.mine_block();
            }
            (
                ws.iter().map(|w| net.balance_of(w.address)).collect::<Vec<_>>(),
                net.head().hash,
            )
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }
}
