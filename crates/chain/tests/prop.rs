//! Property tests for the chain: value conservation, nonce monotonicity
//! and determinism under random transaction workloads.

use proptest::prelude::*;
use sc_chain::{Testnet, Transaction, Wallet};
use sc_primitives::{ether, U256};

#[derive(Debug, Clone)]
struct Op {
    from: usize,
    to: usize,
    wei: u64,
    gas_limit: u64,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0usize..4, 0usize..4, 0u64..2_000_000_000, 21_000u64..60_000).prop_map(
            |(from, to, wei, gas_limit)| Op {
                from,
                to,
                wei,
                gas_limit,
            },
        ),
        0..24,
    )
}

fn wallets() -> Vec<Wallet> {
    (0..4).map(|i| Wallet::from_seed(&format!("w{i}"))).collect()
}

fn total_supply(net: &Testnet, wallets: &[Wallet]) -> U256 {
    let mut sum = net.balance_of(net.config().coinbase);
    for w in wallets {
        sum = sum.wrapping_add(net.balance_of(w.address));
    }
    sum
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn value_is_conserved(ops in arb_ops()) {
        let mut net = Testnet::new();
        let ws = wallets();
        for w in &ws {
            net.faucet(w.address, ether(10));
        }
        let initial = total_supply(&net, &ws);
        for op in &ops {
            let from = &ws[op.from];
            let tx = Transaction {
                nonce: net.nonce_of(from.address),
                gas_price: sc_primitives::gwei(1),
                gas_limit: op.gas_limit,
                to: Some(ws[op.to].address),
                value: U256::from_u64(op.wei),
                data: vec![],
            };
            // Some submissions are legitimately rejected (balance); both
            // paths must conserve value.
            let _ = net.submit(tx.sign(&from.key));
            net.mine_block();
        }
        prop_assert_eq!(total_supply(&net, &ws), initial, "wei created or destroyed");
    }

    #[test]
    fn nonces_count_accepted_transactions(ops in arb_ops()) {
        let mut net = Testnet::new();
        let ws = wallets();
        for w in &ws {
            net.faucet(w.address, ether(10));
        }
        let mut accepted = [0u64; 4];
        for op in &ops {
            let from = &ws[op.from];
            let tx = Transaction {
                nonce: net.nonce_of(from.address),
                gas_price: sc_primitives::gwei(1),
                gas_limit: op.gas_limit,
                to: Some(ws[op.to].address),
                value: U256::from_u64(op.wei),
                data: vec![],
            };
            if net.submit(tx.sign(&from.key)).is_ok() {
                accepted[op.from] += 1;
            }
            net.mine_block();
        }
        for (i, w) in ws.iter().enumerate() {
            prop_assert_eq!(net.nonce_of(w.address), accepted[i]);
        }
    }

    #[test]
    fn workload_is_deterministic(ops in arb_ops()) {
        let run = |ops: &[Op]| {
            let mut net = Testnet::new();
            let ws = wallets();
            for w in &ws {
                net.faucet(w.address, ether(10));
            }
            for op in ops {
                let from = &ws[op.from];
                let tx = Transaction {
                    nonce: net.nonce_of(from.address),
                    gas_price: sc_primitives::gwei(1),
                    gas_limit: op.gas_limit,
                    to: Some(ws[op.to].address),
                    value: U256::from_u64(op.wei),
                    data: vec![],
                };
                let _ = net.submit(tx.sign(&from.key));
                net.mine_block();
            }
            (
                ws.iter().map(|w| net.balance_of(w.address)).collect::<Vec<_>>(),
                net.head().hash,
            )
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }
}
