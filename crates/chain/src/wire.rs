//! Wire codec for gossiped chain objects.
//!
//! Blocks, headers and signed transactions travel between nodes as
//! canonical RLP so a peer can re-derive every identity locally: block
//! and header decoders recompute the hash from the decoded fields, and
//! transaction senders are recovered from the signature, never trusted
//! from the wire.

use sc_primitives::rlp::{self, Item};
use sc_primitives::{Address, H256, U256};
use std::fmt;

/// Error decoding a gossiped payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The bytes are not canonical RLP.
    Rlp(rlp::DecodeError),
    /// The RLP decoded, but its shape doesn't match the schema; the
    /// string names the offending field.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Rlp(e) => write!(f, "invalid RLP: {e}"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<rlp::DecodeError> for WireError {
    fn from(e: rlp::DecodeError) -> WireError {
        WireError::Rlp(e)
    }
}

pub(crate) fn as_list<'a>(item: &'a Item, what: &'static str) -> Result<&'a [Item], WireError> {
    match item {
        Item::List(items) => Ok(items),
        Item::Bytes(_) => Err(WireError::Malformed(what)),
    }
}

pub(crate) fn as_uint(item: &Item, what: &'static str) -> Result<U256, WireError> {
    item.as_uint().ok_or(WireError::Malformed(what))
}

pub(crate) fn as_u64(item: &Item, what: &'static str) -> Result<u64, WireError> {
    as_uint(item, what)?
        .to_u64()
        .ok_or(WireError::Malformed(what))
}

pub(crate) fn as_h256(item: &Item, what: &'static str) -> Result<H256, WireError> {
    match item {
        Item::Bytes(b) if b.len() == 32 => {
            let mut h = [0u8; 32];
            h.copy_from_slice(b);
            Ok(H256(h))
        }
        _ => Err(WireError::Malformed(what)),
    }
}

pub(crate) fn as_bytes<'a>(item: &'a Item, what: &'static str) -> Result<&'a [u8], WireError> {
    match item {
        Item::Bytes(b) => Ok(b),
        Item::List(_) => Err(WireError::Malformed(what)),
    }
}

/// Decodes the `to` field: the empty string means contract creation,
/// 20 raw bytes mean a call target; anything else is malformed.
pub(crate) fn as_opt_address(
    item: &Item,
    what: &'static str,
) -> Result<Option<Address>, WireError> {
    match item {
        Item::Bytes(b) if b.is_empty() => Ok(None),
        Item::Bytes(b) if b.len() == 20 => {
            let mut a = [0u8; 20];
            a.copy_from_slice(b);
            Ok(Some(Address(a)))
        }
        _ => Err(WireError::Malformed(what)),
    }
}
