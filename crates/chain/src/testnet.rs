//! A single-node Ethereum-style test network ("Kovan simulator").
//!
//! Deterministic, in-process, instant-sealing: every submitted transaction
//! lands in the next mined block, blocks carry a controllable timestamp
//! (the paper's betting windows T0..T3 are driven by `block.timestamp`),
//! and gas accounting follows the Yellow-Paper rules end to end:
//! intrinsic gas, execution, the refund cap of `gas_used / 2`, and miner
//! payment.

use crate::block::{self, Block, FailureReason, Receipt};
use crate::parallel::{self, ExecMode, SealReport};
use crate::proof::{AccountProof, ReceiptProof, StorageProof};
use crate::state::{DiffLayer, WorldState};
use crate::tx::{SignedTransaction, Transaction, Wallet};
use sc_crypto::ecdsa::recover_addresses_batch;
use sc_evm::gas;
use sc_evm::host::{BlockEnv, Env, Host, TxEnv};
use sc_evm::{AnalysisCache, CallParams, Evm};
use sc_mempool::{Mempool, PoolConfig, PoolError, TxMeta};
use sc_primitives::{Address, H256, U256};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Transaction admission errors (mempool-level rejections).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxError {
    /// Signature did not recover.
    BadSignature,
    /// Nonce does not match the account's next nonce.
    BadNonce {
        /// Nonce required by the account state.
        expected: u64,
        /// Nonce carried by the transaction.
        got: u64,
    },
    /// Balance cannot cover `value + gas_limit * gas_price`.
    InsufficientFunds,
    /// `gas_limit` below the intrinsic cost of the payload.
    IntrinsicGasTooLow {
        /// The computed intrinsic cost.
        required: u64,
    },
    /// `gas_limit` above the block gas limit.
    ExceedsBlockGasLimit,
    /// Pooled mode: a same-nonce replacement did not offer the
    /// required fee bump.
    Underpriced {
        /// The minimum gas price a replacement must offer.
        required: U256,
    },
    /// Pooled mode: the pool is full and this fee does not beat the
    /// cheapest resident's.
    PoolFull {
        /// The gas price the transaction must exceed to be admitted.
        must_exceed: U256,
    },
    /// Pooled mode: the transaction was admitted earlier but displaced
    /// before it could be mined (capacity eviction or a same-nonce
    /// replacement). Re-submitting at a higher fee is the remedy.
    Evicted,
}

impl fmt::Display for TxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxError::BadSignature => write!(f, "invalid signature"),
            TxError::BadNonce { expected, got } => {
                write!(f, "bad nonce: expected {expected}, got {got}")
            }
            TxError::InsufficientFunds => write!(f, "insufficient funds for gas * price + value"),
            TxError::IntrinsicGasTooLow { required } => {
                write!(f, "intrinsic gas too low: need {required}")
            }
            TxError::ExceedsBlockGasLimit => write!(f, "gas limit exceeds block gas limit"),
            TxError::Underpriced { required } => {
                write!(f, "replacement underpriced: need gas price >= {required}")
            }
            TxError::PoolFull { must_exceed } => {
                write!(f, "transaction pool full: need gas price > {must_exceed}")
            }
            TxError::Evicted => write!(f, "transaction evicted from the pool"),
        }
    }
}

impl std::error::Error for TxError {}

/// Why [`Testnet::import_block`] refused a gossiped block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// Replaying the block's transactions did not reproduce the header:
    /// a signature failed to recover, an admission rule was violated,
    /// or the recomputed `state_root` / `receipts_root` / gas total
    /// disagreed with what the header claims.
    InvalidBlock {
        /// Which check failed.
        reason: &'static str,
    },
    /// Adopting the block's branch would roll back below the oldest
    /// undo layer this chain still holds (or history tracking is off).
    TooDeep,
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::InvalidBlock { reason } => write!(f, "invalid block: {reason}"),
            ImportError::TooDeep => write!(f, "reorg deeper than retained history"),
        }
    }
}

impl std::error::Error for ImportError {}

/// What [`Testnet::import_block`] did with a gossiped block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportOutcome {
    /// The block was already canonical or already stored as a side
    /// block — nothing changed. (Receivers use this to stop flooding.)
    AlreadyKnown,
    /// Stored as a side block; the canonical head did not change
    /// (lighter branch, or its ancestry has not connected yet).
    Side,
    /// The block extended the canonical head directly.
    Extended,
    /// A heavier branch won fork choice: `reverted` canonical blocks
    /// were rolled back and `applied` branch blocks replayed.
    Reorged {
        /// Canonical blocks rolled back.
        reverted: u64,
        /// Branch blocks applied in their place.
        applied: u64,
        /// Transactions that were in the reverted blocks but not in the
        /// new branch — no receipt exists for them any more, and their
        /// senders must resubmit.
        orphaned_txs: Vec<SignedTransaction>,
    },
}

/// Result of a read-only [`Testnet::call`].
///
/// A reverted `eth_call` used to be indistinguishable from a successful
/// one returning the same bytes; the flag makes the distinction typed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallResult {
    /// Return data (revert data when `reverted`).
    pub output: Vec<u8>,
    /// True iff execution did not complete successfully (explicit
    /// `REVERT` or a VM error such as out-of-gas).
    pub reverted: bool,
}

/// Configuration of the simulated network.
#[derive(Clone, Debug)]
pub struct ChainConfig {
    /// Seconds between blocks (Kovan used 4s).
    pub block_interval: u64,
    /// Block gas limit.
    pub block_gas_limit: u64,
    /// Miner beneficiary.
    pub coinbase: Address,
    /// Genesis timestamp.
    pub genesis_timestamp: u64,
    /// Gas price assumed by the convenience senders.
    pub default_gas_price: U256,
    /// Whether sealed blocks carry real `state_root` / `receipts_root`
    /// commitments (the default). Disabling skips the trie folds and
    /// seals zero roots — only the root-overhead benchmark should do
    /// this, as it breaks every proof and commitment invariant.
    pub commit_roots: bool,
    /// When set, arms the state engine's pruning archive with this
    /// retention window: each sealed block's changed trie spines are
    /// committed into a refcounted node store, historical storage
    /// proofs within the window are served by
    /// [`Testnet::prove_storage_at`], and nodes no retained root
    /// reaches are freed as the window slides. `None` (the default)
    /// keeps the archive off — live tries only, no extra memory.
    /// Requires `commit_roots`.
    pub prune_window: Option<usize>,
    /// How blocks execute their transactions. The default honours the
    /// `SC_EXEC_MODE` environment variable (see [`ExecMode::from_env`])
    /// and is [`ExecMode::Serial`] when unset, so the chaos suite and
    /// every existing test keep the reference executor unless CI
    /// explicitly opts a whole process into [`ExecMode::Parallel`].
    pub exec: ExecMode,
}

impl Default for ChainConfig {
    fn default() -> Self {
        ChainConfig {
            block_interval: 4,
            block_gas_limit: 8_000_000,
            coinbase: Address([0xc0; 20]),
            genesis_timestamp: 1_550_000_000, // Feb 2019, the paper's era
            default_gas_price: sc_primitives::gwei(1),
            commit_roots: true,
            prune_window: None,
            exec: ExecMode::from_env(),
        }
    }
}

/// A transaction admitted to the mempool, with the derivations made at
/// admission time cached alongside it.
///
/// Sender recovery (~an ECDSA scalar-mul) and the two keccaks are paid
/// once here; the mining commit phase and [`Testnet::effective_nonce`]
/// read the cached fields instead of re-deriving per transaction (the
/// seed re-recovered the sender O(pending) times per submit).
pub(crate) struct PendingTx {
    pub(crate) signed: SignedTransaction,
    pub(crate) sender: Address,
    pub(crate) hash: H256,
    pub(crate) intrinsic: u64,
}

impl PendingTx {
    /// Re-derives every cached field from the raw transaction, serially.
    /// This is the reference path: `mine_block_serial` rebuilds its
    /// pending set through here so the determinism suite can assert the
    /// cached/parallel pipeline changes nothing observable.
    ///
    /// A transaction whose signature no longer recovers is a typed
    /// [`TxError`], never a panic: admission validates before queueing, so
    /// the error is unreachable from the public API, but a malformed
    /// transaction handed to the reference path must not crash the node.
    fn derive(signed: SignedTransaction) -> Result<PendingTx, TxError> {
        let sender = signed.sender().map_err(|_| TxError::BadSignature)?;
        Ok(PendingTx {
            sender,
            hash: signed.hash(),
            intrinsic: gas::tx_intrinsic_gas(&signed.tx.data, signed.tx.is_create()),
            signed,
        })
    }
}

/// The simulated chain.
pub struct Testnet {
    /// World state (public for inspection in tests and benchmarks).
    pub state: WorldState,
    config: ChainConfig,
    blocks: Vec<Block>,
    pending: Vec<PendingTx>,
    receipts: HashMap<H256, Receipt>,
    /// Per-address log index: for each emitting address, the ascending
    /// list of block numbers holding at least one of its logs. Updated
    /// at commit time so address-filtered [`Testnet::logs`] queries
    /// touch only the relevant blocks instead of scanning the chain.
    log_index: HashMap<Address, Vec<u64>>,
    /// The fee market, when pooled mining is enabled: transactions are
    /// admitted here instead of `pending`, and the miner *packs* a block
    /// under the gas limit instead of taking everything. `None` keeps
    /// the historical behaviour (every admitted tx lands in the next
    /// block) bit-for-bit.
    pool: Option<Mempool<PendingTx>>,
    time: u64,
    /// Wei ever created through the faucet. Since the EVM only moves
    /// value, `state.total_balance()` must equal this after every block —
    /// the conservation invariant the fault-injection suite asserts.
    minted: U256,
    /// Jumpdest analyses shared by every EVM this chain spins up, so a
    /// contract's bitmap is computed once across all blocks and calls.
    analysis_cache: Arc<AnalysisCache>,
    /// Executor statistics of the most recently sealed block.
    last_seal: Option<SealReport>,
    /// Canonical hash → height index, maintained through seals and
    /// reorgs so gossip dedup and fork-point walks are O(1) per block.
    canon_index: HashMap<H256, u64>,
    /// Blocks received via gossip that are not canonical (competing
    /// branches, or blocks whose ancestry has not connected yet),
    /// keyed by hash. Canonical blocks that a reorg orphans move here
    /// so a counter-reorg can restore them without re-gossip.
    side_blocks: HashMap<H256, Block>,
    /// Per-block undo layers and rollback bookkeeping, when
    /// [`Testnet::enable_history`] has armed reorg support.
    history: Option<HistoryTracking>,
}

/// Rollback bookkeeping for one sealed block: the state undo layer plus
/// the chain-level values (`minted`, clock) as they stood when the
/// layer opened, i.e. right after the parent sealed.
struct BlockUndoRec {
    undo: DiffLayer,
    minted_before: U256,
    time_before: u64,
}

/// Reorg support state: one undo record per block sealed since history
/// was enabled, newest last, plus the open-layer snapshot values.
struct HistoryTracking {
    undo_stack: Vec<BlockUndoRec>,
    /// `minted` when the currently open undo layer began.
    open_minted: U256,
    /// The clock when the currently open undo layer began.
    open_time: u64,
}

impl Testnet {
    /// Boots a chain with the default configuration.
    pub fn new() -> Self {
        Self::with_config(ChainConfig::default())
    }

    /// Boots a chain with a custom configuration.
    pub fn with_config(config: ChainConfig) -> Self {
        // Genesis commits the empty tries: nothing exists yet.
        let genesis = Block {
            number: 0,
            timestamp: config.genesis_timestamp,
            parent_hash: H256::ZERO,
            hash: Block::compute_hash(
                0,
                config.genesis_timestamp,
                H256::ZERO,
                sc_trie::empty_root(),
                sc_trie::empty_root(),
                0,
                &[],
            ),
            state_root: sc_trie::empty_root(),
            receipts_root: sc_trie::empty_root(),
            transactions: Vec::new(),
            gas_used: 0,
        };
        let mut state = WorldState::new();
        if let Some(window) = config.prune_window {
            debug_assert!(config.commit_roots, "pruning archive needs commit_roots");
            state.enable_pruning(window);
            // Archive the genesis commitment (the empty tries) so the
            // window starts populated at block 0.
            state.state_root();
            state.commit_archive();
        }
        state.block_hashes.insert(0, genesis.hash);
        let canon_index = HashMap::from([(genesis.hash, 0)]);
        Testnet {
            state,
            time: config.genesis_timestamp,
            config,
            blocks: vec![genesis],
            pending: Vec::new(),
            pool: None,
            receipts: HashMap::new(),
            log_index: HashMap::new(),
            minted: U256::ZERO,
            analysis_cache: Arc::new(AnalysisCache::new()),
            last_seal: None,
            canon_index,
            side_blocks: HashMap::new(),
            history: None,
        }
    }

    /// The shared code-analysis cache (hit/miss stats for benchmarks).
    pub fn analysis_cache(&self) -> &Arc<AnalysisCache> {
        &self.analysis_cache
    }

    /// The chain configuration.
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// Current head block.
    pub fn head(&self) -> &Block {
        self.blocks.last().expect("genesis always present")
    }

    /// Merkle proof that `(address, slot)` holds its current value,
    /// anchored to the current folded state root. Immediately after a
    /// block seals (and until the next faucet mint or write) that root
    /// *is* the head header's `state_root`, so the proof lets a light
    /// verifier check the slot against the chain's own commitment —
    /// see [`StorageProof::verify`].
    pub fn prove_storage(&mut self, address: Address, slot: U256) -> StorageProof {
        debug_assert!(
            self.config.commit_roots,
            "storage proofs need commit_roots enabled"
        );
        self.state.prove_storage(address, slot)
    }

    /// Merkle proof that `(address, slot)` held its value at block
    /// `number` — served statelessly from the pruning archive, so it
    /// works for any canonical block whose root is still inside the
    /// retention window. `None` when the block is unknown, pruning is
    /// off ([`ChainConfig::prune_window`]), or the root has slid out of
    /// the window.
    pub fn prove_storage_at(
        &self,
        number: u64,
        address: Address,
        slot: U256,
    ) -> Option<StorageProof> {
        let root = self.block(number)?.state_root;
        self.state.prove_storage_at(root, address, slot).ok()
    }

    /// Merkle proof that `address` holds its current nonce and balance,
    /// anchored to the current folded state root (see
    /// [`Testnet::prove_storage`] for the anchoring rule). This is what
    /// a light submitter requests from its relay to cross-check nonce
    /// advice against the chain's own commitment.
    pub fn prove_account(&mut self, address: Address) -> AccountProof {
        debug_assert!(
            self.config.commit_roots,
            "account proofs need commit_roots enabled"
        );
        self.state.prove_account(address)
    }

    /// Merkle proof that `address` held its nonce and balance at block
    /// `number` — served statelessly from the pruning archive like
    /// [`Testnet::prove_storage_at`]. `None` when the block is unknown,
    /// pruning is off, or the root slid out of the retention window.
    pub fn prove_account_at(&self, number: u64, address: Address) -> Option<AccountProof> {
        let root = self.block(number)?.state_root;
        self.state.prove_account_at(root, address).ok()
    }

    /// Receipt-inclusion proof for a mined transaction: the receipt's
    /// consensus encoding plus its Merkle path in the block's receipts
    /// trie, verifiable against that header's `receipts_root` by a
    /// verifier holding nothing but headers
    /// ([`crate::light::HeaderClient::verified_receipt`]). `None` while
    /// the transaction is not mined on the canonical chain.
    pub fn prove_receipt(&self, tx_hash: H256) -> Option<ReceiptProof> {
        let receipt = self.receipt(tx_hash)?;
        let (block_number, tx_index) = (receipt.block_number, receipt.tx_index as u64);
        let receipt_rlp = receipt.rlp_encode();
        let mut trie = sc_trie::Trie::new();
        for r in self.receipts_in_block(block_number) {
            trie.insert(
                &sc_primitives::rlp::encode(&sc_primitives::rlp::Item::u64(r.tx_index as u64)),
                r.rlp_encode(),
            );
        }
        let proof = trie.prove(&sc_primitives::rlp::encode(&sc_primitives::rlp::Item::u64(
            tx_index,
        )));
        Some(ReceiptProof {
            tx_hash,
            block_number,
            tx_index,
            receipt_rlp,
            proof,
        })
    }

    /// Block by number.
    pub fn block(&self, number: u64) -> Option<&Block> {
        self.blocks.get(number as usize)
    }

    /// Receipt by transaction hash.
    pub fn receipt(&self, tx_hash: H256) -> Option<&Receipt> {
        self.receipts.get(&tx_hash)
    }

    /// All receipts in a block, in transaction order.
    pub fn receipts_in_block(&self, number: u64) -> Vec<&Receipt> {
        let Some(block) = self.block(number) else {
            return Vec::new();
        };
        let mut out: Vec<&Receipt> = block
            .transactions
            .iter()
            .filter_map(|t| self.receipts.get(&t.hash()))
            .collect();
        out.sort_by_key(|r| r.tx_index);
        out
    }

    /// Log query in the spirit of `eth_getLogs`: all logs in the block
    /// range `[from, to]`, optionally filtered by emitting address.
    ///
    /// Address-filtered queries go through the per-address index built
    /// at commit time, visiting only blocks that actually hold logs from
    /// that address — O(matching blocks), not O(chain length) — so
    /// session watchers polling for their contract's events stay cheap
    /// on a long shared chain.
    pub fn logs(&self, from: u64, to: u64, address: Option<Address>) -> Vec<sc_evm::LogEntry> {
        let to = to.min(self.head().number);
        let mut out = Vec::new();
        let mut scan = |n: u64, address: Option<Address>| {
            for receipt in self.receipts_in_block(n) {
                for log in &receipt.logs {
                    if address.is_none_or(|a| a == log.address) {
                        out.push(log.clone());
                    }
                }
            }
        };
        match address {
            Some(a) => {
                let blocks = self.log_index.get(&a).map_or(&[][..], Vec::as_slice);
                let start = blocks.partition_point(|&n| n < from);
                for &n in blocks[start..].iter().take_while(|&&n| n <= to) {
                    scan(n, address);
                }
            }
            None => {
                for n in from..=to {
                    scan(n, None);
                }
            }
        }
        out
    }

    /// The timestamp the *next* block will carry.
    pub fn now(&self) -> u64 {
        self.time + self.config.block_interval
    }

    /// Jumps the clock forward (models waiting for T1/T2/T3).
    pub fn advance_time(&mut self, seconds: u64) {
        self.time += seconds;
    }

    /// Mints balance (faucet / genesis allocation).
    pub fn faucet(&mut self, a: Address, amount: U256) {
        self.minted = self.minted.wrapping_add(amount);
        self.state.mint(a, amount);
    }

    /// Total wei ever minted through [`Testnet::faucet`]. Everything else
    /// the chain does is a transfer, so `state.total_balance()` must equal
    /// this at every block boundary (ether conservation).
    pub fn total_minted(&self) -> U256 {
        self.minted
    }

    /// Number of transactions admitted but not yet mined (fault-injection
    /// hook: lets wrappers observe what a dropped/delayed block holds).
    /// Counts the pool's residents in pooled mode.
    pub fn pending_count(&self) -> usize {
        self.pending.len() + self.pool.as_ref().map_or(0, Mempool::len)
    }

    /// Switches the chain to pooled mining: admissions go through a
    /// [`Mempool`] fee market and [`Testnet::mine_block`] *packs* a block
    /// under the configured block gas limit instead of sealing everything
    /// pending. Anything already queued migrates into the pool.
    pub fn enable_pool(&mut self, config: PoolConfig) {
        let mut pool = Mempool::new(config);
        let now = self.time;
        for ptx in self.pending.drain(..) {
            let meta = TxMeta {
                sender: ptx.sender,
                nonce: ptx.signed.tx.nonce,
                gas_price: ptx.signed.tx.gas_price,
                gas_limit: ptx.signed.tx.gas_limit,
                hash: ptx.hash,
            };
            // Already admitted once; nonce slots are distinct by
            // construction, so migration cannot fail.
            let admitted = pool.insert(meta, ptx, now);
            debug_assert!(admitted.is_ok(), "migrating distinct nonces cannot clash");
        }
        self.pool = Some(pool);
    }

    /// True when [`Testnet::enable_pool`] has switched this chain to
    /// pooled mining.
    pub fn pool_enabled(&self) -> bool {
        self.pool.is_some()
    }

    /// Earliest admission timestamp among pooled transactions — the
    /// anchor of a pooled miner's hold window. `None` when the pool is
    /// disabled or empty.
    pub fn pool_earliest_entry(&self) -> Option<u64> {
        self.pool.as_ref().and_then(Mempool::earliest_entry)
    }

    /// Hashes displaced from the pool (replacement, capacity eviction)
    /// since the last drain. Empty in outbox mode.
    pub fn drain_evicted(&mut self) -> Vec<H256> {
        self.pool
            .as_mut()
            .map(Mempool::drain_evicted)
            .unwrap_or_default()
    }

    /// Creates a funded deterministic wallet.
    pub fn funded_wallet(&mut self, seed: &str, balance: U256) -> Wallet {
        let w = Wallet::from_seed(seed);
        self.faucet(w.address, balance);
        w
    }

    /// Next valid nonce for an address (pending txs not counted).
    pub fn nonce_of(&self, a: Address) -> u64 {
        self.state.nonce(a)
    }

    /// Balance lookup.
    pub fn balance_of(&self, a: Address) -> U256 {
        self.state.balance(a)
    }

    /// Deployed code lookup.
    pub fn code_at(&self, a: Address) -> Vec<u8> {
        self.state.code(a).as_ref().clone()
    }

    /// Storage lookup.
    pub fn storage_at(&self, a: Address, key: U256) -> U256 {
        self.state.storage(a, key)
    }

    /// Validates and enqueues a signed transaction.
    pub fn submit(&mut self, signed: SignedTransaction) -> Result<H256, TxError> {
        let sender = signed.sender().map_err(|_| TxError::BadSignature)?;
        let intrinsic = gas::tx_intrinsic_gas(&signed.tx.data, signed.tx.is_create());
        self.admit(signed, sender, intrinsic)
    }

    /// Validates and enqueues a whole batch, recovering senders in
    /// parallel across CPU cores.
    ///
    /// Per-entry results are exactly what [`Testnet::submit`]ing each
    /// transaction in order would return: sender recovery is a pure
    /// function (fanned out via [`recover_addresses_batch`]), and the
    /// state-dependent checks — nonce sequencing, balance, block gas
    /// limit — run in the sequential admission loop below, so an entry
    /// sees every earlier entry's admission just like serial submits.
    pub fn submit_batch(&mut self, txs: Vec<SignedTransaction>) -> Vec<Result<H256, TxError>> {
        // Cheap serial pass: signing digests + intrinsic gas (pure, O(data)).
        let digests: Vec<_> = txs
            .iter()
            .map(|s| (s.tx.signing_hash(), s.signature))
            .collect();
        let intrinsics: Vec<u64> = txs
            .iter()
            .map(|s| gas::tx_intrinsic_gas(&s.tx.data, s.tx.is_create()))
            .collect();

        // Parallel pass: the expensive curve recoveries.
        let senders = recover_addresses_batch(&digests);

        // Sequential admission: order-sensitive, state-dependent checks.
        txs.into_iter()
            .zip(senders)
            .zip(intrinsics)
            .map(|((signed, sender), intrinsic)| {
                // EIP-2 low-s: checked here (not in the recovery kernel) to
                // mirror `SignedTransaction::sender` exactly.
                if !signed.signature.is_low_s() {
                    return Err(TxError::BadSignature);
                }
                let sender = sender.map_err(|_| TxError::BadSignature)?;
                self.admit(signed, sender, intrinsic)
            })
            .collect()
    }

    /// State-dependent half of admission, shared by the serial and batch
    /// submit paths. `sender` and `intrinsic` were derived by the caller.
    fn admit(
        &mut self,
        signed: SignedTransaction,
        sender: Address,
        intrinsic: u64,
    ) -> Result<H256, TxError> {
        if self.pool.is_some() {
            return self.admit_pooled(signed, sender, intrinsic);
        }
        let expected = self.effective_nonce(sender);
        if signed.tx.nonce != expected {
            return Err(TxError::BadNonce {
                expected,
                got: signed.tx.nonce,
            });
        }
        if signed.tx.gas_limit > self.config.block_gas_limit {
            return Err(TxError::ExceedsBlockGasLimit);
        }
        if signed.tx.gas_limit < intrinsic {
            return Err(TxError::IntrinsicGasTooLow {
                required: intrinsic,
            });
        }
        let upfront = U256::from_u64(signed.tx.gas_limit)
            .wrapping_mul(signed.tx.gas_price)
            .wrapping_add(signed.tx.value);
        if self.state.balance(sender) < upfront {
            return Err(TxError::InsufficientFunds);
        }
        let hash = signed.hash();
        self.pending.push(PendingTx {
            signed,
            sender,
            hash,
            intrinsic,
        });
        Ok(hash)
    }

    /// Pooled admission: the stateless checks are identical to outbox
    /// mode, but the nonce rule relaxes from "exactly next" to "not yet
    /// mined" (the pool holds future nonces until the gap fills), and
    /// the pool's fee market gets the final word — a taken nonce slot
    /// demands the replacement bump, a full pool demands a fee above
    /// the cheapest resident's.
    fn admit_pooled(
        &mut self,
        signed: SignedTransaction,
        sender: Address,
        intrinsic: u64,
    ) -> Result<H256, TxError> {
        let base = self.state.nonce(sender);
        if signed.tx.nonce < base {
            return Err(TxError::BadNonce {
                expected: base,
                got: signed.tx.nonce,
            });
        }
        if signed.tx.gas_limit > self.config.block_gas_limit {
            return Err(TxError::ExceedsBlockGasLimit);
        }
        if signed.tx.gas_limit < intrinsic {
            return Err(TxError::IntrinsicGasTooLow {
                required: intrinsic,
            });
        }
        let upfront = U256::from_u64(signed.tx.gas_limit)
            .wrapping_mul(signed.tx.gas_price)
            .wrapping_add(signed.tx.value);
        if self.state.balance(sender) < upfront {
            return Err(TxError::InsufficientFunds);
        }
        let hash = signed.hash();
        let meta = TxMeta {
            sender,
            nonce: signed.tx.nonce,
            gas_price: signed.tx.gas_price,
            gas_limit: signed.tx.gas_limit,
            hash,
        };
        let ptx = PendingTx {
            signed,
            sender,
            hash,
            intrinsic,
        };
        let now = self.time;
        let pool = self.pool.as_mut().expect("pooled admission path");
        match pool.insert(meta, ptx, now) {
            Ok(_) => Ok(hash),
            Err(PoolError::Underpriced { required }) => Err(TxError::Underpriced { required }),
            Err(PoolError::Full { must_exceed }) => Err(TxError::PoolFull { must_exceed }),
        }
    }

    /// Next nonce accounting for queued pending transactions — what a
    /// self-signing client must use for its next submission. Public so
    /// session engines batching transactions from many senders can sign
    /// against the mempool-aware nonce. In pooled mode this advances
    /// past the sender's contiguous run of pooled nonces.
    pub fn effective_nonce(&self, sender: Address) -> u64 {
        let base = self.state.nonce(sender);
        let queued = self.pending.iter().filter(|t| t.sender == sender).count() as u64;
        match &self.pool {
            Some(pool) => pool.next_nonce(sender, base + queued),
            None => base + queued,
        }
    }

    /// The transactions the next block will hold: everything pending in
    /// outbox mode; in pooled mode, a greedy fee-priority pack under the
    /// block gas limit (per-sender nonce order preserved, leftovers stay
    /// pooled for later blocks).
    fn take_minable(&mut self) -> Vec<PendingTx> {
        match self.pool.as_mut() {
            Some(pool) => {
                let state = &self.state;
                pool.pack(self.config.block_gas_limit, |a| state.nonce(a))
                    .into_iter()
                    .map(|(_, ptx)| ptx)
                    .collect()
            }
            None => std::mem::take(&mut self.pending),
        }
    }

    /// Mines the next block and returns it: all pending transactions in
    /// outbox mode, a fee-priority pack under the block gas limit in
    /// pooled mode.
    ///
    /// The expensive pre-execution work (sender recovery, tx hashing,
    /// intrinsic gas) was cached on each [`PendingTx`] at admission, so
    /// this is purely the sequential commit phase.
    pub fn mine_block(&mut self) -> Block {
        let txs = self.take_minable();
        let mode = self.config.exec;
        self.seal_block(txs, mode)
    }

    /// Reference mining path: ignores every admission-time cache and
    /// re-derives senders, hashes and intrinsic gas serially from the raw
    /// transactions before committing.
    ///
    /// Exists for the determinism suite — a block mined here must be
    /// byte-identical to [`Testnet::mine_block`]'s over the same pending
    /// set — and as the baseline for the pipeline benchmarks.
    pub fn mine_block_serial(&mut self) -> Block {
        let txs: Vec<PendingTx> = self
            .take_minable()
            .into_iter()
            .filter_map(|p| PendingTx::derive(p.signed).ok())
            .collect();
        self.seal_block(txs, ExecMode::Serial)
    }

    /// Executor statistics of the most recently mined block (`None`
    /// before the first seal). Benches and tests read the speculation /
    /// re-execution split here to assert conflict behaviour.
    pub fn last_seal_report(&self) -> Option<SealReport> {
        self.last_seal
    }

    /// Commit phase shared by both mining paths: executes the block's
    /// transactions under `mode`, then seals the header.
    fn seal_block(&mut self, txs: Vec<PendingTx>, mode: ExecMode) -> Block {
        self.time += self.config.block_interval;
        let number = self.head().number + 1;
        let timestamp = self.time;
        let parent_hash = self.head().hash;

        let (mut receipts, speculative, reexecuted) = match mode {
            ExecMode::Parallel => self.execute_block_parallel(&txs, number, timestamp),
            ExecMode::Serial => {
                let receipts = txs
                    .iter()
                    .map(|ptx| self.execute_transaction(ptx, number, timestamp))
                    .collect();
                (receipts, 0, 0)
            }
        };
        self.last_seal = Some(SealReport {
            mode,
            txs: txs.len(),
            speculative,
            reexecuted,
        });
        let mut block_gas = 0u64;
        for (index, receipt) in receipts.iter_mut().enumerate() {
            receipt.tx_index = index;
            block_gas += receipt.gas_used;
        }

        // Fold the block's writes into the authenticated tries once,
        // here — not per op — and seal the commitments into the header.
        let (state_root, receipts_root) = if self.config.commit_roots {
            (
                self.state.state_root(),
                block::receipts_root(receipts.iter()),
            )
        } else {
            (H256::ZERO, H256::ZERO)
        };

        let txs: Vec<SignedTransaction> = txs.into_iter().map(|p| p.signed).collect();
        let block = Block {
            number,
            timestamp,
            parent_hash,
            hash: Block::compute_hash(
                number,
                timestamp,
                parent_hash,
                state_root,
                receipts_root,
                block_gas,
                &txs,
            ),
            state_root,
            receipts_root,
            transactions: txs,
            gas_used: block_gas,
        };
        self.commit_block(&block, receipts);
        block
    }

    /// Commit tail shared by local sealing and gossip import: indexes
    /// the block and its receipts, maintains the 256-entry `BLOCKHASH`
    /// window, and closes the block's undo layer when history tracking
    /// is armed.
    fn commit_block(&mut self, block: &Block, receipts: Vec<Receipt>) {
        let number = block.number;
        if self.config.commit_roots {
            // Archive this seal's trie spines (and slide the pruning
            // window). No-op unless `prune_window` armed the archive.
            self.state.commit_archive();
        }
        self.state.block_hashes.insert(number, block.hash);
        // BLOCKHASH only reaches 256 ancestors: retire the hash that
        // just left the window so the map stays bounded.
        if number >= 256 {
            self.state.block_hashes.remove(&(number - 256));
        }
        for r in receipts {
            for log in &r.logs {
                let blocks = self.log_index.entry(log.address).or_default();
                if blocks.last() != Some(&number) {
                    blocks.push(number);
                }
            }
            self.receipts.insert(r.tx_hash, r);
        }
        self.canon_index.insert(block.hash, number);
        self.blocks.push(block.clone());
        if let Some(h) = &mut self.history {
            h.undo_stack.push(BlockUndoRec {
                undo: self.state.take_undo_layer(),
                minted_before: h.open_minted,
                time_before: h.open_time,
            });
            h.open_minted = self.minted;
            h.open_time = self.time;
        }
    }

    /// Optimistic parallel block execution: speculate every transaction
    /// concurrently over the pre-block state, then commit in block
    /// order — validated speculations apply their buffered write sets,
    /// conflicting ones re-execute serially at their slot. Returns the
    /// receipts plus the speculative/re-executed split.
    fn execute_block_parallel(
        &mut self,
        txs: &[PendingTx],
        number: u64,
        timestamp: u64,
    ) -> (Vec<Receipt>, usize, usize) {
        let outcomes = parallel::speculate_block(
            &self.state,
            &self.config,
            &self.analysis_cache,
            txs,
            number,
            timestamp,
        );
        let coinbase = self.config.coinbase;
        let mut receipts = Vec::with_capacity(txs.len());
        let mut speculative = 0;
        let mut reexecuted = 0;
        for (ptx, outcome) in txs.iter().zip(outcomes) {
            match outcome.try_commit(&mut self.state, coinbase) {
                Some(receipt) => {
                    speculative += 1;
                    receipts.push(receipt);
                }
                None => {
                    reexecuted += 1;
                    receipts.push(self.execute_transaction(ptx, number, timestamp));
                }
            }
        }
        (receipts, speculative, reexecuted)
    }

    /// Executes one transaction against the state (validation and sender
    /// recovery already done at admission; the cached derivations on the
    /// [`PendingTx`] are consumed here, not recomputed).
    fn execute_transaction(
        &mut self,
        ptx: &PendingTx,
        block_number: u64,
        timestamp: u64,
    ) -> Receipt {
        let tx = &ptx.signed.tx;
        let sender = ptx.sender;
        let tx_hash = ptx.hash;

        // Buy gas.
        let gas_cost = U256::from_u64(tx.gas_limit).wrapping_mul(tx.gas_price);
        let paid = self.state.transfer(sender, self.config.coinbase, gas_cost);
        debug_assert!(paid, "upfront balance validated at submit");

        let exec_gas = tx.gas_limit - ptx.intrinsic;

        let env = Env {
            block: BlockEnv {
                number: block_number,
                timestamp,
                coinbase: self.config.coinbase,
                difficulty: U256::from_u64(1),
                gas_limit: self.config.block_gas_limit,
            },
            tx: TxEnv {
                origin: sender,
                gas_price: tx.gas_price,
            },
        };

        // Dispatch on the literal `to` field: `None` is a create, `Some`
        // a call. (Matching here instead of `is_create()` + `expect`
        // makes a malformed transaction structurally unrepresentable —
        // there is no path on which a missing recipient can panic.)
        let (success, gas_left, output, contract_address, failure) = match tx.to {
            None => {
                let mut evm = Evm::new(&mut self.state, env)
                    .with_analysis_cache(Arc::clone(&self.analysis_cache));
                let out = evm.create(sender, tx.value, tx.data.clone(), exec_gas);
                let failure = if out.success {
                    None
                } else if let Some(err) = out.error.clone() {
                    Some(FailureReason::VmError(err))
                } else if !out.output.is_empty() || out.gas_left > 0 {
                    Some(FailureReason::Reverted(out.output.clone()))
                } else {
                    Some(FailureReason::InsufficientBalance)
                };
                (out.success, out.gas_left, out.output, out.address, failure)
            }
            Some(to) => {
                // Nonce bump happens before execution for calls (creates
                // bump inside the EVM so the address derivation sees the
                // old nonce).
                self.state.bump_nonce(sender);
                let mut evm = Evm::new(&mut self.state, env)
                    .with_analysis_cache(Arc::clone(&self.analysis_cache));
                let out = evm.call(CallParams::transact(
                    sender,
                    to,
                    tx.value,
                    tx.data.clone(),
                    exec_gas,
                ));
                let failure = if out.success {
                    None
                } else if out.reverted {
                    Some(FailureReason::Reverted(out.output.clone()))
                } else if let Some(err) = out.error.clone() {
                    Some(FailureReason::VmError(err))
                } else {
                    Some(FailureReason::InsufficientBalance)
                };
                (out.success, out.gas_left, out.output, None, failure)
            }
        };

        // Settle gas: refund capped at half of what was used.
        let (logs, refund_counter) = self.state.clear_tx_scratch();
        let gas_used_pre_refund = tx.gas_limit - gas_left;
        let refund = refund_counter.min(gas_used_pre_refund / 2);
        let gas_used = gas_used_pre_refund - refund;
        let reimbursement = U256::from_u64(tx.gas_limit - gas_used).wrapping_mul(tx.gas_price);
        let repaid = self
            .state
            .transfer(self.config.coinbase, sender, reimbursement);
        debug_assert!(repaid, "coinbase holds the upfront payment");

        // For creates, a failed execution must still bump the sender nonce
        // (the EVM bumps it inside create(); on hard pre-flight failures it
        // may not have run — normalize here).
        if tx.is_create() && self.state.nonce(sender) == tx.nonce {
            self.state.bump_nonce(sender);
        }

        Receipt {
            tx_hash,
            block_number,
            tx_index: 0,
            success,
            gas_used,
            contract_address: if success { contract_address } else { None },
            logs: if success { logs } else { Vec::new() },
            output,
            failure,
        }
    }

    // ---- convenience API (sign + submit + mine in one shot) ----

    /// Sends a call transaction from `wallet` and mines it immediately.
    pub fn execute(
        &mut self,
        wallet: &Wallet,
        to: Address,
        value: U256,
        data: Vec<u8>,
        gas_limit: u64,
    ) -> Result<Receipt, TxError> {
        let tx = Transaction {
            nonce: self.effective_nonce(wallet.address),
            gas_price: self.config.default_gas_price,
            gas_limit,
            to: Some(to),
            value,
            data,
        };
        let hash = self.submit(tx.sign(&wallet.key))?;
        self.mine_block();
        Ok(self.receipts[&hash].clone())
    }

    /// Deploys a contract from initcode and mines immediately.
    pub fn deploy(
        &mut self,
        wallet: &Wallet,
        initcode: Vec<u8>,
        value: U256,
        gas_limit: u64,
    ) -> Result<Receipt, TxError> {
        let tx = Transaction {
            nonce: self.effective_nonce(wallet.address),
            gas_price: self.config.default_gas_price,
            gas_limit,
            to: None,
            value,
            data: initcode,
        };
        let hash = self.submit(tx.sign(&wallet.key))?;
        self.mine_block();
        Ok(self.receipts[&hash].clone())
    }

    /// Dry-runs a transaction under a gas profiler: executes exactly like
    /// a value-bearing call (including storage writes) but rolls all
    /// state back, returning the per-opcode gas breakdown and the
    /// execution-gas consumption (intrinsic gas not included).
    pub fn profile_call(
        &mut self,
        from: Address,
        to: Address,
        value: U256,
        data: Vec<u8>,
        gas: u64,
    ) -> (sc_evm::GasProfiler, u64) {
        let env = Env {
            block: BlockEnv {
                number: self.head().number + 1,
                timestamp: self.now(),
                coinbase: self.config.coinbase,
                difficulty: U256::from_u64(1),
                gas_limit: self.config.block_gas_limit,
            },
            tx: TxEnv {
                origin: from,
                gas_price: U256::ZERO,
            },
        };
        let snapshot = self.state.snapshot();
        let mut profiler = sc_evm::GasProfiler::new();
        let out = Evm::with_inspector(&mut self.state, env, &mut profiler)
            .with_analysis_cache(Arc::clone(&self.analysis_cache))
            .call(CallParams::transact(from, to, value, data, gas));
        self.state.revert(snapshot);
        self.state.clear_tx_scratch();
        (profiler, gas - out.gas_left)
    }

    /// Read-only call (like `eth_call`): state changes are discarded.
    /// The EVM success flag is preserved — a reverted call comes back
    /// with `reverted: true` instead of masquerading as output bytes.
    pub fn call(&mut self, from: Address, to: Address, data: Vec<u8>) -> CallResult {
        let env = Env {
            block: BlockEnv {
                number: self.head().number + 1,
                timestamp: self.now(),
                coinbase: self.config.coinbase,
                difficulty: U256::from_u64(1),
                gas_limit: self.config.block_gas_limit,
            },
            tx: TxEnv {
                origin: from,
                gas_price: U256::ZERO,
            },
        };
        let snapshot = self.state.snapshot();
        let mut evm =
            Evm::new(&mut self.state, env).with_analysis_cache(Arc::clone(&self.analysis_cache));
        let out = evm.call(CallParams {
            caller: from,
            address: to,
            code_address: to,
            apparent_value: U256::ZERO,
            transfer_value: None,
            data,
            gas: self.config.block_gas_limit,
            is_static: false,
        });
        self.state.revert(snapshot);
        self.state.clear_tx_scratch();
        CallResult {
            reverted: !out.success,
            output: out.output,
        }
    }

    // ---- multi-node support: history, block import, fork choice ----

    /// Arms reorg support: from now on every sealed or imported block
    /// closes a per-block state undo layer, so the chain can roll back
    /// to any block boundary after this call. Multi-node operation
    /// requires it — [`Testnet::import_block`] refuses to run unarmed,
    /// because an import that failed halfway could not restore state.
    pub fn enable_history(&mut self) {
        if self.history.is_some() {
            return;
        }
        self.state.begin_undo_layer();
        self.history = Some(HistoryTracking {
            undo_stack: Vec::new(),
            open_minted: self.minted,
            open_time: self.time,
        });
    }

    /// True once [`Testnet::enable_history`] has armed reorg support.
    pub fn history_enabled(&self) -> bool {
        self.history.is_some()
    }

    /// How many blocks the chain can currently roll back (the undo
    /// layers retained since history was enabled).
    pub fn rollback_capacity(&self) -> usize {
        self.history.as_ref().map_or(0, |h| h.undo_stack.len())
    }

    /// Number of non-canonical blocks currently stored (competing
    /// branches and reorg orphans) — the numerator of an orphan-rate
    /// metric.
    pub fn side_block_count(&self) -> usize {
        self.side_blocks.len()
    }

    /// Canonical block lookup by hash.
    pub fn block_by_hash(&self, hash: H256) -> Option<&Block> {
        self.canon_index.get(&hash).and_then(|&n| self.block(n))
    }

    /// True when the transaction is queued locally (outbox or pool)
    /// but not yet mined.
    pub fn tx_is_pending(&self, hash: H256) -> bool {
        self.pending.iter().any(|p| p.hash == hash)
            || self.pool.as_ref().is_some_and(|p| p.contains(hash))
    }

    /// Drops pooled transactions whose nonce the canonical chain has
    /// already consumed — mined via an imported block, or made stale by
    /// a reorg. Pruned hashes land in the pool's evicted log, so
    /// callers draining evictions must check for a receipt first (a
    /// mined-elsewhere transaction is *done*, not displaced).
    pub fn prune_pool(&mut self) {
        if let Some(mut pool) = self.pool.take() {
            pool.prune(|a| self.state.nonce(a));
            self.pool = Some(pool);
        }
    }

    /// Longest-chain fork choice: the higher block wins; equal heights
    /// break toward the smaller hash, so both sides of a healed
    /// partition pick the same winner without negotiating. (Every block
    /// has difficulty 1 here, so height *is* total difficulty.)
    fn preferred(number: u64, hash: H256, over_number: u64, over_hash: H256) -> bool {
        number > over_number || (number == over_number && hash.0 < over_hash.0)
    }

    /// Rolls the canonical head back one block, restoring state,
    /// `minted`, the clock, receipts, the log index and the 256-entry
    /// `BLOCKHASH` window to the parent's seal boundary. Out-of-band
    /// writes since the head sealed (faucet mints) roll back too.
    ///
    /// Returns the orphaned block, or `None` at genesis / when history
    /// tracking holds no layer for the head. The block is *not* moved
    /// to the side store — callers decide its fate.
    pub fn rollback_head_block(&mut self) -> Option<Block> {
        if self.blocks.len() <= 1 {
            return None;
        }
        let rec = self.history.as_mut()?.undo_stack.pop()?;
        // Undo writes made since the head sealed, then the head block's
        // own layer (newest first).
        let open = self.state.take_undo_layer();
        self.state.apply_undo(open);
        self.state.apply_undo(rec.undo);
        // The rolled-back seal's archive record is orphaned with it.
        self.state.rollback_archive();
        self.minted = rec.minted_before;
        self.time = rec.time_before;
        if let Some(h) = &mut self.history {
            h.open_minted = rec.minted_before;
            h.open_time = rec.time_before;
        }

        let block = self.blocks.pop().expect("non-genesis head");
        self.canon_index.remove(&block.hash);
        self.state.block_hashes.remove(&block.number);
        if block.number >= 256 {
            // The seal pruned this ancestor out of the window; restore it.
            let n = block.number - 256;
            let hash = self.blocks[n as usize].hash;
            self.state.block_hashes.insert(n, hash);
        }
        for t in &block.transactions {
            if let Some(r) = self.receipts.remove(&t.hash()) {
                for log in &r.logs {
                    if let Some(blocks) = self.log_index.get_mut(&log.address) {
                        if blocks.last() == Some(&block.number) {
                            blocks.pop();
                        }
                    }
                }
            }
        }
        Some(block)
    }

    /// Imports a gossiped block: verifies its hash commits its
    /// contents, stores it, and runs fork choice. A block on the best
    /// branch is replayed transaction by transaction with the
    /// `state_root` / `receipts_root` / gas commitments re-verified
    /// against the header; a heavier competing branch triggers a
    /// rollback-and-replay reorg. Requires [`Testnet::enable_history`].
    pub fn import_block(&mut self, block: Block) -> Result<ImportOutcome, ImportError> {
        if self.history.is_none() {
            return Err(ImportError::TooDeep);
        }
        let computed = Block::compute_hash(
            block.number,
            block.timestamp,
            block.parent_hash,
            block.state_root,
            block.receipts_root,
            block.gas_used,
            &block.transactions,
        );
        if computed != block.hash {
            return Err(ImportError::InvalidBlock {
                reason: "hash does not commit the contents",
            });
        }
        if self.canon_index.contains_key(&block.hash) || self.side_blocks.contains_key(&block.hash)
        {
            return Ok(ImportOutcome::AlreadyKnown);
        }
        // Uniform store-then-adopt: a direct head child is simply a
        // depth-0 "reorg" (nothing reverted, one block applied), and the
        // same walk picks up previously detached descendants that this
        // block just connected.
        self.side_blocks.insert(block.hash, block);
        match self.try_adopt_best()? {
            Some((0, _, _)) => Ok(ImportOutcome::Extended),
            Some((reverted, applied, orphaned_txs)) => Ok(ImportOutcome::Reorged {
                reverted,
                applied,
                orphaned_txs,
            }),
            None => Ok(ImportOutcome::Side),
        }
    }

    /// Walks `tip`'s ancestry through the side-block store until it
    /// meets the canonical chain. Returns the fork height and the
    /// branch oldest-first; `None` while the ancestry is detached (a
    /// gap gossip has not filled yet) or height-inconsistent.
    fn connected_branch(&self, tip: &Block) -> Option<(u64, Vec<Block>)> {
        let mut rev: Vec<&Block> = vec![tip];
        let mut cur = tip;
        loop {
            if let Some(&n) = self.canon_index.get(&cur.parent_hash) {
                if n + 1 != cur.number {
                    return None;
                }
                return Some((n, rev.into_iter().rev().cloned().collect()));
            }
            let parent = self.side_blocks.get(&cur.parent_hash)?;
            if parent.number + 1 != cur.number {
                return None;
            }
            rev.push(parent);
            cur = parent;
        }
    }

    /// Finds the best connected side tip and adopts its branch when
    /// fork choice prefers it over the head. Returns `Some((reverted,
    /// applied, orphaned_txs))` when the head moved. The ordering
    /// (height, then smaller hash) is total, so the winner is
    /// independent of store iteration order — determinism holds.
    fn try_adopt_best(
        &mut self,
    ) -> Result<Option<(u64, u64, Vec<SignedTransaction>)>, ImportError> {
        let head = (self.head().number, self.head().hash);
        let mut best: Option<(u64, Vec<Block>)> = None;
        for tip in self.side_blocks.values() {
            if !Self::preferred(tip.number, tip.hash, head.0, head.1) {
                continue;
            }
            if let Some(found) = self.connected_branch(tip) {
                let better = match &best {
                    None => true,
                    Some((_, b)) => {
                        let cur = b.last().expect("branch never empty");
                        Self::preferred(tip.number, tip.hash, cur.number, cur.hash)
                    }
                };
                if better {
                    best = Some(found);
                }
            }
        }
        let Some((fork, branch)) = best else {
            return Ok(None);
        };
        self.adopt_branch(fork, branch).map(Some)
    }

    /// Rolls back to `fork` and replays `branch` (oldest-first). On a
    /// replay failure the half-applied branch is unwound and the
    /// original chain re-applied, so state is exactly as before.
    fn adopt_branch(
        &mut self,
        fork: u64,
        branch: Vec<Block>,
    ) -> Result<(u64, u64, Vec<SignedTransaction>), ImportError> {
        let depth = self.head().number - fork;
        let feasible = self
            .history
            .as_ref()
            .is_some_and(|h| h.undo_stack.len() as u64 >= depth);
        if !feasible {
            return Err(ImportError::TooDeep);
        }
        let mut orphans = Vec::with_capacity(depth as usize);
        for _ in 0..depth {
            orphans.push(self.rollback_head_block().expect("depth checked"));
        }
        orphans.reverse(); // oldest first
        for (i, b) in branch.iter().enumerate() {
            if let Err(e) = self.apply_block(b) {
                // Invalid branch: unwind the part that applied and
                // restore the original chain.
                for _ in 0..i {
                    self.rollback_head_block()
                        .expect("applied blocks have undo layers");
                }
                for ob in &orphans {
                    self.apply_block(ob)
                        .expect("previously canonical blocks replay");
                }
                self.side_blocks.remove(&b.hash);
                return Err(e);
            }
        }
        for b in &branch {
            self.side_blocks.remove(&b.hash);
        }
        let new_txs: std::collections::HashSet<H256> = branch
            .iter()
            .flat_map(|b| b.transactions.iter().map(SignedTransaction::hash))
            .collect();
        let mut orphaned_txs = Vec::new();
        for ob in orphans {
            for t in &ob.transactions {
                if !new_txs.contains(&t.hash()) {
                    orphaned_txs.push(t.clone());
                }
            }
            self.side_blocks.insert(ob.hash, ob);
        }
        // Pooled nonces the new chain consumed are stale now.
        self.prune_pool();
        Ok((depth, branch.len() as u64, orphaned_txs))
    }

    /// Replays one block on top of the current head: transactions
    /// re-validated (signature, nonce sequence, gas bounds, upfront
    /// balance) and re-executed, commitments re-verified against the
    /// header. Atomic — on any failure the open undo layer rewinds
    /// every write the attempt made.
    fn apply_block(&mut self, block: &Block) -> Result<(), ImportError> {
        debug_assert!(self.history.is_some(), "imports require history");
        let fail = |reason| ImportError::InvalidBlock { reason };
        let head = self.head();
        if block.parent_hash != head.hash || block.number != head.number + 1 {
            return Err(fail("does not extend the head"));
        }
        // Sender recovery is pure: derive before touching state.
        let mut ptxs = Vec::with_capacity(block.transactions.len());
        for tx in &block.transactions {
            let ptx =
                PendingTx::derive(tx.clone()).map_err(|_| fail("signature does not recover"))?;
            ptxs.push(ptx);
        }
        let (number, timestamp) = (block.number, block.timestamp);
        self.time = timestamp;
        let mut receipts = Vec::with_capacity(ptxs.len());
        let mut error = None;
        for ptx in &ptxs {
            let tx = &ptx.signed.tx;
            if tx.nonce != self.state.nonce(ptx.sender) {
                error = Some("nonce out of sequence");
                break;
            }
            if tx.gas_limit < ptx.intrinsic || tx.gas_limit > self.config.block_gas_limit {
                error = Some("gas limit out of bounds");
                break;
            }
            let upfront = U256::from_u64(tx.gas_limit)
                .wrapping_mul(tx.gas_price)
                .wrapping_add(tx.value);
            if self.state.balance(ptx.sender) < upfront {
                error = Some("sender cannot cover upfront cost");
                break;
            }
            // Serial replay: the parallel executor is equivalence-gated
            // to this path, so roots match however the miner sealed.
            receipts.push(self.execute_transaction(ptx, number, timestamp));
        }
        let mut block_gas = 0u64;
        for (index, receipt) in receipts.iter_mut().enumerate() {
            receipt.tx_index = index;
            block_gas += receipt.gas_used;
        }
        if error.is_none() && block_gas != block.gas_used {
            error = Some("gas total mismatch");
        }
        if error.is_none() && self.config.commit_roots {
            if self.state.state_root() != block.state_root {
                error = Some("state root mismatch");
            } else if block::receipts_root(receipts.iter()) != block.receipts_root {
                error = Some("receipts root mismatch");
            }
        }
        if let Some(reason) = error {
            // Atomic failure: rewind everything the attempt wrote
            // (including out-of-band writes the open layer held).
            let open = self.state.take_undo_layer();
            self.state.apply_undo(open);
            if let Some(h) = &self.history {
                self.minted = h.open_minted;
                self.time = h.open_time;
            }
            return Err(fail(reason));
        }
        self.commit_block(block, receipts);
        Ok(())
    }
}

impl Default for Testnet {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_primitives::ether;

    #[test]
    fn simple_transfer_charges_exact_gas() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        let bob = Wallet::from_seed("bob");
        let receipt = net
            .execute(&alice, bob.address, ether(1), vec![], 100_000)
            .unwrap();
        assert!(receipt.success);
        assert_eq!(receipt.gas_used, 21_000, "plain transfer is exactly Gtx");
        assert_eq!(net.balance_of(bob.address), ether(1));
        let spent = ether(10).wrapping_sub(net.balance_of(alice.address));
        let expected =
            ether(1).wrapping_add(U256::from_u64(21_000).wrapping_mul(sc_primitives::gwei(1)));
        assert_eq!(spent, expected);
    }

    #[test]
    fn miner_earns_the_fee() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        let coinbase = net.config().coinbase;
        net.execute(&alice, Address([9; 20]), ether(1), vec![], 100_000)
            .unwrap();
        assert_eq!(
            net.balance_of(coinbase),
            U256::from_u64(21_000).wrapping_mul(sc_primitives::gwei(1))
        );
    }

    #[test]
    fn nonce_sequencing_and_rejection() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        let tx = Transaction {
            nonce: 5,
            gas_price: sc_primitives::gwei(1),
            gas_limit: 21_000,
            to: Some(Address([9; 20])),
            value: U256::ZERO,
            data: vec![],
        };
        let err = net.submit(tx.sign(&alice.key)).unwrap_err();
        assert_eq!(
            err,
            TxError::BadNonce {
                expected: 0,
                got: 5
            }
        );
    }

    #[test]
    fn pending_txs_count_toward_nonce() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        for i in 0..3 {
            let tx = Transaction {
                nonce: i,
                gas_price: sc_primitives::gwei(1),
                gas_limit: 21_000,
                to: Some(Address([9; 20])),
                value: U256::from_u64(1),
                data: vec![],
            };
            net.submit(tx.sign(&alice.key)).unwrap();
        }
        let block = net.mine_block();
        assert_eq!(block.transactions.len(), 3);
        assert_eq!(net.nonce_of(alice.address), 3);
    }

    #[test]
    fn intrinsic_gas_enforced() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        let tx = Transaction {
            nonce: 0,
            gas_price: sc_primitives::gwei(1),
            gas_limit: 21_000, // too low: data costs extra
            to: Some(Address([9; 20])),
            value: U256::ZERO,
            data: vec![0xff; 10],
        };
        let err = net.submit(tx.sign(&alice.key)).unwrap_err();
        assert_eq!(
            err,
            TxError::IntrinsicGasTooLow {
                required: 21_000 + 68 * 10
            }
        );
    }

    #[test]
    fn insufficient_funds_rejected_at_submit() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", U256::from_u64(1000));
        let tx = Transaction {
            nonce: 0,
            gas_price: sc_primitives::gwei(1),
            gas_limit: 21_000,
            to: Some(Address([9; 20])),
            value: U256::ZERO,
            data: vec![],
        };
        assert_eq!(
            net.submit(tx.sign(&alice.key)).unwrap_err(),
            TxError::InsufficientFunds
        );
    }

    #[test]
    fn timestamps_advance_per_block_and_by_request() {
        let mut net = Testnet::new();
        let t0 = net.head().timestamp;
        let b1 = net.mine_block();
        assert_eq!(b1.timestamp, t0 + 4);
        net.advance_time(3600);
        let b2 = net.mine_block();
        assert_eq!(b2.timestamp, t0 + 4 + 3600 + 4);
    }

    #[test]
    fn deploy_runs_initcode_and_records_address() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        let runtime = vec![0x60, 0x2a, 0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xf3]; // returns 42
        let initcode = sc_evm::wrap_initcode(&runtime);
        let receipt = net.deploy(&alice, initcode, U256::ZERO, 200_000).unwrap();
        assert!(receipt.success);
        let addr = receipt.contract_address.unwrap();
        assert_eq!(net.code_at(addr), runtime);
        // Call it read-only.
        let out = net.call(alice.address, addr, vec![]);
        assert!(!out.reverted);
        assert_eq!(U256::from_be_slice(&out.output), U256::from_u64(42));
        // Gas: intrinsic(create, data) + exec + deposit — sanity: > 53000.
        assert!(receipt.gas_used > 53_000);
    }

    #[test]
    fn failed_tx_still_charges_gas_and_bumps_nonce() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        // Deploy a contract that always reverts.
        let runtime = vec![0x60, 0x00, 0x60, 0x00, 0xfd];
        let initcode = sc_evm::wrap_initcode(&runtime);
        let r = net.deploy(&alice, initcode, U256::ZERO, 200_000).unwrap();
        let target = r.contract_address.unwrap();
        let before = net.balance_of(alice.address);
        let receipt = net
            .execute(&alice, target, U256::ZERO, vec![], 100_000)
            .unwrap();
        assert!(!receipt.success);
        assert!(matches!(receipt.failure, Some(FailureReason::Reverted(_))));
        assert!(net.balance_of(alice.address) < before, "gas was charged");
        assert_eq!(net.nonce_of(alice.address), 2);
    }

    #[test]
    fn refund_capped_at_half_of_gas_used() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        // Contract: SSTORE(0,1) on first call; SSTORE(0,0) on second call
        // clears and earns a 15000 refund, but gas_used/2 caps it.
        // code: PUSH1 0 SLOAD ISZERO PUSH1 1 AND ... simpler: calldata
        // selects the value: SSTORE(0, CALLDATALOAD(0)).
        let runtime = vec![0x60, 0x00, 0x35, 0x60, 0x00, 0x55, 0x00];
        let initcode = sc_evm::wrap_initcode(&runtime);
        let target = net
            .deploy(&alice, initcode, U256::ZERO, 200_000)
            .unwrap()
            .contract_address
            .unwrap();
        let one = U256::ONE.to_be_bytes().to_vec();
        let r1 = net
            .execute(&alice, target, U256::ZERO, one, 100_000)
            .unwrap();
        assert!(r1.success);
        let zero = U256::ZERO.to_be_bytes().to_vec();
        let r2 = net
            .execute(&alice, target, U256::ZERO, zero, 100_000)
            .unwrap();
        assert!(r2.success);
        // Without refund r2 would use 21000 + 32*4 (zero calldata) + exec:
        // PUSH1+CALLDATALOAD+PUSH1 (3 gas each) + SSTORE-reset (5000).
        // The 15000 clear refund is capped to half of that.
        let pre_refund = 21_000 + 32 * 4 + 3 + 3 + 3 + 5_000;
        assert_eq!(r2.gas_used, pre_refund - pre_refund / 2);
    }

    #[test]
    fn eth_call_does_not_mutate_state() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        // Contract that SSTOREs then returns.
        let runtime = vec![0x60, 0x07, 0x60, 0x00, 0x55, 0x00];
        let initcode = sc_evm::wrap_initcode(&runtime);
        let target = net
            .deploy(&alice, initcode, U256::ZERO, 200_000)
            .unwrap()
            .contract_address
            .unwrap();
        net.call(alice.address, target, vec![]);
        assert_eq!(net.storage_at(target, U256::ZERO), U256::ZERO);
    }

    #[test]
    fn eth_call_reports_reverts() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        // PUSH1 42 PUSH1 0 MSTORE PUSH1 32 PUSH1 0 REVERT: reverts with
        // the same 32 bytes a successful return would carry.
        let runtime = vec![0x60, 0x2a, 0x60, 0x00, 0x52, 0x60, 0x20, 0x60, 0x00, 0xfd];
        let initcode = sc_evm::wrap_initcode(&runtime);
        let target = net
            .deploy(&alice, initcode, U256::ZERO, 200_000)
            .unwrap()
            .contract_address
            .unwrap();
        let out = net.call(alice.address, target, vec![]);
        assert!(out.reverted, "success flag must survive eth_call");
        assert_eq!(U256::from_be_slice(&out.output), U256::from_u64(42));
    }

    #[test]
    fn address_filtered_logs_use_the_commit_time_index() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        // PUSH1 0 PUSH1 0 LOG0: emits one empty log from the contract.
        let runtime = vec![0x60, 0x00, 0x60, 0x00, 0xa0, 0x00];
        let initcode = sc_evm::wrap_initcode(&runtime);
        let deploy = |net: &mut Testnet| {
            net.deploy(&alice, initcode.clone(), U256::ZERO, 200_000)
                .unwrap()
                .contract_address
                .unwrap()
        };
        let a = deploy(&mut net);
        let b = deploy(&mut net);
        // a logs in two blocks, b in one, with log-free blocks between.
        net.execute(&alice, a, U256::ZERO, vec![], 100_000).unwrap();
        net.mine_block();
        net.execute(&alice, b, U256::ZERO, vec![], 100_000).unwrap();
        net.execute(&alice, a, U256::ZERO, vec![], 100_000).unwrap();
        let head = net.head().number;

        // The index answers exactly what the linear scan would.
        let linear = |addr: Address| {
            let mut out = Vec::new();
            for n in 0..=head {
                for r in net.receipts_in_block(n) {
                    out.extend(r.logs.iter().filter(|l| l.address == addr).cloned());
                }
            }
            out
        };
        assert_eq!(net.logs(0, head, Some(a)), linear(a));
        assert_eq!(net.logs(0, head, Some(b)), linear(b));
        assert_eq!(net.logs(0, head, Some(a)).len(), 2);
        assert_eq!(net.logs(0, head, Some(b)).len(), 1);
        // Range bounds respected (a's second log only).
        let last = net.logs(head, head, Some(a));
        assert_eq!(last.len(), 1);
        // Unfiltered query still sees everything.
        assert_eq!(net.logs(0, head, None).len(), 3);
        // Unknown address: empty, no scan.
        assert!(net.logs(0, head, Some(Address([0xee; 20]))).is_empty());
    }

    #[test]
    fn block_hashes_linked() {
        let mut net = Testnet::new();
        let b1 = net.mine_block();
        let b2 = net.mine_block();
        assert_eq!(b2.parent_hash, b1.hash);
        assert_eq!(net.block(1).unwrap().hash, b1.hash);
    }

    #[test]
    fn blockhash_window_is_bounded_to_256() {
        let mut net = Testnet::new();
        for _ in 0..300 {
            net.mine_block();
        }
        let head = net.head().number;
        assert_eq!(head, 300);
        assert_eq!(
            net.state.block_hash(head - 257),
            H256::ZERO,
            "hash 257 blocks back has left the BLOCKHASH window"
        );
        assert_eq!(net.state.block_hash(head - 256), H256::ZERO);
        assert_ne!(
            net.state.block_hash(head - 255),
            H256::ZERO,
            "youngest 256 ancestors stay visible"
        );
        assert_eq!(
            net.state.block_hash(head - 255),
            net.block(head - 255).unwrap().hash
        );
        assert_eq!(net.state.block_hashes.len(), 256, "map stays bounded");
    }

    #[test]
    fn mined_blocks_commit_state_and_receipts_roots() {
        // Both mining paths (outbox and pooled) must seal real roots
        // that move with state and match an independent recomputation.
        for pooled in [false, true] {
            let mut net = Testnet::new();
            if pooled {
                net.enable_pool(PoolConfig::default());
            }
            assert_eq!(net.head().state_root, sc_trie::empty_root());
            assert_eq!(net.head().receipts_root, sc_trie::empty_root());

            let alice = net.funded_wallet("alice", ether(10));
            let receipt = net
                .execute(
                    &alice,
                    Address([9; 20]),
                    U256::from_u64(123),
                    vec![],
                    21_000,
                )
                .unwrap();
            let block = net.block(receipt.block_number).unwrap().clone();
            assert_ne!(block.state_root, sc_trie::empty_root(), "state moved");
            assert_ne!(block.state_root, H256::ZERO);
            assert_ne!(block.receipts_root, sc_trie::empty_root(), "1 receipt");
            assert_eq!(
                block.receipts_root,
                block::receipts_root(net.receipts_in_block(block.number).into_iter()),
                "header matches recomputed receipts trie (pooled={pooled})"
            );
            assert_eq!(
                block.state_root,
                net.state.state_root(),
                "nothing changed since seal: folded root is the header root"
            );

            // An empty block re-commits the same state root.
            let empty = net.mine_block();
            assert_eq!(empty.state_root, block.state_root);
            assert_eq!(empty.receipts_root, sc_trie::empty_root());
        }
    }

    #[test]
    fn storage_proof_verifies_against_header_root() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        // PUSH1 42 PUSH1 1 SSTORE STOP as constructor: writes slot 1.
        let initcode = vec![0x60, 0x2a, 0x60, 0x01, 0x55, 0x00];
        let target = net
            .deploy(&alice, initcode, U256::ZERO, 200_000)
            .unwrap()
            .contract_address
            .unwrap();
        let header_root = net.head().state_root;

        let proof = net.prove_storage(target, U256::ONE);
        assert_eq!(proof.value, U256::from_u64(42));
        assert_eq!(proof.root, header_root, "proof anchors to the head header");
        proof.verify(header_root).expect("honest proof verifies");

        let mut forged = proof.clone();
        forged.value = U256::from_u64(43);
        assert!(
            forged.verify(header_root).is_err(),
            "tampered value rejected against the header root"
        );
    }

    #[test]
    fn submit_batch_matches_serial_submits() {
        let make_txs = |net: &mut Testnet| -> (Wallet, Vec<SignedTransaction>) {
            let alice = net.funded_wallet("alice", ether(10));
            let txs = (0..10u64)
                .map(|i| {
                    Transaction {
                        // Every third nonce is wrong → rejected, and later
                        // entries must account for the earlier rejections.
                        nonce: if i % 3 == 2 { i + 100 } else { i - i / 3 },
                        gas_price: sc_primitives::gwei(1),
                        gas_limit: 21_000,
                        to: Some(Address([9; 20])),
                        value: U256::from_u64(1),
                        data: vec![],
                    }
                    .sign(&alice.key)
                })
                .collect();
            (alice, txs)
        };

        let mut serial_net = Testnet::new();
        let (_, txs) = make_txs(&mut serial_net);
        let serial: Vec<_> = txs
            .clone()
            .into_iter()
            .map(|t| serial_net.submit(t))
            .collect();

        let mut batch_net = Testnet::new();
        let (_, txs) = make_txs(&mut batch_net);
        let batch = batch_net.submit_batch(txs);

        assert_eq!(batch, serial);
        assert_eq!(batch.iter().filter(|r| r.is_ok()).count(), 7);
        assert_eq!(
            serial_net.mine_block().hash,
            batch_net.mine_block().hash,
            "identical admission ⇒ identical block"
        );
    }

    #[test]
    fn submit_batch_rejects_tampered_signature() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        let mut signed = Transaction {
            nonce: 0,
            gas_price: sc_primitives::gwei(1),
            gas_limit: 21_000,
            to: Some(Address([9; 20])),
            value: U256::ZERO,
            data: vec![],
        }
        .sign(&alice.key);
        signed.signature.v = 26; // invalid recovery id
        let out = net.submit_batch(vec![signed]);
        assert_eq!(out, vec![Err(TxError::BadSignature)]);
    }

    #[test]
    fn serial_and_pipelined_mining_agree() {
        let build = |net: &mut Testnet| {
            let alice = net.funded_wallet("alice", ether(10));
            let bob = net.funded_wallet("bob", ether(10));
            for (i, w) in [&alice, &bob, &alice, &bob, &alice].iter().enumerate() {
                let tx = Transaction {
                    nonce: net.effective_nonce(w.address),
                    gas_price: sc_primitives::gwei(1),
                    gas_limit: 50_000,
                    to: Some(Address([9; 20])),
                    value: U256::from_u64(i as u64),
                    data: vec![i as u8; i],
                };
                net.submit(tx.sign(&w.key)).unwrap();
            }
        };
        let mut fast = Testnet::new();
        build(&mut fast);
        let fast_block = fast.mine_block();

        let mut reference = Testnet::new();
        build(&mut reference);
        let ref_block = reference.mine_block_serial();

        assert_eq!(fast_block.hash, ref_block.hash);
        assert_eq!(fast_block.gas_used, ref_block.gas_used);
        for t in &fast_block.transactions {
            let a = fast.receipt(t.hash()).unwrap();
            let b = reference.receipt(t.hash()).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn analysis_cache_warms_across_calls() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        // Contract with a jump, so analysis actually matters.
        let runtime = vec![0x60, 0x04, 0x56, 0xfe, 0x5b, 0x00]; // JUMP over INVALID
        let initcode = sc_evm::wrap_initcode(&runtime);
        let target = net
            .deploy(&alice, initcode, U256::ZERO, 200_000)
            .unwrap()
            .contract_address
            .unwrap();
        let after_deploy = net.analysis_cache().stats();
        for _ in 0..5 {
            let r = net
                .execute(&alice, target, U256::ZERO, vec![], 100_000)
                .unwrap();
            assert!(r.success);
        }
        let stats = net.analysis_cache().stats();
        // Deploy analysed only the initcode; the first call analyses the
        // runtime code (one miss), and every later call reuses it.
        assert_eq!(
            stats.misses,
            after_deploy.misses + 1,
            "runtime code analysed exactly once"
        );
        assert!(
            stats.hits >= after_deploy.hits + 4,
            "subsequent calls hit the cache"
        );
    }

    #[test]
    fn derive_rejects_malformed_signature_instead_of_panicking() {
        // The reference mining path re-derives senders from raw
        // transactions; a signature that stopped recovering must surface
        // as a typed error, never a crash.
        let alice = Wallet::from_seed("alice");
        let mut signed = Transaction {
            nonce: 0,
            gas_price: sc_primitives::gwei(1),
            gas_limit: 21_000,
            to: Some(Address([9; 20])),
            value: U256::ZERO,
            data: vec![],
        }
        .sign(&alice.key);
        signed.signature.v = 26; // invalid recovery id
        assert_eq!(PendingTx::derive(signed).err(), Some(TxError::BadSignature));
    }

    #[test]
    fn ether_is_conserved_across_blocks() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        let bob = net.funded_wallet("bob", ether(5));
        assert_eq!(net.total_minted(), ether(15));
        assert_eq!(net.state.total_balance(), ether(15));
        // Transfers, a deploy, and a failed call all just move value.
        net.execute(&alice, bob.address, ether(1), vec![], 100_000)
            .unwrap();
        let runtime = vec![0x60, 0x00, 0x60, 0x00, 0xfd]; // always reverts
        let initcode = sc_evm::wrap_initcode(&runtime);
        let target = net
            .deploy(&alice, initcode, U256::ZERO, 200_000)
            .unwrap()
            .contract_address
            .unwrap();
        net.execute(&alice, target, U256::ZERO, vec![], 100_000)
            .unwrap();
        assert_eq!(
            net.state.total_balance(),
            net.total_minted(),
            "no wei created or destroyed"
        );
    }

    #[test]
    fn pending_count_tracks_the_mempool() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        assert_eq!(net.pending_count(), 0);
        let tx = Transaction {
            nonce: 0,
            gas_price: sc_primitives::gwei(1),
            gas_limit: 21_000,
            to: Some(Address([9; 20])),
            value: U256::ZERO,
            data: vec![],
        };
        net.submit(tx.sign(&alice.key)).unwrap();
        assert_eq!(net.pending_count(), 1);
        net.mine_block();
        assert_eq!(net.pending_count(), 0);
    }

    fn transfer_tx(nonce: u64, price: U256, gas_limit: u64) -> Transaction {
        Transaction {
            nonce,
            gas_price: price,
            gas_limit,
            to: Some(Address([9; 20])),
            value: U256::from_u64(1),
            data: vec![],
        }
    }

    #[test]
    fn pooled_mining_packs_under_the_block_gas_limit() {
        let mut net = Testnet::with_config(ChainConfig {
            block_gas_limit: 50_000,
            ..ChainConfig::default()
        });
        net.enable_pool(PoolConfig::default());
        let alice = net.funded_wallet("alice", ether(10));
        let bob = net.funded_wallet("bob", ether(10));
        let carol = net.funded_wallet("carol", ether(10));
        for w in [&alice, &bob, &carol] {
            net.submit(transfer_tx(0, sc_primitives::gwei(1), 21_000).sign(&w.key))
                .unwrap();
        }
        assert_eq!(net.pending_count(), 3);
        // Only two 21k transfers fit under 50k; the third waits.
        let b1 = net.mine_block();
        assert_eq!(b1.transactions.len(), 2);
        assert_eq!(net.pending_count(), 1);
        let b2 = net.mine_block();
        assert_eq!(b2.transactions.len(), 1);
        assert_eq!(net.pending_count(), 0);
    }

    #[test]
    fn pooled_mining_orders_by_fee_and_keeps_nonce_order() {
        let mut net = Testnet::new();
        net.enable_pool(PoolConfig::default());
        let alice = net.funded_wallet("alice", ether(10));
        let bob = net.funded_wallet("bob", ether(10));
        // Alice's nonce 0 is cheap, nonce 1 expensive; bob in between.
        net.submit(transfer_tx(0, sc_primitives::gwei(1), 21_000).sign(&alice.key))
            .unwrap();
        net.submit(transfer_tx(1, sc_primitives::gwei(9), 21_000).sign(&alice.key))
            .unwrap();
        net.submit(transfer_tx(0, sc_primitives::gwei(5), 21_000).sign(&bob.key))
            .unwrap();
        let block = net.mine_block();
        let senders: Vec<Address> = block
            .transactions
            .iter()
            .map(|t| t.sender().unwrap())
            .collect();
        assert_eq!(senders, vec![bob.address, alice.address, alice.address]);
        assert_eq!(net.nonce_of(alice.address), 2);
    }

    #[test]
    fn pooled_replacement_needs_the_bump_and_future_nonces_wait() {
        let mut net = Testnet::new();
        net.enable_pool(PoolConfig::default());
        let alice = net.funded_wallet("alice", ether(10));
        net.submit(transfer_tx(0, sc_primitives::gwei(100), 21_000).sign(&alice.key))
            .unwrap();
        // Same nonce, +9%: refused with the required price.
        let err = net
            .submit(transfer_tx(0, sc_primitives::gwei(109), 21_000).sign(&alice.key))
            .unwrap_err();
        assert_eq!(
            err,
            TxError::Underpriced {
                required: sc_primitives::gwei(110)
            }
        );
        // +10%: accepted; the displaced hash surfaces via drain_evicted.
        let old_hash = transfer_tx(0, sc_primitives::gwei(100), 21_000)
            .sign(&alice.key)
            .hash();
        net.submit(transfer_tx(0, sc_primitives::gwei(110), 21_000).sign(&alice.key))
            .unwrap();
        assert_eq!(net.drain_evicted(), vec![old_hash]);
        // A future nonce pools but cannot mine until the gap fills.
        net.submit(transfer_tx(2, sc_primitives::gwei(1), 21_000).sign(&alice.key))
            .unwrap();
        let block = net.mine_block();
        assert_eq!(block.transactions.len(), 1, "nonce 2 waits for nonce 1");
        assert_eq!(net.pending_count(), 1);
        net.submit(transfer_tx(1, sc_primitives::gwei(1), 21_000).sign(&alice.key))
            .unwrap();
        assert_eq!(net.mine_block().transactions.len(), 2);
        assert_eq!(net.nonce_of(alice.address), 3);
    }

    #[test]
    fn pooled_effective_nonce_tracks_the_contiguous_run() {
        let mut net = Testnet::new();
        net.enable_pool(PoolConfig::default());
        let alice = net.funded_wallet("alice", ether(10));
        assert_eq!(net.effective_nonce(alice.address), 0);
        net.submit(transfer_tx(0, sc_primitives::gwei(1), 21_000).sign(&alice.key))
            .unwrap();
        net.submit(transfer_tx(1, sc_primitives::gwei(1), 21_000).sign(&alice.key))
            .unwrap();
        assert_eq!(net.effective_nonce(alice.address), 2);
        net.mine_block();
        assert_eq!(net.effective_nonce(alice.address), 2);
    }

    #[test]
    fn pooled_capacity_eviction_routes_the_victim_hash() {
        let mut net = Testnet::new();
        net.enable_pool(PoolConfig {
            capacity: 2,
            ..PoolConfig::default()
        });
        let alice = net.funded_wallet("alice", ether(10));
        let bob = net.funded_wallet("bob", ether(10));
        let carol = net.funded_wallet("carol", ether(10));
        let cheap = transfer_tx(0, sc_primitives::gwei(1), 21_000).sign(&alice.key);
        let cheap_hash = cheap.hash();
        net.submit(cheap).unwrap();
        net.submit(transfer_tx(0, sc_primitives::gwei(5), 21_000).sign(&bob.key))
            .unwrap();
        // Too cheap to displace anyone.
        let err = net
            .submit(transfer_tx(0, sc_primitives::gwei(1), 21_000).sign(&carol.key))
            .unwrap_err();
        assert_eq!(
            err,
            TxError::PoolFull {
                must_exceed: sc_primitives::gwei(1)
            }
        );
        // Rich enough: alice's cheap tx is displaced.
        net.submit(transfer_tx(0, sc_primitives::gwei(2), 21_000).sign(&carol.key))
            .unwrap();
        assert_eq!(net.drain_evicted(), vec![cheap_hash]);
        assert_eq!(net.pending_count(), 2);
    }

    #[test]
    fn enable_pool_migrates_queued_transactions() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        net.submit(transfer_tx(0, sc_primitives::gwei(1), 21_000).sign(&alice.key))
            .unwrap();
        net.enable_pool(PoolConfig::default());
        assert!(net.pool_enabled());
        assert_eq!(net.pending_count(), 1);
        assert_eq!(net.effective_nonce(alice.address), 1);
        assert_eq!(net.mine_block().transactions.len(), 1);
    }

    #[test]
    fn pooled_serial_and_cached_mining_agree() {
        let build = |net: &mut Testnet| {
            net.enable_pool(PoolConfig::default());
            let alice = net.funded_wallet("alice", ether(10));
            let bob = net.funded_wallet("bob", ether(10));
            for (i, w) in [&alice, &bob, &alice, &bob].iter().enumerate() {
                let tx = Transaction {
                    nonce: net.effective_nonce(w.address),
                    gas_price: sc_primitives::gwei(1 + i as u64),
                    gas_limit: 50_000,
                    to: Some(Address([9; 20])),
                    value: U256::from_u64(i as u64),
                    data: vec![i as u8; i],
                };
                net.submit(tx.sign(&w.key)).unwrap();
            }
        };
        let mut fast = Testnet::new();
        build(&mut fast);
        let fast_block = fast.mine_block();

        let mut reference = Testnet::new();
        build(&mut reference);
        let ref_block = reference.mine_block_serial();

        assert_eq!(fast_block.hash, ref_block.hash);
        assert_eq!(fast_block.gas_used, ref_block.gas_used);
    }

    #[test]
    fn parallel_blocks_match_serial_and_report_conflicts() {
        let run = |exec: ExecMode| {
            let mut net = Testnet::with_config(ChainConfig {
                exec,
                ..ChainConfig::default()
            });
            let wallets: Vec<Wallet> = (0..6)
                .map(|i| net.funded_wallet(&format!("w{i}"), ether(10)))
                .collect();
            // Disjoint transfers (speculate cleanly) plus two txs
            // hitting the same recipient (the second conflicts on the
            // recipient balance) and a contract deploy.
            for (i, w) in wallets.iter().enumerate().take(4) {
                let tx = Transaction {
                    nonce: 0,
                    gas_price: sc_primitives::gwei(1),
                    gas_limit: 21_000,
                    to: Some(Address([10 + i as u8; 20])),
                    value: U256::from_u64(100 + i as u64),
                    data: vec![],
                };
                net.submit(tx.sign(&w.key)).unwrap();
            }
            for w in &wallets[4..] {
                let tx = Transaction {
                    nonce: 0,
                    gas_price: sc_primitives::gwei(1),
                    gas_limit: 21_000,
                    to: Some(Address([0x77; 20])),
                    value: U256::from_u64(5),
                    data: vec![],
                };
                net.submit(tx.sign(&w.key)).unwrap();
            }
            let deployer = net.funded_wallet("deployer", ether(10));
            let initcode = sc_evm::wrap_initcode(&[0x60, 0x2a, 0x60, 0x00, 0x55, 0x00]);
            let tx = Transaction {
                nonce: 0,
                gas_price: sc_primitives::gwei(1),
                gas_limit: 200_000,
                to: None,
                value: U256::ZERO,
                data: initcode,
            };
            net.submit(tx.sign(&deployer.key)).unwrap();
            let block = net.mine_block();
            (block, net)
        };

        let (pb, pnet) = run(ExecMode::Parallel);
        let (sb, snet) = run(ExecMode::Serial);
        assert_eq!(pb.hash, sb.hash, "parallel block is byte-identical");
        assert_eq!(pb.state_root, sb.state_root);
        assert_eq!(pb.receipts_root, sb.receipts_root);
        assert_eq!(pb.gas_used, sb.gas_used);
        for t in &pb.transactions {
            assert_eq!(pnet.receipt(t.hash()), snet.receipt(t.hash()));
        }

        let report = pnet.last_seal_report().unwrap();
        assert_eq!(report.mode, ExecMode::Parallel);
        assert_eq!(report.txs, 7);
        assert_eq!(report.speculative + report.reexecuted, report.txs);
        assert!(
            report.speculative >= 5,
            "disjoint txs commit speculatively: {report:?}"
        );
        assert!(
            report.reexecuted >= 1,
            "second tx into the shared recipient conflicts: {report:?}"
        );
        let serial_report = snet.last_seal_report().unwrap();
        assert_eq!(serial_report.mode, ExecMode::Serial);
        assert_eq!(serial_report.speculative, 0);
    }

    #[test]
    fn create_tx_failure_consumes_nonce() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        // Initcode that immediately reverts.
        let initcode = vec![0x60, 0x00, 0x60, 0x00, 0xfd];
        let receipt = net.deploy(&alice, initcode, U256::ZERO, 100_000).unwrap();
        assert!(!receipt.success);
        assert!(receipt.contract_address.is_none());
        assert_eq!(net.nonce_of(alice.address), 1);
    }

    /// Two nodes with identical genesis state (same funding, same
    /// config), histories armed — the fixture every import/reorg test
    /// builds on.
    fn twin_nets() -> (Testnet, Testnet) {
        let mk = || {
            let mut net = Testnet::new();
            net.funded_wallet("alice", ether(10));
            net.funded_wallet("carol", ether(10));
            net.enable_history();
            net
        };
        (mk(), mk())
    }

    #[test]
    fn import_extends_peer_and_replays_identically() {
        let (mut a, mut b) = twin_nets();
        let alice = Wallet::from_seed("alice");
        a.execute(&alice, Address([9; 20]), ether(1), vec![], 100_000)
            .unwrap();
        let block = a.head().clone();
        assert_eq!(
            b.import_block(block.clone()).unwrap(),
            ImportOutcome::Extended
        );
        assert_eq!(b.head().hash, a.head().hash);
        assert_eq!(b.balance_of(Address([9; 20])), ether(1));
        assert_eq!(b.nonce_of(alice.address), 1);
        // Receipts materialize on the importer too.
        let tx_hash = block.transactions[0].hash();
        assert!(b.receipt(tx_hash).is_some());
        // A second delivery (gossip echo) dedups.
        assert_eq!(b.import_block(block).unwrap(), ImportOutcome::AlreadyKnown);
    }

    #[test]
    fn import_rejects_tampered_blocks() {
        let (mut a, mut b) = twin_nets();
        let alice = Wallet::from_seed("alice");
        a.execute(&alice, Address([9; 20]), ether(1), vec![], 100_000)
            .unwrap();
        let good = a.head().clone();

        // Content tampered without recomputing the hash: caught by the
        // hash check before any execution.
        let mut forged = good.clone();
        forged.gas_used += 1;
        assert!(matches!(
            b.import_block(forged),
            Err(ImportError::InvalidBlock { reason }) if reason.contains("hash")
        ));

        // Root tampered *with* a recomputed hash: replay catches the
        // dishonest commitment, and the failed import leaves no trace.
        let mut forged = good.clone();
        forged.state_root = H256([0xee; 32]);
        forged.hash = Block::compute_hash(
            forged.number,
            forged.timestamp,
            forged.parent_hash,
            forged.state_root,
            forged.receipts_root,
            forged.gas_used,
            &forged.transactions,
        );
        assert!(matches!(
            b.import_block(forged),
            Err(ImportError::InvalidBlock { reason }) if reason.contains("state root")
        ));
        assert_eq!(b.head().number, 0, "failed import must not advance");
        assert_eq!(b.balance_of(Address([9; 20])), U256::ZERO);
        assert_eq!(b.nonce_of(alice.address), 0);

        // The honest original still imports cleanly afterwards.
        assert_eq!(b.import_block(good).unwrap(), ImportOutcome::Extended);
    }

    #[test]
    fn rollback_restores_state_receipts_and_clock() {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        net.enable_history();
        let t0 = net.head().timestamp;
        let r = net
            .execute(&alice, Address([9; 20]), ether(2), vec![], 100_000)
            .unwrap();
        let minted = net.total_minted();

        let orphan = net.rollback_head_block().expect("one layer retained");
        assert_eq!(orphan.number, 1);
        assert_eq!(net.head().number, 0);
        assert_eq!(net.head().timestamp, t0);
        assert_eq!(net.balance_of(alice.address), ether(10));
        assert_eq!(net.balance_of(Address([9; 20])), U256::ZERO);
        assert_eq!(net.nonce_of(alice.address), 0);
        assert!(net.receipt(r.tx_hash).is_none());
        assert_eq!(net.total_minted(), minted, "mints predate the block");
        assert_eq!(net.rollback_capacity(), 0);
        assert!(net.rollback_head_block().is_none(), "genesis stays");

        // The chain keeps working: the same transfer mines again.
        net.execute(&alice, Address([9; 20]), ether(2), vec![], 100_000)
            .unwrap();
        assert_eq!(net.balance_of(Address([9; 20])), ether(2));
    }

    #[test]
    fn heavier_fork_reorgs_and_reports_orphaned_txs() {
        let (mut a, mut b) = twin_nets();
        let alice = Wallet::from_seed("alice");
        let carol = Wallet::from_seed("carol");
        // a mines one block paying bob; b mines two blocks paying dave.
        a.execute(&alice, Address([0xb0; 20]), ether(1), vec![], 100_000)
            .unwrap();
        b.execute(&carol, Address([0xda; 20]), ether(1), vec![], 100_000)
            .unwrap();
        b.execute(&carol, Address([0xda; 20]), ether(1), vec![], 100_000)
            .unwrap();
        let orphaned_hash = a.head().transactions[0].hash();
        let b1 = b.block(1).unwrap().clone();
        let b2 = b.block(2).unwrap().clone();

        // b2 arrives first: detached, parked on the side.
        assert_eq!(a.import_block(b2.clone()).unwrap(), ImportOutcome::Side);
        // b1 fills the gap; the two-block branch beats height 1.
        match a.import_block(b1).unwrap() {
            ImportOutcome::Reorged {
                reverted,
                applied,
                orphaned_txs,
            } => {
                assert_eq!((reverted, applied), (1, 2));
                assert_eq!(orphaned_txs.len(), 1);
                assert_eq!(orphaned_txs[0].hash(), orphaned_hash);
            }
            other => panic!("expected reorg, got {other:?}"),
        }
        assert_eq!(a.head().hash, b2.hash);
        assert_eq!(a.balance_of(Address([0xda; 20])), ether(2));
        assert_eq!(a.balance_of(Address([0xb0; 20])), U256::ZERO);
        assert!(a.receipt(orphaned_hash).is_none());
        assert_eq!(a.side_block_count(), 1, "a's old head is now an orphan");
        assert_eq!(a.state.total_balance(), a.total_minted());
        // The orphaned transfer is still valid on the new chain —
        // alice's nonce rolled back with it — so resubmission lands.
        assert_eq!(a.nonce_of(alice.address), 0);
        a.execute(&alice, Address([0xb0; 20]), ether(1), vec![], 100_000)
            .unwrap();
        assert_eq!(a.balance_of(Address([0xb0; 20])), ether(1));
    }

    #[test]
    fn equal_height_forks_converge_on_the_smaller_hash() {
        let (mut a, mut b) = twin_nets();
        let alice = Wallet::from_seed("alice");
        let carol = Wallet::from_seed("carol");
        a.execute(&alice, Address([0xb0; 20]), ether(1), vec![], 100_000)
            .unwrap();
        b.execute(&carol, Address([0xda; 20]), ether(1), vec![], 100_000)
            .unwrap();
        let block_a = a.head().clone();
        let block_b = b.head().clone();
        assert_eq!(block_a.number, block_b.number);
        let a_out = a.import_block(block_b.clone()).unwrap();
        let b_out = b.import_block(block_a.clone()).unwrap();
        // Exactly one side switches — the one holding the larger hash.
        if block_a.hash.0 < block_b.hash.0 {
            assert_eq!(a_out, ImportOutcome::Side);
            assert!(matches!(b_out, ImportOutcome::Reorged { .. }));
        } else {
            assert!(matches!(a_out, ImportOutcome::Reorged { .. }));
            assert_eq!(b_out, ImportOutcome::Side);
        }
        assert_eq!(a.head().hash, b.head().hash, "fork choice converges");
    }

    #[test]
    fn import_requires_history() {
        let (mut a, mut b) = twin_nets();
        let alice = Wallet::from_seed("alice");
        a.execute(&alice, Address([9; 20]), ether(1), vec![], 100_000)
            .unwrap();
        let mut cold = Testnet::new();
        cold.funded_wallet("alice", ether(10));
        cold.funded_wallet("carol", ether(10));
        assert!(matches!(
            cold.import_block(a.head().clone()),
            Err(ImportError::TooDeep)
        ));
        // And the armed twin accepts the very same block.
        assert_eq!(
            b.import_block(a.head().clone()).unwrap(),
            ImportOutcome::Extended
        );
    }
}
