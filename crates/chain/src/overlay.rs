//! Flat state overlay: the storage engine's hot read/write surface.
//!
//! Every Host read and write hits two flat hash maps — account metadata
//! keyed by address and storage keyed by `(address, slot)` — so a read
//! costs one probe regardless of how many accounts or slots exist, and
//! nothing here touches a Merkle trie. The authenticated tries are
//! reconciled from the dirty sets only at `seal_block`
//! ([`crate::state::WorldState::state_root`]); this module owns pure
//! key-value state.
//!
//! Reorg support is a property of the same structure rather than a
//! bolt-on: while recording, the first touch of an account or slot
//! captures its prior value into the open [`DiffLayer`], so rolling a
//! block back is "apply the top layer" — the whole-account snapshot
//! machinery the previous engine stacked next to its storage maps is
//! gone.

use sc_crypto::keccak256;
use sc_primitives::{Address, H256, U256};
use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, OnceLock};

/// `keccak256("")` — the code hash of every codeless account.
pub fn empty_code_hash() -> H256 {
    static EMPTY: OnceLock<H256> = OnceLock::new();
    *EMPTY.get_or_init(|| keccak256(&[]))
}

/// Account metadata: EOA (no code) or contract account. Storage lives
/// in the overlay's flat map, not here — an `Account` is a few words,
/// so diff layers can snapshot it by value cheaply.
#[derive(Clone, Debug)]
pub struct Account {
    /// Transaction / creation counter.
    pub nonce: u64,
    /// Balance in wei.
    pub balance: U256,
    /// Runtime code (empty for EOAs).
    pub code: Arc<Vec<u8>>,
    /// `keccak256(code)`, maintained on every code write so the EVM's
    /// analysis-cache key costs a field read instead of a hash.
    pub code_hash: H256,
    /// Root of the account's storage trie as of the last
    /// [`crate::state::WorldState::state_root`] fold — a cached
    /// diagnostic, never an input to the fold (which reads the live
    /// trie). [`sc_trie::empty_root`] for an account that has never
    /// stored anything.
    pub storage_root: H256,
}

impl Default for Account {
    fn default() -> Self {
        Account {
            nonce: 0,
            balance: U256::ZERO,
            code: Arc::default(),
            code_hash: empty_code_hash(),
            storage_root: sc_trie::empty_root(),
        }
    }
}

impl Account {
    /// True iff the account is distinguishable from a nonexistent one.
    pub fn exists(&self) -> bool {
        self.nonce != 0 || !self.balance.is_zero() || !self.code.is_empty()
    }
}

/// One block's worth of first-touch priors: every account and storage
/// slot the block touched, mapped to its value *before* the first touch
/// (`None` / [`U256::ZERO`] when it did not exist yet). Applying the
/// layer restores the overlay exactly as it was when the layer opened —
/// the primitive reorg rollback is built on.
///
/// Priors are recorded once per key per layer, so applying is
/// order-independent and a block that rewrites one slot a thousand
/// times costs one entry.
#[derive(Debug, Default)]
pub struct DiffLayer {
    pub(crate) accounts: HashMap<Address, Option<Account>>,
    pub(crate) storage: HashMap<(Address, U256), U256>,
}

impl DiffLayer {
    /// Number of distinct accounts and slots this layer snapshotted.
    pub fn len(&self) -> usize {
        self.accounts.len() + self.storage.len()
    }

    /// True when the layer recorded no touches at all.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty() && self.storage.is_empty()
    }
}

/// The flat state overlay: account metadata plus a single
/// `(address, slot) → value` map holding every live (nonzero) storage
/// word, with an optional open [`DiffLayer`] capturing priors for
/// rollback.
///
/// The `slots` directory mirrors the flat map's keys per address in
/// sorted order, so enumerations (`entries`, trie rebuilds, snapshot
/// export) are deterministic without ever sorting the hot map.
#[derive(Default)]
pub struct StateOverlay {
    accounts: HashMap<Address, Account>,
    storage: HashMap<(Address, U256), U256>,
    slots: HashMap<Address, BTreeSet<U256>>,
    recording: bool,
    open: DiffLayer,
}

impl StateOverlay {
    /// An empty overlay, recording off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read-only account metadata. `None` covers both never-touched
    /// addresses and storage-only addresses (slots written but no
    /// metadata ever set).
    pub fn account(&self, a: Address) -> Option<&Account> {
        self.accounts.get(&a)
    }

    /// Mutable account metadata, created as the default (nonexistent)
    /// account on first access. Records the prior into the open layer.
    pub fn account_mut(&mut self, a: Address) -> &mut Account {
        if self.recording {
            if let Entry::Vacant(e) = self.open.accounts.entry(a) {
                e.insert(self.accounts.get(&a).cloned());
            }
        }
        self.accounts.entry(a).or_default()
    }

    /// One flat probe: the slot's value, zero when absent.
    pub fn storage(&self, a: Address, key: U256) -> U256 {
        self.storage.get(&(a, key)).copied().unwrap_or(U256::ZERO)
    }

    /// Writes a slot (zero deletes), recording the prior into the open
    /// layer and maintaining the per-address slot directory.
    pub fn set_storage(&mut self, a: Address, key: U256, value: U256) {
        if self.recording {
            if let Entry::Vacant(e) = self.open.storage.entry((a, key)) {
                e.insert(self.storage.get(&(a, key)).copied().unwrap_or(U256::ZERO));
            }
        }
        self.set_storage_unrecorded(a, key, value);
    }

    /// The raw write shared with layer application (which must never
    /// re-record what it restores).
    fn set_storage_unrecorded(&mut self, a: Address, key: U256, value: U256) {
        if value.is_zero() {
            if self.storage.remove(&(a, key)).is_some() {
                if let Some(set) = self.slots.get_mut(&a) {
                    set.remove(&key);
                    if set.is_empty() {
                        self.slots.remove(&a);
                    }
                }
            }
        } else {
            self.storage.insert((a, key), value);
            self.slots.entry(a).or_default().insert(key);
        }
    }

    /// Every live (nonzero) slot of `a`, ascending by slot.
    pub fn entries(&self, a: Address) -> Vec<(U256, U256)> {
        self.slots.get(&a).map_or_else(Vec::new, |set| {
            set.iter().map(|k| (*k, self.storage[&(a, *k)])).collect()
        })
    }

    /// The live slot keys of `a`, ascending.
    pub fn slot_keys(&self, a: Address) -> Vec<U256> {
        self.slots
            .get(&a)
            .map_or_else(Vec::new, |set| set.iter().copied().collect())
    }

    /// True when `a` holds at least one live slot.
    pub fn has_slots(&self, a: Address) -> bool {
        self.slots.contains_key(&a)
    }

    /// Starts recording with a fresh, empty open layer.
    pub fn begin_recording(&mut self) {
        self.recording = true;
        self.open = DiffLayer::default();
    }

    /// Closes the open layer and returns it; recording continues into a
    /// fresh layer. Returns an empty layer when recording is off.
    pub fn take_layer(&mut self) -> DiffLayer {
        if self.recording {
            std::mem::take(&mut self.open)
        } else {
            DiffLayer::default()
        }
    }

    /// Stops recording and discards the open layer.
    pub fn stop_recording(&mut self) {
        self.recording = false;
        self.open = DiffLayer::default();
    }

    /// True while an open layer is recording priors.
    pub fn recording(&self) -> bool {
        self.recording
    }

    /// Applies a layer: every recorded prior is written back, restoring
    /// the overlay to the instant the layer opened. Returns the touched
    /// accounts and slot keys so the caller can mark its trie dirty
    /// sets. The restore is *not* recorded into any open layer — the
    /// caller sequences layers (it pops them newest-first).
    pub fn apply_layer(&mut self, layer: DiffLayer) -> (Vec<Address>, Vec<(Address, U256)>) {
        let mut accounts = Vec::with_capacity(layer.accounts.len());
        for (a, before) in layer.accounts {
            match before {
                Some(acct) => {
                    self.accounts.insert(a, acct);
                }
                None => {
                    self.accounts.remove(&a);
                }
            }
            accounts.push(a);
        }
        let mut slots = Vec::with_capacity(layer.storage.len());
        for ((a, k), v) in layer.storage {
            self.set_storage_unrecorded(a, k, v);
            slots.push((a, k));
        }
        (accounts, slots)
    }

    /// Every address ever touched: metadata holders plus storage-only
    /// addresses. Includes addresses whose account has since become
    /// empty — callers filter on [`Account::exists`].
    pub fn addresses(&self) -> Vec<Address> {
        let mut out: Vec<Address> = self.accounts.keys().copied().collect();
        out.extend(self.slots.keys().filter(|a| !self.accounts.contains_key(a)));
        out
    }

    /// Number of existing accounts (diagnostics).
    pub fn account_count(&self) -> usize {
        self.accounts.values().filter(|a| a.exists()).count()
    }

    /// Sum of every account's balance — the whole world's wei, for the
    /// conservation invariant.
    pub fn total_balance(&self) -> U256 {
        self.accounts
            .values()
            .fold(U256::ZERO, |acc, a| acc.wrapping_add(a.balance))
    }

    /// Number of live storage words across all accounts (diagnostics).
    pub fn storage_len(&self) -> usize {
        self.storage.len()
    }

    /// Updates the cached `storage_root` on an account's metadata after
    /// a fold, bypassing recording: the field is derived state, and
    /// rollback re-derives it from the restored values.
    pub(crate) fn set_storage_root(&mut self, a: Address, root: H256) {
        if let Some(acct) = self.accounts.get_mut(&a) {
            acct.storage_root = root;
        }
    }

    /// The flat storage map, for the seal-time fold jobs (read-only,
    /// shared across fold threads).
    pub(crate) fn storage_map(&self) -> &HashMap<(Address, U256), U256> {
        &self.storage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(b: u8) -> Address {
        Address([b; 20])
    }

    #[test]
    fn flat_reads_and_slot_directory() {
        let mut o = StateOverlay::new();
        assert_eq!(o.storage(addr(1), U256::ONE), U256::ZERO);
        o.set_storage(addr(1), U256::from_u64(9), U256::from_u64(90));
        o.set_storage(addr(1), U256::ONE, U256::from_u64(10));
        assert_eq!(o.storage(addr(1), U256::ONE), U256::from_u64(10));
        assert_eq!(
            o.entries(addr(1)),
            vec![
                (U256::ONE, U256::from_u64(10)),
                (U256::from_u64(9), U256::from_u64(90)),
            ],
            "entries are slot-ascending"
        );
        o.set_storage(addr(1), U256::ONE, U256::ZERO);
        assert_eq!(o.entries(addr(1)).len(), 1);
        o.set_storage(addr(1), U256::from_u64(9), U256::ZERO);
        assert!(!o.has_slots(addr(1)), "empty directory entries are dropped");
        assert_eq!(o.storage_len(), 0);
    }

    #[test]
    fn layer_restores_first_touch_priors() {
        let mut o = StateOverlay::new();
        o.account_mut(addr(1)).balance = U256::from_u64(100);
        o.set_storage(addr(1), U256::ONE, U256::from_u64(7));

        o.begin_recording();
        o.account_mut(addr(1)).balance = U256::from_u64(50);
        o.account_mut(addr(1)).nonce = 3; // second touch: no re-record
        o.account_mut(addr(2)).balance = U256::from_u64(5);
        o.set_storage(addr(1), U256::ONE, U256::from_u64(8));
        o.set_storage(addr(1), U256::ONE, U256::from_u64(9));
        o.set_storage(addr(2), U256::from_u64(2), U256::from_u64(22));
        let layer = o.take_layer();
        assert_eq!(layer.len(), 2 + 2, "one prior per touched key");

        let (accounts, slots) = o.apply_layer(layer);
        assert_eq!(accounts.len(), 2);
        assert_eq!(slots.len(), 2);
        assert_eq!(o.account(addr(1)).unwrap().balance, U256::from_u64(100));
        assert_eq!(o.account(addr(1)).unwrap().nonce, 0);
        assert!(o.account(addr(2)).is_none(), "created account removed");
        assert_eq!(o.storage(addr(1), U256::ONE), U256::from_u64(7));
        assert_eq!(o.storage(addr(2), U256::from_u64(2)), U256::ZERO);
        assert!(!o.has_slots(addr(2)));
    }

    #[test]
    fn recording_off_records_nothing() {
        let mut o = StateOverlay::new();
        o.account_mut(addr(1)).balance = U256::ONE;
        o.set_storage(addr(1), U256::ONE, U256::ONE);
        assert!(o.take_layer().is_empty());
        o.begin_recording();
        assert!(o.recording());
        o.stop_recording();
        o.account_mut(addr(1)).balance = U256::from_u64(2);
        assert!(o.take_layer().is_empty());
    }

    #[test]
    fn addresses_cover_storage_only_accounts() {
        let mut o = StateOverlay::new();
        o.account_mut(addr(1)).balance = U256::ONE;
        o.set_storage(addr(2), U256::ONE, U256::from_u64(5));
        let mut addrs = o.addresses();
        addrs.sort_unstable();
        assert_eq!(addrs, vec![addr(1), addr(2)]);
        assert_eq!(o.account_count(), 1, "storage-only address never exists");
    }
}
