//! Journaled world state over the flat [`StateOverlay`]: the chain's
//! implementation of [`sc_evm::Host`], plus the seal-time trie fold,
//! the pruning archive, and deterministic snapshot export/import.
//!
//! Reads and writes never touch a Merkle trie — they hit the overlay's
//! flat maps and mark dirty sets. [`WorldState::state_root`] reconciles
//! the authenticated tries from those sets once per block (batched,
//! folding big batches across threads), and when pruning is enabled
//! ([`WorldState::enable_pruning`]) each seal also commits the changed
//! trie spines into a refcounted [`TrieArchive`] window so historical
//! roots stay provable while node memory stays bounded.

use crate::overlay::StateOverlay;
use sc_crypto::keccak256;
use sc_evm::host::{Host, LogEntry};
use sc_primitives::rlp::{self, Item};
use sc_primitives::{Address, H256, U256};
use sc_trie::{ProofError, SecureTrie, TrieArchive};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;

pub use crate::overlay::{empty_code_hash, Account, DiffLayer};

/// Canonical RLP account encoding committed into the account trie:
/// `[nonce, balance, storage_root, code_hash]`.
pub fn encode_account(nonce: u64, balance: U256, storage_root: H256, code_hash: H256) -> Vec<u8> {
    rlp::encode_list(&[
        Item::u64(nonce),
        Item::uint(balance),
        Item::bytes(storage_root.as_bytes().to_vec()),
        Item::bytes(code_hash.as_bytes().to_vec()),
    ])
}

/// Canonical RLP storage-value encoding committed into storage tries:
/// the big-endian integer with leading zeros trimmed.
pub fn encode_storage_value(value: U256) -> Vec<u8> {
    rlp::encode(&Item::uint(value))
}

/// Reversible operations recorded while executing a transaction.
enum JournalOp {
    Balance(Address, U256),
    Nonce(Address, u64),
    Storage(Address, U256, U256),
    Code(Address, Arc<Vec<u8>>, H256),
    AccountCreated(Address),
    Log,
    Refund(u64),
}

/// Why a snapshot blob was rejected by [`WorldState::import_snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The RLP envelope or an account entry did not decode to the
    /// expected shape.
    Malformed,
    /// Accounts were not strictly ascending by address (the canonical
    /// form [`WorldState::export_snapshot`] emits), so the blob cannot
    /// round-trip deterministically.
    Unordered,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Malformed => write!(f, "malformed state snapshot"),
            SnapshotError::Unordered => write!(f, "snapshot accounts not in canonical order"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// One sealed block's archive bookkeeping: the account-trie root it
/// committed plus, per account whose storage root moved, the root it
/// displaced and the one it installed ([`sc_trie::empty_root`] encodes
/// "no storage").
struct SealRecord {
    account_root: H256,
    changed: Vec<(Address, H256, H256)>,
}

/// The pruning archive: a refcounted node store holding every trie node
/// reachable from the last `window` sealed roots, and nothing else.
struct EngineArchive {
    store: TrieArchive,
    window: usize,
    records: VecDeque<SealRecord>,
    /// Storage root currently archived per account (absent = empty).
    committed_storage: HashMap<Address, H256>,
    /// Accounts whose storage trie was re-folded since the last commit.
    pending: HashSet<Address>,
}

/// The full world state with a transaction-scoped journal.
///
/// Mutations during EVM execution are journaled so nested call frames can
/// roll back precisely; [`WorldState::clear_tx_scratch`] resets the
/// journal, log buffer and refund counter between transactions.
#[derive(Default)]
pub struct WorldState {
    /// Flat account/storage maps — the only thing reads ever touch.
    overlay: StateOverlay,
    /// Logs emitted by the transaction currently executing.
    pub tx_logs: Vec<LogEntry>,
    /// Gas refund accumulated by the current transaction.
    pub tx_refund: u64,
    journal: Vec<JournalOp>,
    /// Hashes of past blocks for `BLOCKHASH` (maintained by the chain,
    /// which bounds it to the EVM's 256-block window).
    pub block_hashes: HashMap<u64, H256>,
    /// Secure trie over `[nonce, balance, storage_root, code_hash]`
    /// accounts, keyed by `keccak(address)`. Kept in sync lazily: the
    /// dirty sets below record what changed and [`WorldState::state_root`]
    /// folds them in one pass per block.
    account_trie: SecureTrie,
    /// Per-account storage tries keyed by `keccak(slot)`. An account
    /// destroyed or emptied by a block has its trie *dropped* at the
    /// next fold (it no longer contributes to the root); a later
    /// resurrection rebuilds it from the overlay's flat slots.
    storage_tries: HashMap<Address, SecureTrie>,
    /// Accounts whose trie entry is stale. Marking is conservative —
    /// reverts don't unmark — because the fold reconciles against the
    /// live account anyway; re-folding an unchanged value is a no-op.
    dirty_accounts: HashSet<Address>,
    /// Storage slots whose trie entry is stale.
    dirty_storage: HashMap<Address, HashSet<U256>>,
    /// Trie-node pruning and historical-proof archive, when
    /// [`WorldState::enable_pruning`] armed it.
    archive: Option<EngineArchive>,
}

impl WorldState {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read-only account view.
    pub fn account(&self, a: Address) -> Option<&Account> {
        self.overlay.account(a)
    }

    /// Mints `amount` wei to an address outside any journal (genesis
    /// allocation / faucet).
    pub fn mint(&mut self, a: Address, amount: U256) {
        let acct = self.overlay.account_mut(a);
        acct.balance = acct.balance.wrapping_add(amount);
        self.dirty_accounts.insert(a);
    }

    /// Installs code directly (genesis-style; bypasses the journal).
    pub fn install_code(&mut self, a: Address, code: Vec<u8>) {
        let acct = self.overlay.account_mut(a);
        acct.code_hash = keccak256(&code);
        acct.code = Arc::new(code);
        if acct.nonce == 0 {
            acct.nonce = 1;
        }
        self.dirty_accounts.insert(a);
    }

    /// Drops per-transaction scratch (journal, logs, refund). Called by the
    /// chain between transactions once effects are final.
    pub fn clear_tx_scratch(&mut self) -> (Vec<LogEntry>, u64) {
        self.journal.clear();
        let refund = self.tx_refund;
        self.tx_refund = 0;
        (std::mem::take(&mut self.tx_logs), refund)
    }

    /// Number of existing accounts (diagnostics).
    pub fn account_count(&self) -> usize {
        self.overlay.account_count()
    }

    /// Sum of every account's balance — the whole world's wei. The EVM
    /// and the gas settlement only ever *move* value, so this must equal
    /// the chain's total minted supply after every block (the ether
    /// conservation invariant checked by the chaos suite).
    pub fn total_balance(&self) -> U256 {
        self.overlay.total_balance()
    }

    /// Marks one storage slot (and its account) stale in the tries.
    fn touch_storage(&mut self, a: Address, key: U256) {
        self.dirty_storage.entry(a).or_default().insert(key);
        self.dirty_accounts.insert(a);
    }

    /// Starts undo recording with a fresh, empty layer. Until
    /// [`WorldState::end_undo`], the first touch of every account and
    /// slot records its prior value.
    pub fn begin_undo_layer(&mut self) {
        self.overlay.begin_recording();
    }

    /// Closes the open undo layer and returns it, immediately opening a
    /// fresh one (recording stays on). The chain calls this at each
    /// seal, stacking one layer per block.
    pub fn take_undo_layer(&mut self) -> DiffLayer {
        self.overlay.take_layer()
    }

    /// Stops undo recording and discards any open layer.
    pub fn end_undo(&mut self) {
        self.overlay.stop_recording();
    }

    /// True while an undo layer is open.
    pub fn recording_undo(&self) -> bool {
        self.overlay.recording()
    }

    /// Applies an undo layer: every recorded prior is restored, and the
    /// dirty sets are marked so the next [`WorldState::state_root`] fold
    /// reconciles the tries.
    ///
    /// The restore itself is *not* recorded into any open layer — the
    /// caller sequences layers (it pops them newest-first).
    pub fn apply_undo(&mut self, undo: DiffLayer) {
        let (accounts, slots) = self.overlay.apply_layer(undo);
        for a in accounts {
            self.dirty_accounts.insert(a);
        }
        for (a, k) in slots {
            self.touch_storage(a, k);
        }
    }

    /// Every address ever touched, for independent state-root audits.
    /// Includes addresses whose account has since become empty — callers
    /// filter on [`Account::exists`] exactly like the fold does.
    pub fn addresses(&self) -> Vec<Address> {
        self.overlay.addresses()
    }

    /// Sets a balance directly, outside any journal (commit path of the
    /// optimistic executor: effects are final when applied).
    pub(crate) fn set_balance_raw(&mut self, a: Address, v: U256) {
        self.overlay.account_mut(a).balance = v;
        self.dirty_accounts.insert(a);
    }

    /// Adds `delta` wei to a balance directly (the executor's
    /// commutative coinbase fee credit).
    pub(crate) fn add_balance_raw(&mut self, a: Address, delta: U256) {
        let acct = self.overlay.account_mut(a);
        acct.balance = acct.balance.wrapping_add(delta);
        self.dirty_accounts.insert(a);
    }

    /// Sets a nonce directly, outside any journal.
    pub(crate) fn set_nonce_raw(&mut self, a: Address, v: u64) {
        self.overlay.account_mut(a).nonce = v;
        self.dirty_accounts.insert(a);
    }

    /// Installs code (with its precomputed hash) directly, outside any
    /// journal.
    pub(crate) fn set_code_raw(&mut self, a: Address, code: Arc<Vec<u8>>, hash: H256) {
        let acct = self.overlay.account_mut(a);
        acct.code = code;
        acct.code_hash = hash;
        self.dirty_accounts.insert(a);
    }

    /// Writes a storage slot directly, outside any journal (zero
    /// removes the entry, like a reverted write would).
    pub(crate) fn set_storage_raw(&mut self, a: Address, key: U256, value: U256) {
        self.overlay.set_storage(a, key, value);
        self.touch_storage(a, key);
    }

    /// Folds every dirty slot and account into the authenticated tries
    /// and returns the account-trie root — the `state_root` a sealed
    /// block commits to. Called once per block (not per op): between
    /// folds the dirty sets batch arbitrarily many writes, and the
    /// trie's node caches make each fold proportional to what changed.
    ///
    /// Idempotent: folding with empty dirty sets just re-reads the
    /// cached root.
    pub fn state_root(&mut self) -> H256 {
        // Per-account storage tries are independent: take each dirty
        // account's trie out of the map and fold them as a batch —
        // concurrently when the batch is big enough to pay for threads.
        let mut jobs: Vec<StorageFoldJob> = std::mem::take(&mut self.dirty_storage)
            .into_iter()
            .map(|(a, mut keys)| {
                self.dirty_accounts.insert(a);
                let trie = match self.storage_tries.remove(&a) {
                    Some(t) => t,
                    None => {
                        // No cached trie (fresh account, or dropped when
                        // the account was destroyed): fold every live
                        // slot so the rebuild is complete, not just the
                        // dirty subset.
                        keys.extend(self.overlay.slot_keys(a));
                        SecureTrie::new()
                    }
                };
                StorageFoldJob {
                    address: a,
                    keys,
                    trie,
                    root: H256::ZERO,
                }
            })
            .collect();
        fold_storage_jobs(self.overlay.storage_map(), &mut jobs);
        for job in jobs {
            self.overlay.set_storage_root(job.address, job.root);
            // An emptied trie is dropped, not retained: it contributes
            // nothing to any root and would otherwise pin node memory.
            if !job.trie.is_empty() {
                self.storage_tries.insert(job.address, job.trie);
            }
        }
        for a in std::mem::take(&mut self.dirty_accounts) {
            // Every dirty account is an archive candidate: destruction
            // drops a storage root and resurrection re-introduces one
            // even when no slot was written this block. Unchanged roots
            // are skipped cheaply at commit (memoized root compare).
            if let Some(arch) = &mut self.archive {
                arch.pending.insert(a);
            }
            let meta = self
                .overlay
                .account(a)
                .map(|acct| (acct.exists(), acct.nonce, acct.balance, acct.code_hash));
            match meta {
                Some((true, nonce, balance, code_hash)) => {
                    let root = self.live_storage_root(a);
                    self.account_trie.insert(
                        a.as_bytes(),
                        encode_account(nonce, balance, root, code_hash),
                    );
                    self.overlay.set_storage_root(a, root);
                }
                _ => {
                    self.account_trie.remove(a.as_bytes());
                    // A destroyed/emptied account's storage trie no
                    // longer backs any commitment: drop it so long runs
                    // don't accumulate dead tries. Its flat slots stay
                    // in the overlay (absent-account semantics), and a
                    // resurrection rebuilds the trie from them.
                    self.storage_tries.remove(&a);
                }
            }
        }
        self.account_trie.root()
    }

    /// The storage root backing `a`'s next account-trie entry, read
    /// from the live trie (memoized — free when clean). When no trie is
    /// cached but the overlay holds slots (a resurrected account), the
    /// trie is rebuilt from the flat map first.
    fn live_storage_root(&mut self, a: Address) -> H256 {
        if let Some(t) = self.storage_tries.get_mut(&a) {
            return t.root();
        }
        let entries = self.overlay.entries(a);
        if entries.is_empty() {
            return sc_trie::empty_root();
        }
        let mut t = SecureTrie::new();
        for (k, v) in entries {
            t.insert(&k.to_be_bytes(), encode_storage_value(v));
        }
        let root = t.root();
        self.storage_tries.insert(a, t);
        root
    }

    /// Merkle proof that `(a, key)` holds its current value under the
    /// current [`WorldState::state_root`] (the fold runs first, so the
    /// proof anchors to the root the *next* sealed block would commit —
    /// identical to the head block's root whenever nothing changed since
    /// it sealed).
    pub fn prove_storage(&mut self, a: Address, key: U256) -> crate::proof::StorageProof {
        let root = self.state_root();
        let account_proof = self.account_trie.prove(a.as_bytes());
        let storage_proof = self
            .storage_tries
            .get_mut(&a)
            .map(|t| t.prove(&key.to_be_bytes()))
            .unwrap_or_default();
        crate::proof::StorageProof {
            address: a,
            slot: key,
            value: self.storage(a, key),
            root,
            account_proof,
            storage_proof,
        }
    }

    /// Merkle proof that `a` currently holds its nonce and balance
    /// under the current [`WorldState::state_root`] — the single-level
    /// account counterpart of [`WorldState::prove_storage`], with the
    /// same anchoring rule (the fold runs first).
    pub fn prove_account(&mut self, a: Address) -> crate::proof::AccountProof {
        let root = self.state_root();
        let account_proof = self.account_trie.prove(a.as_bytes());
        // Mirror exactly what the fold commits: only existing accounts
        // have a leaf; everything else proves the (0, 0) exclusion.
        let (nonce, balance) = self
            .overlay
            .account(a)
            .filter(|m| m.exists())
            .map(|m| (m.nonce, m.balance))
            .unwrap_or((0, U256::ZERO));
        crate::proof::AccountProof {
            address: a,
            nonce,
            balance,
            root,
            account_proof,
        }
    }

    // ---- pruning archive ----

    /// Arms the pruning archive with a retention window of `window`
    /// sealed roots (min 1). From the next [`WorldState::commit_archive`]
    /// on, every seal's changed trie spines are archived, historical
    /// storage proofs within the window are served by
    /// [`WorldState::prove_storage_at`], and nodes unreachable from the
    /// retained roots are freed as seals slide the window forward.
    pub fn enable_pruning(&mut self, window: usize) {
        self.archive = Some(EngineArchive {
            store: TrieArchive::new(),
            window: window.max(1),
            records: VecDeque::new(),
            committed_storage: HashMap::new(),
            pending: HashSet::new(),
        });
    }

    /// True once [`WorldState::enable_pruning`] armed the archive.
    pub fn pruning_enabled(&self) -> bool {
        self.archive.is_some()
    }

    /// Nodes currently held by the archive (bounded by the window).
    pub fn archived_node_count(&self) -> usize {
        self.archive.as_ref().map_or(0, |a| a.store.node_count())
    }

    /// Total encoded bytes currently held by the archive.
    pub fn archived_byte_size(&self) -> usize {
        self.archive.as_ref().map_or(0, |a| a.store.byte_size())
    }

    /// Nodes held by the live (unarchived) account and storage tries.
    pub fn live_trie_node_count(&self) -> usize {
        self.account_trie.node_count()
            + self
                .storage_tries
                .values()
                .map(|t| t.node_count())
                .sum::<usize>()
    }

    /// True while `root` is still reachable in the archive (i.e. inside
    /// the retention window).
    pub fn archived_root_available(&self, root: H256) -> bool {
        self.archive
            .as_ref()
            .is_some_and(|a| a.store.contains_root(root))
    }

    /// Commits the current sealed tries into the archive: the account
    /// trie plus every storage trie re-folded since the last commit
    /// whose root actually moved. When the record count exceeds the
    /// window, the oldest record's displaced roots are released, freeing
    /// every node no retained root reaches. No-op with pruning off.
    ///
    /// Call once per sealed block, *after* [`WorldState::state_root`].
    pub fn commit_archive(&mut self) {
        let Some(arch) = &mut self.archive else {
            return;
        };
        let account_root = arch.store.commit_secure(&mut self.account_trie);
        let mut pending: Vec<Address> = arch.pending.drain().collect();
        pending.sort_unstable();
        let mut changed = Vec::new();
        for a in pending {
            let old = arch
                .committed_storage
                .get(&a)
                .copied()
                .unwrap_or_else(sc_trie::empty_root);
            let new = match self.storage_tries.get_mut(&a) {
                Some(t) => t.root(),
                None => sc_trie::empty_root(),
            };
            if old == new {
                continue;
            }
            if new == sc_trie::empty_root() {
                arch.committed_storage.remove(&a);
            } else {
                if let Some(t) = self.storage_tries.get_mut(&a) {
                    arch.store.commit_secure(t);
                }
                arch.committed_storage.insert(a, new);
            }
            changed.push((a, old, new));
        }
        arch.records.push_back(SealRecord {
            account_root,
            changed,
        });
        while arch.records.len() > arch.window {
            let rec = arch.records.pop_front().expect("len > window >= 1");
            arch.store.release(rec.account_root);
            for (_, old, _) in rec.changed {
                // `old` was current up to this record's block; with the
                // record evicted no retained block can reference it.
                arch.store.release(old);
            }
        }
    }

    /// Rolls the archive back one sealed record, releasing the roots
    /// that seal installed and restoring the displaced storage roots as
    /// current. Call once per [`WorldState::apply_undo`]'d block, newest
    /// first. Rolling back deeper than the window leaves the archive
    /// correct but may strand (never free) nodes from the un-tracked
    /// depth — reorgs are expected to be shallower than the window.
    pub fn rollback_archive(&mut self) {
        let Some(arch) = &mut self.archive else {
            return;
        };
        let Some(rec) = arch.records.pop_back() else {
            return;
        };
        arch.store.release(rec.account_root);
        for (a, old, new) in rec.changed {
            arch.store.release(new);
            if old == sc_trie::empty_root() {
                arch.committed_storage.remove(&a);
            } else {
                arch.committed_storage.insert(a, old);
            }
        }
    }

    /// Merkle proof that `(a, key)` held `value` under the *historical*
    /// `state_root` — any root still inside the pruning window. The
    /// proof is built statelessly from archived nodes, so it verifies
    /// with [`crate::proof::StorageProof::verify`] exactly like a live
    /// proof. Errors with [`ProofError::MissingNode`] once the root has
    /// been pruned (or was never archived).
    pub fn prove_storage_at(
        &self,
        state_root: H256,
        a: Address,
        key: U256,
    ) -> Result<crate::proof::StorageProof, ProofError> {
        let Some(arch) = &self.archive else {
            return Err(ProofError::MissingNode(state_root));
        };
        let account_proof = arch.store.prove_secure(state_root, a.as_bytes())?;
        let account_rlp = arch.store.get_secure(state_root, a.as_bytes())?;
        let (value, storage_proof) = match account_rlp {
            None => (U256::ZERO, Vec::new()),
            Some(enc) => {
                let storage_root =
                    crate::proof::decode_storage_root(&enc).ok_or(ProofError::BadNode)?;
                let storage_proof = arch.store.prove_secure(storage_root, &key.to_be_bytes())?;
                let value = match arch.store.get_secure(storage_root, &key.to_be_bytes())? {
                    None => U256::ZERO,
                    Some(v) => rlp::decode(&v)
                        .ok()
                        .and_then(|i| i.as_uint())
                        .ok_or(ProofError::BadNode)?,
                };
                (value, storage_proof)
            }
        };
        Ok(crate::proof::StorageProof {
            address: a,
            slot: key,
            value,
            root: state_root,
            account_proof,
            storage_proof,
        })
    }

    /// Merkle proof that `a` held its nonce and balance under the
    /// *historical* `state_root` — any root still inside the pruning
    /// window, served statelessly from archived nodes like
    /// [`WorldState::prove_storage_at`].
    pub fn prove_account_at(
        &self,
        state_root: H256,
        a: Address,
    ) -> Result<crate::proof::AccountProof, ProofError> {
        let Some(arch) = &self.archive else {
            return Err(ProofError::MissingNode(state_root));
        };
        let account_proof = arch.store.prove_secure(state_root, a.as_bytes())?;
        let (nonce, balance) = match arch.store.get_secure(state_root, a.as_bytes())? {
            None => (0, U256::ZERO),
            Some(enc) => crate::proof::decode_account_parts(&enc).ok_or(ProofError::BadNode)?,
        };
        Ok(crate::proof::AccountProof {
            address: a,
            nonce,
            balance,
            root: state_root,
            account_proof,
        })
    }

    // ---- snapshots ----

    /// Serialises the live state into the canonical snapshot blob: an
    /// RLP list of `[address, nonce, balance, code, [[slot, value]…]]`
    /// entries, strictly ascending by address with slots ascending, so
    /// two nodes holding the same state always emit identical bytes.
    /// Accounts that neither exist nor hold slots are omitted.
    pub fn export_snapshot(&self) -> Vec<u8> {
        let mut addrs = self.overlay.addresses();
        addrs.sort_unstable();
        let mut items = Vec::new();
        for a in addrs {
            let meta = self.overlay.account(a);
            let entries = self.overlay.entries(a);
            if !meta.is_some_and(Account::exists) && entries.is_empty() {
                continue;
            }
            let (nonce, balance, code) = meta.map_or_else(
                || (0, U256::ZERO, Arc::default()),
                |m| (m.nonce, m.balance, m.code.clone()),
            );
            let slots = entries
                .into_iter()
                .map(|(k, v)| Item::List(vec![Item::uint(k), Item::uint(v)]))
                .collect();
            items.push(Item::List(vec![
                Item::address(a),
                Item::u64(nonce),
                Item::uint(balance),
                Item::bytes(code.as_slice().to_vec()),
                Item::List(slots),
            ]));
        }
        rlp::encode_list(&items)
    }

    /// Rebuilds a state from a snapshot blob. Everything is marked
    /// dirty, so the first [`WorldState::state_root`] reconstructs the
    /// tries — importing a node's snapshot and folding must reproduce
    /// the exporter's root bit for bit. Rejects blobs that are not in
    /// the canonical (strictly address-ascending) form.
    pub fn import_snapshot(data: &[u8]) -> Result<WorldState, SnapshotError> {
        let Ok(Item::List(entries)) = rlp::decode(data) else {
            return Err(SnapshotError::Malformed);
        };
        let mut state = WorldState::new();
        let mut last: Option<Address> = None;
        for entry in entries {
            let Item::List(fields) = entry else {
                return Err(SnapshotError::Malformed);
            };
            let [addr, nonce, balance, code, slots] = fields.as_slice() else {
                return Err(SnapshotError::Malformed);
            };
            let Item::Bytes(addr) = addr else {
                return Err(SnapshotError::Malformed);
            };
            if addr.len() != 20 {
                return Err(SnapshotError::Malformed);
            }
            let mut a = Address([0; 20]);
            a.0.copy_from_slice(addr);
            if last.is_some_and(|prev| prev >= a) {
                return Err(SnapshotError::Unordered);
            }
            last = Some(a);
            let nonce = nonce
                .as_uint()
                .and_then(|v| v.to_u64())
                .ok_or(SnapshotError::Malformed)?;
            let balance = balance.as_uint().ok_or(SnapshotError::Malformed)?;
            let Item::Bytes(code) = code else {
                return Err(SnapshotError::Malformed);
            };
            if nonce != 0 || !balance.is_zero() || !code.is_empty() {
                let acct = state.overlay.account_mut(a);
                acct.nonce = nonce;
                acct.balance = balance;
                acct.code_hash = keccak256(code);
                acct.code = Arc::new(code.clone());
            }
            state.dirty_accounts.insert(a);
            let Item::List(slots) = slots else {
                return Err(SnapshotError::Malformed);
            };
            for slot in slots {
                let Item::List(kv) = slot else {
                    return Err(SnapshotError::Malformed);
                };
                let [k, v] = kv.as_slice() else {
                    return Err(SnapshotError::Malformed);
                };
                let k = k.as_uint().ok_or(SnapshotError::Malformed)?;
                let v = v.as_uint().ok_or(SnapshotError::Malformed)?;
                if v.is_zero() {
                    return Err(SnapshotError::Malformed);
                }
                state.overlay.set_storage(a, k, v);
                state.touch_storage(a, k);
            }
        }
        Ok(state)
    }
}

/// One dirty account's storage-trie fold: the stale keys plus the trie
/// itself, taken out of [`WorldState::storage_tries`] for the duration.
struct StorageFoldJob {
    address: Address,
    keys: HashSet<U256>,
    trie: SecureTrie,
    root: H256,
}

/// Dirty accounts below this count fold inline — thread setup would
/// dominate the trie work.
const PARALLEL_FOLD_THRESHOLD: usize = 8;

/// Folds every job's stale keys into its trie and records the new root.
/// Jobs are independent (one trie per account, shared read-only view of
/// the flat storage map), so big batches fan out over scoped threads;
/// MPT roots are canonical regardless of insertion order, making the
/// result identical either way.
fn fold_storage_jobs(storage: &HashMap<(Address, U256), U256>, jobs: &mut [StorageFoldJob]) {
    let fold_one = |job: &mut StorageFoldJob| {
        for key in &job.keys {
            let k = key.to_be_bytes();
            match storage.get(&(job.address, *key)) {
                Some(v) if !v.is_zero() => job.trie.insert(&k, encode_storage_value(*v)),
                _ => {
                    job.trie.remove(&k);
                }
            }
        }
        job.root = job.trie.root();
    };

    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    if jobs.len() < PARALLEL_FOLD_THRESHOLD || workers < 2 {
        jobs.iter_mut().for_each(fold_one);
        return;
    }
    let chunk_len = jobs.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for chunk in jobs.chunks_mut(chunk_len) {
            scope.spawn(|| chunk.iter_mut().for_each(&fold_one));
        }
    });
}

impl Host for WorldState {
    fn balance(&self, a: Address) -> U256 {
        self.overlay
            .account(a)
            .map_or(U256::ZERO, |acct| acct.balance)
    }

    fn code(&self, a: Address) -> Arc<Vec<u8>> {
        self.overlay
            .account(a)
            .map_or_else(Default::default, |acct| acct.code.clone())
    }

    fn storage(&self, a: Address, key: U256) -> U256 {
        self.overlay.storage(a, key)
    }

    fn set_storage(&mut self, a: Address, key: U256, value: U256) {
        let prev = self.overlay.storage(a, key);
        self.journal.push(JournalOp::Storage(a, key, prev));
        self.overlay.set_storage(a, key, value);
        self.touch_storage(a, key);
    }

    fn nonce(&self, a: Address) -> u64 {
        self.overlay.account(a).map_or(0, |acct| acct.nonce)
    }

    fn bump_nonce(&mut self, a: Address) {
        let acct = self.overlay.account_mut(a);
        let prev = acct.nonce;
        acct.nonce = prev + 1;
        self.journal.push(JournalOp::Nonce(a, prev));
        self.dirty_accounts.insert(a);
    }

    fn account_exists(&self, a: Address) -> bool {
        self.overlay.account(a).is_some_and(Account::exists)
    }

    fn create_contract(&mut self, a: Address) -> bool {
        let acct = self.overlay.account_mut(a);
        if acct.nonce != 0 || !acct.code.is_empty() {
            return false;
        }
        // Journal the storage this creation evicts *before* the
        // `AccountCreated` marker: `revert` pops in reverse, so the
        // created-account teardown (nonce = 0, storage cleared) runs
        // first and the evicted slots are restored on top of it.
        let evicted = self.overlay.entries(a);
        for &(k, v) in &evicted {
            self.journal.push(JournalOp::Storage(a, k, v));
        }
        self.journal.push(JournalOp::AccountCreated(a));
        self.overlay.account_mut(a).nonce = 1;
        for (k, _) in evicted {
            self.overlay.set_storage(a, k, U256::ZERO);
            self.touch_storage(a, k);
        }
        self.dirty_accounts.insert(a);
        true
    }

    fn code_hash(&self, a: Address) -> H256 {
        self.overlay
            .account(a)
            .map_or_else(empty_code_hash, |acct| acct.code_hash)
    }

    fn set_code(&mut self, a: Address, code: Vec<u8>) {
        let prev = self.code(a);
        let prev_hash = self.code_hash(a);
        self.journal.push(JournalOp::Code(a, prev, prev_hash));
        let acct = self.overlay.account_mut(a);
        acct.code_hash = keccak256(&code);
        acct.code = Arc::new(code);
        self.dirty_accounts.insert(a);
    }

    fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        let from_bal = self.balance(from);
        if from_bal < value {
            return false;
        }
        if from == to {
            // Self-transfer: only the balance check matters.
            return true;
        }
        self.journal.push(JournalOp::Balance(from, from_bal));
        let to_bal = self.balance(to);
        self.journal.push(JournalOp::Balance(to, to_bal));
        self.overlay.account_mut(from).balance = from_bal.wrapping_sub(value);
        self.overlay.account_mut(to).balance = to_bal.wrapping_add(value);
        self.dirty_accounts.insert(from);
        self.dirty_accounts.insert(to);
        true
    }

    fn snapshot(&mut self) -> usize {
        self.journal.len()
    }

    fn revert(&mut self, snapshot: usize) {
        while self.journal.len() > snapshot {
            match self.journal.pop().expect("journal entry") {
                JournalOp::Balance(a, v) => self.overlay.account_mut(a).balance = v,
                JournalOp::Nonce(a, v) => self.overlay.account_mut(a).nonce = v,
                JournalOp::Storage(a, k, v) => self.overlay.set_storage(a, k, v),
                JournalOp::Code(a, c, h) => {
                    let acct = self.overlay.account_mut(a);
                    acct.code = c;
                    acct.code_hash = h;
                }
                JournalOp::AccountCreated(a) => {
                    self.overlay.account_mut(a).nonce = 0;
                    for (k, _) in self.overlay.entries(a) {
                        self.overlay.set_storage(a, k, U256::ZERO);
                    }
                }
                JournalOp::Log => {
                    self.tx_logs.pop();
                }
                JournalOp::Refund(prev) => self.tx_refund = prev,
            }
        }
    }

    fn log(&mut self, entry: LogEntry) {
        self.journal.push(JournalOp::Log);
        self.tx_logs.push(entry);
    }

    fn block_hash(&self, number: u64) -> H256 {
        self.block_hashes
            .get(&number)
            .copied()
            .unwrap_or(H256::ZERO)
    }

    fn add_refund(&mut self, amount: u64) {
        self.journal.push(JournalOp::Refund(self.tx_refund));
        self.tx_refund += amount;
    }

    fn storage_entries(&self, a: Address) -> Vec<(U256, U256)> {
        self.overlay.entries(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(b: u8) -> Address {
        Address([b; 20])
    }

    #[test]
    fn mint_and_balance() {
        let mut s = WorldState::new();
        s.mint(addr(1), U256::from_u64(100));
        s.mint(addr(1), U256::from_u64(20));
        assert_eq!(s.balance(addr(1)), U256::from_u64(120));
    }

    #[test]
    fn journal_roundtrip_across_all_ops() {
        let mut s = WorldState::new();
        s.mint(addr(1), U256::from_u64(100));
        let snap = s.snapshot();
        s.transfer(addr(1), addr(2), U256::from_u64(30));
        s.bump_nonce(addr(1));
        s.set_storage(addr(3), U256::ONE, U256::from_u64(9));
        s.create_contract(addr(4));
        s.set_code(addr(4), vec![1, 2, 3]);
        s.log(LogEntry {
            address: addr(4),
            topics: vec![],
            data: vec![],
        });
        s.add_refund(15_000);
        s.revert(snap);
        assert_eq!(s.balance(addr(1)), U256::from_u64(100));
        assert_eq!(s.balance(addr(2)), U256::ZERO);
        assert_eq!(s.nonce(addr(1)), 0);
        assert_eq!(s.storage(addr(3), U256::ONE), U256::ZERO);
        assert!(!s.account_exists(addr(4)));
        assert!(s.code(addr(4)).is_empty());
        assert!(s.tx_logs.is_empty());
        assert_eq!(s.tx_refund, 0);
    }

    #[test]
    fn storage_revert_to_zero_removes_entry() {
        let mut s = WorldState::new();
        let snap = s.snapshot();
        s.set_storage(addr(1), U256::ONE, U256::from_u64(5));
        s.revert(snap);
        assert!(s.storage_entries(addr(1)).is_empty());
    }

    #[test]
    fn clear_tx_scratch_returns_logs_and_refund() {
        let mut s = WorldState::new();
        s.log(LogEntry {
            address: addr(1),
            topics: vec![],
            data: vec![7],
        });
        s.add_refund(42);
        let (logs, refund) = s.clear_tx_scratch();
        assert_eq!(logs.len(), 1);
        assert_eq!(refund, 42);
        assert_eq!(s.tx_refund, 0);
        assert!(s.tx_logs.is_empty());
    }

    #[test]
    fn code_hash_tracks_code_through_writes_and_reverts() {
        let mut s = WorldState::new();
        assert_eq!(s.code_hash(addr(1)), empty_code_hash(), "EOA hash");

        s.install_code(addr(1), vec![0x5b, 0x00]);
        assert_eq!(s.code_hash(addr(1)), keccak256(&[0x5b, 0x00]));

        let snap = s.snapshot();
        s.set_code(addr(1), vec![0x60, 0x01]);
        assert_eq!(s.code_hash(addr(1)), keccak256(&[0x60, 0x01]));
        s.revert(snap);
        assert_eq!(
            s.code_hash(addr(1)),
            keccak256(&[0x5b, 0x00]),
            "revert restores hash"
        );

        let snap = s.snapshot();
        s.set_code(addr(2), vec![0xfe]);
        s.revert(snap);
        assert_eq!(
            s.code_hash(addr(2)),
            empty_code_hash(),
            "fresh account reverts to empty"
        );
    }

    #[test]
    fn create_contract_revert_restores_evicted_storage() {
        // Regression: creating over a storage-bearing address cleared
        // the old slots without journaling them, so a reverted creation
        // lost them forever.
        let mut s = WorldState::new();
        s.set_storage(addr(7), U256::ONE, U256::from_u64(111));
        s.set_storage(addr(7), U256::from_u64(2), U256::from_u64(222));
        s.clear_tx_scratch();

        let snap = s.snapshot();
        assert!(s.create_contract(addr(7)), "nonce 0, no code: creatable");
        assert_eq!(
            s.storage(addr(7), U256::ONE),
            U256::ZERO,
            "creation evicts pre-existing storage"
        );
        // The constructor writes something of its own before failing.
        s.set_storage(addr(7), U256::from_u64(3), U256::from_u64(333));
        s.revert(snap);

        assert_eq!(s.nonce(addr(7)), 0, "creation undone");
        assert_eq!(
            s.storage(addr(7), U256::ONE),
            U256::from_u64(111),
            "evicted slot restored"
        );
        assert_eq!(
            s.storage(addr(7), U256::from_u64(2)),
            U256::from_u64(222),
            "evicted slot restored"
        );
        assert_eq!(
            s.storage(addr(7), U256::from_u64(3)),
            U256::ZERO,
            "constructor write undone"
        );
    }

    #[test]
    fn state_root_folds_dirty_sets_and_matches_rebuild() {
        let mut s = WorldState::new();
        s.mint(addr(1), U256::from_u64(500));
        s.set_storage(addr(2), U256::ONE, U256::from_u64(9));
        s.install_code(addr(2), vec![0x00]);
        s.clear_tx_scratch();
        let r1 = s.state_root();
        assert_eq!(r1, s.state_root(), "fold is idempotent");

        // Rebuild the same logical state from scratch: roots agree.
        let mut fresh = WorldState::new();
        fresh.set_storage(addr(2), U256::ONE, U256::from_u64(9));
        fresh.install_code(addr(2), vec![0x00]);
        fresh.mint(addr(1), U256::from_u64(500));
        fresh.clear_tx_scratch();
        assert_eq!(fresh.state_root(), r1, "write order is immaterial");

        // Zeroing the slot and a revert-restored write both reconcile.
        let snap = s.snapshot();
        s.set_storage(addr(2), U256::ONE, U256::from_u64(10));
        s.revert(snap);
        s.clear_tx_scratch();
        assert_eq!(s.state_root(), r1, "reverted write leaves root unchanged");
        s.set_storage(addr(2), U256::ONE, U256::ZERO);
        s.clear_tx_scratch();
        assert_ne!(s.state_root(), r1);
        let mut only_account = WorldState::new();
        only_account.install_code(addr(2), vec![0x00]);
        only_account.mint(addr(1), U256::from_u64(500));
        assert_eq!(
            s.state_root(),
            only_account.state_root(),
            "zeroed slot equals never-written slot"
        );
    }

    #[test]
    fn undo_layer_restores_accounts_and_root() {
        let mut s = WorldState::new();
        s.mint(addr(1), U256::from_u64(500));
        s.install_code(addr(2), vec![0x00]);
        s.set_storage(addr(2), U256::ONE, U256::from_u64(9));
        s.clear_tx_scratch();
        let baseline_root = s.state_root();
        let baseline_total = s.total_balance();

        s.begin_undo_layer();
        // A "block" of mixed writes: existing accounts, fresh accounts,
        // storage overwrite + delete, code swap, account creation.
        s.transfer(addr(1), addr(3), U256::from_u64(100));
        s.bump_nonce(addr(1));
        s.set_storage(addr(2), U256::ONE, U256::from_u64(77));
        s.set_storage(addr(2), U256::from_u64(2), U256::from_u64(5));
        s.set_code(addr(2), vec![0x60, 0x01]);
        s.create_contract(addr(4));
        s.set_storage(addr(4), U256::ONE, U256::from_u64(1));
        s.mint(addr(5), U256::from_u64(3));
        s.clear_tx_scratch();
        assert_ne!(s.state_root(), baseline_root);

        let undo = s.take_undo_layer();
        assert!(!undo.is_empty());
        s.apply_undo(undo);
        assert_eq!(s.state_root(), baseline_root, "root restored exactly");
        assert_eq!(s.total_balance(), baseline_total);
        assert_eq!(s.balance(addr(1)), U256::from_u64(500));
        assert_eq!(s.nonce(addr(1)), 0);
        assert_eq!(s.storage(addr(2), U256::ONE), U256::from_u64(9));
        assert_eq!(s.storage(addr(2), U256::from_u64(2)), U256::ZERO);
        assert_eq!(s.code(addr(2)).as_slice(), &[0x00]);
        assert!(!s.account_exists(addr(3)));
        assert!(!s.account_exists(addr(4)));
        assert!(!s.account_exists(addr(5)));
    }

    #[test]
    fn undo_layers_stack_per_block() {
        let mut s = WorldState::new();
        s.mint(addr(1), U256::from_u64(10));
        let root0 = s.state_root();

        s.begin_undo_layer();
        s.mint(addr(1), U256::from_u64(1));
        let root1 = s.state_root();
        let layer1 = s.take_undo_layer();
        s.mint(addr(2), U256::from_u64(2));
        let layer2 = s.take_undo_layer();

        // Pop newest-first, like a reorg rollback does.
        s.apply_undo(layer2);
        assert_eq!(s.state_root(), root1);
        s.apply_undo(layer1);
        assert_eq!(s.state_root(), root0);
        assert_eq!(s.balance(addr(1)), U256::from_u64(10));
    }

    #[test]
    fn undo_recording_off_by_default_and_after_end() {
        let mut s = WorldState::new();
        assert!(!s.recording_undo());
        s.mint(addr(1), U256::ONE);
        assert!(s.take_undo_layer().is_empty(), "nothing recorded when off");
        s.begin_undo_layer();
        assert!(s.recording_undo());
        s.end_undo();
        s.mint(addr(1), U256::ONE);
        assert!(s.take_undo_layer().is_empty());
    }

    #[test]
    fn undo_restores_revert_evicted_creation_storage() {
        // The journal revert path rewrites state without extra hooks;
        // the undo layer must still capture the priors (first-touch
        // recording fires on the *mutator* calls that preceded the
        // revert).
        let mut s = WorldState::new();
        s.set_storage(addr(7), U256::ONE, U256::from_u64(111));
        s.clear_tx_scratch();
        let root = s.state_root();

        s.begin_undo_layer();
        let snap = s.snapshot();
        s.create_contract(addr(7));
        s.set_storage(addr(7), U256::from_u64(3), U256::from_u64(333));
        s.revert(snap);
        s.clear_tx_scratch();
        let undo = s.take_undo_layer();
        s.apply_undo(undo);
        assert_eq!(s.state_root(), root);
        assert_eq!(s.storage(addr(7), U256::ONE), U256::from_u64(111));
    }

    #[test]
    fn storage_entries_lists_nonzero_slots() {
        let mut s = WorldState::new();
        assert!(s.storage_entries(addr(1)).is_empty());
        s.set_storage(addr(1), U256::ONE, U256::from_u64(5));
        s.set_storage(addr(1), U256::from_u64(2), U256::ZERO);
        let entries = s.storage_entries(addr(1));
        assert_eq!(entries, vec![(U256::ONE, U256::from_u64(5))]);
    }

    #[test]
    fn exists_semantics() {
        let mut s = WorldState::new();
        assert!(!s.account_exists(addr(9)));
        s.mint(addr(9), U256::ONE);
        assert!(s.account_exists(addr(9)));
        s.mint(addr(8), U256::ZERO);
        assert!(
            !s.account_exists(addr(8)),
            "zero-balance touch is not existence"
        );
    }

    #[test]
    fn emptied_account_drops_its_storage_trie_but_resurrects_exactly() {
        let mut s = WorldState::new();
        s.mint(addr(1), U256::from_u64(5));
        s.set_storage(addr(1), U256::ONE, U256::from_u64(42));
        s.clear_tx_scratch();
        let funded_root = s.state_root();
        assert_eq!(s.storage_tries.len(), 1);

        // Empty the account: its trie must be dropped at the next fold…
        s.transfer(addr(1), addr(2), U256::from_u64(5));
        s.transfer(addr(2), addr(3), U256::from_u64(5));
        s.clear_tx_scratch();
        // …empty addr(2) too so only addr(3) exists.
        s.state_root();
        assert!(
            !s.storage_tries.contains_key(&addr(1)),
            "destroyed account's storage trie is dropped"
        );

        // Resurrect: the trie is rebuilt from the flat slots and the
        // root matches the original funded state exactly.
        s.transfer(addr(3), addr(1), U256::from_u64(5));
        s.clear_tx_scratch();
        assert_eq!(
            s.state_root(),
            funded_root,
            "resurrection rebuilds the trie"
        );
        assert_eq!(s.storage(addr(1), U256::ONE), U256::from_u64(42));
    }

    #[test]
    fn resurrection_with_same_block_storage_write_rebuilds_fully() {
        // The dropped-trie rebuild must cover *all* live slots, not just
        // the block's dirty ones.
        let mut s = WorldState::new();
        s.mint(addr(1), U256::ONE);
        s.set_storage(addr(1), U256::ONE, U256::from_u64(11));
        s.set_storage(addr(1), U256::from_u64(2), U256::from_u64(22));
        s.clear_tx_scratch();
        s.state_root();
        s.transfer(addr(1), addr(9), U256::ONE);
        s.clear_tx_scratch();
        s.state_root(); // drops addr(1)'s trie

        s.mint(addr(1), U256::ONE);
        s.set_storage(addr(1), U256::from_u64(3), U256::from_u64(33));
        s.clear_tx_scratch();
        let root = s.state_root();

        let mut fresh = WorldState::new();
        fresh.mint(addr(1), U256::ONE);
        fresh.mint(addr(9), U256::ONE);
        fresh.set_storage(addr(1), U256::ONE, U256::from_u64(11));
        fresh.set_storage(addr(1), U256::from_u64(2), U256::from_u64(22));
        fresh.set_storage(addr(1), U256::from_u64(3), U256::from_u64(33));
        fresh.clear_tx_scratch();
        assert_eq!(fresh.state_root(), root);
    }

    #[test]
    fn snapshot_roundtrip_is_deterministic_and_root_preserving() {
        let mut s = WorldState::new();
        s.mint(addr(1), U256::from_u64(1_000_000));
        s.install_code(addr(2), vec![0x5b, 0x00]);
        for i in 1..40u64 {
            s.set_storage(addr(2), U256::from_u64(i * 7), U256::from_u64(i));
        }
        s.bump_nonce(addr(1));
        // A storage-only address (no metadata) must survive the trip.
        s.set_storage(addr(9), U256::ONE, U256::from_u64(3));
        s.clear_tx_scratch();
        let root = s.state_root();

        let blob = s.export_snapshot();
        assert_eq!(blob, s.export_snapshot(), "export is deterministic");
        let mut imported = WorldState::import_snapshot(&blob).expect("round-trip");
        assert_eq!(imported.state_root(), root, "imported fold matches");
        assert_eq!(imported.export_snapshot(), blob, "re-export is identical");
        assert_eq!(imported.balance(addr(1)), U256::from_u64(1_000_000));
        assert_eq!(imported.nonce(addr(1)), 1);
        assert_eq!(imported.code(addr(2)).as_slice(), &[0x5b, 0x00]);
        assert_eq!(imported.storage(addr(9), U256::ONE), U256::from_u64(3));
    }

    #[test]
    fn snapshot_rejects_garbage_and_unordered_blobs() {
        assert!(matches!(
            WorldState::import_snapshot(&[0xff, 0x00]),
            Err(SnapshotError::Malformed)
        ));
        let mut s = WorldState::new();
        s.mint(addr(2), U256::ONE);
        s.mint(addr(1), U256::ONE);
        let blob = s.export_snapshot();
        // Reverse the two account entries: decode must refuse the
        // non-canonical order.
        let Ok(Item::List(mut entries)) = rlp::decode(&blob) else {
            panic!("snapshot decodes");
        };
        entries.swap(0, 1);
        let swapped = rlp::encode_list(&entries);
        assert!(matches!(
            WorldState::import_snapshot(&swapped),
            Err(SnapshotError::Unordered)
        ));
    }

    #[test]
    fn archive_serves_historical_proofs_inside_the_window() {
        let mut s = WorldState::new();
        s.enable_pruning(2);
        s.mint(addr(1), U256::ONE);
        s.set_storage(addr(1), U256::ONE, U256::from_u64(10));
        s.clear_tx_scratch();
        let root_a = s.state_root();
        s.commit_archive();

        s.set_storage(addr(1), U256::ONE, U256::from_u64(20));
        s.clear_tx_scratch();
        let root_b = s.state_root();
        s.commit_archive();

        // Both roots are in the window: each proves its own value.
        for (root, v) in [(root_a, 10u64), (root_b, 20)] {
            let p = s
                .prove_storage_at(root, addr(1), U256::ONE)
                .expect("in window");
            assert_eq!(p.value, U256::from_u64(v));
            p.verify(root).expect("archived proof verifies");
        }
        // Exclusion proofs work against history too.
        let p = s
            .prove_storage_at(root_a, addr(1), U256::from_u64(99))
            .expect("slot exclusion");
        assert_eq!(p.value, U256::ZERO);
        p.verify(root_a).expect("exclusion verifies");
        let p = s
            .prove_storage_at(root_a, addr(0xee), U256::ONE)
            .expect("account exclusion");
        assert_eq!(p.value, U256::ZERO);
        p.verify(root_a).expect("account exclusion verifies");

        // A third seal slides root_a out of the 2-root window.
        s.set_storage(addr(1), U256::ONE, U256::from_u64(30));
        s.clear_tx_scratch();
        s.state_root();
        s.commit_archive();
        assert!(
            matches!(
                s.prove_storage_at(root_a, addr(1), U256::ONE),
                Err(ProofError::MissingNode(_))
            ),
            "pruned root no longer provable"
        );
        assert!(s.archived_root_available(root_b));
        assert!(!s.archived_root_available(root_a));
    }

    #[test]
    fn archive_node_memory_plateaus_under_churn() {
        let mut s = WorldState::new();
        s.enable_pruning(4);
        for a in 1..=8u8 {
            s.mint(addr(a), U256::from_u64(1_000));
        }
        s.clear_tx_scratch();
        s.state_root();
        s.commit_archive();

        let mut peak = 0usize;
        let mut at_50 = 0usize;
        for round in 0u64..200 {
            for a in 1..=8u8 {
                s.set_storage(
                    addr(a),
                    U256::from_u64(round % 16),
                    U256::from_u64(round + a as u64),
                );
            }
            s.clear_tx_scratch();
            s.state_root();
            s.commit_archive();
            peak = peak.max(s.archived_node_count());
            if round == 50 {
                at_50 = s.archived_node_count();
            }
        }
        assert!(peak > 0);
        assert!(
            peak <= at_50 * 2,
            "windowed archive must plateau: peak {peak} vs round-50 {at_50}"
        );
    }

    #[test]
    fn archive_rollback_releases_the_orphaned_seal() {
        let mut s = WorldState::new();
        s.enable_pruning(8);
        s.mint(addr(1), U256::ONE);
        s.set_storage(addr(1), U256::ONE, U256::from_u64(1));
        s.clear_tx_scratch();
        let root_a = s.state_root();
        s.commit_archive();
        let nodes_a = s.archived_node_count();

        s.begin_undo_layer();
        s.set_storage(addr(1), U256::from_u64(2), U256::from_u64(2));
        s.clear_tx_scratch();
        let root_b = s.state_root();
        s.commit_archive();
        assert!(s.archived_root_available(root_b));

        let layer = s.take_undo_layer();
        s.apply_undo(layer);
        s.rollback_archive();
        assert_eq!(
            s.archived_node_count(),
            nodes_a,
            "rollback frees exactly the orphaned seal's nodes"
        );
        assert!(s.archived_root_available(root_a));
        assert_eq!(s.state_root(), root_a);
    }
}
