//! Journaled world state: the chain's implementation of [`sc_evm::Host`].

use sc_crypto::keccak256;
use sc_evm::host::{Host, LogEntry};
use sc_primitives::{Address, H256, U256};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// `keccak256("")` — the code hash of every codeless account.
pub fn empty_code_hash() -> H256 {
    static EMPTY: OnceLock<H256> = OnceLock::new();
    *EMPTY.get_or_init(|| keccak256(&[]))
}

/// A single account: EOA (no code) or contract account.
#[derive(Clone, Debug)]
pub struct Account {
    /// Transaction / creation counter.
    pub nonce: u64,
    /// Balance in wei.
    pub balance: U256,
    /// Runtime code (empty for EOAs).
    pub code: Arc<Vec<u8>>,
    /// `keccak256(code)`, maintained on every code write so the EVM's
    /// analysis-cache key costs a field read instead of a hash.
    pub code_hash: H256,
    /// Contract storage.
    pub storage: HashMap<U256, U256>,
}

impl Default for Account {
    fn default() -> Self {
        Account {
            nonce: 0,
            balance: U256::ZERO,
            code: Arc::default(),
            code_hash: empty_code_hash(),
            storage: HashMap::new(),
        }
    }
}

impl Account {
    /// True iff the account is distinguishable from a nonexistent one.
    pub fn exists(&self) -> bool {
        self.nonce != 0 || !self.balance.is_zero() || !self.code.is_empty()
    }
}

/// Reversible operations recorded while executing a transaction.
enum JournalOp {
    Balance(Address, U256),
    Nonce(Address, u64),
    Storage(Address, U256, U256),
    Code(Address, Arc<Vec<u8>>, H256),
    AccountCreated(Address),
    Log,
    Refund(u64),
}

/// The full world state with a transaction-scoped journal.
///
/// Mutations during EVM execution are journaled so nested call frames can
/// roll back precisely; [`WorldState::clear_tx_scratch`] resets the
/// journal, log buffer and refund counter between transactions.
#[derive(Default)]
pub struct WorldState {
    accounts: HashMap<Address, Account>,
    /// Logs emitted by the transaction currently executing.
    pub tx_logs: Vec<LogEntry>,
    /// Gas refund accumulated by the current transaction.
    pub tx_refund: u64,
    journal: Vec<JournalOp>,
    /// Hashes of past blocks for `BLOCKHASH` (maintained by the chain).
    pub block_hashes: HashMap<u64, H256>,
}

impl WorldState {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read-only account view.
    pub fn account(&self, a: Address) -> Option<&Account> {
        self.accounts.get(&a)
    }

    /// Mints `amount` wei to an address outside any journal (genesis
    /// allocation / faucet).
    pub fn mint(&mut self, a: Address, amount: U256) {
        let acct = self.accounts.entry(a).or_default();
        acct.balance = acct.balance.wrapping_add(amount);
    }

    /// Installs code directly (genesis-style; bypasses the journal).
    pub fn install_code(&mut self, a: Address, code: Vec<u8>) {
        let acct = self.accounts.entry(a).or_default();
        acct.code_hash = keccak256(&code);
        acct.code = Arc::new(code);
        if acct.nonce == 0 {
            acct.nonce = 1;
        }
    }

    /// Drops per-transaction scratch (journal, logs, refund). Called by the
    /// chain between transactions once effects are final.
    pub fn clear_tx_scratch(&mut self) -> (Vec<LogEntry>, u64) {
        self.journal.clear();
        let refund = self.tx_refund;
        self.tx_refund = 0;
        (std::mem::take(&mut self.tx_logs), refund)
    }

    /// Number of existing accounts (diagnostics).
    pub fn account_count(&self) -> usize {
        self.accounts.values().filter(|a| a.exists()).count()
    }

    /// Sum of every account's balance — the whole world's wei. The EVM
    /// and the gas settlement only ever *move* value, so this must equal
    /// the chain's total minted supply after every block (the ether
    /// conservation invariant checked by the chaos suite).
    pub fn total_balance(&self) -> U256 {
        self.accounts
            .values()
            .fold(U256::ZERO, |acc, a| acc.wrapping_add(a.balance))
    }

    fn entry(&mut self, a: Address) -> &mut Account {
        self.accounts.entry(a).or_default()
    }
}

impl Host for WorldState {
    fn balance(&self, a: Address) -> U256 {
        self.accounts
            .get(&a)
            .map_or(U256::ZERO, |acct| acct.balance)
    }

    fn code(&self, a: Address) -> Arc<Vec<u8>> {
        self.accounts
            .get(&a)
            .map_or_else(Default::default, |acct| acct.code.clone())
    }

    fn storage(&self, a: Address, key: U256) -> U256 {
        self.accounts
            .get(&a)
            .and_then(|acct| acct.storage.get(&key).copied())
            .unwrap_or(U256::ZERO)
    }

    fn set_storage(&mut self, a: Address, key: U256, value: U256) {
        let prev = self.storage(a, key);
        self.journal.push(JournalOp::Storage(a, key, prev));
        self.entry(a).storage.insert(key, value);
    }

    fn nonce(&self, a: Address) -> u64 {
        self.accounts.get(&a).map_or(0, |acct| acct.nonce)
    }

    fn bump_nonce(&mut self, a: Address) {
        let prev = self.nonce(a);
        self.journal.push(JournalOp::Nonce(a, prev));
        self.entry(a).nonce = prev + 1;
    }

    fn account_exists(&self, a: Address) -> bool {
        self.accounts.get(&a).is_some_and(Account::exists)
    }

    fn create_contract(&mut self, a: Address) -> bool {
        let acct = self.entry(a);
        if acct.nonce != 0 || !acct.code.is_empty() {
            return false;
        }
        self.journal.push(JournalOp::AccountCreated(a));
        let acct = self.entry(a);
        acct.nonce = 1;
        acct.storage.clear();
        true
    }

    fn code_hash(&self, a: Address) -> H256 {
        self.accounts
            .get(&a)
            .map_or_else(empty_code_hash, |acct| acct.code_hash)
    }

    fn set_code(&mut self, a: Address, code: Vec<u8>) {
        let prev = self.code(a);
        let prev_hash = self.code_hash(a);
        self.journal.push(JournalOp::Code(a, prev, prev_hash));
        let acct = self.entry(a);
        acct.code_hash = keccak256(&code);
        acct.code = Arc::new(code);
    }

    fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        let from_bal = self.balance(from);
        if from_bal < value {
            return false;
        }
        if from == to {
            // Self-transfer: only the balance check matters.
            return true;
        }
        self.journal.push(JournalOp::Balance(from, from_bal));
        let to_bal = self.balance(to);
        self.journal.push(JournalOp::Balance(to, to_bal));
        self.entry(from).balance = from_bal.wrapping_sub(value);
        self.entry(to).balance = to_bal.wrapping_add(value);
        true
    }

    fn snapshot(&mut self) -> usize {
        self.journal.len()
    }

    fn revert(&mut self, snapshot: usize) {
        while self.journal.len() > snapshot {
            match self.journal.pop().expect("journal entry") {
                JournalOp::Balance(a, v) => self.entry(a).balance = v,
                JournalOp::Nonce(a, v) => self.entry(a).nonce = v,
                JournalOp::Storage(a, k, v) => {
                    if v.is_zero() {
                        self.entry(a).storage.remove(&k);
                    } else {
                        self.entry(a).storage.insert(k, v);
                    }
                }
                JournalOp::Code(a, c, h) => {
                    let acct = self.entry(a);
                    acct.code = c;
                    acct.code_hash = h;
                }
                JournalOp::AccountCreated(a) => {
                    let acct = self.entry(a);
                    acct.nonce = 0;
                    acct.storage.clear();
                }
                JournalOp::Log => {
                    self.tx_logs.pop();
                }
                JournalOp::Refund(prev) => self.tx_refund = prev,
            }
        }
    }

    fn log(&mut self, entry: LogEntry) {
        self.journal.push(JournalOp::Log);
        self.tx_logs.push(entry);
    }

    fn block_hash(&self, number: u64) -> H256 {
        self.block_hashes
            .get(&number)
            .copied()
            .unwrap_or(H256::ZERO)
    }

    fn add_refund(&mut self, amount: u64) {
        self.journal.push(JournalOp::Refund(self.tx_refund));
        self.tx_refund += amount;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(b: u8) -> Address {
        Address([b; 20])
    }

    #[test]
    fn mint_and_balance() {
        let mut s = WorldState::new();
        s.mint(addr(1), U256::from_u64(100));
        s.mint(addr(1), U256::from_u64(20));
        assert_eq!(s.balance(addr(1)), U256::from_u64(120));
    }

    #[test]
    fn journal_roundtrip_across_all_ops() {
        let mut s = WorldState::new();
        s.mint(addr(1), U256::from_u64(100));
        let snap = s.snapshot();
        s.transfer(addr(1), addr(2), U256::from_u64(30));
        s.bump_nonce(addr(1));
        s.set_storage(addr(3), U256::ONE, U256::from_u64(9));
        s.create_contract(addr(4));
        s.set_code(addr(4), vec![1, 2, 3]);
        s.log(LogEntry {
            address: addr(4),
            topics: vec![],
            data: vec![],
        });
        s.add_refund(15_000);
        s.revert(snap);
        assert_eq!(s.balance(addr(1)), U256::from_u64(100));
        assert_eq!(s.balance(addr(2)), U256::ZERO);
        assert_eq!(s.nonce(addr(1)), 0);
        assert_eq!(s.storage(addr(3), U256::ONE), U256::ZERO);
        assert!(!s.account_exists(addr(4)));
        assert!(s.code(addr(4)).is_empty());
        assert!(s.tx_logs.is_empty());
        assert_eq!(s.tx_refund, 0);
    }

    #[test]
    fn storage_revert_to_zero_removes_entry() {
        let mut s = WorldState::new();
        let snap = s.snapshot();
        s.set_storage(addr(1), U256::ONE, U256::from_u64(5));
        s.revert(snap);
        assert!(s.account(addr(1)).is_none_or(|a| a.storage.is_empty()));
    }

    #[test]
    fn clear_tx_scratch_returns_logs_and_refund() {
        let mut s = WorldState::new();
        s.log(LogEntry {
            address: addr(1),
            topics: vec![],
            data: vec![7],
        });
        s.add_refund(42);
        let (logs, refund) = s.clear_tx_scratch();
        assert_eq!(logs.len(), 1);
        assert_eq!(refund, 42);
        assert_eq!(s.tx_refund, 0);
        assert!(s.tx_logs.is_empty());
    }

    #[test]
    fn code_hash_tracks_code_through_writes_and_reverts() {
        let mut s = WorldState::new();
        assert_eq!(s.code_hash(addr(1)), empty_code_hash(), "EOA hash");

        s.install_code(addr(1), vec![0x5b, 0x00]);
        assert_eq!(s.code_hash(addr(1)), keccak256(&[0x5b, 0x00]));

        let snap = s.snapshot();
        s.set_code(addr(1), vec![0x60, 0x01]);
        assert_eq!(s.code_hash(addr(1)), keccak256(&[0x60, 0x01]));
        s.revert(snap);
        assert_eq!(
            s.code_hash(addr(1)),
            keccak256(&[0x5b, 0x00]),
            "revert restores hash"
        );

        let snap = s.snapshot();
        s.set_code(addr(2), vec![0xfe]);
        s.revert(snap);
        assert_eq!(
            s.code_hash(addr(2)),
            empty_code_hash(),
            "fresh account reverts to empty"
        );
    }

    #[test]
    fn exists_semantics() {
        let mut s = WorldState::new();
        assert!(!s.account_exists(addr(9)));
        s.mint(addr(9), U256::ONE);
        assert!(s.account_exists(addr(9)));
        s.mint(addr(8), U256::ZERO);
        assert!(
            !s.account_exists(addr(8)),
            "zero-balance touch is not existence"
        );
    }
}
