//! Journaled world state: the chain's implementation of [`sc_evm::Host`].

use sc_crypto::keccak256;
use sc_evm::host::{Host, LogEntry};
use sc_primitives::rlp::{self, Item};
use sc_primitives::{Address, H256, U256};
use sc_trie::SecureTrie;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

/// `keccak256("")` — the code hash of every codeless account.
pub fn empty_code_hash() -> H256 {
    static EMPTY: OnceLock<H256> = OnceLock::new();
    *EMPTY.get_or_init(|| keccak256(&[]))
}

/// A single account: EOA (no code) or contract account.
#[derive(Clone, Debug)]
pub struct Account {
    /// Transaction / creation counter.
    pub nonce: u64,
    /// Balance in wei.
    pub balance: U256,
    /// Runtime code (empty for EOAs).
    pub code: Arc<Vec<u8>>,
    /// `keccak256(code)`, maintained on every code write so the EVM's
    /// analysis-cache key costs a field read instead of a hash.
    pub code_hash: H256,
    /// Contract storage.
    pub storage: HashMap<U256, U256>,
    /// Root of the account's storage trie as of the last
    /// [`WorldState::state_root`] fold ([`sc_trie::empty_root`] for an
    /// account that has never stored anything).
    pub storage_root: H256,
}

impl Default for Account {
    fn default() -> Self {
        Account {
            nonce: 0,
            balance: U256::ZERO,
            code: Arc::default(),
            code_hash: empty_code_hash(),
            storage: HashMap::new(),
            storage_root: sc_trie::empty_root(),
        }
    }
}

impl Account {
    /// True iff the account is distinguishable from a nonexistent one.
    pub fn exists(&self) -> bool {
        self.nonce != 0 || !self.balance.is_zero() || !self.code.is_empty()
    }
}

/// Canonical RLP account encoding committed into the account trie:
/// `[nonce, balance, storage_root, code_hash]`.
pub fn encode_account(nonce: u64, balance: U256, storage_root: H256, code_hash: H256) -> Vec<u8> {
    rlp::encode_list(&[
        Item::u64(nonce),
        Item::uint(balance),
        Item::bytes(storage_root.as_bytes().to_vec()),
        Item::bytes(code_hash.as_bytes().to_vec()),
    ])
}

/// Canonical RLP storage-value encoding committed into storage tries:
/// the big-endian integer with leading zeros trimmed.
pub fn encode_storage_value(value: U256) -> Vec<u8> {
    rlp::encode(&Item::uint(value))
}

/// The undo layer for one block: every account the block touched,
/// mapped to its full state *before* the first touch (`None` when the
/// account did not exist yet). Applying the layer restores the world
/// exactly as it was when the layer opened — the primitive reorg
/// rollback is built on.
///
/// Layers snapshot whole accounts on first touch rather than journaling
/// individual operations: blocks touch few accounts many times, so one
/// clone per touched account is cheaper than an op log, and applying is
/// order-independent.
#[derive(Default)]
pub struct BlockUndo {
    accounts: HashMap<Address, Option<Account>>,
}

impl BlockUndo {
    /// Number of accounts this layer snapshotted.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// True when the block touched no accounts.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }
}

/// Reversible operations recorded while executing a transaction.
enum JournalOp {
    Balance(Address, U256),
    Nonce(Address, u64),
    Storage(Address, U256, U256),
    Code(Address, Arc<Vec<u8>>, H256),
    AccountCreated(Address),
    Log,
    Refund(u64),
}

/// The full world state with a transaction-scoped journal.
///
/// Mutations during EVM execution are journaled so nested call frames can
/// roll back precisely; [`WorldState::clear_tx_scratch`] resets the
/// journal, log buffer and refund counter between transactions.
#[derive(Default)]
pub struct WorldState {
    accounts: HashMap<Address, Account>,
    /// Logs emitted by the transaction currently executing.
    pub tx_logs: Vec<LogEntry>,
    /// Gas refund accumulated by the current transaction.
    pub tx_refund: u64,
    journal: Vec<JournalOp>,
    /// Hashes of past blocks for `BLOCKHASH` (maintained by the chain,
    /// which bounds it to the EVM's 256-block window).
    pub block_hashes: HashMap<u64, H256>,
    /// Secure trie over `[nonce, balance, storage_root, code_hash]`
    /// accounts, keyed by `keccak(address)`. Kept in sync lazily: the
    /// dirty sets below record what changed and [`WorldState::state_root`]
    /// folds them in one pass per block.
    account_trie: SecureTrie,
    /// Per-account storage tries keyed by `keccak(slot)`.
    storage_tries: HashMap<Address, SecureTrie>,
    /// Accounts whose trie entry is stale. Marking is conservative —
    /// reverts don't unmark — because the fold reconciles against the
    /// live account anyway; re-folding an unchanged value is a no-op.
    dirty_accounts: HashSet<Address>,
    /// Storage slots whose trie entry is stale.
    dirty_storage: HashMap<Address, HashSet<U256>>,
    /// When `Some`, the open undo layer: the first mutation of each
    /// account records its prior state. `None` (the default) disables
    /// recording entirely, so single-chain users pay nothing.
    undo: Option<BlockUndo>,
}

impl WorldState {
    /// Creates an empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read-only account view.
    pub fn account(&self, a: Address) -> Option<&Account> {
        self.accounts.get(&a)
    }

    /// Mints `amount` wei to an address outside any journal (genesis
    /// allocation / faucet).
    pub fn mint(&mut self, a: Address, amount: U256) {
        self.touch_undo(a);
        let acct = self.accounts.entry(a).or_default();
        acct.balance = acct.balance.wrapping_add(amount);
        self.dirty_accounts.insert(a);
    }

    /// Installs code directly (genesis-style; bypasses the journal).
    pub fn install_code(&mut self, a: Address, code: Vec<u8>) {
        self.touch_undo(a);
        let acct = self.accounts.entry(a).or_default();
        acct.code_hash = keccak256(&code);
        acct.code = Arc::new(code);
        if acct.nonce == 0 {
            acct.nonce = 1;
        }
        self.dirty_accounts.insert(a);
    }

    /// Drops per-transaction scratch (journal, logs, refund). Called by the
    /// chain between transactions once effects are final.
    pub fn clear_tx_scratch(&mut self) -> (Vec<LogEntry>, u64) {
        self.journal.clear();
        let refund = self.tx_refund;
        self.tx_refund = 0;
        (std::mem::take(&mut self.tx_logs), refund)
    }

    /// Number of existing accounts (diagnostics).
    pub fn account_count(&self) -> usize {
        self.accounts.values().filter(|a| a.exists()).count()
    }

    /// Sum of every account's balance — the whole world's wei. The EVM
    /// and the gas settlement only ever *move* value, so this must equal
    /// the chain's total minted supply after every block (the ether
    /// conservation invariant checked by the chaos suite).
    pub fn total_balance(&self) -> U256 {
        self.accounts
            .values()
            .fold(U256::ZERO, |acc, a| acc.wrapping_add(a.balance))
    }

    fn entry(&mut self, a: Address) -> &mut Account {
        self.accounts.entry(a).or_default()
    }

    /// Marks one storage slot (and its account) stale in the tries.
    fn touch_storage(&mut self, a: Address, key: U256) {
        self.dirty_storage.entry(a).or_default().insert(key);
        self.dirty_accounts.insert(a);
    }

    /// Records an account's pre-mutation state into the open undo layer
    /// (first touch per layer only). Every mutation entry point calls
    /// this *before* changing anything; the journal's `revert` needs no
    /// hook because it only rewrites accounts a mutator already touched.
    fn touch_undo(&mut self, a: Address) {
        if let Some(undo) = &mut self.undo {
            undo.accounts
                .entry(a)
                .or_insert_with(|| self.accounts.get(&a).cloned());
        }
    }

    /// Starts undo recording with a fresh, empty layer. Until
    /// [`WorldState::end_undo`], every mutation snapshots the touched
    /// account's prior state on first touch.
    pub fn begin_undo_layer(&mut self) {
        self.undo = Some(BlockUndo::default());
    }

    /// Closes the open undo layer and returns it, immediately opening a
    /// fresh one (recording stays on). The chain calls this at each
    /// seal, stacking one layer per block.
    pub fn take_undo_layer(&mut self) -> BlockUndo {
        self.undo.replace(BlockUndo::default()).unwrap_or_default()
    }

    /// Stops undo recording and discards any open layer.
    pub fn end_undo(&mut self) {
        self.undo = None;
    }

    /// True while an undo layer is open.
    pub fn recording_undo(&self) -> bool {
        self.undo.is_some()
    }

    /// Applies an undo layer: every snapshotted account is restored to
    /// its pre-layer state (or removed if it did not exist). The dirty
    /// sets are marked for the union of before/after storage keys so
    /// the next [`WorldState::state_root`] fold reconciles the tries.
    ///
    /// The restore itself is *not* recorded into any open layer — the
    /// caller sequences layers (it pops them newest-first).
    pub fn apply_undo(&mut self, undo: BlockUndo) {
        for (a, before) in undo.accounts {
            let mut stale: HashSet<U256> = self
                .accounts
                .get(&a)
                .map(|acct| acct.storage.keys().copied().collect())
                .unwrap_or_default();
            match before {
                Some(acct) => {
                    stale.extend(acct.storage.keys().copied());
                    self.accounts.insert(a, acct);
                }
                None => {
                    self.accounts.remove(&a);
                }
            }
            for k in stale {
                self.touch_storage(a, k);
            }
            self.dirty_accounts.insert(a);
        }
    }

    /// Every address ever touched, for independent state-root audits.
    /// Includes addresses whose account has since become empty — callers
    /// filter on [`Account::exists`] exactly like the fold does.
    pub fn addresses(&self) -> Vec<Address> {
        self.accounts.keys().copied().collect()
    }

    /// Sets a balance directly, outside any journal (commit path of the
    /// optimistic executor: effects are final when applied).
    pub(crate) fn set_balance_raw(&mut self, a: Address, v: U256) {
        self.touch_undo(a);
        self.entry(a).balance = v;
        self.dirty_accounts.insert(a);
    }

    /// Adds `delta` wei to a balance directly (the executor's
    /// commutative coinbase fee credit).
    pub(crate) fn add_balance_raw(&mut self, a: Address, delta: U256) {
        self.touch_undo(a);
        let acct = self.entry(a);
        acct.balance = acct.balance.wrapping_add(delta);
        self.dirty_accounts.insert(a);
    }

    /// Sets a nonce directly, outside any journal.
    pub(crate) fn set_nonce_raw(&mut self, a: Address, v: u64) {
        self.touch_undo(a);
        self.entry(a).nonce = v;
        self.dirty_accounts.insert(a);
    }

    /// Installs code (with its precomputed hash) directly, outside any
    /// journal.
    pub(crate) fn set_code_raw(&mut self, a: Address, code: Arc<Vec<u8>>, hash: H256) {
        self.touch_undo(a);
        let acct = self.entry(a);
        acct.code = code;
        acct.code_hash = hash;
        self.dirty_accounts.insert(a);
    }

    /// Writes a storage slot directly, outside any journal (zero
    /// removes the entry, like a reverted write would).
    pub(crate) fn set_storage_raw(&mut self, a: Address, key: U256, value: U256) {
        self.touch_undo(a);
        if value.is_zero() {
            self.entry(a).storage.remove(&key);
        } else {
            self.entry(a).storage.insert(key, value);
        }
        self.touch_storage(a, key);
    }

    /// Folds every dirty slot and account into the authenticated tries
    /// and returns the account-trie root — the `state_root` a sealed
    /// block commits to. Called once per block (not per op): between
    /// folds the dirty sets batch arbitrarily many writes, and the
    /// trie's node caches make each fold proportional to what changed.
    ///
    /// Idempotent: folding with empty dirty sets just re-reads the
    /// cached root.
    pub fn state_root(&mut self) -> H256 {
        // Per-account storage tries are independent: take each dirty
        // account's trie out of the map and fold them as a batch —
        // concurrently when the batch is big enough to pay for threads.
        let mut jobs: Vec<StorageFoldJob> = std::mem::take(&mut self.dirty_storage)
            .into_iter()
            .map(|(a, keys)| {
                self.dirty_accounts.insert(a);
                StorageFoldJob {
                    address: a,
                    keys,
                    trie: self.storage_tries.remove(&a).unwrap_or_default(),
                    root: H256::ZERO,
                }
            })
            .collect();
        fold_storage_jobs(&self.accounts, &mut jobs);
        for job in jobs {
            if let Some(acct) = self.accounts.get_mut(&job.address) {
                acct.storage_root = job.root;
            }
            self.storage_tries.insert(job.address, job.trie);
        }
        for a in std::mem::take(&mut self.dirty_accounts) {
            match self.accounts.get(&a) {
                Some(acct) if acct.exists() => {
                    let enc =
                        encode_account(acct.nonce, acct.balance, acct.storage_root, acct.code_hash);
                    self.account_trie.insert(a.as_bytes(), enc);
                }
                _ => {
                    self.account_trie.remove(a.as_bytes());
                }
            }
        }
        self.account_trie.root()
    }

    /// Merkle proof that `(a, key)` holds its current value under the
    /// current [`WorldState::state_root`] (the fold runs first, so the
    /// proof anchors to the root the *next* sealed block would commit —
    /// identical to the head block's root whenever nothing changed since
    /// it sealed).
    pub fn prove_storage(&mut self, a: Address, key: U256) -> crate::proof::StorageProof {
        let root = self.state_root();
        let account_proof = self.account_trie.prove(a.as_bytes());
        let storage_proof = self
            .storage_tries
            .get_mut(&a)
            .map(|t| t.prove(&key.to_be_bytes()))
            .unwrap_or_default();
        crate::proof::StorageProof {
            address: a,
            slot: key,
            value: self.storage(a, key),
            root,
            account_proof,
            storage_proof,
        }
    }
}

/// One dirty account's storage-trie fold: the stale keys plus the trie
/// itself, taken out of [`WorldState::storage_tries`] for the duration.
struct StorageFoldJob {
    address: Address,
    keys: HashSet<U256>,
    trie: SecureTrie,
    root: H256,
}

/// Dirty accounts below this count fold inline — thread setup would
/// dominate the trie work.
const PARALLEL_FOLD_THRESHOLD: usize = 8;

/// Folds every job's stale keys into its trie and records the new root.
/// Jobs are independent (one trie per account, shared read-only view of
/// the accounts map), so big batches fan out over scoped threads; MPT
/// roots are canonical regardless of insertion order, making the result
/// identical either way.
fn fold_storage_jobs(accounts: &HashMap<Address, Account>, jobs: &mut [StorageFoldJob]) {
    let fold_one = |job: &mut StorageFoldJob| {
        let storage = accounts.get(&job.address).map(|acct| &acct.storage);
        for key in &job.keys {
            let k = key.to_be_bytes();
            match storage.and_then(|s| s.get(key)) {
                Some(v) if !v.is_zero() => job.trie.insert(&k, encode_storage_value(*v)),
                _ => {
                    job.trie.remove(&k);
                }
            }
        }
        job.root = job.trie.root();
    };

    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    if jobs.len() < PARALLEL_FOLD_THRESHOLD || workers < 2 {
        jobs.iter_mut().for_each(fold_one);
        return;
    }
    let chunk_len = jobs.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for chunk in jobs.chunks_mut(chunk_len) {
            scope.spawn(|| chunk.iter_mut().for_each(&fold_one));
        }
    });
}

impl Host for WorldState {
    fn balance(&self, a: Address) -> U256 {
        self.accounts
            .get(&a)
            .map_or(U256::ZERO, |acct| acct.balance)
    }

    fn code(&self, a: Address) -> Arc<Vec<u8>> {
        self.accounts
            .get(&a)
            .map_or_else(Default::default, |acct| acct.code.clone())
    }

    fn storage(&self, a: Address, key: U256) -> U256 {
        self.accounts
            .get(&a)
            .and_then(|acct| acct.storage.get(&key).copied())
            .unwrap_or(U256::ZERO)
    }

    fn set_storage(&mut self, a: Address, key: U256, value: U256) {
        self.touch_undo(a);
        let prev = self.storage(a, key);
        self.journal.push(JournalOp::Storage(a, key, prev));
        self.entry(a).storage.insert(key, value);
        self.touch_storage(a, key);
    }

    fn nonce(&self, a: Address) -> u64 {
        self.accounts.get(&a).map_or(0, |acct| acct.nonce)
    }

    fn bump_nonce(&mut self, a: Address) {
        self.touch_undo(a);
        let prev = self.nonce(a);
        self.journal.push(JournalOp::Nonce(a, prev));
        self.entry(a).nonce = prev + 1;
        self.dirty_accounts.insert(a);
    }

    fn account_exists(&self, a: Address) -> bool {
        self.accounts.get(&a).is_some_and(Account::exists)
    }

    fn create_contract(&mut self, a: Address) -> bool {
        self.touch_undo(a);
        let acct = self.entry(a);
        if acct.nonce != 0 || !acct.code.is_empty() {
            return false;
        }
        // Journal the storage this creation evicts *before* the
        // `AccountCreated` marker: `revert` pops in reverse, so the
        // created-account teardown (nonce = 0, storage cleared) runs
        // first and the evicted slots are restored on top of it.
        let evicted: Vec<(U256, U256)> = acct.storage.iter().map(|(k, v)| (*k, *v)).collect();
        for &(k, v) in &evicted {
            self.journal.push(JournalOp::Storage(a, k, v));
        }
        self.journal.push(JournalOp::AccountCreated(a));
        let acct = self.entry(a);
        acct.nonce = 1;
        acct.storage.clear();
        for (k, _) in evicted {
            self.touch_storage(a, k);
        }
        self.dirty_accounts.insert(a);
        true
    }

    fn code_hash(&self, a: Address) -> H256 {
        self.accounts
            .get(&a)
            .map_or_else(empty_code_hash, |acct| acct.code_hash)
    }

    fn set_code(&mut self, a: Address, code: Vec<u8>) {
        self.touch_undo(a);
        let prev = self.code(a);
        let prev_hash = self.code_hash(a);
        self.journal.push(JournalOp::Code(a, prev, prev_hash));
        let acct = self.entry(a);
        acct.code_hash = keccak256(&code);
        acct.code = Arc::new(code);
        self.dirty_accounts.insert(a);
    }

    fn transfer(&mut self, from: Address, to: Address, value: U256) -> bool {
        let from_bal = self.balance(from);
        if from_bal < value {
            return false;
        }
        if from == to {
            // Self-transfer: only the balance check matters.
            return true;
        }
        self.touch_undo(from);
        self.touch_undo(to);
        self.journal.push(JournalOp::Balance(from, from_bal));
        let to_bal = self.balance(to);
        self.journal.push(JournalOp::Balance(to, to_bal));
        self.entry(from).balance = from_bal.wrapping_sub(value);
        self.entry(to).balance = to_bal.wrapping_add(value);
        self.dirty_accounts.insert(from);
        self.dirty_accounts.insert(to);
        true
    }

    fn snapshot(&mut self) -> usize {
        self.journal.len()
    }

    fn revert(&mut self, snapshot: usize) {
        while self.journal.len() > snapshot {
            match self.journal.pop().expect("journal entry") {
                JournalOp::Balance(a, v) => self.entry(a).balance = v,
                JournalOp::Nonce(a, v) => self.entry(a).nonce = v,
                JournalOp::Storage(a, k, v) => {
                    if v.is_zero() {
                        self.entry(a).storage.remove(&k);
                    } else {
                        self.entry(a).storage.insert(k, v);
                    }
                }
                JournalOp::Code(a, c, h) => {
                    let acct = self.entry(a);
                    acct.code = c;
                    acct.code_hash = h;
                }
                JournalOp::AccountCreated(a) => {
                    let acct = self.entry(a);
                    acct.nonce = 0;
                    acct.storage.clear();
                }
                JournalOp::Log => {
                    self.tx_logs.pop();
                }
                JournalOp::Refund(prev) => self.tx_refund = prev,
            }
        }
    }

    fn log(&mut self, entry: LogEntry) {
        self.journal.push(JournalOp::Log);
        self.tx_logs.push(entry);
    }

    fn block_hash(&self, number: u64) -> H256 {
        self.block_hashes
            .get(&number)
            .copied()
            .unwrap_or(H256::ZERO)
    }

    fn add_refund(&mut self, amount: u64) {
        self.journal.push(JournalOp::Refund(self.tx_refund));
        self.tx_refund += amount;
    }

    fn storage_entries(&self, a: Address) -> Vec<(U256, U256)> {
        self.accounts.get(&a).map_or_else(Vec::new, |acct| {
            acct.storage
                .iter()
                .filter(|(_, v)| !v.is_zero())
                .map(|(k, v)| (*k, *v))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(b: u8) -> Address {
        Address([b; 20])
    }

    #[test]
    fn mint_and_balance() {
        let mut s = WorldState::new();
        s.mint(addr(1), U256::from_u64(100));
        s.mint(addr(1), U256::from_u64(20));
        assert_eq!(s.balance(addr(1)), U256::from_u64(120));
    }

    #[test]
    fn journal_roundtrip_across_all_ops() {
        let mut s = WorldState::new();
        s.mint(addr(1), U256::from_u64(100));
        let snap = s.snapshot();
        s.transfer(addr(1), addr(2), U256::from_u64(30));
        s.bump_nonce(addr(1));
        s.set_storage(addr(3), U256::ONE, U256::from_u64(9));
        s.create_contract(addr(4));
        s.set_code(addr(4), vec![1, 2, 3]);
        s.log(LogEntry {
            address: addr(4),
            topics: vec![],
            data: vec![],
        });
        s.add_refund(15_000);
        s.revert(snap);
        assert_eq!(s.balance(addr(1)), U256::from_u64(100));
        assert_eq!(s.balance(addr(2)), U256::ZERO);
        assert_eq!(s.nonce(addr(1)), 0);
        assert_eq!(s.storage(addr(3), U256::ONE), U256::ZERO);
        assert!(!s.account_exists(addr(4)));
        assert!(s.code(addr(4)).is_empty());
        assert!(s.tx_logs.is_empty());
        assert_eq!(s.tx_refund, 0);
    }

    #[test]
    fn storage_revert_to_zero_removes_entry() {
        let mut s = WorldState::new();
        let snap = s.snapshot();
        s.set_storage(addr(1), U256::ONE, U256::from_u64(5));
        s.revert(snap);
        assert!(s.account(addr(1)).is_none_or(|a| a.storage.is_empty()));
    }

    #[test]
    fn clear_tx_scratch_returns_logs_and_refund() {
        let mut s = WorldState::new();
        s.log(LogEntry {
            address: addr(1),
            topics: vec![],
            data: vec![7],
        });
        s.add_refund(42);
        let (logs, refund) = s.clear_tx_scratch();
        assert_eq!(logs.len(), 1);
        assert_eq!(refund, 42);
        assert_eq!(s.tx_refund, 0);
        assert!(s.tx_logs.is_empty());
    }

    #[test]
    fn code_hash_tracks_code_through_writes_and_reverts() {
        let mut s = WorldState::new();
        assert_eq!(s.code_hash(addr(1)), empty_code_hash(), "EOA hash");

        s.install_code(addr(1), vec![0x5b, 0x00]);
        assert_eq!(s.code_hash(addr(1)), keccak256(&[0x5b, 0x00]));

        let snap = s.snapshot();
        s.set_code(addr(1), vec![0x60, 0x01]);
        assert_eq!(s.code_hash(addr(1)), keccak256(&[0x60, 0x01]));
        s.revert(snap);
        assert_eq!(
            s.code_hash(addr(1)),
            keccak256(&[0x5b, 0x00]),
            "revert restores hash"
        );

        let snap = s.snapshot();
        s.set_code(addr(2), vec![0xfe]);
        s.revert(snap);
        assert_eq!(
            s.code_hash(addr(2)),
            empty_code_hash(),
            "fresh account reverts to empty"
        );
    }

    #[test]
    fn create_contract_revert_restores_evicted_storage() {
        // Regression: creating over a storage-bearing address cleared
        // the old slots without journaling them, so a reverted creation
        // lost them forever.
        let mut s = WorldState::new();
        s.set_storage(addr(7), U256::ONE, U256::from_u64(111));
        s.set_storage(addr(7), U256::from_u64(2), U256::from_u64(222));
        s.clear_tx_scratch();

        let snap = s.snapshot();
        assert!(s.create_contract(addr(7)), "nonce 0, no code: creatable");
        assert_eq!(
            s.storage(addr(7), U256::ONE),
            U256::ZERO,
            "creation evicts pre-existing storage"
        );
        // The constructor writes something of its own before failing.
        s.set_storage(addr(7), U256::from_u64(3), U256::from_u64(333));
        s.revert(snap);

        assert_eq!(s.nonce(addr(7)), 0, "creation undone");
        assert_eq!(
            s.storage(addr(7), U256::ONE),
            U256::from_u64(111),
            "evicted slot restored"
        );
        assert_eq!(
            s.storage(addr(7), U256::from_u64(2)),
            U256::from_u64(222),
            "evicted slot restored"
        );
        assert_eq!(
            s.storage(addr(7), U256::from_u64(3)),
            U256::ZERO,
            "constructor write undone"
        );
    }

    #[test]
    fn state_root_folds_dirty_sets_and_matches_rebuild() {
        let mut s = WorldState::new();
        s.mint(addr(1), U256::from_u64(500));
        s.set_storage(addr(2), U256::ONE, U256::from_u64(9));
        s.install_code(addr(2), vec![0x00]);
        s.clear_tx_scratch();
        let r1 = s.state_root();
        assert_eq!(r1, s.state_root(), "fold is idempotent");

        // Rebuild the same logical state from scratch: roots agree.
        let mut fresh = WorldState::new();
        fresh.set_storage(addr(2), U256::ONE, U256::from_u64(9));
        fresh.install_code(addr(2), vec![0x00]);
        fresh.mint(addr(1), U256::from_u64(500));
        fresh.clear_tx_scratch();
        assert_eq!(fresh.state_root(), r1, "write order is immaterial");

        // Zeroing the slot and a revert-restored write both reconcile.
        let snap = s.snapshot();
        s.set_storage(addr(2), U256::ONE, U256::from_u64(10));
        s.revert(snap);
        s.clear_tx_scratch();
        assert_eq!(s.state_root(), r1, "reverted write leaves root unchanged");
        s.set_storage(addr(2), U256::ONE, U256::ZERO);
        s.clear_tx_scratch();
        assert_ne!(s.state_root(), r1);
        let mut only_account = WorldState::new();
        only_account.install_code(addr(2), vec![0x00]);
        only_account.mint(addr(1), U256::from_u64(500));
        assert_eq!(
            s.state_root(),
            only_account.state_root(),
            "zeroed slot equals never-written slot"
        );
    }

    #[test]
    fn undo_layer_restores_accounts_and_root() {
        let mut s = WorldState::new();
        s.mint(addr(1), U256::from_u64(500));
        s.install_code(addr(2), vec![0x00]);
        s.set_storage(addr(2), U256::ONE, U256::from_u64(9));
        s.clear_tx_scratch();
        let baseline_root = s.state_root();
        let baseline_total = s.total_balance();

        s.begin_undo_layer();
        // A "block" of mixed writes: existing accounts, fresh accounts,
        // storage overwrite + delete, code swap, account creation.
        s.transfer(addr(1), addr(3), U256::from_u64(100));
        s.bump_nonce(addr(1));
        s.set_storage(addr(2), U256::ONE, U256::from_u64(77));
        s.set_storage(addr(2), U256::from_u64(2), U256::from_u64(5));
        s.set_code(addr(2), vec![0x60, 0x01]);
        s.create_contract(addr(4));
        s.set_storage(addr(4), U256::ONE, U256::from_u64(1));
        s.mint(addr(5), U256::from_u64(3));
        s.clear_tx_scratch();
        assert_ne!(s.state_root(), baseline_root);

        let undo = s.take_undo_layer();
        assert!(!undo.is_empty());
        s.apply_undo(undo);
        assert_eq!(s.state_root(), baseline_root, "root restored exactly");
        assert_eq!(s.total_balance(), baseline_total);
        assert_eq!(s.balance(addr(1)), U256::from_u64(500));
        assert_eq!(s.nonce(addr(1)), 0);
        assert_eq!(s.storage(addr(2), U256::ONE), U256::from_u64(9));
        assert_eq!(s.storage(addr(2), U256::from_u64(2)), U256::ZERO);
        assert_eq!(s.code(addr(2)).as_slice(), &[0x00]);
        assert!(!s.account_exists(addr(3)));
        assert!(!s.account_exists(addr(4)));
        assert!(!s.account_exists(addr(5)));
    }

    #[test]
    fn undo_layers_stack_per_block() {
        let mut s = WorldState::new();
        s.mint(addr(1), U256::from_u64(10));
        let root0 = s.state_root();

        s.begin_undo_layer();
        s.mint(addr(1), U256::from_u64(1));
        let root1 = s.state_root();
        let layer1 = s.take_undo_layer();
        s.mint(addr(2), U256::from_u64(2));
        let layer2 = s.take_undo_layer();

        // Pop newest-first, like a reorg rollback does.
        s.apply_undo(layer2);
        assert_eq!(s.state_root(), root1);
        s.apply_undo(layer1);
        assert_eq!(s.state_root(), root0);
        assert_eq!(s.balance(addr(1)), U256::from_u64(10));
    }

    #[test]
    fn undo_recording_off_by_default_and_after_end() {
        let mut s = WorldState::new();
        assert!(!s.recording_undo());
        s.mint(addr(1), U256::ONE);
        assert!(s.take_undo_layer().is_empty(), "nothing recorded when off");
        s.begin_undo_layer();
        assert!(s.recording_undo());
        s.end_undo();
        s.mint(addr(1), U256::ONE);
        assert!(s.take_undo_layer().is_empty());
    }

    #[test]
    fn undo_restores_revert_evicted_creation_storage() {
        // The journal revert path rewrites accounts without hooks; the
        // undo layer must still capture them (it snapshots on the
        // *mutator* call that preceded the revert).
        let mut s = WorldState::new();
        s.set_storage(addr(7), U256::ONE, U256::from_u64(111));
        s.clear_tx_scratch();
        let root = s.state_root();

        s.begin_undo_layer();
        let snap = s.snapshot();
        s.create_contract(addr(7));
        s.set_storage(addr(7), U256::from_u64(3), U256::from_u64(333));
        s.revert(snap);
        s.clear_tx_scratch();
        let undo = s.take_undo_layer();
        s.apply_undo(undo);
        assert_eq!(s.state_root(), root);
        assert_eq!(s.storage(addr(7), U256::ONE), U256::from_u64(111));
    }

    #[test]
    fn storage_entries_lists_nonzero_slots() {
        let mut s = WorldState::new();
        assert!(s.storage_entries(addr(1)).is_empty());
        s.set_storage(addr(1), U256::ONE, U256::from_u64(5));
        s.set_storage(addr(1), U256::from_u64(2), U256::ZERO);
        let entries = s.storage_entries(addr(1));
        assert_eq!(entries, vec![(U256::ONE, U256::from_u64(5))]);
    }

    #[test]
    fn exists_semantics() {
        let mut s = WorldState::new();
        assert!(!s.account_exists(addr(9)));
        s.mint(addr(9), U256::ONE);
        assert!(s.account_exists(addr(9)));
        s.mint(addr(8), U256::ZERO);
        assert!(
            !s.account_exists(addr(8)),
            "zero-balance touch is not existence"
        );
    }
}
