//! Light client: verified headers only, no state, no transaction bodies.
//!
//! A [`HeaderClient`] starts from a trusted genesis header and follows
//! the chain by importing gossiped headers. Every import re-derives the
//! header hash from its fields (never trusting the wire), checks chain
//! linkage, and runs the same fork choice as a full node — height first,
//! smaller hash as the tiebreak — so a fleet of light clients converges
//! on the same head as the full nodes feeding them, reorgs included.
//!
//! Storage reads are served by checking a [`StorageProof`] against the
//! `state_root` of a tracked header ([`HeaderClient::verified_storage`]),
//! which is the paper's "stateless verifier" role: a session participant
//! that holds no chain state but still refuses unproven answers.

use crate::block::Header;
use crate::proof::{AccountProof, ProofVerifyError, ReceiptProof, StorageProof};
use sc_primitives::{H256, U256};
use std::collections::HashMap;

/// Outcome of a header import that did not error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HeaderImport {
    /// The header (or its hash) was already tracked.
    AlreadyKnown,
    /// The header extended the canonical head.
    Extended,
    /// Stored on a side branch (or still detached); head unchanged.
    Side,
    /// A competing branch won fork choice and became canonical.
    Reorged {
        /// Headers removed from the canonical chain.
        reverted: u64,
        /// Headers that replaced them.
        applied: u64,
    },
}

/// Why a header import was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HeaderImportError {
    /// The header's `hash` field does not match a hash recomputed from
    /// its contents (only possible for hand-built headers — the wire
    /// decoder always recomputes).
    HashMismatch,
}

impl std::fmt::Display for HeaderImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeaderImportError::HashMismatch => {
                write!(f, "header hash does not commit the contents")
            }
        }
    }
}

impl std::error::Error for HeaderImportError {}

/// A light client tracking verified headers only.
#[derive(Clone, Debug)]
pub struct HeaderClient {
    /// Canonical header chain; index == height.
    headers: Vec<Header>,
    /// Canonical hash → height.
    canon: HashMap<H256, u64>,
    /// Non-canonical headers by hash: competing branches, reorg
    /// orphans, and detached headers waiting for their parent.
    side: HashMap<H256, Header>,
}

impl HeaderClient {
    /// Starts a client from a trusted genesis (or checkpoint) header.
    pub fn new(genesis: Header) -> HeaderClient {
        let canon = HashMap::from([(genesis.hash, 0)]);
        HeaderClient {
            headers: vec![genesis],
            canon,
            side: HashMap::new(),
        }
    }

    /// The tracked canonical head.
    pub fn head(&self) -> &Header {
        self.headers.last().expect("genesis always present")
    }

    /// Height of the tracked head.
    pub fn height(&self) -> u64 {
        self.head().number
    }

    /// Canonical header at `number`, if tracked.
    pub fn header(&self, number: u64) -> Option<&Header> {
        let offset = self.headers.first()?.number;
        self.headers.get(number.checked_sub(offset)? as usize)
    }

    /// Canonical header lookup by hash.
    pub fn header_by_hash(&self, hash: H256) -> Option<&Header> {
        self.canon.get(&hash).and_then(|&n| self.header(n))
    }

    /// Number of non-canonical headers currently stored.
    pub fn side_count(&self) -> usize {
        self.side.len()
    }

    /// Imports one header: verifies its hash commits its contents,
    /// stores it, and moves the head when fork choice prefers the
    /// branch it completes. Detached headers are retained and reconnect
    /// automatically once the gap fills.
    pub fn import_header(&mut self, header: Header) -> Result<HeaderImport, HeaderImportError> {
        let recomputed = Header::new(
            header.number,
            header.timestamp,
            header.parent_hash,
            header.state_root,
            header.receipts_root,
            header.gas_used,
            header.tx_hashes.clone(),
        );
        if recomputed.hash != header.hash {
            return Err(HeaderImportError::HashMismatch);
        }
        if self.canon.contains_key(&header.hash) || self.side.contains_key(&header.hash) {
            return Ok(HeaderImport::AlreadyKnown);
        }
        self.side.insert(header.hash, header);
        Ok(match self.adopt_best() {
            Some((0, _)) => HeaderImport::Extended,
            Some((reverted, applied)) => HeaderImport::Reorged { reverted, applied },
            None => HeaderImport::Side,
        })
    }

    /// Longest-chain fork choice, identical to the full node's.
    fn preferred(number: u64, hash: H256, over_number: u64, over_hash: H256) -> bool {
        number > over_number || (number == over_number && hash.0 < over_hash.0)
    }

    /// Walks `tip`'s ancestry through the side store to the canonical
    /// chain; `None` while detached or height-inconsistent.
    fn connected_branch(&self, tip: &Header) -> Option<(u64, Vec<Header>)> {
        let mut rev: Vec<&Header> = vec![tip];
        let mut cur = tip;
        loop {
            if let Some(&n) = self.canon.get(&cur.parent_hash) {
                if n + 1 != cur.number {
                    return None;
                }
                return Some((n, rev.into_iter().rev().cloned().collect()));
            }
            let parent = self.side.get(&cur.parent_hash)?;
            if parent.number + 1 != cur.number {
                return None;
            }
            rev.push(parent);
            cur = parent;
        }
    }

    /// Adopts the best connected branch, if any beats the head.
    /// Returns `(reverted, applied)` when the head moved. Headers carry
    /// no state, so a reorg is a truncate-and-extend of the header vec.
    fn adopt_best(&mut self) -> Option<(u64, u64)> {
        let head = (self.head().number, self.head().hash);
        let mut best: Option<(u64, Vec<Header>)> = None;
        for tip in self.side.values() {
            if !Self::preferred(tip.number, tip.hash, head.0, head.1) {
                continue;
            }
            if let Some(found) = self.connected_branch(tip) {
                let better = match &best {
                    None => true,
                    Some((_, b)) => {
                        let cur = b.last().expect("branch never empty");
                        Self::preferred(tip.number, tip.hash, cur.number, cur.hash)
                    }
                };
                if better {
                    best = Some(found);
                }
            }
        }
        let (fork, branch) = best?;
        let base = self.headers.first().expect("genesis").number;
        let keep = (fork - base + 1) as usize;
        let orphans = self.headers.split_off(keep);
        let reverted = orphans.len() as u64;
        for h in orphans {
            self.canon.remove(&h.hash);
            self.side.insert(h.hash, h);
        }
        let applied = branch.len() as u64;
        for h in branch {
            self.side.remove(&h.hash);
            self.canon.insert(h.hash, h.number);
            self.headers.push(h);
        }
        Some((reverted, applied))
    }

    /// Checks a storage proof against the tracked head's `state_root`,
    /// returning the proven value. This is the only read path a light
    /// client has — no proof, no answer.
    pub fn verified_storage(&self, proof: &StorageProof) -> Result<U256, ProofVerifyError> {
        proof.verify(self.head().state_root)?;
        Ok(proof.value)
    }

    /// Checks a storage proof against the `state_root` of the tracked
    /// canonical header at `number` — the historical-read counterpart
    /// of [`HeaderClient::verified_storage`], pairing with a full
    /// node's archive proofs ([`crate::testnet::Testnet::prove_storage_at`]).
    /// Fails with [`ProofVerifyError::UntrackedHeader`] when the client
    /// does not track that height.
    pub fn verified_storage_at(
        &self,
        number: u64,
        proof: &StorageProof,
    ) -> Result<U256, ProofVerifyError> {
        let header = self
            .header(number)
            .ok_or(ProofVerifyError::UntrackedHeader(number))?;
        proof.verify(header.state_root)?;
        Ok(proof.value)
    }

    /// Checks an account proof against the tracked head's `state_root`,
    /// returning the proven `(nonce, balance)`. A light *submitter*
    /// uses this to bound its own nonce and funds without trusting the
    /// relay's account map.
    pub fn verified_account(&self, proof: &AccountProof) -> Result<(u64, U256), ProofVerifyError> {
        proof.verify(self.head().state_root)?;
        Ok((proof.nonce, proof.balance))
    }

    /// Checks an account proof against the tracked canonical header at
    /// `number` — the historical counterpart of
    /// [`HeaderClient::verified_account`], pairing with
    /// [`crate::testnet::Testnet::prove_account_at`].
    pub fn verified_account_at(
        &self,
        number: u64,
        proof: &AccountProof,
    ) -> Result<(u64, U256), ProofVerifyError> {
        let header = self
            .header(number)
            .ok_or(ProofVerifyError::UntrackedHeader(number))?;
        proof.verify(header.state_root)?;
        Ok((proof.nonce, proof.balance))
    }

    /// Confirms transaction inclusion from headers alone: the claimed
    /// block must be a *tracked canonical* header, that header must
    /// commit the transaction hash, and the receipt's Merkle path must
    /// check out against the header's `receipts_root`. After a reorg
    /// orphans the block, the header at that height changes and the
    /// same witness is rejected — which is exactly what forces a light
    /// session to resubmit.
    pub fn verified_receipt(&self, proof: &ReceiptProof) -> Result<(), ProofVerifyError> {
        let header = self
            .header(proof.block_number)
            .ok_or(ProofVerifyError::UntrackedHeader(proof.block_number))?;
        if !header.tx_hashes.contains(&proof.tx_hash) {
            return Err(ProofVerifyError::TxNotCommitted(proof.tx_hash));
        }
        proof.verify(header.receipts_root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testnet::Testnet;
    use crate::tx::Wallet;
    use sc_primitives::{ether, Address};

    /// A chain with a deployed contract holding `42` in slot 1, plus the
    /// proof for that slot anchored at the head.
    fn chain_with_storage() -> (Testnet, Address, StorageProof) {
        let mut net = Testnet::new();
        let alice = net.funded_wallet("alice", ether(10));
        // `PUSH1 42 PUSH1 1 SSTORE STOP` as initcode.
        let initcode = vec![0x60, 0x2a, 0x60, 0x01, 0x55, 0x00];
        let receipt = net.deploy(&alice, initcode, U256::ZERO, 200_000).unwrap();
        let contract = receipt.contract_address.unwrap();
        let proof = net.prove_storage(contract, U256::ONE);
        (net, contract, proof)
    }

    #[test]
    fn follows_headers_and_verifies_storage() {
        let (mut net, _, proof) = chain_with_storage();
        let alice = Wallet::from_seed("alice");
        net.execute(&alice, Address([9; 20]), ether(1), vec![], 100_000)
            .unwrap();

        let mut client = HeaderClient::new(net.block(0).unwrap().header());
        for n in 1..=net.head().number {
            let out = client
                .import_header(net.block(n).unwrap().header())
                .unwrap();
            assert_eq!(out, HeaderImport::Extended);
        }
        assert_eq!(client.height(), net.head().number);
        assert_eq!(client.head().hash, net.head().hash);

        // The proof was anchored at block 1; verify against that header.
        assert_eq!(client.verified_storage_at(1, &proof).unwrap(), proof.value);
        assert_eq!(
            client.verified_storage_at(99, &proof),
            Err(ProofVerifyError::UntrackedHeader(99))
        );
        // Against the head's root it must fail (alice's transfer moved
        // the account trie): a light client never accepts stale proofs.
        assert!(client.verified_storage(&proof).is_err());
    }

    #[test]
    fn out_of_order_headers_connect_and_tampering_is_rejected() {
        let (mut net, _, _) = chain_with_storage();
        let alice = Wallet::from_seed("alice");
        for _ in 0..3 {
            net.execute(&alice, Address([9; 20]), ether(1), vec![], 100_000)
                .unwrap();
        }
        let mut client = HeaderClient::new(net.block(0).unwrap().header());
        // Newest-first delivery: everything parks, then block 1 connects
        // the whole branch at once.
        for n in [4u64, 3, 2] {
            assert_eq!(
                client
                    .import_header(net.block(n).unwrap().header())
                    .unwrap(),
                HeaderImport::Side
            );
        }
        assert_eq!(
            client
                .import_header(net.block(1).unwrap().header())
                .unwrap(),
            HeaderImport::Extended
        );
        assert_eq!(client.height(), 4);
        assert_eq!(client.side_count(), 0);

        // A header whose hash doesn't commit its fields is refused.
        let mut forged = net.block(2).unwrap().header();
        forged.gas_used += 1;
        assert_eq!(
            client.import_header(forged),
            Err(HeaderImportError::HashMismatch)
        );
    }

    #[test]
    fn header_reorg_tracks_the_heavier_fork() {
        // Two full nodes diverge; the light client hears fork A first,
        // then the heavier fork B, and must switch.
        let mk = || {
            let mut net = Testnet::new();
            net.funded_wallet("alice", ether(10));
            net.funded_wallet("carol", ether(10));
            net
        };
        let (mut a, mut b) = (mk(), mk());
        let alice = Wallet::from_seed("alice");
        let carol = Wallet::from_seed("carol");
        a.execute(&alice, Address([0xb0; 20]), ether(1), vec![], 100_000)
            .unwrap();
        b.execute(&carol, Address([0xda; 20]), ether(1), vec![], 100_000)
            .unwrap();
        b.execute(&carol, Address([0xda; 20]), ether(1), vec![], 100_000)
            .unwrap();

        let mut client = HeaderClient::new(a.block(0).unwrap().header());
        assert_eq!(
            client.import_header(a.block(1).unwrap().header()).unwrap(),
            HeaderImport::Extended
        );
        // Equal height: whether the client switches now depends only on
        // the hash tiebreak, so accept both shapes…
        let mid = client.import_header(b.block(1).unwrap().header()).unwrap();
        assert!(matches!(
            mid,
            HeaderImport::Side
                | HeaderImport::Reorged {
                    reverted: 1,
                    applied: 1
                }
        ));
        // …but once fork B is strictly heavier, the client must be on it.
        let out = client.import_header(b.block(2).unwrap().header()).unwrap();
        match mid {
            HeaderImport::Side => assert_eq!(
                out,
                HeaderImport::Reorged {
                    reverted: 1,
                    applied: 2
                }
            ),
            _ => assert_eq!(out, HeaderImport::Extended),
        }
        assert_eq!(client.head().hash, b.head().hash);
        assert_eq!(client.side_count(), 1, "fork A's header is orphaned");
    }

    #[test]
    fn thousand_light_clients_smoke() {
        let (mut net, _, proof) = chain_with_storage();
        let alice = Wallet::from_seed("alice");
        for _ in 0..4 {
            net.execute(&alice, Address([9; 20]), ether(1), vec![], 100_000)
                .unwrap();
        }
        let headers: Vec<Header> = (0..=net.head().number)
            .map(|n| net.block(n).unwrap().header())
            .collect();
        let head_hash = net.head().hash;

        for i in 0..1000 {
            let mut client = HeaderClient::new(headers[0].clone());
            // Half the fleet receives headers in order, half reversed —
            // both must converge on the same verified head.
            if i % 2 == 0 {
                for h in &headers[1..] {
                    client.import_header(h.clone()).unwrap();
                }
            } else {
                for h in headers[1..].iter().rev() {
                    client.import_header(h.clone()).unwrap();
                }
            }
            assert_eq!(client.head().hash, head_hash);
            assert_eq!(client.side_count(), 0);
            // Every client refuses the stale proof at its head but
            // accepts it against the header it was anchored to.
            assert!(client.verified_storage(&proof).is_err());
            proof.verify(client.header(1).unwrap().state_root).unwrap();
        }
    }

    /// A client tracking `net`'s full canonical chain.
    fn synced_client(net: &Testnet) -> HeaderClient {
        let mut client = HeaderClient::new(net.block(0).unwrap().header());
        for n in 1..=net.head().number {
            client
                .import_header(net.block(n).unwrap().header())
                .unwrap();
        }
        client
    }

    #[test]
    fn receipt_inclusion_verifies_and_forgeries_are_rejected() {
        let (mut net, contract, _) = chain_with_storage();
        let alice = Wallet::from_seed("alice");
        let r = net
            .execute(&alice, contract, U256::ZERO, vec![], 100_000)
            .unwrap();
        let client = synced_client(&net);

        let proof = net.prove_receipt(r.tx_hash).expect("mined tx has a proof");
        client.verified_receipt(&proof).expect("honest inclusion");

        // Unknown height: typed error, no trusted root to check against.
        let mut forged = proof.clone();
        forged.block_number = 99;
        assert_eq!(
            client.verified_receipt(&forged),
            Err(ProofVerifyError::UntrackedHeader(99))
        );
        // A tx hash the header never committed.
        let mut forged = proof.clone();
        forged.tx_hash = H256([0xab; 32]);
        assert_eq!(
            client.verified_receipt(&forged),
            Err(ProofVerifyError::TxNotCommitted(H256([0xab; 32])))
        );
        // A doctored receipt payload (claiming success bits it never
        // had) breaks the leaf match.
        let mut forged = proof.clone();
        forged.receipt_rlp[0] ^= 0x01;
        assert!(client.verified_receipt(&forged).is_err());
        // A claimed index the root commits a different receipt at.
        let mut forged = proof.clone();
        forged.tx_index += 1;
        assert!(client.verified_receipt(&forged).is_err());
    }

    #[test]
    fn forged_account_witness_is_rejected_typed() {
        let (mut net, _, _) = chain_with_storage();
        let alice = Wallet::from_seed("alice");
        let client = synced_client(&net);
        let proof = net.prove_account(alice.address);
        assert!(proof.nonce > 0, "alice deployed, so her nonce moved");
        let (nonce, balance) = client.verified_account(&proof).unwrap();
        assert_eq!((nonce, balance), (proof.nonce, proof.balance));

        // Tampered balance and nonce: path verifies, claim does not.
        let mut forged = proof.clone();
        forged.balance = forged.balance.wrapping_add(U256::ONE);
        assert!(matches!(
            client.verified_account(&forged),
            Err(ProofVerifyError::AccountMismatch { .. })
        ));
        let mut forged = proof.clone();
        forged.nonce += 1;
        assert!(matches!(
            client.verified_account(&forged),
            Err(ProofVerifyError::AccountMismatch { .. })
        ));
        assert_eq!(
            client.verified_account_at(99, &proof),
            Err(ProofVerifyError::UntrackedHeader(99))
        );
    }

    /// Every structurally-corrupted witness must surface a typed error —
    /// never a panic — no matter which byte an adversarial relay mangles.
    #[test]
    fn malformed_witness_corpus_yields_typed_errors() {
        let (mut net, contract, storage_proof) = chain_with_storage();
        let alice = Wallet::from_seed("alice");
        let r = net
            .execute(&alice, contract, U256::ZERO, vec![], 100_000)
            .unwrap();
        let client = synced_client(&net);
        let account_proof = net.prove_account(alice.address);
        let receipt_proof = net.prove_receipt(r.tx_hash).unwrap();

        // Corrupt every byte of every path node, plus truncations and
        // node swaps — all must decode to Err, none may panic.
        let mut corpus = 0usize;
        for i in 0..storage_proof.account_proof.len() {
            for bit in [0x01u8, 0x80] {
                let mut p = storage_proof.clone();
                for b in p.account_proof[i].iter_mut() {
                    *b ^= bit;
                }
                assert!(client.verified_storage_at(1, &p).is_err());
                corpus += 1;
            }
        }
        for i in 0..account_proof.account_proof.len() {
            let mut p = account_proof.clone();
            p.account_proof[i] = vec![0xc0]; // replaced by an empty list
            assert!(client.verified_account(&p).is_err());
            corpus += 1;
        }
        let mut p = account_proof.clone();
        p.account_proof.clear(); // truncated to nothing
        assert!(client.verified_account(&p).is_err());
        let mut p = storage_proof.clone();
        p.storage_proof.reverse(); // nodes out of path order still hash-checked
        p.value = p.value.wrapping_add(U256::ONE);
        assert!(client.verified_storage_at(1, &p).is_err());
        for i in 0..receipt_proof.proof.len() {
            let mut p = receipt_proof.clone();
            p.proof[i] = vec![0xff; 3];
            assert!(client.verified_receipt(&p).is_err());
            corpus += 1;
        }
        let mut p = receipt_proof.clone();
        p.receipt_rlp = vec![]; // empty consensus payload
        assert!(client.verified_receipt(&p).is_err());
        assert!(corpus >= 4, "corpus exercised {corpus} mutations");
    }

    #[test]
    fn stale_witness_is_rejected_after_reorg() {
        // The client follows fork A, proves a read against A's head,
        // then reorgs to fork B: the witness anchored to A's root must
        // be rejected at the new head, and a fresh proof from B's chain
        // must verify. This is the re-prove obligation a light session
        // discharges after every reorg.
        let mk = || {
            let mut net = Testnet::new();
            net.funded_wallet("alice", ether(10));
            net.funded_wallet("carol", ether(10));
            net
        };
        let (mut a, mut b) = (mk(), mk());
        let alice = Wallet::from_seed("alice");
        let carol = Wallet::from_seed("carol");
        a.execute(&alice, Address([0xb0; 20]), ether(1), vec![], 100_000)
            .unwrap();
        b.execute(&carol, Address([0xda; 20]), ether(2), vec![], 100_000)
            .unwrap();
        b.execute(&carol, Address([0xda; 20]), ether(1), vec![], 100_000)
            .unwrap();

        let mut client = HeaderClient::new(a.block(0).unwrap().header());
        client.import_header(a.block(1).unwrap().header()).unwrap();
        // An account witness whose value genuinely differs between the
        // forks: fork A paid 0xb0, fork B never did.
        let stale_account = a.prove_account(Address([0xb0; 20]));
        client
            .verified_account(&stale_account)
            .expect("fresh on fork A");

        // Fork B is heavier: the client must switch…
        client.import_header(b.block(1).unwrap().header()).unwrap();
        let out = client.import_header(b.block(2).unwrap().header()).unwrap();
        assert!(matches!(
            out,
            HeaderImport::Reorged { .. } | HeaderImport::Extended
        ));
        assert_eq!(client.head().hash, b.head().hash);
        // …and the stale fork-A witness must now be rejected, while a
        // fresh fork-B witness for the same account verifies.
        assert!(client.verified_account(&stale_account).is_err());
        let fresh = b.prove_account(Address([0xb0; 20]));
        assert_eq!(
            client.verified_account(&fresh).unwrap(),
            (0, U256::ZERO),
            "fork B never paid 0xb0"
        );
    }
}
