//! A deterministic, single-node Ethereum-style chain simulator.
//!
//! Stands in for the Kovan testnet of the paper's evaluation: accounts and
//! world state, ECDSA-signed transactions with sender recovery, instant
//! sealing with controllable timestamps, receipts, and exact Yellow-Paper
//! gas settlement (intrinsic gas, refund cap, miner payment).
//!
//! * [`overlay`] — flat-state [`overlay::StateOverlay`]: the `(address,
//!   slot) → value` maps every read and write hits, with per-block
//!   [`overlay::DiffLayer`]s recording first-touch priors.
//! * [`state`] — journaled [`state::WorldState`] implementing `sc_evm::Host`
//!   over the overlay, reconciling tries at seal time and archiving
//!   retained-window roots for pruning + historical proofs.
//! * [`tx`] — transactions, signing, [`tx::Wallet`].
//! * [`block`] — blocks and [`block::Receipt`]s, sealed with
//!   `state_root` / `receipts_root` Merkle commitments.
//! * [`proof`] — [`proof::StorageProof`]: stateless light verification
//!   of a storage slot against a header's `state_root`.
//! * [`parallel`] — optimistic parallel block execution
//!   ([`parallel::ExecMode`], Block-STM-style speculation).
//! * [`wire`] — RLP wire codec for gossiped blocks, headers and
//!   transactions (identities re-derived locally on decode).
//! * [`light`] — [`light::HeaderClient`]: a light client tracking
//!   verified headers only, serving proof-checked storage reads.
//! * [`testnet`] — the [`testnet::Testnet`] facade, including block
//!   import, fork choice and reorg rollback/replay.

#![warn(missing_docs)]

pub mod block;
pub mod light;
pub mod overlay;
pub mod parallel;
pub mod proof;
pub mod state;
pub mod testnet;
pub mod tx;
pub mod wire;

pub use block::{receipts_root, Block, FailureReason, Header, Receipt};
pub use light::{HeaderClient, HeaderImport, HeaderImportError};
pub use overlay::{Account, DiffLayer, StateOverlay};
pub use parallel::{ExecMode, SealReport};
pub use proof::{AccountProof, ProofVerifyError, ReceiptProof, StorageProof};
pub use state::{encode_account, SnapshotError, WorldState};
pub use testnet::{CallResult, ChainConfig, ImportError, ImportOutcome, Testnet, TxError};
pub use tx::{SignedTransaction, Transaction, Wallet};
pub use wire::WireError;
// The pool types travel with the chain so downstream crates (the
// session engine, benches) need no direct sc-mempool dependency.
pub use sc_mempool::{Admitted, PoolConfig, PoolError, TxMeta};
