//! Transactions: RLP signing payloads, ECDSA signatures, sender recovery.

use crate::wire::{self, WireError};
use sc_crypto::ecdsa::{recover_address, EcdsaError, PrivateKey, Signature};
use sc_crypto::keccak256;
use sc_primitives::rlp::{self, Item};
use sc_primitives::{Address, H256, U256};

/// An unsigned transaction (pre-EIP-155 payload shape, matching the era of
/// the paper's toolchain).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transaction {
    /// Sender's account nonce.
    pub nonce: u64,
    /// Price per unit of gas, in wei.
    pub gas_price: U256,
    /// Gas limit for the whole transaction.
    pub gas_limit: u64,
    /// Recipient; `None` creates a contract.
    pub to: Option<Address>,
    /// Wei transferred (or endowed to the new contract).
    pub value: U256,
    /// Calldata or initcode.
    pub data: Vec<u8>,
}

impl Transaction {
    /// True for contract-creation transactions.
    pub fn is_create(&self) -> bool {
        self.to.is_none()
    }

    /// RLP list of the six signing fields.
    fn rlp_items(&self) -> Vec<Item> {
        vec![
            Item::u64(self.nonce),
            Item::uint(self.gas_price),
            Item::u64(self.gas_limit),
            match self.to {
                Some(a) => Item::address(a),
                None => Item::bytes(Vec::new()),
            },
            Item::uint(self.value),
            Item::bytes(self.data.clone()),
        ]
    }

    /// The digest that gets signed: `keccak(rlp([nonce, gasPrice,
    /// gasLimit, to, value, data]))`.
    pub fn signing_hash(&self) -> H256 {
        keccak256(&rlp::encode_list(&self.rlp_items()))
    }

    /// Signs with a private key, producing a [`SignedTransaction`].
    pub fn sign(self, key: &PrivateKey) -> SignedTransaction {
        let sig = key.sign(self.signing_hash());
        SignedTransaction {
            tx: self,
            signature: sig,
        }
    }
}

/// A signed transaction ready for submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedTransaction {
    /// The payload.
    pub tx: Transaction,
    /// The sender's recoverable signature.
    pub signature: Signature,
}

impl SignedTransaction {
    /// Recovers the sender address from the signature.
    pub fn sender(&self) -> Result<Address, EcdsaError> {
        if !self.signature.is_low_s() {
            // EIP-2: high-s signatures are invalid in transactions.
            return Err(EcdsaError::InvalidSignature);
        }
        recover_address(self.tx.signing_hash(), &self.signature)
    }

    /// Transaction hash: keccak of the full signed RLP.
    pub fn hash(&self) -> H256 {
        keccak256(&self.encode())
    }

    /// The nine-item signed RLP — the six signing fields followed by
    /// `v, r, s` — as a nestable [`Item`] (so a block can embed whole
    /// transactions in its own wire encoding).
    pub fn rlp_item(&self) -> Item {
        let mut items = self.tx.rlp_items();
        items.push(Item::u64(self.signature.v as u64));
        items.push(Item::uint(self.signature.r.to_u256()));
        items.push(Item::uint(self.signature.s.to_u256()));
        Item::List(items)
    }

    /// Canonical wire bytes: the same RLP the transaction hash commits
    /// to, so `keccak(encode())` is the transaction identity on every
    /// node that decodes it.
    pub fn encode(&self) -> Vec<u8> {
        rlp::encode(&self.rlp_item())
    }

    /// Decodes wire bytes produced by [`SignedTransaction::encode`].
    ///
    /// Only the shape is validated here; the sender is *not* recovered
    /// (importers call [`SignedTransaction::sender`] themselves, so a
    /// forged signature surfaces as an invalid-sender error, never as a
    /// trusted address).
    pub fn decode(bytes: &[u8]) -> Result<SignedTransaction, WireError> {
        SignedTransaction::from_item(&rlp::decode(bytes)?)
    }

    /// Decodes one transaction from an already-parsed RLP item.
    pub(crate) fn from_item(item: &Item) -> Result<SignedTransaction, WireError> {
        let items = wire::as_list(item, "tx: expected list")?;
        if items.len() != 9 {
            return Err(WireError::Malformed("tx: expected 9 fields"));
        }
        let v = wire::as_u64(&items[6], "tx: v")?;
        if v > u8::MAX as u64 {
            return Err(WireError::Malformed("tx: v out of range"));
        }
        Ok(SignedTransaction {
            tx: Transaction {
                nonce: wire::as_u64(&items[0], "tx: nonce")?,
                gas_price: wire::as_uint(&items[1], "tx: gas_price")?,
                gas_limit: wire::as_u64(&items[2], "tx: gas_limit")?,
                to: wire::as_opt_address(&items[3], "tx: to")?,
                value: wire::as_uint(&items[4], "tx: value")?,
                data: wire::as_bytes(&items[5], "tx: data")?.to_vec(),
            },
            signature: Signature {
                v: v as u8,
                r: H256::from_u256(wire::as_uint(&items[7], "tx: r")?),
                s: H256::from_u256(wire::as_uint(&items[8], "tx: s")?),
            },
        })
    }
}

/// A convenience wrapper pairing a key with its address.
#[derive(Clone)]
pub struct Wallet {
    /// The signing key.
    pub key: PrivateKey,
    /// Cached address of `key`.
    pub address: Address,
}

impl std::fmt::Debug for Wallet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Wallet({})", self.address)
    }
}

impl Wallet {
    /// Wraps an existing key.
    pub fn new(key: PrivateKey) -> Wallet {
        Wallet {
            address: key.address(),
            key,
        }
    }

    /// Deterministic test wallet from a seed label ("alice", "bob", …).
    pub fn from_seed(seed: &str) -> Wallet {
        Wallet::new(PrivateKey::from_seed(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tx() -> Transaction {
        Transaction {
            nonce: 3,
            gas_price: sc_primitives::gwei(1),
            gas_limit: 100_000,
            to: Some(Address([0xaa; 20])),
            value: sc_primitives::ether(1),
            data: vec![1, 2, 3],
        }
    }

    #[test]
    fn sender_recovery_roundtrip() {
        let w = Wallet::from_seed("alice");
        let signed = sample_tx().sign(&w.key);
        assert_eq!(signed.sender().unwrap(), w.address);
    }

    #[test]
    fn tampering_changes_recovered_sender() {
        let w = Wallet::from_seed("alice");
        let mut signed = sample_tx().sign(&w.key);
        signed.tx.value = sc_primitives::ether(2);
        if let Ok(a) = signed.sender() {
            assert_ne!(a, w.address)
        }
    }

    #[test]
    fn create_tx_has_empty_to() {
        let tx = Transaction {
            to: None,
            ..sample_tx()
        };
        assert!(tx.is_create());
        // The RLP `to` field must be the empty string, not 20 zero bytes.
        let enc = rlp::encode_list(&tx.rlp_items());
        let dec = rlp::decode(&enc).unwrap();
        if let rlp::Item::List(items) = dec {
            assert_eq!(items[3], Item::bytes(Vec::new()));
        } else {
            panic!("expected list");
        }
    }

    #[test]
    fn hash_is_signature_dependent() {
        let alice = Wallet::from_seed("alice");
        let bob = Wallet::from_seed("bob");
        let h1 = sample_tx().sign(&alice.key).hash();
        let h2 = sample_tx().sign(&bob.key).hash();
        assert_ne!(h1, h2);
    }

    #[test]
    fn signing_hash_is_stable() {
        // Determinism pin: the same payload always hashes identically.
        assert_eq!(sample_tx().signing_hash(), sample_tx().signing_hash());
    }

    #[test]
    fn wire_roundtrip_preserves_identity() {
        let alice = Wallet::from_seed("alice");
        for tx in [
            sample_tx(),
            Transaction {
                to: None,
                value: U256::ZERO,
                data: vec![],
                ..sample_tx()
            },
        ] {
            let signed = tx.sign(&alice.key);
            let decoded = SignedTransaction::decode(&signed.encode()).unwrap();
            assert_eq!(decoded, signed);
            assert_eq!(decoded.hash(), signed.hash());
            assert_eq!(decoded.sender().unwrap(), alice.address);
        }
    }

    #[test]
    fn wire_decode_rejects_malformed() {
        let signed = sample_tx().sign(&Wallet::from_seed("alice").key);
        let mut bytes = signed.encode();
        bytes.push(0x00);
        assert!(matches!(
            SignedTransaction::decode(&bytes),
            Err(WireError::Rlp(_))
        ));
        // An 8-item list (missing s) decodes as RLP but fails the schema.
        let mut items = signed.tx.rlp_items();
        items.push(Item::u64(signed.signature.v as u64));
        items.push(Item::uint(signed.signature.r.to_u256()));
        assert!(matches!(
            SignedTransaction::decode(&rlp::encode_list(&items)),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn wallet_seeds_are_distinct() {
        assert_ne!(
            Wallet::from_seed("alice").address,
            Wallet::from_seed("bob").address
        );
    }
}
