//! Light verification of storage against a block's `state_root`.
//!
//! A [`StorageProof`] carries the two Merkle paths a stateless verifier
//! needs: the account's inclusion proof in the state trie (which
//! commits the account's `storage_root`) and the slot's proof in that
//! storage trie. [`StorageProof::verify`] replays both against a root
//! taken from a block header — no access to the world state required,
//! which is exactly what the paper's challenge stage needs: a
//! participant can check what the chain committed to without trusting
//! the representative's node.

use sc_primitives::rlp::{self, Item};
use sc_primitives::{Address, H256, U256};
use sc_trie::{verify_secure_proof, ProofError};
use std::fmt;

/// Why a [`StorageProof`] failed to check out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofVerifyError {
    /// A Merkle path was malformed or incomplete (includes tampering —
    /// a modified node breaks a hash link to the root).
    Trie(ProofError),
    /// The account leaf did not decode as `[nonce, balance,
    /// storage_root, code_hash]`.
    BadAccount,
    /// Both paths verified, but against a different value than claimed.
    ValueMismatch {
        /// What the root actually commits the slot to.
        proven: U256,
        /// What the proof claimed.
        claimed: U256,
    },
    /// The verifier holds no header for this block number, so there is
    /// no trusted root to check the proof against.
    UntrackedHeader(u64),
}

impl fmt::Display for ProofVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofVerifyError::Trie(e) => write!(f, "storage proof rejected: {e}"),
            ProofVerifyError::BadAccount => write!(f, "malformed account leaf in storage proof"),
            ProofVerifyError::ValueMismatch { proven, claimed } => write!(
                f,
                "storage proof value mismatch: root commits {proven}, claimed {claimed}"
            ),
            ProofVerifyError::UntrackedHeader(n) => {
                write!(f, "no tracked header for block {n}")
            }
        }
    }
}

impl std::error::Error for ProofVerifyError {}

impl From<ProofError> for ProofVerifyError {
    fn from(e: ProofError) -> Self {
        ProofVerifyError::Trie(e)
    }
}

/// A self-contained storage witness: address, slot, claimed value, and
/// the account + storage Merkle paths, plus the state root the prover
/// anchored to (so a verifier can compare it against a block header
/// before replaying the paths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageProof {
    /// Account whose storage is being proven.
    pub address: Address,
    /// Storage slot.
    pub slot: U256,
    /// Claimed slot value ([`U256::ZERO`] for exclusion proofs).
    pub value: U256,
    /// The state root the prover generated this proof against.
    pub root: H256,
    /// Merkle path of the account in the state trie.
    pub account_proof: Vec<Vec<u8>>,
    /// Merkle path of the slot in the account's storage trie.
    pub storage_proof: Vec<Vec<u8>>,
}

impl StorageProof {
    /// Replays the proof against `state_root` and returns the value the
    /// root actually commits the slot to. An account proven absent, or
    /// a slot proven absent in its storage trie, commits to zero.
    pub fn proven_value(&self, state_root: H256) -> Result<U256, ProofVerifyError> {
        let account =
            verify_secure_proof(state_root, self.address.as_bytes(), &self.account_proof)?;
        let Some(account) = account else {
            // Account exclusion: every slot of a nonexistent account is
            // zero, and there is no storage root to walk.
            return Ok(U256::ZERO);
        };
        let storage_root = decode_storage_root(&account).ok_or(ProofVerifyError::BadAccount)?;
        let value =
            verify_secure_proof(storage_root, &self.slot.to_be_bytes(), &self.storage_proof)?;
        match value {
            None => Ok(U256::ZERO),
            Some(enc) => rlp::decode(&enc)
                .ok()
                .and_then(|item| item.as_uint())
                .ok_or(ProofVerifyError::BadAccount),
        }
    }

    /// Verifies that `state_root` commits `self.slot` to `self.value`.
    pub fn verify(&self, state_root: H256) -> Result<(), ProofVerifyError> {
        let proven = self.proven_value(state_root)?;
        if proven == self.value {
            Ok(())
        } else {
            Err(ProofVerifyError::ValueMismatch {
                proven,
                claimed: self.value,
            })
        }
    }
}

/// Pulls `storage_root` out of an RLP `[nonce, balance, storage_root,
/// code_hash]` account leaf.
pub(crate) fn decode_storage_root(account_rlp: &[u8]) -> Option<H256> {
    let Ok(Item::List(fields)) = rlp::decode(account_rlp) else {
        return None;
    };
    if fields.len() != 4 {
        return None;
    }
    let Item::Bytes(root) = &fields[2] else {
        return None;
    };
    if root.len() != 32 {
        return None;
    }
    let mut h = H256::ZERO;
    h.0.copy_from_slice(root);
    Some(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::WorldState;
    use sc_evm::host::Host;

    fn addr(b: u8) -> Address {
        Address([b; 20])
    }

    /// Builds a state with a couple of storage-bearing contracts and
    /// some plain accounts.
    fn populated_state() -> WorldState {
        let mut s = WorldState::new();
        for i in 1u8..5 {
            s.mint(addr(i), U256::from_u64(1_000_000 + i as u64));
        }
        s.install_code(addr(10), vec![0x5b, 0x00]);
        s.set_storage(addr(10), U256::from_u64(7), U256::from_u64(0xdead));
        s.set_storage(addr(10), U256::from_u64(8), U256::from_u64(0xbeef));
        s.install_code(addr(11), vec![0x5b, 0x01]);
        s.set_storage(addr(11), U256::from_u64(7), U256::from_u64(42));
        s.clear_tx_scratch();
        s
    }

    #[test]
    fn storage_proof_roundtrip() {
        let mut s = populated_state();
        let root = s.state_root();
        let proof = s.prove_storage(addr(10), U256::from_u64(7));
        assert_eq!(proof.root, root);
        assert_eq!(proof.value, U256::from_u64(0xdead));
        proof.verify(root).expect("honest proof verifies");
        assert_eq!(proof.proven_value(root).unwrap(), U256::from_u64(0xdead));
    }

    #[test]
    fn tampered_value_is_rejected() {
        let mut s = populated_state();
        let root = s.state_root();
        let mut proof = s.prove_storage(addr(10), U256::from_u64(7));
        proof.value = U256::from_u64(0xdeaf);
        match proof.verify(root) {
            Err(ProofVerifyError::ValueMismatch { proven, claimed }) => {
                assert_eq!(proven, U256::from_u64(0xdead));
                assert_eq!(claimed, U256::from_u64(0xdeaf));
            }
            other => panic!("expected ValueMismatch, got {other:?}"),
        }
    }

    #[test]
    fn tampered_nodes_are_rejected() {
        let mut s = populated_state();
        let root = s.state_root();
        let honest = s.prove_storage(addr(10), U256::from_u64(7));
        for (which, len) in [
            (0, honest.account_proof.len()),
            (1, honest.storage_proof.len()),
        ] {
            for i in 0..len {
                let mut forged = honest.clone();
                let nodes = if which == 0 {
                    &mut forged.account_proof
                } else {
                    &mut forged.storage_proof
                };
                nodes[i][0] ^= 0x01;
                assert!(
                    forged.verify(root).is_err(),
                    "forged node {i} in proof part {which} must not verify"
                );
            }
        }
    }

    #[test]
    fn absent_slot_and_absent_account_prove_zero() {
        let mut s = populated_state();
        let root = s.state_root();

        // Slot never written: exclusion in the storage trie.
        let proof = s.prove_storage(addr(10), U256::from_u64(99));
        assert_eq!(proof.value, U256::ZERO);
        proof.verify(root).expect("slot exclusion verifies");

        // Account never touched: exclusion in the account trie.
        let proof = s.prove_storage(addr(0xee), U256::from_u64(7));
        assert_eq!(proof.value, U256::ZERO);
        proof.verify(root).expect("account exclusion verifies");
    }

    #[test]
    fn proof_against_stale_root_fails() {
        let mut s = populated_state();
        let old_root = s.state_root();
        s.set_storage(addr(10), U256::from_u64(7), U256::from_u64(1234));
        s.clear_tx_scratch();
        let proof = s.prove_storage(addr(10), U256::from_u64(7));
        assert_ne!(proof.root, old_root);
        // Against the new root the new value verifies…
        proof.verify(proof.root).expect("fresh proof verifies");
        // …but the same paths cannot satisfy the old commitment.
        assert!(proof.verify(old_root).is_err());
    }

    #[test]
    fn state_root_reflects_account_encoding() {
        // Two states that differ only in one nonce must produce
        // different roots; identical states must agree.
        let mut a = populated_state();
        let mut b = populated_state();
        assert_eq!(a.state_root(), b.state_root());
        b.bump_nonce(addr(1));
        b.clear_tx_scratch();
        assert_ne!(a.state_root(), b.state_root());
    }
}
