//! Light verification of storage against a block's `state_root`.
//!
//! A [`StorageProof`] carries the two Merkle paths a stateless verifier
//! needs: the account's inclusion proof in the state trie (which
//! commits the account's `storage_root`) and the slot's proof in that
//! storage trie. [`StorageProof::verify`] replays both against a root
//! taken from a block header — no access to the world state required,
//! which is exactly what the paper's challenge stage needs: a
//! participant can check what the chain committed to without trusting
//! the representative's node.

use sc_primitives::rlp::{self, Item};
use sc_primitives::{Address, H256, U256};
use sc_trie::{verify_proof, verify_secure_proof, ProofError};
use std::fmt;

/// Why a witness ([`StorageProof`], [`AccountProof`] or
/// [`ReceiptProof`]) failed to check out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofVerifyError {
    /// A Merkle path was malformed or incomplete (includes tampering —
    /// a modified node breaks a hash link to the root).
    Trie(ProofError),
    /// The account leaf did not decode as `[nonce, balance,
    /// storage_root, code_hash]`.
    BadAccount,
    /// Both paths verified, but against a different value than claimed.
    ValueMismatch {
        /// What the root actually commits the slot to.
        proven: U256,
        /// What the proof claimed.
        claimed: U256,
    },
    /// The account path verified, but the root commits different
    /// account fields than the witness claims (a tampered balance or
    /// nonce).
    AccountMismatch {
        /// Nonce the root actually commits.
        proven_nonce: u64,
        /// Balance the root actually commits.
        proven_balance: U256,
        /// Nonce the witness claimed.
        claimed_nonce: u64,
        /// Balance the witness claimed.
        claimed_balance: U256,
    },
    /// The header the receipt claims inclusion in does not commit the
    /// transaction hash at all.
    TxNotCommitted(H256),
    /// The receipts root commits a different receipt (or none) at the
    /// claimed index than the witness carries.
    ReceiptMismatch,
    /// The verifier holds no header for this block number, so there is
    /// no trusted root to check the proof against.
    UntrackedHeader(u64),
}

impl fmt::Display for ProofVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofVerifyError::Trie(e) => write!(f, "storage proof rejected: {e}"),
            ProofVerifyError::BadAccount => write!(f, "malformed account leaf in storage proof"),
            ProofVerifyError::ValueMismatch { proven, claimed } => write!(
                f,
                "storage proof value mismatch: root commits {proven}, claimed {claimed}"
            ),
            ProofVerifyError::AccountMismatch {
                proven_nonce,
                proven_balance,
                claimed_nonce,
                claimed_balance,
            } => write!(
                f,
                "account proof mismatch: root commits nonce {proven_nonce} balance \
                 {proven_balance}, claimed nonce {claimed_nonce} balance {claimed_balance}"
            ),
            ProofVerifyError::TxNotCommitted(h) => {
                write!(f, "header does not commit transaction {h}")
            }
            ProofVerifyError::ReceiptMismatch => {
                write!(f, "receipts root commits a different receipt than claimed")
            }
            ProofVerifyError::UntrackedHeader(n) => {
                write!(f, "no tracked header for block {n}")
            }
        }
    }
}

impl std::error::Error for ProofVerifyError {}

impl From<ProofError> for ProofVerifyError {
    fn from(e: ProofError) -> Self {
        ProofVerifyError::Trie(e)
    }
}

/// A self-contained storage witness: address, slot, claimed value, and
/// the account + storage Merkle paths, plus the state root the prover
/// anchored to (so a verifier can compare it against a block header
/// before replaying the paths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageProof {
    /// Account whose storage is being proven.
    pub address: Address,
    /// Storage slot.
    pub slot: U256,
    /// Claimed slot value ([`U256::ZERO`] for exclusion proofs).
    pub value: U256,
    /// The state root the prover generated this proof against.
    pub root: H256,
    /// Merkle path of the account in the state trie.
    pub account_proof: Vec<Vec<u8>>,
    /// Merkle path of the slot in the account's storage trie.
    pub storage_proof: Vec<Vec<u8>>,
}

impl StorageProof {
    /// Replays the proof against `state_root` and returns the value the
    /// root actually commits the slot to. An account proven absent, or
    /// a slot proven absent in its storage trie, commits to zero.
    pub fn proven_value(&self, state_root: H256) -> Result<U256, ProofVerifyError> {
        let account =
            verify_secure_proof(state_root, self.address.as_bytes(), &self.account_proof)?;
        let Some(account) = account else {
            // Account exclusion: every slot of a nonexistent account is
            // zero, and there is no storage root to walk.
            return Ok(U256::ZERO);
        };
        let storage_root = decode_storage_root(&account).ok_or(ProofVerifyError::BadAccount)?;
        let value =
            verify_secure_proof(storage_root, &self.slot.to_be_bytes(), &self.storage_proof)?;
        match value {
            None => Ok(U256::ZERO),
            Some(enc) => rlp::decode(&enc)
                .ok()
                .and_then(|item| item.as_uint())
                .ok_or(ProofVerifyError::BadAccount),
        }
    }

    /// Verifies that `state_root` commits `self.slot` to `self.value`.
    pub fn verify(&self, state_root: H256) -> Result<(), ProofVerifyError> {
        let proven = self.proven_value(state_root)?;
        if proven == self.value {
            Ok(())
        } else {
            Err(ProofVerifyError::ValueMismatch {
                proven,
                claimed: self.value,
            })
        }
    }

    /// Bytes of Merkle-path data this witness carries — what a light
    /// client actually downloads per read (the bench's
    /// witness-bytes-per-session metric).
    pub fn witness_bytes(&self) -> usize {
        path_bytes(&self.account_proof) + path_bytes(&self.storage_proof)
    }
}

/// A self-contained *account* witness: address, claimed nonce and
/// balance, and the account's Merkle path in the state trie. This is
/// the top level of the two-level state witness on its own — what a
/// light submitter needs to check its own nonce and funds against a
/// header's `state_root` without trusting the relay's account map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccountProof {
    /// Account being proven.
    pub address: Address,
    /// Claimed nonce (0 for exclusion proofs).
    pub nonce: u64,
    /// Claimed balance ([`U256::ZERO`] for exclusion proofs).
    pub balance: U256,
    /// The state root the prover generated this proof against.
    pub root: H256,
    /// Merkle path of the account in the state trie.
    pub account_proof: Vec<Vec<u8>>,
}

impl AccountProof {
    /// Replays the path against `state_root` and returns the `(nonce,
    /// balance)` the root actually commits. An account proven absent
    /// commits `(0, 0)`.
    pub fn proven_parts(&self, state_root: H256) -> Result<(u64, U256), ProofVerifyError> {
        let account =
            verify_secure_proof(state_root, self.address.as_bytes(), &self.account_proof)?;
        match account {
            None => Ok((0, U256::ZERO)),
            Some(enc) => decode_account_parts(&enc).ok_or(ProofVerifyError::BadAccount),
        }
    }

    /// Verifies that `state_root` commits exactly the claimed nonce and
    /// balance.
    pub fn verify(&self, state_root: H256) -> Result<(), ProofVerifyError> {
        let (proven_nonce, proven_balance) = self.proven_parts(state_root)?;
        if proven_nonce == self.nonce && proven_balance == self.balance {
            Ok(())
        } else {
            Err(ProofVerifyError::AccountMismatch {
                proven_nonce,
                proven_balance,
                claimed_nonce: self.nonce,
                claimed_balance: self.balance,
            })
        }
    }

    /// Bytes of Merkle-path data this witness carries.
    pub fn witness_bytes(&self) -> usize {
        path_bytes(&self.account_proof)
    }
}

/// A receipt-inclusion witness: the consensus encoding of one receipt
/// plus its Merkle path in the block's receipts trie (keyed by RLP
/// transaction index, exactly as [`crate::block::receipts_root`] builds
/// it). A light client confirms a submitted transaction landed by
/// checking this against the `receipts_root` of a *tracked* header —
/// the relay can withhold a receipt, but cannot fabricate one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiptProof {
    /// Transaction whose receipt is proven.
    pub tx_hash: H256,
    /// Block the receipt claims inclusion in.
    pub block_number: u64,
    /// Index of the transaction within that block.
    pub tx_index: u64,
    /// The receipt's consensus encoding (`[status, gas_used, logs]`).
    pub receipt_rlp: Vec<u8>,
    /// Merkle path of the receipt in the block's receipts trie.
    pub proof: Vec<Vec<u8>>,
}

impl ReceiptProof {
    /// Verifies that `receipts_root` commits exactly `self.receipt_rlp`
    /// at `self.tx_index`.
    pub fn verify(&self, receipts_root: H256) -> Result<(), ProofVerifyError> {
        let key = rlp::encode(&Item::u64(self.tx_index));
        match verify_proof(receipts_root, &key, &self.proof)? {
            Some(leaf) if leaf == self.receipt_rlp => Ok(()),
            _ => Err(ProofVerifyError::ReceiptMismatch),
        }
    }

    /// Bytes of Merkle-path data this witness carries (plus the receipt
    /// payload itself, which the verifier must download too).
    pub fn witness_bytes(&self) -> usize {
        path_bytes(&self.proof) + self.receipt_rlp.len()
    }
}

/// Total encoded bytes of one Merkle path.
fn path_bytes(path: &[Vec<u8>]) -> usize {
    path.iter().map(Vec::len).sum()
}

/// Pulls `(nonce, balance)` out of an RLP `[nonce, balance,
/// storage_root, code_hash]` account leaf.
pub(crate) fn decode_account_parts(account_rlp: &[u8]) -> Option<(u64, U256)> {
    let Ok(Item::List(fields)) = rlp::decode(account_rlp) else {
        return None;
    };
    if fields.len() != 4 {
        return None;
    }
    let nonce = fields[0].as_uint()?.to_u64()?;
    let balance = fields[1].as_uint()?;
    Some((nonce, balance))
}

/// Pulls `storage_root` out of an RLP `[nonce, balance, storage_root,
/// code_hash]` account leaf.
pub(crate) fn decode_storage_root(account_rlp: &[u8]) -> Option<H256> {
    let Ok(Item::List(fields)) = rlp::decode(account_rlp) else {
        return None;
    };
    if fields.len() != 4 {
        return None;
    }
    let Item::Bytes(root) = &fields[2] else {
        return None;
    };
    if root.len() != 32 {
        return None;
    }
    let mut h = H256::ZERO;
    h.0.copy_from_slice(root);
    Some(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::WorldState;
    use sc_evm::host::Host;

    fn addr(b: u8) -> Address {
        Address([b; 20])
    }

    /// Builds a state with a couple of storage-bearing contracts and
    /// some plain accounts.
    fn populated_state() -> WorldState {
        let mut s = WorldState::new();
        for i in 1u8..5 {
            s.mint(addr(i), U256::from_u64(1_000_000 + i as u64));
        }
        s.install_code(addr(10), vec![0x5b, 0x00]);
        s.set_storage(addr(10), U256::from_u64(7), U256::from_u64(0xdead));
        s.set_storage(addr(10), U256::from_u64(8), U256::from_u64(0xbeef));
        s.install_code(addr(11), vec![0x5b, 0x01]);
        s.set_storage(addr(11), U256::from_u64(7), U256::from_u64(42));
        s.clear_tx_scratch();
        s
    }

    #[test]
    fn storage_proof_roundtrip() {
        let mut s = populated_state();
        let root = s.state_root();
        let proof = s.prove_storage(addr(10), U256::from_u64(7));
        assert_eq!(proof.root, root);
        assert_eq!(proof.value, U256::from_u64(0xdead));
        proof.verify(root).expect("honest proof verifies");
        assert_eq!(proof.proven_value(root).unwrap(), U256::from_u64(0xdead));
    }

    #[test]
    fn tampered_value_is_rejected() {
        let mut s = populated_state();
        let root = s.state_root();
        let mut proof = s.prove_storage(addr(10), U256::from_u64(7));
        proof.value = U256::from_u64(0xdeaf);
        match proof.verify(root) {
            Err(ProofVerifyError::ValueMismatch { proven, claimed }) => {
                assert_eq!(proven, U256::from_u64(0xdead));
                assert_eq!(claimed, U256::from_u64(0xdeaf));
            }
            other => panic!("expected ValueMismatch, got {other:?}"),
        }
    }

    #[test]
    fn tampered_nodes_are_rejected() {
        let mut s = populated_state();
        let root = s.state_root();
        let honest = s.prove_storage(addr(10), U256::from_u64(7));
        for (which, len) in [
            (0, honest.account_proof.len()),
            (1, honest.storage_proof.len()),
        ] {
            for i in 0..len {
                let mut forged = honest.clone();
                let nodes = if which == 0 {
                    &mut forged.account_proof
                } else {
                    &mut forged.storage_proof
                };
                nodes[i][0] ^= 0x01;
                assert!(
                    forged.verify(root).is_err(),
                    "forged node {i} in proof part {which} must not verify"
                );
            }
        }
    }

    #[test]
    fn absent_slot_and_absent_account_prove_zero() {
        let mut s = populated_state();
        let root = s.state_root();

        // Slot never written: exclusion in the storage trie.
        let proof = s.prove_storage(addr(10), U256::from_u64(99));
        assert_eq!(proof.value, U256::ZERO);
        proof.verify(root).expect("slot exclusion verifies");

        // Account never touched: exclusion in the account trie.
        let proof = s.prove_storage(addr(0xee), U256::from_u64(7));
        assert_eq!(proof.value, U256::ZERO);
        proof.verify(root).expect("account exclusion verifies");
    }

    #[test]
    fn proof_against_stale_root_fails() {
        let mut s = populated_state();
        let old_root = s.state_root();
        s.set_storage(addr(10), U256::from_u64(7), U256::from_u64(1234));
        s.clear_tx_scratch();
        let proof = s.prove_storage(addr(10), U256::from_u64(7));
        assert_ne!(proof.root, old_root);
        // Against the new root the new value verifies…
        proof.verify(proof.root).expect("fresh proof verifies");
        // …but the same paths cannot satisfy the old commitment.
        assert!(proof.verify(old_root).is_err());
    }

    #[test]
    fn account_proof_roundtrip_and_forgery_rejected() {
        let mut s = populated_state();
        let root = s.state_root();
        let proof = s.prove_account(addr(1));
        assert_eq!(proof.root, root);
        assert_eq!(proof.balance, U256::from_u64(1_000_001));
        proof.verify(root).expect("honest account proof verifies");
        assert_eq!(
            proof.proven_parts(root).unwrap(),
            (0, U256::from_u64(1_000_001))
        );
        assert!(proof.witness_bytes() > 0);

        // Tampered balance: the path still verifies, the claim does not.
        let mut forged = proof.clone();
        forged.balance = U256::from_u64(9_999_999);
        match forged.verify(root) {
            Err(ProofVerifyError::AccountMismatch {
                proven_balance,
                claimed_balance,
                ..
            }) => {
                assert_eq!(proven_balance, U256::from_u64(1_000_001));
                assert_eq!(claimed_balance, U256::from_u64(9_999_999));
            }
            other => panic!("expected AccountMismatch, got {other:?}"),
        }
        // Tampered nonce, same story.
        let mut forged = proof.clone();
        forged.nonce = 7;
        assert!(matches!(
            forged.verify(root),
            Err(ProofVerifyError::AccountMismatch { .. })
        ));
        // A flipped path node breaks the hash chain outright.
        let mut forged = proof.clone();
        forged.account_proof[0][0] ^= 0x01;
        assert!(matches!(
            forged.verify(root),
            Err(ProofVerifyError::Trie(_))
        ));
    }

    #[test]
    fn absent_account_proves_zero_nonce_and_balance() {
        let mut s = populated_state();
        let root = s.state_root();
        let proof = s.prove_account(addr(0xee));
        assert_eq!((proof.nonce, proof.balance), (0, U256::ZERO));
        proof.verify(root).expect("account exclusion verifies");
    }

    #[test]
    fn state_root_reflects_account_encoding() {
        // Two states that differ only in one nonce must produce
        // different roots; identical states must agree.
        let mut a = populated_state();
        let mut b = populated_state();
        assert_eq!(a.state_root(), b.state_root());
        b.bump_nonce(addr(1));
        b.clear_tx_scratch();
        assert_ne!(a.state_root(), b.state_root());
    }
}
