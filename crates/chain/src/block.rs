//! Blocks, headers, and transaction receipts.

use crate::tx::SignedTransaction;
use crate::wire::{self, WireError};
use sc_crypto::keccak256;
use sc_evm::host::LogEntry;
use sc_evm::VmError;
use sc_primitives::rlp::{self, Item};
use sc_primitives::{Address, H256};

/// Why a transaction failed (mirrors what a node's RPC would surface).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureReason {
    /// Execution reverted, with the revert payload.
    Reverted(Vec<u8>),
    /// A hard VM error.
    VmError(VmError),
    /// Value transfer lacked funds at execution time.
    InsufficientBalance,
}

/// Execution receipt for one transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Receipt {
    /// Hash of the transaction.
    pub tx_hash: H256,
    /// Block that included it.
    pub block_number: u64,
    /// Index within the block.
    pub tx_index: usize,
    /// True iff execution succeeded.
    pub success: bool,
    /// Gas charged to the sender (after refunds).
    pub gas_used: u64,
    /// Address of the created contract, for creation transactions.
    pub contract_address: Option<Address>,
    /// Logs emitted.
    pub logs: Vec<LogEntry>,
    /// Return data (or revert payload).
    pub output: Vec<u8>,
    /// Failure detail when `success` is false.
    pub failure: Option<FailureReason>,
}

/// A mined block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Height.
    pub number: u64,
    /// Unix timestamp.
    pub timestamp: u64,
    /// Hash of the parent block.
    pub parent_hash: H256,
    /// This block's hash.
    pub hash: H256,
    /// Root of the account trie after executing this block — the
    /// commitment light verifiers check storage proofs against.
    pub state_root: H256,
    /// Root of the trie over this block's RLP-encoded receipts, keyed
    /// by `rlp(index)`.
    pub receipts_root: H256,
    /// Included transactions.
    pub transactions: Vec<SignedTransaction>,
    /// Total gas used by the block.
    pub gas_used: u64,
}

/// A block header on its own: the commitments without the transaction
/// bodies. This is everything a light client tracks — enough to verify
/// chain linkage (`parent_hash`), pick between forks (height with hash
/// tiebreak), and check storage proofs against `state_root`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Header {
    /// Height.
    pub number: u64,
    /// Unix timestamp.
    pub timestamp: u64,
    /// Hash of the parent block.
    pub parent_hash: H256,
    /// Root of the account trie after this block.
    pub state_root: H256,
    /// Root of the receipts trie for this block.
    pub receipts_root: H256,
    /// Total gas used by the block.
    pub gas_used: u64,
    /// Hashes of the included transactions, in order. The block hash
    /// commits to these, so a header can't silently claim a different
    /// body than the full block it summarizes.
    pub tx_hashes: Vec<H256>,
    /// This header's hash — always recomputed locally from the fields
    /// above, never trusted from the wire.
    pub hash: H256,
}

/// The one hashing core shared by full blocks and bare headers: keccak
/// of the RLP `[number, timestamp, parent_hash, state_root,
/// receipts_root, gas_used, [tx_hashes]]`.
fn hash_header_parts(
    number: u64,
    timestamp: u64,
    parent_hash: H256,
    state_root: H256,
    receipts_root: H256,
    gas_used: u64,
    tx_hashes: &[H256],
) -> H256 {
    let tx_items: Vec<Item> = tx_hashes
        .iter()
        .map(|h| Item::bytes(h.0.to_vec()))
        .collect();
    let payload = rlp::encode_list(&[
        Item::u64(number),
        Item::u64(timestamp),
        Item::bytes(parent_hash.0.to_vec()),
        Item::bytes(state_root.0.to_vec()),
        Item::bytes(receipts_root.0.to_vec()),
        Item::u64(gas_used),
        Item::List(tx_items),
    ]);
    keccak256(&payload)
}

impl Header {
    /// Builds a header from its fields, computing the hash.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        number: u64,
        timestamp: u64,
        parent_hash: H256,
        state_root: H256,
        receipts_root: H256,
        gas_used: u64,
        tx_hashes: Vec<H256>,
    ) -> Header {
        let hash = hash_header_parts(
            number,
            timestamp,
            parent_hash,
            state_root,
            receipts_root,
            gas_used,
            &tx_hashes,
        );
        Header {
            number,
            timestamp,
            parent_hash,
            state_root,
            receipts_root,
            gas_used,
            tx_hashes,
            hash,
        }
    }

    /// Canonical wire bytes of the seven hashed fields. The hash itself
    /// is never serialized — receivers recompute it.
    pub fn encode(&self) -> Vec<u8> {
        let tx_items: Vec<Item> = self
            .tx_hashes
            .iter()
            .map(|h| Item::bytes(h.0.to_vec()))
            .collect();
        rlp::encode_list(&[
            Item::u64(self.number),
            Item::u64(self.timestamp),
            Item::bytes(self.parent_hash.0.to_vec()),
            Item::bytes(self.state_root.0.to_vec()),
            Item::bytes(self.receipts_root.0.to_vec()),
            Item::u64(self.gas_used),
            Item::List(tx_items),
        ])
    }

    /// Decodes wire bytes produced by [`Header::encode`], recomputing
    /// the hash from the decoded fields.
    pub fn decode(bytes: &[u8]) -> Result<Header, WireError> {
        let item = rlp::decode(bytes)?;
        let items = wire::as_list(&item, "header: expected list")?;
        if items.len() != 7 {
            return Err(WireError::Malformed("header: expected 7 fields"));
        }
        let tx_hashes = wire::as_list(&items[6], "header: tx hashes")?
            .iter()
            .map(|it| wire::as_h256(it, "header: tx hash"))
            .collect::<Result<Vec<H256>, WireError>>()?;
        Ok(Header::new(
            wire::as_u64(&items[0], "header: number")?,
            wire::as_u64(&items[1], "header: timestamp")?,
            wire::as_h256(&items[2], "header: parent_hash")?,
            wire::as_h256(&items[3], "header: state_root")?,
            wire::as_h256(&items[4], "header: receipts_root")?,
            wire::as_u64(&items[5], "header: gas_used")?,
            tx_hashes,
        ))
    }
}

impl Block {
    /// Computes a block hash from the header fields — including the
    /// state and receipts commitments and the gas total, so tampering
    /// with any of them changes the block identity — and the tx list.
    pub fn compute_hash(
        number: u64,
        timestamp: u64,
        parent_hash: H256,
        state_root: H256,
        receipts_root: H256,
        gas_used: u64,
        transactions: &[SignedTransaction],
    ) -> H256 {
        let tx_hashes: Vec<H256> = transactions.iter().map(|t| t.hash()).collect();
        hash_header_parts(
            number,
            timestamp,
            parent_hash,
            state_root,
            receipts_root,
            gas_used,
            &tx_hashes,
        )
    }

    /// The header view of this block: same hash, no transaction bodies.
    pub fn header(&self) -> Header {
        Header {
            number: self.number,
            timestamp: self.timestamp,
            parent_hash: self.parent_hash,
            state_root: self.state_root,
            receipts_root: self.receipts_root,
            gas_used: self.gas_used,
            tx_hashes: self.transactions.iter().map(|t| t.hash()).collect(),
            hash: self.hash,
        }
    }

    /// Canonical wire bytes: the six header fields followed by the full
    /// transaction bodies (each as its signed nine-item RLP).
    pub fn encode(&self) -> Vec<u8> {
        let tx_items: Vec<Item> = self.transactions.iter().map(|t| t.rlp_item()).collect();
        rlp::encode_list(&[
            Item::u64(self.number),
            Item::u64(self.timestamp),
            Item::bytes(self.parent_hash.0.to_vec()),
            Item::bytes(self.state_root.0.to_vec()),
            Item::bytes(self.receipts_root.0.to_vec()),
            Item::u64(self.gas_used),
            Item::List(tx_items),
        ])
    }

    /// Decodes wire bytes produced by [`Block::encode`], recomputing the
    /// block hash from the decoded contents — so a gossiped block's
    /// identity is always locally derived, never trusted.
    pub fn decode(bytes: &[u8]) -> Result<Block, WireError> {
        let item = rlp::decode(bytes)?;
        let items = wire::as_list(&item, "block: expected list")?;
        if items.len() != 7 {
            return Err(WireError::Malformed("block: expected 7 fields"));
        }
        let transactions = wire::as_list(&items[6], "block: txs")?
            .iter()
            .map(SignedTransaction::from_item)
            .collect::<Result<Vec<SignedTransaction>, WireError>>()?;
        let number = wire::as_u64(&items[0], "block: number")?;
        let timestamp = wire::as_u64(&items[1], "block: timestamp")?;
        let parent_hash = wire::as_h256(&items[2], "block: parent_hash")?;
        let state_root = wire::as_h256(&items[3], "block: state_root")?;
        let receipts_root = wire::as_h256(&items[4], "block: receipts_root")?;
        let gas_used = wire::as_u64(&items[5], "block: gas_used")?;
        let hash = Block::compute_hash(
            number,
            timestamp,
            parent_hash,
            state_root,
            receipts_root,
            gas_used,
            &transactions,
        );
        Ok(Block {
            number,
            timestamp,
            parent_hash,
            hash,
            state_root,
            receipts_root,
            transactions,
            gas_used,
        })
    }
}

impl Receipt {
    /// Canonical RLP of the receipt's consensus fields — `[status,
    /// gas_used, logs]` with each log as `[address, topics, data]` —
    /// the leaf committed into a block's receipts trie. (Indexing
    /// fields like `tx_hash` stay out: the trie key `rlp(index)`
    /// already fixes the position.)
    pub fn rlp_encode(&self) -> Vec<u8> {
        let logs: Vec<Item> = self
            .logs
            .iter()
            .map(|log| {
                Item::List(vec![
                    Item::address(log.address),
                    Item::List(
                        log.topics
                            .iter()
                            .map(|t| Item::bytes(t.0.to_vec()))
                            .collect(),
                    ),
                    Item::bytes(log.data.clone()),
                ])
            })
            .collect();
        rlp::encode_list(&[
            Item::u64(self.success as u64),
            Item::u64(self.gas_used),
            Item::List(logs),
        ])
    }
}

/// Root of the trie over a block's receipts, keyed by `rlp(index)` —
/// the `receipts_root` sealed into the header. Receipts must be passed
/// in transaction order with `tx_index` already assigned.
pub fn receipts_root<'a>(receipts: impl IntoIterator<Item = &'a Receipt>) -> H256 {
    let mut trie = sc_trie::Trie::new();
    for r in receipts {
        trie.insert(&rlp::encode(&Item::u64(r.tx_index as u64)), r.rlp_encode());
    }
    trie.root()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_trie::empty_root;

    fn hash_with(number: u64, timestamp: u64, state_root: H256, gas: u64) -> H256 {
        Block::compute_hash(
            number,
            timestamp,
            H256::ZERO,
            state_root,
            empty_root(),
            gas,
            &[],
        )
    }

    #[test]
    fn block_hash_depends_on_contents() {
        let h1 = hash_with(1, 100, empty_root(), 0);
        assert_ne!(h1, hash_with(2, 100, empty_root(), 0), "number");
        assert_ne!(h1, hash_with(1, 101, empty_root(), 0), "timestamp");
        assert_ne!(h1, hash_with(1, 100, H256::ZERO, 0), "state root");
        assert_ne!(h1, hash_with(1, 100, empty_root(), 21_000), "gas used");
        assert_eq!(h1, hash_with(1, 100, empty_root(), 0));
    }

    #[test]
    fn header_matches_block_and_roundtrips() {
        use crate::tx::{Transaction, Wallet};
        use sc_primitives::U256;
        let alice = Wallet::from_seed("alice");
        let tx = Transaction {
            nonce: 0,
            gas_price: sc_primitives::gwei(1),
            gas_limit: 21_000,
            to: Some(Address([0x11; 20])),
            value: U256::ONE,
            data: vec![],
        }
        .sign(&alice.key);
        let hash = Block::compute_hash(
            7,
            1000,
            H256([3; 32]),
            H256([4; 32]),
            empty_root(),
            21_000,
            std::slice::from_ref(&tx),
        );
        let block = Block {
            number: 7,
            timestamp: 1000,
            parent_hash: H256([3; 32]),
            hash,
            state_root: H256([4; 32]),
            receipts_root: empty_root(),
            transactions: vec![tx],
            gas_used: 21_000,
        };
        let header = block.header();
        assert_eq!(header.hash, block.hash, "header hashes like the block");
        let decoded_header = Header::decode(&header.encode()).unwrap();
        assert_eq!(decoded_header, header);
        let decoded_block = Block::decode(&block.encode()).unwrap();
        assert_eq!(decoded_block, block);
        assert_eq!(decoded_block.hash, block.hash, "identity re-derived");
    }

    #[test]
    fn decode_recomputes_hash_from_contents() {
        // Tampering with an encoded block changes the locally derived
        // hash — a peer can't forward a block under a false identity.
        let block = Block {
            number: 1,
            timestamp: 50,
            parent_hash: H256([9; 32]),
            hash: Block::compute_hash(1, 50, H256([9; 32]), H256([2; 32]), empty_root(), 0, &[]),
            state_root: H256([2; 32]),
            receipts_root: empty_root(),
            transactions: vec![],
            gas_used: 0,
        };
        let mut tampered = block.clone();
        tampered.state_root = H256([5; 32]); // keep the stale hash field
        let decoded = Block::decode(&tampered.encode()).unwrap();
        assert_ne!(decoded.hash, block.hash);
        assert_eq!(
            decoded.hash,
            Block::compute_hash(1, 50, H256([9; 32]), H256([5; 32]), empty_root(), 0, &[])
        );
    }

    #[test]
    fn receipts_root_commits_contents_and_order() {
        let receipt = |i: usize, gas: u64| Receipt {
            tx_hash: H256::ZERO,
            block_number: 1,
            tx_index: i,
            success: true,
            gas_used: gas,
            contract_address: None,
            logs: vec![],
            output: vec![],
            failure: None,
        };
        assert_eq!(receipts_root([]), empty_root());
        let a = [receipt(0, 21_000), receipt(1, 30_000)];
        let b = [receipt(0, 21_000), receipt(1, 30_001)];
        let swapped = [receipt(0, 30_000), receipt(1, 21_000)];
        assert_eq!(receipts_root(a.iter()), receipts_root(a.iter()));
        assert_ne!(receipts_root(a.iter()), receipts_root(b.iter()), "gas");
        assert_ne!(
            receipts_root(a.iter()),
            receipts_root(swapped.iter()),
            "order"
        );
        // Status and logs are committed too.
        let mut failed = a.clone();
        failed[1].success = false;
        assert_ne!(receipts_root(a.iter()), receipts_root(failed.iter()));
    }
}
