//! Blocks and transaction receipts.

use crate::tx::SignedTransaction;
use sc_crypto::keccak256;
use sc_evm::host::LogEntry;
use sc_evm::VmError;
use sc_primitives::rlp::{self, Item};
use sc_primitives::{Address, H256};

/// Why a transaction failed (mirrors what a node's RPC would surface).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureReason {
    /// Execution reverted, with the revert payload.
    Reverted(Vec<u8>),
    /// A hard VM error.
    VmError(VmError),
    /// Value transfer lacked funds at execution time.
    InsufficientBalance,
}

/// Execution receipt for one transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Receipt {
    /// Hash of the transaction.
    pub tx_hash: H256,
    /// Block that included it.
    pub block_number: u64,
    /// Index within the block.
    pub tx_index: usize,
    /// True iff execution succeeded.
    pub success: bool,
    /// Gas charged to the sender (after refunds).
    pub gas_used: u64,
    /// Address of the created contract, for creation transactions.
    pub contract_address: Option<Address>,
    /// Logs emitted.
    pub logs: Vec<LogEntry>,
    /// Return data (or revert payload).
    pub output: Vec<u8>,
    /// Failure detail when `success` is false.
    pub failure: Option<FailureReason>,
}

/// A mined block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Height.
    pub number: u64,
    /// Unix timestamp.
    pub timestamp: u64,
    /// Hash of the parent block.
    pub parent_hash: H256,
    /// This block's hash.
    pub hash: H256,
    /// Root of the account trie after executing this block — the
    /// commitment light verifiers check storage proofs against.
    pub state_root: H256,
    /// Root of the trie over this block's RLP-encoded receipts, keyed
    /// by `rlp(index)`.
    pub receipts_root: H256,
    /// Included transactions.
    pub transactions: Vec<SignedTransaction>,
    /// Total gas used by the block.
    pub gas_used: u64,
}

impl Block {
    /// Computes a block hash from the header fields — including the
    /// state and receipts commitments and the gas total, so tampering
    /// with any of them changes the block identity — and the tx list.
    pub fn compute_hash(
        number: u64,
        timestamp: u64,
        parent_hash: H256,
        state_root: H256,
        receipts_root: H256,
        gas_used: u64,
        transactions: &[SignedTransaction],
    ) -> H256 {
        let tx_hashes: Vec<Item> = transactions
            .iter()
            .map(|t| Item::bytes(t.hash().0.to_vec()))
            .collect();
        let payload = rlp::encode_list(&[
            Item::u64(number),
            Item::u64(timestamp),
            Item::bytes(parent_hash.0.to_vec()),
            Item::bytes(state_root.0.to_vec()),
            Item::bytes(receipts_root.0.to_vec()),
            Item::u64(gas_used),
            Item::List(tx_hashes),
        ]);
        keccak256(&payload)
    }
}

impl Receipt {
    /// Canonical RLP of the receipt's consensus fields — `[status,
    /// gas_used, logs]` with each log as `[address, topics, data]` —
    /// the leaf committed into a block's receipts trie. (Indexing
    /// fields like `tx_hash` stay out: the trie key `rlp(index)`
    /// already fixes the position.)
    pub fn rlp_encode(&self) -> Vec<u8> {
        let logs: Vec<Item> = self
            .logs
            .iter()
            .map(|log| {
                Item::List(vec![
                    Item::address(log.address),
                    Item::List(
                        log.topics
                            .iter()
                            .map(|t| Item::bytes(t.0.to_vec()))
                            .collect(),
                    ),
                    Item::bytes(log.data.clone()),
                ])
            })
            .collect();
        rlp::encode_list(&[
            Item::u64(self.success as u64),
            Item::u64(self.gas_used),
            Item::List(logs),
        ])
    }
}

/// Root of the trie over a block's receipts, keyed by `rlp(index)` —
/// the `receipts_root` sealed into the header. Receipts must be passed
/// in transaction order with `tx_index` already assigned.
pub fn receipts_root<'a>(receipts: impl IntoIterator<Item = &'a Receipt>) -> H256 {
    let mut trie = sc_trie::Trie::new();
    for r in receipts {
        trie.insert(&rlp::encode(&Item::u64(r.tx_index as u64)), r.rlp_encode());
    }
    trie.root()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_trie::empty_root;

    fn hash_with(number: u64, timestamp: u64, state_root: H256, gas: u64) -> H256 {
        Block::compute_hash(
            number,
            timestamp,
            H256::ZERO,
            state_root,
            empty_root(),
            gas,
            &[],
        )
    }

    #[test]
    fn block_hash_depends_on_contents() {
        let h1 = hash_with(1, 100, empty_root(), 0);
        assert_ne!(h1, hash_with(2, 100, empty_root(), 0), "number");
        assert_ne!(h1, hash_with(1, 101, empty_root(), 0), "timestamp");
        assert_ne!(h1, hash_with(1, 100, H256::ZERO, 0), "state root");
        assert_ne!(h1, hash_with(1, 100, empty_root(), 21_000), "gas used");
        assert_eq!(h1, hash_with(1, 100, empty_root(), 0));
    }

    #[test]
    fn receipts_root_commits_contents_and_order() {
        let receipt = |i: usize, gas: u64| Receipt {
            tx_hash: H256::ZERO,
            block_number: 1,
            tx_index: i,
            success: true,
            gas_used: gas,
            contract_address: None,
            logs: vec![],
            output: vec![],
            failure: None,
        };
        assert_eq!(receipts_root([]), empty_root());
        let a = [receipt(0, 21_000), receipt(1, 30_000)];
        let b = [receipt(0, 21_000), receipt(1, 30_001)];
        let swapped = [receipt(0, 30_000), receipt(1, 21_000)];
        assert_eq!(receipts_root(a.iter()), receipts_root(a.iter()));
        assert_ne!(receipts_root(a.iter()), receipts_root(b.iter()), "gas");
        assert_ne!(
            receipts_root(a.iter()),
            receipts_root(swapped.iter()),
            "order"
        );
        // Status and logs are committed too.
        let mut failed = a.clone();
        failed[1].success = false;
        assert_ne!(receipts_root(a.iter()), receipts_root(failed.iter()));
    }
}
