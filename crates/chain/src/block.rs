//! Blocks and transaction receipts.

use crate::tx::SignedTransaction;
use sc_crypto::keccak256;
use sc_evm::host::LogEntry;
use sc_evm::VmError;
use sc_primitives::rlp::{self, Item};
use sc_primitives::{Address, H256};

/// Why a transaction failed (mirrors what a node's RPC would surface).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FailureReason {
    /// Execution reverted, with the revert payload.
    Reverted(Vec<u8>),
    /// A hard VM error.
    VmError(VmError),
    /// Value transfer lacked funds at execution time.
    InsufficientBalance,
}

/// Execution receipt for one transaction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Receipt {
    /// Hash of the transaction.
    pub tx_hash: H256,
    /// Block that included it.
    pub block_number: u64,
    /// Index within the block.
    pub tx_index: usize,
    /// True iff execution succeeded.
    pub success: bool,
    /// Gas charged to the sender (after refunds).
    pub gas_used: u64,
    /// Address of the created contract, for creation transactions.
    pub contract_address: Option<Address>,
    /// Logs emitted.
    pub logs: Vec<LogEntry>,
    /// Return data (or revert payload).
    pub output: Vec<u8>,
    /// Failure detail when `success` is false.
    pub failure: Option<FailureReason>,
}

/// A mined block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Height.
    pub number: u64,
    /// Unix timestamp.
    pub timestamp: u64,
    /// Hash of the parent block.
    pub parent_hash: H256,
    /// This block's hash.
    pub hash: H256,
    /// Included transactions.
    pub transactions: Vec<SignedTransaction>,
    /// Total gas used by the block.
    pub gas_used: u64,
}

impl Block {
    /// Computes a block hash from header-ish fields and the tx list.
    pub fn compute_hash(
        number: u64,
        timestamp: u64,
        parent_hash: H256,
        transactions: &[SignedTransaction],
    ) -> H256 {
        let tx_hashes: Vec<Item> = transactions
            .iter()
            .map(|t| Item::bytes(t.hash().0.to_vec()))
            .collect();
        let payload = rlp::encode_list(&[
            Item::u64(number),
            Item::u64(timestamp),
            Item::bytes(parent_hash.0.to_vec()),
            Item::List(tx_hashes),
        ]);
        keccak256(&payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_hash_depends_on_contents() {
        let h1 = Block::compute_hash(1, 100, H256::ZERO, &[]);
        let h2 = Block::compute_hash(2, 100, H256::ZERO, &[]);
        let h3 = Block::compute_hash(1, 101, H256::ZERO, &[]);
        assert_ne!(h1, h2);
        assert_ne!(h1, h3);
        assert_eq!(h1, Block::compute_hash(1, 100, H256::ZERO, &[]));
    }
}
