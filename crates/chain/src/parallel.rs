//! Optimistic parallel block execution (Block-STM-style).
//!
//! The serial seal path executes a block's transactions one after
//! another against the live [`WorldState`]. This module runs the same
//! transactions **speculatively and concurrently** over shared
//! snapshot views of the pre-block state, then commits them *in block
//! order* with value-based validation:
//!
//! 1. **Speculate** — every transaction executes against its own
//!    [`SpeculativeHost`] wrapping `&WorldState`. The wrapper buffers
//!    writes and records every base read with the value observed.
//!    Transactions never see each other; the fan-out uses
//!    `std::thread::scope` chunks like the signature-recovery batch.
//! 2. **Validate + commit** — walking the block in order, each
//!    transaction's recorded reads are replayed against the *live*
//!    state (which now contains every earlier transaction's effects).
//!    If all values still match, the speculative execution is exactly
//!    what serial execution would have produced — execution is a
//!    deterministic function of its base reads — and the buffered
//!    write set is applied directly. On any mismatch (or a poisoned
//!    read the wrapper could not track), the transaction re-executes
//!    serially at its slot, which is the serial semantics by
//!    definition.
//!
//! Either way every transaction's effects are byte-for-byte the serial
//! result, so the sealed block (state root, receipts root, gas, logs,
//! hash) is identical to `mine_block_serial`'s regardless of thread
//! scheduling.
//!
//! **Coinbase fees.** Every transaction pays the miner, so the
//! coinbase balance changes at every slot — tracked as a read it would
//! serialize the whole block. Instead the gas settlement is expressed
//! as a *commutative fee delta* (`gas_used × gas_price`, credited at
//! commit); the coinbase balance itself is registered as *volatile* in
//! the wrapper, so any other read of it (a transfer to the miner, a
//! `BALANCE` opcode on the coinbase) poisons the speculation and falls
//! back to serial re-execution.

use crate::block::{FailureReason, Receipt};
use crate::state::WorldState;
use crate::testnet::{ChainConfig, PendingTx};
use sc_evm::host::{BlockEnv, Env, TxEnv};
use sc_evm::spec::{ReadRecord, SpeculativeHost, WriteSet};
use sc_evm::{AnalysisCache, CallParams, Evm, Host};
use sc_primitives::{Address, U256};
use std::sync::{Arc, OnceLock};

/// How a chain executes the transactions inside a block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// One transaction after another against the live state (the
    /// reference semantics, and the default).
    #[default]
    Serial,
    /// Optimistic concurrent speculation with in-order validation and
    /// serial re-execution of conflicting transactions. Produces
    /// byte-identical blocks.
    Parallel,
}

impl ExecMode {
    /// The mode selected by the `SC_EXEC_MODE` environment variable
    /// (`parallel` opts in; anything else is [`ExecMode::Serial`]).
    /// Cached after the first read so a chain's behaviour cannot change
    /// mid-process. This is how CI flips whole suites to the parallel
    /// executor without touching each test's config.
    pub fn from_env() -> ExecMode {
        static MODE: OnceLock<ExecMode> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("SC_EXEC_MODE") {
            Ok(v) if v.eq_ignore_ascii_case("parallel") => ExecMode::Parallel,
            _ => ExecMode::Serial,
        })
    }
}

/// What happened while sealing the most recent block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SealReport {
    /// Executor that sealed the block.
    pub mode: ExecMode,
    /// Transactions in the block.
    pub txs: usize,
    /// Transactions whose speculative execution validated and committed
    /// directly.
    pub speculative: usize,
    /// Transactions that conflicted (or poisoned) and re-executed
    /// serially in commit order.
    pub reexecuted: usize,
}

/// One transaction's speculative execution: the receipt it would
/// produce plus everything needed to decide whether it may commit.
pub(crate) struct SpecOutcome {
    /// `None` when speculation bailed out before executing (e.g. the
    /// sender could not buy gas against the snapshot).
    receipt: Option<Receipt>,
    reads: Vec<ReadRecord>,
    writes: WriteSet,
    /// Net wei owed to the coinbase: `gas_used × gas_price`.
    fee_delta: U256,
    poisoned: bool,
}

impl SpecOutcome {
    /// Commits the speculation iff every recorded read still holds
    /// against the live state: applies the write set and the coinbase
    /// fee, returning the receipt. `None` demands serial re-execution.
    pub(crate) fn try_commit(self, state: &mut WorldState, coinbase: Address) -> Option<Receipt> {
        let receipt = self.receipt?;
        if self.poisoned || !self.reads.iter().all(|r| r.still_holds(state)) {
            return None;
        }
        for (a, v) in self.writes.balances {
            state.set_balance_raw(a, v);
        }
        for (a, v) in self.writes.nonces {
            state.set_nonce_raw(a, v);
        }
        for (a, (code, hash)) in self.writes.codes {
            state.set_code_raw(a, code, hash);
        }
        for ((a, k), v) in self.writes.storage {
            state.set_storage_raw(a, k, v);
        }
        state.add_balance_raw(coinbase, self.fee_delta);
        Some(receipt)
    }

    fn bailed() -> SpecOutcome {
        SpecOutcome {
            receipt: None,
            reads: Vec::new(),
            writes: WriteSet::default(),
            fee_delta: U256::ZERO,
            poisoned: true,
        }
    }
}

/// Blocks below this many transactions speculate inline on the calling
/// thread — the scoped-thread setup would cost more than it saves.
const PARALLEL_EXEC_THRESHOLD: usize = 4;

/// Speculatively executes every transaction of a block concurrently
/// over the shared pre-block state. Outcomes come back in block order;
/// nothing is committed.
pub(crate) fn speculate_block(
    state: &WorldState,
    config: &ChainConfig,
    cache: &Arc<AnalysisCache>,
    txs: &[PendingTx],
    block_number: u64,
    timestamp: u64,
) -> Vec<SpecOutcome> {
    let speculate =
        |ptx: &PendingTx| execute_spec(state, config, cache, ptx, block_number, timestamp);

    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    if txs.len() < PARALLEL_EXEC_THRESHOLD || workers < 2 {
        return txs.iter().map(speculate).collect();
    }

    let chunk_len = txs.len().div_ceil(workers);
    let mut outcomes: Vec<Option<SpecOutcome>> = Vec::new();
    outcomes.resize_with(txs.len(), || None);
    std::thread::scope(|scope| {
        for (inputs, outputs) in txs.chunks(chunk_len).zip(outcomes.chunks_mut(chunk_len)) {
            scope.spawn(|| {
                for (ptx, out) in inputs.iter().zip(outputs.iter_mut()) {
                    *out = Some(speculate(ptx));
                }
            });
        }
    });
    outcomes
        .into_iter()
        .map(|o| o.expect("every chunk slot filled"))
        .collect()
}

/// Executes one transaction speculatively against a snapshot view,
/// mirroring `Testnet::execute_transaction` operation for operation —
/// with the gas settlement's coinbase legs replaced by the commutative
/// fee delta.
fn execute_spec(
    state: &WorldState,
    config: &ChainConfig,
    cache: &Arc<AnalysisCache>,
    ptx: &PendingTx,
    block_number: u64,
    timestamp: u64,
) -> SpecOutcome {
    let tx = &ptx.signed.tx;
    let sender = ptx.sender;
    let mut host = SpeculativeHost::new(state).with_volatile_balance(config.coinbase);

    // Buy gas. Serial transfers `gas_limit × gas_price` to the
    // coinbase; here the sender is debited in the overlay and the
    // coinbase leg becomes part of the fee delta. A sender who cannot
    // pay against the snapshot (an earlier in-block tx drained them)
    // bails to serial re-execution, which is the authoritative
    // semantics for that corner.
    let gas_cost = U256::from_u64(tx.gas_limit).wrapping_mul(tx.gas_price);
    if sender == config.coinbase {
        return SpecOutcome::bailed();
    }
    let sender_bal = host.balance(sender);
    if sender_bal < gas_cost {
        return SpecOutcome::bailed();
    }
    host.write_balance(sender, sender_bal.wrapping_sub(gas_cost));

    let exec_gas = tx.gas_limit - ptx.intrinsic;
    let env = Env {
        block: BlockEnv {
            number: block_number,
            timestamp,
            coinbase: config.coinbase,
            difficulty: U256::from_u64(1),
            gas_limit: config.block_gas_limit,
        },
        tx: TxEnv {
            origin: sender,
            gas_price: tx.gas_price,
        },
    };

    let (success, gas_left, output, contract_address, failure) = match tx.to {
        None => {
            let mut evm = Evm::new(&mut host, env).with_analysis_cache(Arc::clone(cache));
            let out = evm.create(sender, tx.value, tx.data.clone(), exec_gas);
            let failure = if out.success {
                None
            } else if let Some(err) = out.error.clone() {
                Some(FailureReason::VmError(err))
            } else if !out.output.is_empty() || out.gas_left > 0 {
                Some(FailureReason::Reverted(out.output.clone()))
            } else {
                Some(FailureReason::InsufficientBalance)
            };
            (out.success, out.gas_left, out.output, out.address, failure)
        }
        Some(to) => {
            host.bump_nonce(sender);
            let mut evm = Evm::new(&mut host, env).with_analysis_cache(Arc::clone(cache));
            let out = evm.call(CallParams::transact(
                sender,
                to,
                tx.value,
                tx.data.clone(),
                exec_gas,
            ));
            let failure = if out.success {
                None
            } else if out.reverted {
                Some(FailureReason::Reverted(out.output.clone()))
            } else if let Some(err) = out.error.clone() {
                Some(FailureReason::VmError(err))
            } else {
                Some(FailureReason::InsufficientBalance)
            };
            (out.success, out.gas_left, out.output, None, failure)
        }
    };

    // Settle gas: refund capped at half of what was used, the unused
    // remainder reimbursed to the sender, the burned fee owed to the
    // coinbase as the commutative delta.
    let (logs, refund_counter) = host.take_tx_scratch();
    let gas_used_pre_refund = tx.gas_limit - gas_left;
    let refund = refund_counter.min(gas_used_pre_refund / 2);
    let gas_used = gas_used_pre_refund - refund;
    let reimbursement = U256::from_u64(tx.gas_limit - gas_used).wrapping_mul(tx.gas_price);
    let sender_bal = host.balance(sender);
    host.write_balance(sender, sender_bal.wrapping_add(reimbursement));
    let fee_delta = gas_cost.wrapping_sub(reimbursement);

    // For creates, a failed execution must still bump the sender nonce
    // (mirrors the serial normalization).
    if tx.is_create() && host.nonce(sender) == tx.nonce {
        host.bump_nonce(sender);
    }

    let receipt = Receipt {
        tx_hash: ptx.hash,
        block_number,
        tx_index: 0,
        success,
        gas_used,
        contract_address: if success { contract_address } else { None },
        logs: if success { logs } else { Vec::new() },
        output,
        failure,
    };
    let (reads, writes, poisoned) = host.into_parts();
    SpecOutcome {
        receipt: Some(receipt),
        reads,
        writes,
        fee_delta,
        poisoned,
    }
}
