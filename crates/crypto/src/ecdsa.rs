//! ECDSA over secp256k1 with Ethereum conventions.
//!
//! * Deterministic nonces per RFC 6979 (HMAC-SHA256), so the signed copies
//!   exchanged in the deploy/sign stage are byte-reproducible.
//! * Low-s normalization (EIP-2): `s ≤ n/2` always; the recovery id `v`
//!   is the Ethereum-style `27 + y-parity`.
//! * [`recover_address`] mirrors the EVM `ecrecover` precompile exactly — the same
//!   function backs both off-chain signature checks and the on-chain
//!   `deployVerifiedInstance` verification.

use crate::keccak::keccak256;
use crate::secp256k1::{n, scalar, Affine, Point};
use crate::sha256::hmac_sha256;
use sc_primitives::{Address, H256, U256};
use std::fmt;

/// A secp256k1 private key (a nonzero scalar).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PrivateKey(U256);

/// A secp256k1 public key (an affine curve point).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PublicKey(pub Affine);

/// An Ethereum-style recoverable signature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Signature {
    /// Recovery id, 27 or 28 (Ethereum convention).
    pub v: u8,
    /// The x coordinate of the nonce point, mod n.
    pub r: H256,
    /// The proof scalar, low-s normalized.
    pub s: H256,
}

/// Errors from signing, verification or recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcdsaError {
    /// Private key scalar outside `[1, n)`.
    InvalidPrivateKey,
    /// r or s out of range, or v not 27/28.
    InvalidSignature,
    /// Signature did not recover to a valid curve point.
    RecoveryFailed,
}

impl fmt::Display for EcdsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcdsaError::InvalidPrivateKey => write!(f, "private key out of range"),
            EcdsaError::InvalidSignature => write!(f, "malformed signature"),
            EcdsaError::RecoveryFailed => write!(f, "public key recovery failed"),
        }
    }
}

impl std::error::Error for EcdsaError {}

impl fmt::Debug for PrivateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "PrivateKey(…)")
    }
}

impl PrivateKey {
    /// Wraps a scalar, validating it is in `[1, n)`.
    pub fn from_u256(k: U256) -> Result<PrivateKey, EcdsaError> {
        if scalar::is_valid_nonzero(k) {
            Ok(PrivateKey(k))
        } else {
            Err(EcdsaError::InvalidPrivateKey)
        }
    }

    /// Parses a 32-byte big-endian scalar.
    pub fn from_bytes(b: [u8; 32]) -> Result<PrivateKey, EcdsaError> {
        Self::from_u256(U256::from_be_bytes(b))
    }

    /// Deterministically derives a key from a seed label. Handy for tests
    /// and simulations ("alice", "bob", …); NOT for real key material.
    pub fn from_seed(seed: &str) -> PrivateKey {
        let mut h = keccak256(seed.as_bytes()).to_u256();
        loop {
            if scalar::is_valid_nonzero(h) {
                return PrivateKey(h);
            }
            h = keccak256(&h.to_be_bytes()).to_u256();
        }
    }

    /// The raw scalar.
    pub fn secret_scalar(&self) -> U256 {
        self.0
    }

    /// Derives the public key `d·G`.
    pub fn public_key(&self) -> PublicKey {
        let point = Point::generator().mul_scalar(self.0);
        PublicKey(point.to_affine().expect("nonzero scalar times G"))
    }

    /// The Ethereum address of this key: `keccak(pubkey)[12..]`.
    pub fn address(&self) -> Address {
        self.public_key().address()
    }

    /// Signs a 32-byte message digest with an RFC 6979 deterministic nonce.
    pub fn sign(&self, digest: H256) -> Signature {
        let z = bits2int_mod_n(digest);
        let mut extra_iter = 0u32;
        loop {
            let k = rfc6979_nonce(self.0, digest, extra_iter);
            let rp = Point::generator().mul_scalar(k);
            let Some(raff) = rp.to_affine() else {
                extra_iter += 1;
                continue;
            };
            let r = scalar::reduce(raff.x);
            if r.is_zero() {
                extra_iter += 1;
                continue;
            }
            let kinv = scalar::inv(k);
            let s = scalar::mul(kinv, scalar::add(z, scalar::mul(r, self.0)));
            if s.is_zero() {
                extra_iter += 1;
                continue;
            }
            let mut y_odd = raff.y.bit(0);
            let s = if is_high_s(s) {
                // Low-s normalize; negating s flips which candidate nonce
                // point recovery finds, so flip the parity bit too.
                y_odd = !y_odd;
                n().wrapping_sub(s)
            } else {
                s
            };
            return Signature {
                v: 27 + y_odd as u8,
                r: H256::from_u256(r),
                s: H256::from_u256(s),
            };
        }
    }
}

impl PublicKey {
    /// Ethereum address: low 20 bytes of `keccak256(x || y)`.
    pub fn address(&self) -> Address {
        let ser = self.0.to_uncompressed();
        Address::from_h256(keccak256(&ser[1..]))
    }

    /// Verifies a signature over a digest (ignores `v`).
    pub fn verify(&self, digest: H256, sig: &Signature) -> bool {
        let r = sig.r.to_u256();
        let s = sig.s.to_u256();
        if !scalar::is_valid_nonzero(r) || !scalar::is_valid_nonzero(s) {
            return false;
        }
        let z = bits2int_mod_n(digest);
        let sinv = scalar::inv(s);
        let u1 = scalar::mul(z, sinv);
        let u2 = scalar::mul(r, sinv);
        let point = Point::generator()
            .mul_scalar(u1)
            .add(&Point::from_affine(self.0).mul_scalar(u2));
        match point.to_affine() {
            Some(a) => scalar::reduce(a.x) == r,
            None => false,
        }
    }
}

impl Signature {
    /// True iff `s` is in the low half of the scalar range (EIP-2).
    pub fn is_low_s(&self) -> bool {
        !is_high_s(self.s.to_u256())
    }

    /// Serializes as the 65-byte `r || s || v` wire format.
    pub fn to_bytes(&self) -> [u8; 65] {
        let mut out = [0u8; 65];
        out[..32].copy_from_slice(self.r.as_bytes());
        out[32..64].copy_from_slice(self.s.as_bytes());
        out[64] = self.v;
        out
    }

    /// Parses the 65-byte `r || s || v` wire format.
    pub fn from_bytes(b: &[u8]) -> Result<Signature, EcdsaError> {
        if b.len() != 65 {
            return Err(EcdsaError::InvalidSignature);
        }
        let mut r = [0u8; 32];
        let mut s = [0u8; 32];
        r.copy_from_slice(&b[..32]);
        s.copy_from_slice(&b[32..64]);
        Ok(Signature {
            v: b[64],
            r: H256(r),
            s: H256(s),
        })
    }
}

fn is_high_s(s: U256) -> bool {
    s > n().shr_bits(1)
}

/// Converts a digest to a scalar: take the leftmost 256 bits, reduce mod n.
fn bits2int_mod_n(digest: H256) -> U256 {
    let v = digest.to_u256();
    if v >= n() {
        v.wrapping_sub(n())
    } else {
        v
    }
}

/// RFC 6979 §3.2 nonce derivation (HMAC-SHA256), with the retry counter
/// folded in as extra entropy per §3.6 for the (never observed) case where
/// a candidate k is rejected downstream.
fn rfc6979_nonce(key: U256, digest: H256, extra_iter: u32) -> U256 {
    let x = key.to_be_bytes();
    let h1 = bits2int_mod_n(digest).to_be_bytes();

    let mut v = [0x01u8; 32];
    let mut k = [0x00u8; 32];

    let mut msg = Vec::with_capacity(32 + 1 + 32 + 32 + 4);
    msg.extend_from_slice(&v);
    msg.push(0x00);
    msg.extend_from_slice(&x);
    msg.extend_from_slice(&h1);
    if extra_iter > 0 {
        msg.extend_from_slice(&extra_iter.to_be_bytes());
    }
    k = hmac_sha256(&k, &msg);
    v = hmac_sha256(&k, &v);

    let mut msg = Vec::with_capacity(32 + 1 + 32 + 32 + 4);
    msg.extend_from_slice(&v);
    msg.push(0x01);
    msg.extend_from_slice(&x);
    msg.extend_from_slice(&h1);
    if extra_iter > 0 {
        msg.extend_from_slice(&extra_iter.to_be_bytes());
    }
    k = hmac_sha256(&k, &msg);
    v = hmac_sha256(&k, &v);

    loop {
        v = hmac_sha256(&k, &v);
        let candidate = U256::from_be_bytes(v);
        if scalar::is_valid_nonzero(candidate) {
            return candidate;
        }
        let mut msg = v.to_vec();
        msg.push(0x00);
        k = hmac_sha256(&k, &msg);
        v = hmac_sha256(&k, &v);
    }
}

/// Recovers the signer's public key from a digest and signature, mirroring
/// the EVM `ecrecover` precompile. Accepts `v ∈ {27, 28}`.
pub fn recover_pubkey(digest: H256, sig: &Signature) -> Result<PublicKey, EcdsaError> {
    if sig.v != 27 && sig.v != 28 {
        return Err(EcdsaError::InvalidSignature);
    }
    let r = sig.r.to_u256();
    let s = sig.s.to_u256();
    if !scalar::is_valid_nonzero(r) || !scalar::is_valid_nonzero(s) {
        return Err(EcdsaError::InvalidSignature);
    }
    let y_odd = sig.v == 28;
    let rpoint = Affine::lift_x(r, y_odd).ok_or(EcdsaError::RecoveryFailed)?;
    let z = bits2int_mod_n(digest);
    // Q = r⁻¹ (s·R − z·G)
    let rinv = scalar::inv(r);
    let sr = Point::from_affine(rpoint).mul_scalar(s);
    let zg = Point::generator().mul_scalar(z);
    let q = sr.add(&zg.negate()).mul_scalar(rinv);
    let qaff = q.to_affine().ok_or(EcdsaError::RecoveryFailed)?;
    Ok(PublicKey(qaff))
}

/// Recovers the signer's Ethereum address (the `ecrecover` result).
pub fn recover_address(digest: H256, sig: &Signature) -> Result<Address, EcdsaError> {
    Ok(recover_pubkey(digest, sig)?.address())
}

/// Below this many signatures, thread spawn overhead beats the win from
/// parallel recovery (~100µs each), so the batch path stays serial.
const PARALLEL_RECOVERY_THRESHOLD: usize = 8;

/// Recovers many addresses at once, fanning out across CPU cores.
///
/// Each entry is independent — ECDSA recovery is a pure function of
/// `(digest, signature)` — so results are exactly what per-entry
/// [`recover_address`] calls would produce, in input order. This is the
/// hot half of block admission: the chain validates a pending set's
/// senders through here before its sequential commit phase.
///
/// Scoped threads keep this std-only (no rayon): the slice is chunked
/// into at most [`std::thread::available_parallelism`] contiguous
/// pieces, each worker writes its own chunk of the output, and the scope
/// joins before returning.
pub fn recover_addresses_batch(items: &[(H256, Signature)]) -> Vec<Result<Address, EcdsaError>> {
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    if items.len() < PARALLEL_RECOVERY_THRESHOLD || workers < 2 {
        return items
            .iter()
            .map(|(digest, sig)| recover_address(*digest, sig))
            .collect();
    }

    let chunk_len = items.len().div_ceil(workers);
    let mut results: Vec<Result<Address, EcdsaError>> =
        vec![Err(EcdsaError::RecoveryFailed); items.len()];
    std::thread::scope(|scope| {
        for (inputs, outputs) in items.chunks(chunk_len).zip(results.chunks_mut(chunk_len)) {
            scope.spawn(move || {
                for ((digest, sig), out) in inputs.iter().zip(outputs.iter_mut()) {
                    *out = recover_address(*digest, sig);
                }
            });
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;
    use sc_primitives::hex;

    fn key_one() -> PrivateKey {
        PrivateKey::from_u256(U256::ONE).unwrap()
    }

    #[test]
    fn pubkey_of_one_is_generator() {
        let pk = key_one().public_key();
        let g = Point::generator().to_affine().unwrap();
        assert_eq!(pk.0, g);
    }

    #[test]
    fn known_ethereum_address() {
        // Widely-published vector: privkey 0x..01 ->
        // address 0x7e5f4552091a69125d5dfcb7b8c2659029395bdf
        assert_eq!(
            key_one().address().to_string(),
            "0x7e5f4552091a69125d5dfcb7b8c2659029395bdf"
        );
        // privkey 0x..02 -> 0x2b5ad5c4795c026514f8317c7a215e218dccd6cf
        let k2 = PrivateKey::from_u256(U256::from_u64(2)).unwrap();
        assert_eq!(
            k2.address().to_string(),
            "0x2b5ad5c4795c026514f8317c7a215e218dccd6cf"
        );
    }

    #[test]
    fn rfc6979_satoshi_vector() {
        // RFC 6979 test vector popularized by Bitcoin tooling:
        // key = 1, msg = "Satoshi Nakamoto" (SHA-256 digest).
        let digest = H256(sha256(b"Satoshi Nakamoto"));
        let sig = key_one().sign(digest);
        assert_eq!(
            hex::encode(sig.r.as_bytes()),
            "934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8"
        );
        assert_eq!(
            hex::encode(sig.s.as_bytes()),
            "2442ce9d2b916064108014783e923ec36b49743e2ffa1c4496f01a512aafd9e5"
        );
    }

    #[test]
    fn rfc6979_simple_vector() {
        // key = 1, msg = "Everything should be made as simple as possible, but not simpler."
        let digest = H256(sha256(
            b"Everything should be made as simple as possible, but not simpler.",
        ));
        let sig = key_one().sign(digest);
        assert_eq!(
            hex::encode(sig.r.as_bytes()),
            "33a69cd2065432a30f3d1ce4eb0d59b8ab58c74f27c41a7fdb5696ad4e6108c9"
        );
        assert_eq!(
            hex::encode(sig.s.as_bytes()),
            "6f807982866f785d3f6418d24163ddae117b7db4d5fdf0071de069fa54342262"
        );
    }

    #[test]
    fn sign_verify_roundtrip() {
        let key = PrivateKey::from_seed("alice");
        let digest = keccak256(b"the off-chain contract bytecode");
        let sig = key.sign(digest);
        assert!(key.public_key().verify(digest, &sig));
        assert!(!key.public_key().verify(keccak256(b"other"), &sig));
    }

    #[test]
    fn recover_matches_signer() {
        for seed in ["alice", "bob", "carol", "dave"] {
            let key = PrivateKey::from_seed(seed);
            let digest = keccak256(seed.as_bytes());
            let sig = key.sign(digest);
            assert_eq!(recover_address(digest, &sig).unwrap(), key.address());
        }
    }

    #[test]
    fn recover_rejects_bad_v() {
        let key = PrivateKey::from_seed("alice");
        let digest = keccak256(b"msg");
        let mut sig = key.sign(digest);
        sig.v = 29;
        assert_eq!(
            recover_address(digest, &sig),
            Err(EcdsaError::InvalidSignature)
        );
    }

    #[test]
    fn recover_with_flipped_v_gives_wrong_address() {
        let key = PrivateKey::from_seed("alice");
        let digest = keccak256(b"msg");
        let mut sig = key.sign(digest);
        sig.v = if sig.v == 27 { 28 } else { 27 };
        // Either recovery fails or it produces a different address; both
        // mean the forged signature does not authenticate.
        if let Ok(addr) = recover_address(digest, &sig) {
            assert_ne!(addr, key.address())
        }
    }

    #[test]
    fn signatures_are_low_s() {
        for i in 1u64..40 {
            let key = PrivateKey::from_u256(U256::from_u64(i)).unwrap();
            let digest = keccak256(&i.to_be_bytes());
            let sig = key.sign(digest);
            assert!(sig.is_low_s(), "signature {i} not low-s normalized");
            assert_eq!(recover_address(digest, &sig).unwrap(), key.address());
        }
    }

    #[test]
    fn signature_wire_roundtrip() {
        let key = PrivateKey::from_seed("alice");
        let sig = key.sign(keccak256(b"m"));
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(parsed, sig);
        assert!(Signature::from_bytes(&[0u8; 64]).is_err());
    }

    #[test]
    fn zero_and_overrange_keys_rejected() {
        assert!(PrivateKey::from_u256(U256::ZERO).is_err());
        assert!(PrivateKey::from_u256(n()).is_err());
        assert!(PrivateKey::from_u256(n().wrapping_sub(U256::ONE)).is_ok());
    }

    #[test]
    fn tampered_signature_fails_verification() {
        let key = PrivateKey::from_seed("alice");
        let digest = keccak256(b"payload");
        let sig = key.sign(digest);
        let mut bad_r = sig;
        bad_r.r = H256::from_u256(sig.r.to_u256().wrapping_add(U256::ONE));
        assert!(!key.public_key().verify(digest, &bad_r));
        let mut bad_s = sig;
        bad_s.s = H256::from_u256(sig.s.to_u256().wrapping_add(U256::ONE));
        assert!(!key.public_key().verify(digest, &bad_s));
    }

    #[test]
    fn zero_r_or_s_rejected_everywhere() {
        let key = PrivateKey::from_seed("alice");
        let digest = keccak256(b"m");
        let sig = Signature {
            v: 27,
            r: H256::ZERO,
            s: H256::from_u256(U256::ONE),
        };
        assert!(!key.public_key().verify(digest, &sig));
        assert!(recover_address(digest, &sig).is_err());
    }

    #[test]
    fn batch_recovery_matches_serial_with_mixed_validity() {
        // Large enough to cross PARALLEL_RECOVERY_THRESHOLD, with bad
        // signatures sprinkled in so error positions are checked too.
        let items: Vec<(H256, Signature)> = (0..24u64)
            .map(|i| {
                let key = PrivateKey::from_seed(&format!("signer-{i}"));
                let digest = keccak256(&i.to_be_bytes());
                let mut sig = key.sign(digest);
                if i % 5 == 0 {
                    sig.v = 29; // invalid recovery id
                }
                (digest, sig)
            })
            .collect();
        let serial: Vec<_> = items.iter().map(|(d, s)| recover_address(*d, s)).collect();
        let batch = recover_addresses_batch(&items);
        assert_eq!(batch, serial);
        assert!(batch.iter().filter(|r| r.is_err()).count() == 5);
    }

    #[test]
    fn batch_recovery_small_input_stays_correct() {
        let key = PrivateKey::from_seed("solo");
        let digest = keccak256(b"one");
        let sig = key.sign(digest);
        let out = recover_addresses_batch(&[(digest, sig)]);
        assert_eq!(out, vec![Ok(key.address())]);
        assert!(recover_addresses_batch(&[]).is_empty());
    }
}
