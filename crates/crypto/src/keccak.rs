//! Keccak-256 as used by Ethereum (original Keccak padding, not SHA-3).
//!
//! The paper's enforcement mechanism hashes the off-chain contract bytecode
//! with `keccak256` both off-chain (Algorithm 4, `soliditySha3`) and
//! on-chain (Algorithm 5, the `keccak256(bytecode)` inside
//! `deployVerifiedInstance`); both paths use this implementation, so the
//! integrity check is exercised with the real hash.

use sc_primitives::H256;

const ROUNDS: usize = 24;
const RATE_BYTES: usize = 136; // 1600 - 2*256 bits

const RC: [u64; ROUNDS] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

// Rotation offsets, indexed [x][y].
const ROTC: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

/// Streaming Keccak-256 hasher.
#[derive(Clone)]
pub struct Keccak256 {
    state: [[u64; 5]; 5],
    buffer: [u8; RATE_BYTES],
    buffered: usize,
}

impl Default for Keccak256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Keccak256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Keccak256 {
            state: [[0u64; 5]; 5],
            buffer: [0u8; RATE_BYTES],
            buffered: 0,
        }
    }

    /// Absorbs input bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            let take = (RATE_BYTES - self.buffered).min(data.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == RATE_BYTES {
                self.absorb_block();
                self.buffered = 0;
            }
        }
    }

    /// Finalizes and returns the 32-byte digest.
    pub fn finalize(mut self) -> H256 {
        // Keccak pad10*1 with domain byte 0x01 (Ethereum's Keccak, not
        // NIST SHA-3 which uses 0x06).
        self.buffer[self.buffered..].fill(0);
        self.buffer[self.buffered] = 0x01;
        self.buffer[RATE_BYTES - 1] |= 0x80;
        self.absorb_block();

        let mut out = [0u8; 32];
        for i in 0..4 {
            // Lanes are laid out little-endian in x-major order.
            out[8 * i..8 * (i + 1)].copy_from_slice(&self.state[i][0].to_le_bytes());
        }
        H256(out)
    }

    fn absorb_block(&mut self) {
        for i in 0..RATE_BYTES / 8 {
            let mut lane = [0u8; 8];
            lane.copy_from_slice(&self.buffer[8 * i..8 * (i + 1)]);
            let (x, y) = (i % 5, i / 5);
            self.state[x][y] ^= u64::from_le_bytes(lane);
        }
        keccak_f(&mut self.state);
    }
}

fn keccak_f(a: &mut [[u64; 5]; 5]) {
    for &rc in RC.iter() {
        // θ
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = a[x][0] ^ a[x][1] ^ a[x][2] ^ a[x][3] ^ a[x][4];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                a[x][y] ^= d;
            }
        }
        // ρ and π
        let mut b = [[0u64; 5]; 5];
        for x in 0..5 {
            for y in 0..5 {
                b[y][(2 * x + 3 * y) % 5] = a[x][y].rotate_left(ROTC[x][y]);
            }
        }
        // χ
        for x in 0..5 {
            for y in 0..5 {
                a[x][y] = b[x][y] ^ ((!b[(x + 1) % 5][y]) & b[(x + 2) % 5][y]);
            }
        }
        // ι
        a[0][0] ^= rc;
    }
}

/// One-shot Keccak-256 of a byte slice.
pub fn keccak256(data: &[u8]) -> H256 {
    let mut h = Keccak256::new();
    h.update(data);
    h.finalize()
}

/// Computes a Solidity function selector: `keccak256(signature)[..4]`.
///
/// `signature` is the canonical form, e.g. `"deposit()"` or
/// `"deployVerifiedInstance(bytes,uint8,bytes32,bytes32,uint8,bytes32,bytes32)"`.
pub fn selector(signature: &str) -> [u8; 4] {
    let h = keccak256(signature.as_bytes());
    [h.0[0], h.0[1], h.0[2], h.0[3]]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_primitives::hex;

    #[test]
    fn empty_string_vector() {
        assert_eq!(
            hex::encode(keccak256(b"").as_bytes()),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            hex::encode(keccak256(b"abc").as_bytes()),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn long_input_crosses_rate_boundary() {
        // 200 bytes of 0xa3 — a classic Keccak reference input.
        let data = [0xa3u8; 200];
        let h1 = keccak256(&data);
        // Same input absorbed in awkward chunk sizes must agree.
        let mut streaming = Keccak256::new();
        streaming.update(&data[..1]);
        streaming.update(&data[1..137]);
        streaming.update(&data[137..]);
        assert_eq!(streaming.finalize(), h1);
    }

    #[test]
    fn exactly_one_rate_block() {
        let data = [0u8; 136];
        let h = keccak256(&data);
        let mut s = Keccak256::new();
        s.update(&data);
        assert_eq!(s.finalize(), h);
    }

    #[test]
    fn erc20_transfer_selector() {
        // Well-known Solidity selector, pins hash + truncation together.
        assert_eq!(
            selector("transfer(address,uint256)"),
            [0xa9, 0x05, 0x9c, 0xbb]
        );
    }

    #[test]
    fn baz_selector_from_solidity_docs() {
        assert_eq!(selector("baz(uint32,bool)"), [0xcd, 0xcd, 0x77, 0xc0]);
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(keccak256(b"alice"), keccak256(b"bob"));
    }
}
