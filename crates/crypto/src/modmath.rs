//! Arithmetic modulo large primes close to 2^256.
//!
//! Shared by the secp256k1 base field `p` and scalar field `n`. The
//! reduction exploits that both moduli satisfy `m > 2^255`, so
//! `2^256 ≡ (2^256 - m) (mod m)` with `2^256 - m` small (≤ 129 bits),
//! letting a 512-bit product fold down in a couple of iterations.

use sc_primitives::U256;

/// `(a + b) mod m`, assuming `a, b < m`.
#[inline]
pub fn add_mod(a: U256, b: U256, m: U256) -> U256 {
    let (sum, carry) = a.overflowing_add(b);
    if carry || sum >= m {
        sum.wrapping_sub(m)
    } else {
        sum
    }
}

/// `(a - b) mod m`, assuming `a, b < m`.
#[inline]
pub fn sub_mod(a: U256, b: U256, m: U256) -> U256 {
    let (diff, borrow) = a.overflowing_sub(b);
    if borrow {
        diff.wrapping_add(m)
    } else {
        diff
    }
}

/// `(a * b) mod m`, assuming `a, b < m` and `m > 2^255`.
///
/// `r` must equal `2^256 mod m` (i.e. `2^256 - m` since `m > 2^255`).
pub fn mul_mod(a: U256, b: U256, m: U256, r: U256) -> U256 {
    let (mut lo, mut hi) = a.full_mul(b);
    // Fold the high word: hi·2^256 + lo ≡ hi·r + lo (mod m).
    while !hi.is_zero() {
        let (l2, h2) = hi.full_mul(r);
        let (sum, carry) = lo.overflowing_add(l2);
        lo = sum;
        // A carry out of the low word is another 2^256 ≡ r.
        hi = if carry {
            h2.wrapping_add(U256::ONE)
        } else {
            h2
        };
    }
    if lo >= m {
        lo.wrapping_sub(m)
    } else {
        lo
    }
}

/// `a^e mod m` by square-and-multiply. Same `r` contract as [`mul_mod`].
pub fn pow_mod(a: U256, e: U256, m: U256, r: U256) -> U256 {
    let bits = e.bits();
    let mut acc = U256::ONE;
    for i in (0..bits).rev() {
        acc = mul_mod(acc, acc, m, r);
        if e.bit(i) {
            acc = mul_mod(acc, a, m, r);
        }
    }
    acc
}

/// Modular inverse of `a` for prime `m` via Fermat: `a^(m-2) mod m`.
///
/// Returns zero for `a == 0` (callers must treat that as "no inverse").
pub fn inv_mod(a: U256, m: U256, r: U256) -> U256 {
    if a.is_zero() {
        return U256::ZERO;
    }
    pow_mod(a, m.wrapping_sub(U256::from_u64(2)), m, r)
}

#[cfg(test)]
mod tests {
    use super::*;

    // secp256k1 base field prime, convenient as a realistic modulus.
    fn p() -> U256 {
        U256::from_hex_str("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
            .unwrap()
    }

    fn r() -> U256 {
        // 2^256 - p = 2^32 + 977
        U256::from_u64((1 << 32) + 977)
    }

    #[test]
    fn add_wraps_modulus() {
        let a = p().wrapping_sub(U256::ONE);
        assert_eq!(add_mod(a, U256::ONE, p()), U256::ZERO);
        assert_eq!(add_mod(a, U256::from_u64(5), p()), U256::from_u64(4));
    }

    #[test]
    fn sub_borrows_modulus() {
        assert_eq!(
            sub_mod(U256::ZERO, U256::ONE, p()),
            p().wrapping_sub(U256::ONE)
        );
    }

    #[test]
    fn mul_small_values() {
        assert_eq!(
            mul_mod(U256::from_u64(1 << 40), U256::from_u64(1 << 40), p(), r()),
            U256::from_u64(1).shl_bits(80)
        );
    }

    #[test]
    fn mul_large_values_reduce() {
        // (p-1)^2 mod p == 1
        let a = p().wrapping_sub(U256::ONE);
        assert_eq!(mul_mod(a, a, p(), r()), U256::ONE);
    }

    #[test]
    fn fermat_inverse() {
        for v in [2u64, 3, 977, 0xdeadbeef] {
            let a = U256::from_u64(v);
            let inv = inv_mod(a, p(), r());
            assert_eq!(mul_mod(a, inv, p(), r()), U256::ONE);
        }
        assert_eq!(inv_mod(U256::ZERO, p(), r()), U256::ZERO);
    }

    #[test]
    fn pow_edge_cases() {
        assert_eq!(pow_mod(U256::from_u64(5), U256::ZERO, p(), r()), U256::ONE);
        assert_eq!(
            pow_mod(U256::from_u64(5), U256::ONE, p(), r()),
            U256::from_u64(5)
        );
        // Fermat's little theorem: a^(p-1) == 1
        assert_eq!(
            pow_mod(
                U256::from_u64(123456789),
                p().wrapping_sub(U256::ONE),
                p(),
                r()
            ),
            U256::ONE
        );
    }
}
