//! The secp256k1 elliptic curve: y² = x³ + 7 over F_p.
//!
//! Implements field arithmetic, Jacobian-coordinate point arithmetic and
//! scalar multiplication — everything ECDSA ([`crate::ecdsa`]) needs. The
//! implementation favours clarity and determinism over constant-time
//! hardening: this stack signs simulated testnet transactions, not
//! production keys.

use crate::modmath::{add_mod, inv_mod, mul_mod, pow_mod, sub_mod};
use sc_primitives::U256;

/// The base field prime `p = 2^256 - 2^32 - 977`.
pub fn p() -> U256 {
    U256([
        0xffff_fffe_ffff_fc2f,
        0xffff_ffff_ffff_ffff,
        0xffff_ffff_ffff_ffff,
        0xffff_ffff_ffff_ffff,
    ])
}

/// The group order `n`.
pub fn n() -> U256 {
    U256([
        0xbfd2_5e8c_d036_4141,
        0xbaae_dce6_af48_a03b,
        0xffff_ffff_ffff_fffe,
        0xffff_ffff_ffff_ffff,
    ])
}

/// `2^256 mod p`, the folding constant for base-field reduction.
fn rp() -> U256 {
    U256::ZERO.wrapping_sub(p())
}

/// `2^256 mod n`, the folding constant for scalar-field reduction.
fn rn() -> U256 {
    U256::ZERO.wrapping_sub(n())
}

/// Base-field operations (mod p).
pub mod fe {
    use super::*;

    /// `(a + b) mod p`.
    pub fn add(a: U256, b: U256) -> U256 {
        add_mod(a, b, p())
    }
    /// `(a - b) mod p`.
    pub fn sub(a: U256, b: U256) -> U256 {
        sub_mod(a, b, p())
    }
    /// `(a * b) mod p`.
    pub fn mul(a: U256, b: U256) -> U256 {
        mul_mod(a, b, p(), rp())
    }
    /// `a² mod p`.
    pub fn sq(a: U256) -> U256 {
        mul(a, a)
    }
    /// `a⁻¹ mod p` (0 for 0).
    pub fn inv(a: U256) -> U256 {
        inv_mod(a, p(), rp())
    }
    /// Square root mod p if one exists (`p ≡ 3 mod 4`, so `a^((p+1)/4)`).
    pub fn sqrt(a: U256) -> Option<U256> {
        let e = p().wrapping_add(U256::ONE).shr_bits(2);
        let root = pow_mod(a, e, p(), rp());
        if sq(root) == a {
            Some(root)
        } else {
            None
        }
    }
}

/// Scalar-field operations (mod n).
pub mod scalar {
    use super::*;

    /// `(a + b) mod n`.
    pub fn add(a: U256, b: U256) -> U256 {
        add_mod(a, b, n())
    }
    /// `(a * b) mod n`.
    pub fn mul(a: U256, b: U256) -> U256 {
        mul_mod(a, b, n(), rn())
    }
    /// `a⁻¹ mod n` (0 for 0).
    pub fn inv(a: U256) -> U256 {
        inv_mod(a, n(), rn())
    }
    /// Reduces an arbitrary 256-bit value mod n.
    pub fn reduce(a: U256) -> U256 {
        if a >= n() {
            a.wrapping_sub(n())
        } else {
            a
        }
    }
    /// True iff `1 ≤ a < n`.
    pub fn is_valid_nonzero(a: U256) -> bool {
        !a.is_zero() && a < n()
    }
}

/// A curve point in Jacobian coordinates; `z == 0` encodes infinity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Point {
    /// Jacobian X (affine x = X / Z²).
    pub x: U256,
    /// Jacobian Y (affine y = Y / Z³).
    pub y: U256,
    /// Jacobian Z.
    pub z: U256,
}

/// An affine curve point (never infinity).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Affine {
    /// Affine x coordinate.
    pub x: U256,
    /// Affine y coordinate.
    pub y: U256,
}

impl Point {
    /// The point at infinity (group identity).
    pub const INFINITY: Point = Point {
        x: U256::ZERO,
        y: U256::ZERO,
        z: U256::ZERO,
    };

    /// The generator point G.
    pub fn generator() -> Point {
        Point::from_affine(Affine {
            x: U256([
                0x59f2_815b_16f8_1798,
                0x029b_fcdb_2dce_28d9,
                0x55a0_6295_ce87_0b07,
                0x79be_667e_f9dc_bbac,
            ]),
            y: U256([
                0x9c47_d08f_fb10_d4b8,
                0xfd17_b448_a685_5419,
                0x5da4_fbfc_0e11_08a8,
                0x483a_da77_26a3_c465,
            ]),
        })
    }

    /// Lifts an affine point to Jacobian coordinates.
    pub fn from_affine(a: Affine) -> Point {
        Point {
            x: a.x,
            y: a.y,
            z: U256::ONE,
        }
    }

    /// True iff this is the identity.
    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Normalizes to affine coordinates; `None` for infinity.
    pub fn to_affine(&self) -> Option<Affine> {
        if self.is_infinity() {
            return None;
        }
        let zinv = fe::inv(self.z);
        let zinv2 = fe::sq(zinv);
        let zinv3 = fe::mul(zinv2, zinv);
        Some(Affine {
            x: fe::mul(self.x, zinv2),
            y: fe::mul(self.y, zinv3),
        })
    }

    /// Point doubling (a = 0 short-Weierstrass formulas).
    pub fn double(&self) -> Point {
        if self.is_infinity() || self.y.is_zero() {
            return Point::INFINITY;
        }
        let a = fe::sq(self.x);
        let b = fe::sq(self.y);
        let c = fe::sq(b);
        // D = 2·((X+B)² − A − C)
        let xb = fe::sq(fe::add(self.x, b));
        let d = {
            let t = fe::sub(fe::sub(xb, a), c);
            fe::add(t, t)
        };
        let e = fe::add(fe::add(a, a), a); // 3A
        let f = fe::sq(e);
        let x3 = fe::sub(f, fe::add(d, d));
        let c8 = {
            let c2 = fe::add(c, c);
            let c4 = fe::add(c2, c2);
            fe::add(c4, c4)
        };
        let y3 = fe::sub(fe::mul(e, fe::sub(d, x3)), c8);
        let z3 = {
            let yz = fe::mul(self.y, self.z);
            fe::add(yz, yz)
        };
        Point {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General point addition.
    pub fn add(&self, other: &Point) -> Point {
        if self.is_infinity() {
            return *other;
        }
        if other.is_infinity() {
            return *self;
        }
        let z1z1 = fe::sq(self.z);
        let z2z2 = fe::sq(other.z);
        let u1 = fe::mul(self.x, z2z2);
        let u2 = fe::mul(other.x, z1z1);
        let s1 = fe::mul(self.y, fe::mul(other.z, z2z2));
        let s2 = fe::mul(other.y, fe::mul(self.z, z1z1));
        let h = fe::sub(u2, u1);
        let r = fe::sub(s2, s1);
        if h.is_zero() {
            if r.is_zero() {
                return self.double();
            }
            return Point::INFINITY; // P + (-P)
        }
        let hh = fe::sq(h);
        let hhh = fe::mul(h, hh);
        let v = fe::mul(u1, hh);
        let x3 = fe::sub(fe::sub(fe::sq(r), hhh), fe::add(v, v));
        let y3 = fe::sub(fe::mul(r, fe::sub(v, x3)), fe::mul(s1, hhh));
        let z3 = fe::mul(fe::mul(self.z, other.z), h);
        Point {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Additive inverse.
    pub fn negate(&self) -> Point {
        if self.is_infinity() {
            return *self;
        }
        Point {
            x: self.x,
            y: sub_mod(U256::ZERO, self.y, p()),
            z: self.z,
        }
    }

    /// Scalar multiplication by double-and-add (MSB first).
    pub fn mul_scalar(&self, k: U256) -> Point {
        let mut acc = Point::INFINITY;
        for i in (0..k.bits()).rev() {
            acc = acc.double();
            if k.bit(i) {
                acc = acc.add(self);
            }
        }
        acc
    }
}

impl Affine {
    /// True iff the coordinates satisfy y² = x³ + 7 (mod p).
    pub fn is_on_curve(&self) -> bool {
        let y2 = fe::sq(self.y);
        let x3 = fe::mul(fe::sq(self.x), self.x);
        y2 == fe::add(x3, U256::from_u64(7))
    }

    /// Recovers the point with the given x coordinate and y parity, if the
    /// x coordinate lies on the curve.
    pub fn lift_x(x: U256, y_is_odd: bool) -> Option<Affine> {
        if x >= p() {
            return None;
        }
        let rhs = fe::add(fe::mul(fe::sq(x), x), U256::from_u64(7));
        let mut y = fe::sqrt(rhs)?;
        if y.bit(0) != y_is_odd {
            y = sub_mod(U256::ZERO, y, p());
        }
        Some(Affine { x, y })
    }

    /// Uncompressed SEC1 serialization: `0x04 || x || y` (65 bytes).
    pub fn to_uncompressed(&self) -> [u8; 65] {
        let mut out = [0u8; 65];
        out[0] = 0x04;
        out[1..33].copy_from_slice(&self.x.to_be_bytes());
        out[33..].copy_from_slice(&self.y.to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_on_curve() {
        let g = Point::generator().to_affine().unwrap();
        assert!(g.is_on_curve());
    }

    #[test]
    fn generator_has_order_n() {
        let g = Point::generator();
        assert!(g.mul_scalar(n()).is_infinity());
        assert!(!g.mul_scalar(n().wrapping_sub(U256::ONE)).is_infinity());
    }

    #[test]
    fn double_matches_add() {
        let g = Point::generator();
        assert_eq!(
            g.double().to_affine().unwrap(),
            g.add(&g).to_affine().unwrap()
        );
    }

    #[test]
    fn known_multiples_of_g() {
        // 2G from the canonical secp256k1 tables.
        let two_g = Point::generator().mul_scalar(U256::from_u64(2));
        let a = two_g.to_affine().unwrap();
        assert_eq!(
            format!("{:x}", a.x),
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5"
        );
        assert_eq!(
            format!("{:x}", a.y),
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a"
        );
        // 3G
        let three_g = Point::generator().mul_scalar(U256::from_u64(3));
        let a = three_g.to_affine().unwrap();
        assert_eq!(
            format!("{:x}", a.x),
            "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9"
        );
    }

    #[test]
    fn add_inverse_is_infinity() {
        let g = Point::generator();
        assert!(g.add(&g.negate()).is_infinity());
    }

    #[test]
    fn infinity_is_identity() {
        let g = Point::generator();
        assert_eq!(g.add(&Point::INFINITY).to_affine(), g.to_affine());
        assert_eq!(Point::INFINITY.add(&g).to_affine(), g.to_affine());
        assert!(Point::INFINITY.double().is_infinity());
    }

    #[test]
    fn scalar_mul_distributes() {
        let g = Point::generator();
        let a = U256::from_u64(123456789);
        let b = U256::from_u64(987654321);
        let lhs = g.mul_scalar(a).add(&g.mul_scalar(b));
        let rhs = g.mul_scalar(a.wrapping_add(b));
        assert_eq!(lhs.to_affine(), rhs.to_affine());
    }

    #[test]
    fn lift_x_finds_both_parities() {
        let g = Point::generator().to_affine().unwrap();
        let even = Affine::lift_x(g.x, false).unwrap();
        let odd = Affine::lift_x(g.x, true).unwrap();
        assert!(even.is_on_curve() && odd.is_on_curve());
        assert_ne!(even.y, odd.y);
        assert!(!even.y.bit(0));
        assert!(odd.y.bit(0));
        // One of them is G itself.
        assert!(even.y == g.y || odd.y == g.y);
    }

    #[test]
    fn lift_x_rejects_non_residue() {
        // x = 5 gives x³+7 = 132; check behaviour is consistent with sqrt.
        let x = U256::from_u64(5);
        let lifted = Affine::lift_x(x, false);
        if let Some(pt) = lifted {
            assert!(pt.is_on_curve());
        }
        // x >= p is always rejected.
        assert!(Affine::lift_x(p(), false).is_none());
    }

    #[test]
    fn field_sqrt_roundtrip() {
        let v = U256::from_u64(1234567);
        let sq = fe::sq(v);
        let root = fe::sqrt(sq).unwrap();
        assert!(root == v || root == sub_mod(U256::ZERO, v, p()));
    }
}
