//! Cryptographic primitives built from scratch for the on/off-chain stack.
//!
//! * [`keccak`] — Keccak-256 (Ethereum variant) plus Solidity function
//!   selectors.
//! * [`sha256`] — SHA-256 / HMAC-SHA256 (RFC 6979 nonces, 0x02 precompile).
//! * [`secp256k1`] — field, scalar and Jacobian point arithmetic.
//! * [`ecdsa`] — Ethereum-convention ECDSA: deterministic signing, low-s
//!   normalization, and the `ecrecover` operation that powers both
//!   transaction sender recovery and the paper's signed-copy verification.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // limb/lane loops index two arrays in lockstep

pub mod ecdsa;
pub mod keccak;
pub mod modmath;
pub mod secp256k1;
pub mod sha256;

pub use ecdsa::{recover_address, recover_pubkey, EcdsaError, PrivateKey, PublicKey, Signature};
pub use keccak::{keccak256, selector, Keccak256};
pub use sha256::{hmac_sha256, Sha256};
