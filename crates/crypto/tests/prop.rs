//! Property-based tests for the crypto layer.

use proptest::prelude::*;
use sc_crypto::ecdsa::{recover_address, PrivateKey, Signature};
use sc_crypto::keccak::{keccak256, Keccak256};
use sc_crypto::secp256k1::{n, scalar, Point};
use sc_crypto::sha256::{sha256, Sha256};
use sc_primitives::{H256, U256};

fn arb_scalar() -> impl Strategy<Value = U256> {
    any::<[u64; 4]>()
        .prop_map(U256)
        .prop_filter("nonzero scalar below n", |k| scalar::is_valid_nonzero(*k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sign_recover_roundtrip(k in arb_scalar(), msg in proptest::collection::vec(any::<u8>(), 0..128)) {
        let key = PrivateKey::from_u256(k).unwrap();
        let digest = keccak256(&msg);
        let sig = key.sign(digest);
        prop_assert!(sig.is_low_s());
        prop_assert!(key.public_key().verify(digest, &sig));
        prop_assert_eq!(recover_address(digest, &sig).unwrap(), key.address());
    }

    #[test]
    fn signature_binds_to_message(k in arb_scalar(), a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let key = PrivateKey::from_u256(k).unwrap();
        let sig = key.sign(keccak256(&a.to_be_bytes()));
        prop_assert!(!key.public_key().verify(keccak256(&b.to_be_bytes()), &sig));
    }

    #[test]
    fn recovery_distinguishes_signers(k1 in arb_scalar(), k2 in arb_scalar()) {
        prop_assume!(k1 != k2);
        let key1 = PrivateKey::from_u256(k1).unwrap();
        let key2 = PrivateKey::from_u256(k2).unwrap();
        let digest = keccak256(b"shared message");
        let sig = key1.sign(digest);
        let recovered = recover_address(digest, &sig).unwrap();
        prop_assert_eq!(recovered, key1.address());
        prop_assert_ne!(recovered, key2.address());
    }

    #[test]
    fn point_addition_commutes(a in arb_scalar(), b in arb_scalar()) {
        let g = Point::generator();
        let pa = g.mul_scalar(a);
        let pb = g.mul_scalar(b);
        prop_assert_eq!(pa.add(&pb).to_affine(), pb.add(&pa).to_affine());
    }

    #[test]
    fn scalar_mul_is_homomorphic(a in arb_scalar(), b in arb_scalar()) {
        let g = Point::generator();
        let lhs = g.mul_scalar(a).add(&g.mul_scalar(b)).to_affine();
        let rhs = g.mul_scalar(scalar::add(a, b)).to_affine();
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn derived_points_are_on_curve(k in arb_scalar()) {
        let aff = Point::generator().mul_scalar(k).to_affine().unwrap();
        prop_assert!(aff.is_on_curve());
    }
}

proptest! {
    // Cheaper properties get more cases.
    #[test]
    fn keccak_streaming_matches_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        let mut h = Keccak256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), keccak256(&data));
    }

    #[test]
    fn sha256_streaming_matches_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn signature_wire_roundtrip(v in 27u8..=28, r in any::<[u8;32]>(), s in any::<[u8;32]>()) {
        let sig = Signature { v, r: H256(r), s: H256(s) };
        prop_assert_eq!(Signature::from_bytes(&sig.to_bytes()).unwrap(), sig);
    }

    #[test]
    fn scalar_field_inverse(k in arb_scalar()) {
        let inv = scalar::inv(k);
        prop_assert_eq!(scalar::mul(k, inv), U256::ONE);
        prop_assert!(inv < n());
    }
}
