//! Value-generation strategies: the [`Strategy`] trait, primitive
//! sources (`any`, ranges, `Just`) and the combinators the workspace's
//! property tests use.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeFrom, RangeInclusive};
use std::rc::Rc;

/// How many times `prop_filter` re-draws before declaring the predicate
/// unsatisfiable.
const FILTER_MAX_DRAWS: usize = 100_000;

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred`, re-drawing instead.
    /// `whence` names the constraint in the panic raised if the predicate
    /// effectively never passes.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Builds a recursive strategy: starting from `self` as the leaf,
    /// applies `recurse` up to `depth` times, choosing at each level
    /// between staying shallow and descending. The `_desired_size` and
    /// `_expected_branch_size` hints of the upstream API are accepted for
    /// signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            let deeper = recurse(strat.clone()).boxed();
            strat = Union::new(vec![strat, deeper]).boxed();
        }
        strat
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cheaply clonable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_MAX_DRAWS {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected {FILTER_MAX_DRAWS} consecutive draws",
            self.whence
        );
    }
}

/// Uniform choice between several strategies producing the same type.
/// Built by the [`crate::prop_oneof!`] macro.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Wraps a non-empty list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

// ---- any::<T>() ----

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The full-domain strategy for `T`, mirroring `proptest`'s `any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        rng.next_u128()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

// ---- integer ranges as strategies ----

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let start = self.start as u64;
                let span = (<$t>::MAX as u64) - start;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start + rng.below(span + 1)) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

// ---- tuples of strategies ----

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(0xfeed)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut r);
            assert!((10..20).contains(&v));
            let w = (27u8..=28).generate(&mut r);
            assert!((27..=28).contains(&w));
            let x = (1u64..).generate(&mut r);
            assert!(x >= 1);
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let strat = (0u64..100)
            .prop_map(|v| v * 2)
            .prop_filter("nonzero", |v| *v != 0);
        let mut r = rng();
        for _ in 0..200 {
            let v = strat.generate(&mut r);
            assert!(v % 2 == 0 && v != 0);
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let strat = Union::new(vec![Just(1u64).boxed(), Just(2u64).boxed()]);
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.generate(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            #[allow(dead_code)] // payload only exercises prop_map plumbing
            Leaf(u64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut r = rng();
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&strat.generate(&mut r)));
        }
        assert!(max_depth > 1, "recursion never taken");
        assert!(max_depth <= 8, "depth bound exceeded: {max_depth}");
    }

    #[test]
    fn arrays_and_tuples_generate() {
        let mut r = rng();
        let arr: [u8; 20] = <[u8; 20]>::arbitrary(&mut r);
        assert_eq!(arr.len(), 20);
        let (a, b, c) = (any::<u64>(), any::<bool>(), 0usize..4).generate(&mut r);
        let _ = (a, b);
        assert!(c < 4);
    }
}
