//! A vendored, std-only property-testing shim.
//!
//! This crate re-implements the subset of the `proptest` crate's API that
//! this workspace's test suites use, so that `cargo build && cargo test`
//! resolve and pass **without any network access to a crates registry**.
//! It is intentionally small:
//!
//! * [`Strategy`] — value generators with `prop_map`, `prop_filter`,
//!   `prop_recursive` and `boxed` combinators.
//! * [`prelude`] — `any`, `Just`, `ProptestConfig` and the macros
//!   (`proptest!`, `prop_assert*!`, `prop_assume!`, `prop_oneof!`).
//! * [`collection`] — `vec(strategy, size_range)`.
//!
//! Differences from upstream `proptest`: generation is driven by a fast
//! deterministic SplitMix64 PRNG seeded from the test name, and there is
//! **no shrinking** — a failing case panics with the generated inputs'
//! context so the seed logic reproduces it on the next run. Case counts
//! honour `ProptestConfig::with_cases` and the `PROPTEST_CASES`
//! environment variable.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Everything a property test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests. Each function body runs once per generated
/// case; arguments are drawn from the strategies after `in`.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn addition_commutes(a in any::<u64>(), b in any::<u64>()) {
///         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal muncher for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, __rng);)*
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Fails the current case with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Fails the current case unless both sides compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniformly picks one of the given strategies per generated value. All
/// arms must produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
