//! Deterministic case runner and PRNG backing the [`crate::proptest!`]
//! macro.

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Maximum rejected draws (via `prop_assume!` / `prop_filter`) before
    /// the test aborts as under-constrained.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }

    fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message describes it.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
}

/// A small, fast SplitMix64 PRNG. Deterministic per test name and case
/// index so failures reproduce across runs and machines.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` (`bound` > 0), via rejection-free
    /// widening multiply (Lemire).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `u128`.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }
}

fn seed_for(name: &str, attempt: u32) -> u64 {
    // FNV-1a over the test name, mixed with the attempt index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ (u64::from(attempt) << 1 | 1).wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// Drives one property test: draws inputs, runs the body, retries
/// rejections, and panics (with reproduction context) on the first
/// failing case.
pub fn run_cases(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let target = config.effective_cases();
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u32;
    while accepted < target {
        attempt += 1;
        let mut rng = TestRng::new(seed_for(name, attempt));
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "property test `{name}` rejected {rejected} draws \
                     (accepted {accepted}/{target}); strategy is too narrow"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property test `{name}` failed at case {}/{target} \
                     (attempt {attempt}): {msg}",
                    accepted + 1
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn runner_counts_accepted_cases() {
        let mut runs = 0;
        run_cases(&ProptestConfig::with_cases(10), "counter", |_| {
            runs += 1;
            Ok(())
        });
        assert_eq!(runs, 10);
    }

    #[test]
    fn runner_retries_rejections() {
        let mut draws = 0;
        run_cases(&ProptestConfig::with_cases(4), "rejector", |_| {
            draws += 1;
            if draws % 2 == 0 {
                Ok(())
            } else {
                Err(TestCaseError::Reject)
            }
        });
        assert_eq!(draws, 8);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn runner_panics_on_failure() {
        run_cases(&ProptestConfig::with_cases(4), "failer", |_| {
            Err(TestCaseError::Fail("boom".into()))
        });
    }
}
