//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A range of collection sizes. Converted from `Range<usize>` or a fixed
/// `usize`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

/// Generates `Vec`s whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_lengths_respect_range() {
        let strat = vec(any::<u8>(), 3..7);
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn fixed_size_from_usize() {
        let strat = vec(any::<u8>(), 5);
        let mut rng = TestRng::new(9);
        assert_eq!(strat.generate(&mut rng).len(), 5);
    }
}
