//! Property tests: random insert/delete sequences applied incrementally
//! (with interleaved root computations, so the dirty-node cache is
//! exercised) must agree with a reference trie rebuilt in one pass from
//! the sorted surviving content — and every surviving key must carry a
//! verifiable Merkle proof.

use proptest::prelude::*;
use sc_trie::{empty_root, verify_proof, Trie};
use std::collections::BTreeMap;

/// One step of a workload. Keys are drawn from a tiny alphabet with
/// short lengths so runs collide on prefixes and exercise branch
/// splits, extension divergence, and collapse-on-delete.
#[derive(Debug, Clone)]
struct Op {
    key: Vec<u8>,
    /// Empty value doubles as a delete (Ethereum's convention).
    value: Vec<u8>,
    /// Ask for the root mid-sequence to exercise cache invalidation.
    root_after: bool,
}

fn arb_key() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        prop_oneof![Just(0x00u8), Just(0x01), Just(0x10), Just(0x11), Just(0xff)],
        0..5,
    )
}

fn arb_op() -> impl Strategy<Value = Op> {
    (
        arb_key(),
        proptest::collection::vec(any::<u8>(), 0..6),
        any::<bool>(),
    )
        .prop_map(|(key, value, root_after)| Op {
            key,
            value,
            root_after,
        })
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(arb_op(), 0..48)
}

proptest! {
    #[test]
    fn random_ops_agree_with_sorted_rebuild(ops in arb_ops()) {
        let mut trie = Trie::new();
        let mut reference: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for op in &ops {
            if op.value.is_empty() {
                let removed = trie.remove(&op.key);
                prop_assert_eq!(removed, reference.remove(&op.key).is_some());
            } else {
                trie.insert(&op.key, op.value.clone());
                reference.insert(op.key.clone(), op.value.clone());
            }
            if op.root_after {
                trie.root();
            }
        }

        // Content agrees key by key.
        for (k, v) in &reference {
            prop_assert_eq!(trie.get(k), Some(v.as_slice()));
        }
        prop_assert_eq!(trie.is_empty(), reference.is_empty());

        // The incrementally-maintained root equals a one-pass rebuild
        // from the sorted surviving content.
        let mut rebuilt = Trie::new();
        for (k, v) in &reference {
            rebuilt.insert(k, v.clone());
        }
        let root = trie.root();
        prop_assert_eq!(root, rebuilt.root());
        if reference.is_empty() {
            prop_assert_eq!(root, empty_root());
        }

        // Every surviving key proves its value against the root; a key
        // absent from the reference proves exclusion.
        for (k, v) in &reference {
            let proof = trie.prove(k);
            prop_assert_eq!(verify_proof(root, k, &proof).unwrap(), Some(v.clone()));
        }
        let absent = vec![0x42u8, 0x42, 0x42, 0x42, 0x42, 0x42];
        let proof = trie.prove(&absent);
        prop_assert_eq!(verify_proof(root, &absent, &proof).unwrap(), None);
    }
}
