//! Golden-vector tests against the canonical Ethereum MPT roots
//! (ethereum/tests `TrieTests` and the Yellow Paper's worked example),
//! plus end-to-end proof checks: inclusion, exclusion, and tamper
//! rejection.

use sc_primitives::H256;
use sc_trie::{empty_root, verify_proof, verify_secure_proof, SecureTrie, Trie};

fn h(hex: &str) -> H256 {
    H256::from_hex(hex).unwrap()
}

#[test]
fn empty_trie_root_is_keccak_of_rlp_empty_string() {
    assert_eq!(
        empty_root(),
        h("0x56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421")
    );
    assert_eq!(Trie::new().root(), empty_root());
    assert_eq!(SecureTrie::new().root(), empty_root());
}

#[test]
fn golden_foo_food() {
    // ethereum/tests TrieTests/trietest.json "foo".
    let mut t = Trie::new();
    t.insert(b"foo", b"bar".to_vec());
    t.insert(b"food", b"bass".to_vec());
    assert_eq!(
        t.root(),
        h("0x17beaa1648bafa633cda809c90c04af50fc8aed3cb40d16efbddee6fdf63c4c3")
    );
}

#[test]
fn golden_dogglesworth() {
    // The Yellow Paper's worked example (also TrieTests "dogs").
    let mut t = Trie::new();
    t.insert(b"doe", b"reindeer".to_vec());
    t.insert(b"dog", b"puppy".to_vec());
    t.insert(b"dogglesworth", b"cat".to_vec());
    assert_eq!(
        t.root(),
        h("0x8aad789dff2f538bca5d8ea56e8abe10f4c7ba3a5dea95fea4cd6e7c3a1168d3")
    );
}

#[test]
fn golden_empty_values_act_as_deletes() {
    // ethereum/tests TrieTests/trietest.json "emptyValues": inserting
    // the empty string removes the key, and the surviving set {do,
    // horse, doge, dog} hits the published root.
    let ops: &[(&[u8], &[u8])] = &[
        (b"do", b"verb"),
        (b"ether", b"wei"),
        (b"horse", b"stallion"),
        (b"shaman", b"horse"),
        (b"doge", b"coin"),
        (b"ether", b""),
        (b"dog", b"puppy"),
        (b"shaman", b""),
    ];
    let expected = h("0x5991bb8c6514148a29db676a14ac506cd2cd5775ace63c30a4fe457715e9ac84");

    let mut t = Trie::new();
    for (k, v) in ops {
        t.insert(k, v.to_vec());
    }
    assert_eq!(t.root(), expected);
    assert_eq!(t.get(b"ether"), None);
    assert_eq!(t.get(b"dog"), Some(b"puppy".as_slice()));

    // Same content inserted in a different order gives the same root.
    let mut t2 = Trie::new();
    for (k, v) in [
        (b"dog".as_slice(), b"puppy".as_slice()),
        (b"doge", b"coin"),
        (b"do", b"verb"),
        (b"horse", b"stallion"),
    ] {
        t2.insert(k, v.to_vec());
    }
    assert_eq!(t2.root(), expected);
}

#[test]
fn delete_restores_previous_root() {
    let mut t = Trie::new();
    t.insert(b"doe", b"reindeer".to_vec());
    t.insert(b"dog", b"puppy".to_vec());
    let before = t.root();
    t.insert(b"dogglesworth", b"cat".to_vec());
    assert_ne!(t.root(), before);
    assert!(t.remove(b"dogglesworth"));
    assert_eq!(t.root(), before);
    assert!(!t.remove(b"dogglesworth"), "double delete is a no-op");
    assert!(t.remove(b"dog"));
    assert!(t.remove(b"doe"));
    assert_eq!(t.root(), empty_root());
    assert!(t.is_empty());
}

#[test]
fn proofs_inclusion_exclusion_and_tampering() {
    let mut t = Trie::new();
    let pairs: &[(&[u8], &[u8])] = &[
        (b"do", b"verb"),
        (b"dog", b"puppy"),
        (b"doge", b"coin"),
        (b"horse", b"stallion"),
    ];
    for (k, v) in pairs {
        t.insert(k, v.to_vec());
    }
    let root = t.root();

    // Inclusion: every present key proves its own value.
    for (k, v) in pairs {
        let proof = t.prove(k);
        assert_eq!(verify_proof(root, k, &proof).unwrap(), Some(v.to_vec()));
    }

    // Exclusion: a proof for an absent key verifies to None — whether
    // the walk diverges mid-path, dead-ends in a branch, or overshoots
    // a leaf.
    for absent in [b"cat".as_slice(), b"dogs", b"horsey", b"d"] {
        let proof = t.prove(absent);
        assert_eq!(verify_proof(root, absent, &proof).unwrap(), None);
    }

    // Tampering: flip one byte anywhere in the proof and verification
    // must fail (a hash link on the path breaks).
    let proof = t.prove(b"dog");
    for i in 0..proof.len() {
        for j in 0..proof[i].len() {
            let mut forged = proof.clone();
            forged[i][j] ^= 0x01;
            assert!(
                verify_proof(root, b"dog", &forged).map_or(true, |v| v != Some(b"puppy".to_vec())),
                "tampered proof (node {i}, byte {j}) must not verify the original value"
            );
        }
    }

    // A proof verified against the wrong root is rejected outright.
    assert!(verify_proof(H256::ZERO, b"dog", &proof).is_err());
}

#[test]
fn secure_trie_proofs_roundtrip() {
    let mut t = SecureTrie::new();
    for i in 0u8..32 {
        t.insert(&[i; 20], vec![i + 1; 4]);
    }
    let root = t.root();
    let proof = t.prove(&[7u8; 20]);
    assert_eq!(
        verify_secure_proof(root, &[7u8; 20], &proof).unwrap(),
        Some(vec![8u8; 4])
    );
    let absent = t.prove(&[99u8; 20]);
    assert_eq!(
        verify_secure_proof(root, &[99u8; 20], &absent).unwrap(),
        None
    );
}

#[test]
fn empty_trie_proves_exclusion_with_empty_proof() {
    let mut t = Trie::new();
    let proof = t.prove(b"anything");
    assert!(proof.is_empty());
    assert_eq!(
        verify_proof(empty_root(), b"anything", &proof).unwrap(),
        None
    );
}

#[test]
fn incremental_root_matches_fresh_rebuild_under_churn() {
    // Interleave root() calls with writes so cached node refs are
    // exercised and invalidated repeatedly, then compare against a
    // trie built in one pass.
    let mut t = Trie::new();
    for i in 0u64..200 {
        t.insert(&i.to_be_bytes(), i.to_string().into_bytes());
        if i % 7 == 0 {
            t.root();
        }
        if i % 3 == 0 {
            t.remove(&(i / 2).to_be_bytes());
        }
    }
    // Rebuild from observed content: get() walks the in-memory tree, so
    // this cross-checks hashing against structure.
    let mut fresh = Trie::new();
    for i in 0u64..200 {
        if let Some(v) = t.get(&i.to_be_bytes()) {
            fresh.insert(&i.to_be_bytes(), v.to_vec());
        }
    }
    assert_eq!(t.root(), fresh.root());
}
