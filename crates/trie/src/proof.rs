//! Stateless Merkle-proof verification.
//!
//! A proof is the list of RLP-encoded nodes a light verifier needs to
//! walk from the root commitment to the key: every hash-referenced node
//! on the path (inlined nodes travel inside their parent's encoding).
//! Verification resolves each reference against the keccak-256 of the
//! supplied nodes, so a tampered node or value changes a hash somewhere
//! on the path and the walk fails. The same walk proves *exclusion*:
//! when the path ends in an empty slot or diverges from the stored
//! partial path, the proof demonstrates the key is absent.

use crate::nibbles::{hp_decode, to_nibbles};
use crate::{empty_root, Trie};
use sc_crypto::keccak256;
use sc_primitives::rlp::{self, Item};
use sc_primitives::H256;
use std::collections::HashMap;
use std::fmt;

/// Why a proof failed to verify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// A node's RLP did not decode, or decoded to an impossible shape.
    BadNode,
    /// The walk hit a hash reference with no matching node in the proof.
    MissingNode(H256),
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::BadNode => write!(f, "malformed trie node in proof"),
            ProofError::MissingNode(h) => write!(f, "proof is missing node {h}"),
        }
    }
}

impl std::error::Error for ProofError {}

impl Trie {
    /// Merkle proof for `key`: the RLP encodings of every
    /// hash-referenced node on the lookup path, root first. Works for
    /// present keys (inclusion) and absent keys (exclusion) alike; the
    /// empty trie proves every exclusion with an empty proof.
    pub fn prove(&mut self, key: &[u8]) -> Vec<Vec<u8>> {
        let mut proof = Vec::new();
        let Some(root) = self.root.as_mut() else {
            return proof;
        };
        proof.push(root.encode());
        let mut cur = root;
        let n = to_nibbles(key);
        let mut at = 0usize;
        loop {
            let next = match &mut cur.node {
                crate::node::Node::Leaf { .. } => return proof,
                crate::node::Node::Extension { path, child } => {
                    if n[at..].starts_with(path) {
                        at += path.len();
                        child
                    } else {
                        return proof;
                    }
                }
                crate::node::Node::Branch { children, .. } => {
                    if at == n.len() {
                        return proof;
                    }
                    let idx = n[at] as usize;
                    at += 1;
                    match children[idx].as_mut() {
                        Some(child) => child,
                        None => return proof,
                    }
                }
            };
            if next.is_hash_referenced() {
                proof.push(next.encode());
            }
            cur = next;
        }
    }
}

/// Verifies a Merkle proof for `key` against a trie `root`.
///
/// Returns `Ok(Some(value))` when the proof shows the key bound to
/// `value` (inclusion), `Ok(None)` when it shows the key absent
/// (exclusion), and `Err` when the proof is malformed or incomplete —
/// which includes any tampering with a node or value, since that breaks
/// a hash link back to the root.
pub fn verify_proof(
    root: H256,
    key: &[u8],
    proof: &[Vec<u8>],
) -> Result<Option<Vec<u8>>, ProofError> {
    if root == empty_root() {
        return Ok(None);
    }
    let by_hash: HashMap<H256, &[u8]> = proof
        .iter()
        .map(|enc| (keccak256(enc), enc.as_slice()))
        .collect();
    let mut reference = Item::Bytes(root.as_bytes().to_vec());
    let n = to_nibbles(key);
    let mut at = 0usize;
    loop {
        let node = match resolve(&reference, &by_hash)? {
            Some(node) => node,
            None => return Ok(None), // empty slot: proven absent
        };
        let Item::List(items) = node else {
            return Err(ProofError::BadNode);
        };
        match items.len() {
            2 => {
                let [hp, target]: [Item; 2] = items.try_into().expect("len checked");
                let Item::Bytes(hp) = hp else {
                    return Err(ProofError::BadNode);
                };
                let (path, is_leaf) = hp_decode(&hp)?;
                if is_leaf {
                    let Item::Bytes(value) = target else {
                        return Err(ProofError::BadNode);
                    };
                    return Ok((n[at..] == path[..]).then_some(value));
                }
                if path.is_empty() {
                    return Err(ProofError::BadNode); // canonical extensions never have empty paths
                }
                if !n[at..].starts_with(&path) {
                    return Ok(None); // path diverges: proven absent
                }
                at += path.len();
                reference = target;
            }
            17 => {
                if at == n.len() {
                    let Some(Item::Bytes(value)) = items.into_iter().nth(16) else {
                        return Err(ProofError::BadNode);
                    };
                    return Ok((!value.is_empty()).then_some(value));
                }
                let idx = n[at] as usize;
                at += 1;
                reference = items.into_iter().nth(idx).expect("len checked");
            }
            _ => return Err(ProofError::BadNode),
        }
    }
}

/// Resolves a node reference: inline lists stand for themselves, 32-byte
/// strings index the proof by hash, the empty string is an empty slot.
fn resolve(reference: &Item, by_hash: &HashMap<H256, &[u8]>) -> Result<Option<Item>, ProofError> {
    match reference {
        Item::List(_) => Ok(Some(reference.clone())),
        Item::Bytes(b) if b.is_empty() => Ok(None),
        Item::Bytes(b) if b.len() == 32 => {
            let mut h = H256::ZERO;
            h.0.copy_from_slice(b);
            let enc = by_hash.get(&h).ok_or(ProofError::MissingNode(h))?;
            let item = rlp::decode(enc).map_err(|_| ProofError::BadNode)?;
            Ok(Some(item))
        }
        Item::Bytes(_) => Err(ProofError::BadNode),
    }
}
