//! Reference-counted node archive: the pruning store behind the chain's
//! retained-root window.
//!
//! A [`TrieArchive`] holds the RLP encoding of every hash-referenced
//! node reachable from a set of *committed* roots, each node tagged
//! with a reference count (one per parent node, plus one per committed
//! root). Committing a trie walks it top-down and stops at the first
//! node the archive already holds — identical subtree hash means
//! identical subtree — so re-committing after a block of writes costs
//! O(changed spine), not O(trie). Releasing a root decrements down the
//! same structure and frees every node whose count reaches zero, which
//! is exactly the set reachable *only* from that root.
//!
//! The archive answers reads and proofs for any committed root
//! ([`TrieArchive::get`] / [`TrieArchive::prove`]) with the same
//! stateless walk as [`crate::verify_proof`], so historical state in
//! the retained window stays provable after the live tries move on.

use crate::nibbles::{hp_decode, to_nibbles};
use crate::node::{Entry, Node};
use crate::proof::ProofError;
use crate::{empty_root, SecureTrie, Trie};
use sc_crypto::keccak256;
use sc_primitives::rlp::{self, Item};
use sc_primitives::H256;
use std::collections::HashMap;

/// One archived node: its full RLP encoding and how many committed
/// roots / parent nodes currently reference it.
#[derive(Debug, Clone)]
struct ArchivedNode {
    encoding: Vec<u8>,
    refs: u64,
}

/// A content-addressed node store with structural-sharing refcounts.
#[derive(Debug, Clone, Default)]
pub struct TrieArchive {
    nodes: HashMap<H256, ArchivedNode>,
}

impl TrieArchive {
    /// An empty archive.
    pub fn new() -> TrieArchive {
        TrieArchive::default()
    }

    /// Archives every hash-referenced node reachable from the trie's
    /// root and returns the root hash. Nodes already archived get one
    /// more reference and are not descended into (their subtree is
    /// already held), so the walk is proportional to what changed since
    /// the subtree was last committed. The empty root is never stored.
    pub fn commit(&mut self, trie: &mut Trie) -> H256 {
        match trie.root.as_mut() {
            None => empty_root(),
            Some(entry) => self.archive_entry(entry),
        }
    }

    /// [`TrieArchive::commit`] for a [`SecureTrie`].
    pub fn commit_secure(&mut self, trie: &mut SecureTrie) -> H256 {
        self.commit(&mut trie.inner)
    }

    /// Re-references an already-committed root without walking it (the
    /// per-block "this root is still current" bump). Returns false when
    /// the root is not archived — the caller must [`TrieArchive::commit`]
    /// the live trie instead. The empty root needs no references.
    pub fn retain(&mut self, root: H256) -> bool {
        if root == empty_root() {
            return true;
        }
        match self.nodes.get_mut(&root) {
            Some(node) => {
                node.refs += 1;
                true
            }
            None => false,
        }
    }

    fn archive_entry(&mut self, entry: &mut Entry) -> H256 {
        let enc = entry.encode();
        let hash = keccak256(&enc);
        if let Some(node) = self.nodes.get_mut(&hash) {
            node.refs += 1;
            return hash;
        }
        self.nodes.insert(
            hash,
            ArchivedNode {
                encoding: enc,
                refs: 1,
            },
        );
        // Only hash-referenced children are separate archive entries;
        // inline children travel inside this node's encoding (and are
        // too small to themselves contain a 33-byte hash reference).
        match &mut entry.node {
            Node::Leaf { .. } => {}
            Node::Extension { child, .. } => {
                if child.is_hash_referenced() {
                    self.archive_entry(child);
                }
            }
            Node::Branch { children, .. } => {
                for slot in children.iter_mut().flatten() {
                    if slot.is_hash_referenced() {
                        self.archive_entry(slot);
                    }
                }
            }
        }
        hash
    }

    /// Drops one reference from `root`, freeing every node that becomes
    /// unreachable from the remaining committed roots. Unknown hashes
    /// are ignored (the empty root, or a root released more often than
    /// committed — the caller's window bookkeeping is trusted).
    pub fn release(&mut self, root: H256) {
        let mut stack = vec![root];
        while let Some(hash) = stack.pop() {
            let Some(node) = self.nodes.get_mut(&hash) else {
                continue;
            };
            node.refs -= 1;
            if node.refs == 0 {
                let node = self.nodes.remove(&hash).expect("entry just seen");
                stack.extend(child_hashes(&node.encoding));
            }
        }
    }

    /// Number of resident archived nodes — the pruning bench's memory
    /// metric.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total bytes of archived node encodings.
    pub fn byte_size(&self) -> usize {
        self.nodes.values().map(|n| n.encoding.len()).sum()
    }

    /// True when `root` is committed (or empty).
    pub fn contains_root(&self, root: H256) -> bool {
        root == empty_root() || self.nodes.contains_key(&root)
    }

    /// Looks `key` up under a committed `root`: `Ok(Some(value))` /
    /// `Ok(None)` for present/absent, `Err(MissingNode)` when the walk
    /// needs a node the archive no longer holds (root outside the
    /// retained window).
    pub fn get(&self, root: H256, key: &[u8]) -> Result<Option<Vec<u8>>, ProofError> {
        self.walk(root, key, |_| {})
    }

    /// [`TrieArchive::get`] with a keccak-hashed key (secure tries).
    pub fn get_secure(&self, root: H256, key: &[u8]) -> Result<Option<Vec<u8>>, ProofError> {
        self.get(root, keccak256(key).as_bytes())
    }

    /// Merkle proof for `key` under a committed `root`: the same node
    /// list [`Trie::prove`] yields from the live trie, verifiable with
    /// [`crate::verify_proof`] against the historical root.
    pub fn prove(&self, root: H256, key: &[u8]) -> Result<Vec<Vec<u8>>, ProofError> {
        let mut proof = Vec::new();
        self.walk(root, key, |enc| proof.push(enc.to_vec()))?;
        Ok(proof)
    }

    /// [`TrieArchive::prove`] with a keccak-hashed key (secure tries).
    pub fn prove_secure(&self, root: H256, key: &[u8]) -> Result<Vec<Vec<u8>>, ProofError> {
        self.prove(root, keccak256(key).as_bytes())
    }

    /// The stateless root-to-key walk shared by [`TrieArchive::get`] and
    /// [`TrieArchive::prove`]; `visit` sees each hash-referenced node's
    /// encoding in walk order (root first).
    fn walk(
        &self,
        root: H256,
        key: &[u8],
        mut visit: impl FnMut(&[u8]),
    ) -> Result<Option<Vec<u8>>, ProofError> {
        if root == empty_root() {
            return Ok(None);
        }
        let n = to_nibbles(key);
        let mut at = 0usize;
        let mut reference = Item::Bytes(root.as_bytes().to_vec());
        loop {
            let node = match &reference {
                Item::List(_) => reference.clone(),
                Item::Bytes(b) if b.is_empty() => return Ok(None),
                Item::Bytes(b) if b.len() == 32 => {
                    let mut h = H256::ZERO;
                    h.0.copy_from_slice(b);
                    let archived = self.nodes.get(&h).ok_or(ProofError::MissingNode(h))?;
                    visit(&archived.encoding);
                    rlp::decode(&archived.encoding).map_err(|_| ProofError::BadNode)?
                }
                Item::Bytes(_) => return Err(ProofError::BadNode),
            };
            let Item::List(items) = node else {
                return Err(ProofError::BadNode);
            };
            match items.len() {
                2 => {
                    let [hp, target]: [Item; 2] = items.try_into().expect("len checked");
                    let Item::Bytes(hp) = hp else {
                        return Err(ProofError::BadNode);
                    };
                    let (path, is_leaf) = hp_decode(&hp)?;
                    if is_leaf {
                        let Item::Bytes(value) = target else {
                            return Err(ProofError::BadNode);
                        };
                        return Ok((n[at..] == path[..]).then_some(value));
                    }
                    if path.is_empty() || !n[at..].starts_with(&path) {
                        return if path.is_empty() {
                            Err(ProofError::BadNode)
                        } else {
                            Ok(None)
                        };
                    }
                    at += path.len();
                    reference = target;
                }
                17 => {
                    if at == n.len() {
                        let Some(Item::Bytes(value)) = items.into_iter().nth(16) else {
                            return Err(ProofError::BadNode);
                        };
                        return Ok((!value.is_empty()).then_some(value));
                    }
                    let idx = n[at] as usize;
                    at += 1;
                    reference = items.into_iter().nth(idx).expect("len checked");
                }
                _ => return Err(ProofError::BadNode),
            }
        }
    }
}

/// Extracts the hash references a node's encoding embeds — the
/// structural children [`TrieArchive::release`] cascades into. Leaf
/// values are never mistaken for children: the hex-prefix flag
/// distinguishes a leaf (no child) from an extension (one child).
fn child_hashes(encoding: &[u8]) -> Vec<H256> {
    let Ok(Item::List(items)) = rlp::decode(encoding) else {
        return Vec::new();
    };
    let as_hash = |item: &Item| match item {
        Item::Bytes(b) if b.len() == 32 => {
            let mut h = H256::ZERO;
            h.0.copy_from_slice(b);
            Some(h)
        }
        _ => None,
    };
    match items.len() {
        2 => {
            let Item::Bytes(hp) = &items[0] else {
                return Vec::new();
            };
            match hp_decode(hp) {
                Ok((_, false)) => as_hash(&items[1]).into_iter().collect(),
                _ => Vec::new(), // leaf: the second item is a value
            }
        }
        17 => items[..16].iter().filter_map(as_hash).collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_proof;

    fn key(i: u64) -> [u8; 32] {
        keccak256(&i.to_be_bytes()).0
    }

    fn filled_trie(n: u64) -> Trie {
        let mut t = Trie::new();
        for i in 0..n {
            t.insert(&key(i), key(i).to_vec());
        }
        t
    }

    #[test]
    fn commit_then_get_and_prove_every_key() {
        let mut t = filled_trie(50);
        let live_root = t.root();
        let mut arch = TrieArchive::new();
        let root = arch.commit(&mut t);
        assert_eq!(root, live_root);
        assert!(arch.contains_root(root));
        for i in 0..50 {
            let got = arch.get(root, &key(i)).expect("walk ok");
            assert_eq!(got.as_deref(), Some(&key(i)[..]));
            let proof = arch.prove(root, &key(i)).expect("provable");
            assert_eq!(
                verify_proof(root, &key(i), &proof).expect("verifies"),
                Some(key(i).to_vec())
            );
        }
        assert_eq!(arch.get(root, &key(999)).expect("walk ok"), None);
    }

    #[test]
    fn empty_trie_commits_to_empty_root_without_nodes() {
        let mut arch = TrieArchive::new();
        let root = arch.commit(&mut Trie::new());
        assert_eq!(root, empty_root());
        assert_eq!(arch.node_count(), 0);
        assert!(arch.contains_root(root));
        assert_eq!(arch.get(root, b"x").expect("walk ok"), None);
        arch.release(root); // no-op, must not underflow
    }

    #[test]
    fn release_frees_exactly_the_unshared_nodes() {
        let mut arch = TrieArchive::new();
        let mut t = filled_trie(40);
        let r1 = arch.commit(&mut t);
        let after_one = arch.node_count();

        // One more key: the second commit only adds the changed spine.
        t.insert(&key(1000), key(1000).to_vec());
        let r2 = arch.commit(&mut t);
        assert_ne!(r1, r2);
        let after_two = arch.node_count();
        assert!(after_two > after_one);
        assert!(
            after_two - after_one < after_one,
            "second commit shares most nodes ({after_one} -> {after_two})"
        );

        // Releasing the old root keeps the new one fully readable…
        arch.release(r1);
        assert!(!arch.contains_root(r1));
        for i in 0..40 {
            assert_eq!(
                arch.get(r2, &key(i)).expect("walk ok").as_deref(),
                Some(&key(i)[..])
            );
        }
        // …and releasing the new root empties the archive completely.
        arch.release(r2);
        assert_eq!(arch.node_count(), 0, "no leaked nodes");
        assert_eq!(arch.byte_size(), 0);
    }

    #[test]
    fn windowed_commits_stay_bounded() {
        // Simulate a block-per-commit chain with a 4-root window: the
        // resident node count must plateau instead of growing with the
        // number of commits.
        let mut arch = TrieArchive::new();
        let mut t = filled_trie(64);
        let mut window = std::collections::VecDeque::new();
        let mut high_water = 0usize;
        for block in 0..200u64 {
            t.insert(&key(block % 16), keccak256(&block.to_be_bytes()).0.to_vec());
            let root = arch.commit(&mut t);
            window.push_back(root);
            if window.len() > 4 {
                arch.release(window.pop_front().expect("non-empty"));
            }
            if block == 50 {
                high_water = arch.node_count();
            }
            if block > 50 {
                assert!(
                    arch.node_count() <= high_water + 32,
                    "resident nodes grew without bound: {} at block {block}",
                    arch.node_count()
                );
            }
        }
        // Every retained root still serves proofs.
        for &root in &window {
            let proof = arch.prove(root, &key(3)).expect("in window");
            assert!(verify_proof(root, &key(3), &proof)
                .expect("verifies")
                .is_some());
        }
        // A long-released root no longer resolves.
        assert!(window.len() == 4);
    }

    #[test]
    fn released_root_reports_missing_nodes() {
        let mut arch = TrieArchive::new();
        let mut t = filled_trie(32);
        let r1 = arch.commit(&mut t);
        t.insert(&key(77), key(77).to_vec());
        let r2 = arch.commit(&mut t);
        arch.release(r1);
        // r1's unique nodes are gone: the walk reports which hash is
        // missing instead of fabricating an answer.
        match arch.get(r1, &key(0)) {
            Err(ProofError::MissingNode(_)) => {}
            other => panic!("expected MissingNode, got {other:?}"),
        }
        assert!(arch
            .get(r2, &key(0))
            .expect("current root intact")
            .is_some());
    }

    #[test]
    fn retain_bumps_without_walking() {
        let mut arch = TrieArchive::new();
        let mut t = filled_trie(16);
        let root = arch.commit(&mut t);
        assert!(arch.retain(root), "committed root retains");
        assert!(!arch.retain(keccak256(b"unknown")), "unknown root refused");
        assert!(arch.retain(empty_root()), "empty root trivially retained");
        arch.release(root);
        assert!(arch.contains_root(root), "second reference keeps it alive");
        arch.release(root);
        assert_eq!(arch.node_count(), 0);
    }

    #[test]
    fn secure_commit_matches_secure_trie_root() {
        let mut secure = SecureTrie::new();
        for i in 0..20u64 {
            secure.insert(&i.to_be_bytes(), key(i).to_vec());
        }
        let live = secure.root();
        let mut arch = TrieArchive::new();
        assert_eq!(arch.commit_secure(&mut secure), live);
        let got = arch.get_secure(live, &7u64.to_be_bytes()).expect("walk ok");
        assert_eq!(got.as_deref(), Some(&key(7)[..]));
        let proof = arch.prove_secure(live, &7u64.to_be_bytes()).expect("ok");
        assert_eq!(
            crate::verify_secure_proof(live, &7u64.to_be_bytes(), &proof).expect("verifies"),
            Some(key(7).to_vec())
        );
    }
}
