//! The in-memory node tree behind [`crate::Trie`].
//!
//! Nodes follow the Yellow Paper's three shapes — leaf, extension and
//! 17-slot branch — and every node carries a cached RLP *reference*:
//! the inline item when its encoding is shorter than 32 bytes, else the
//! keccak-256 of the encoding. Mutations clear the caches along the
//! touched path only, so recomputing the root after a batch of writes
//! re-hashes just the dirty spine (the "dirty-node cache" the block
//! sealer relies on).

use crate::nibbles::hp_encode;
use sc_crypto::keccak256;
use sc_primitives::rlp::{self, Item};

#[derive(Debug, Clone)]
pub(crate) enum Node {
    /// Terminates a path with a value.
    Leaf { path: Vec<u8>, value: Vec<u8> },
    /// Shares a run of nibbles common to every key below it.
    Extension { path: Vec<u8>, child: Box<Entry> },
    /// One slot per nibble plus a value for keys ending here.
    Branch {
        children: Box<[Child; 16]>,
        value: Option<Vec<u8>>,
    },
}

/// A node plus its memoised RLP reference.
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub(crate) node: Node,
    /// `None` while dirty; recomputed lazily by [`Entry::node_ref`].
    cached_ref: Option<Item>,
}

pub(crate) type Child = Option<Box<Entry>>;

fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

impl Entry {
    fn new(node: Node) -> Box<Entry> {
        Box::new(Entry {
            node,
            cached_ref: None,
        })
    }

    fn restore(node: Node, cached_ref: Option<Item>) -> Box<Entry> {
        Box::new(Entry { node, cached_ref })
    }

    fn leaf(path: &[u8], value: Vec<u8>) -> Box<Entry> {
        Entry::new(Node::Leaf {
            path: path.to_vec(),
            value,
        })
    }

    /// This node as an RLP item (children folded to their references).
    fn item(&mut self) -> Item {
        match &mut self.node {
            Node::Leaf { path, value } => Item::List(vec![
                Item::Bytes(hp_encode(path, true)),
                Item::Bytes(value.clone()),
            ]),
            Node::Extension { path, child } => {
                Item::List(vec![Item::Bytes(hp_encode(path, false)), child.node_ref()])
            }
            Node::Branch { children, value } => {
                let mut items = Vec::with_capacity(17);
                for slot in children.iter_mut() {
                    items.push(match slot {
                        Some(c) => c.node_ref(),
                        None => Item::Bytes(Vec::new()),
                    });
                }
                items.push(Item::Bytes(value.clone().unwrap_or_default()));
                Item::List(items)
            }
        }
    }

    /// Full RLP encoding of this node.
    pub(crate) fn encode(&mut self) -> Vec<u8> {
        let item = self.item();
        rlp::encode(&item)
    }

    /// The reference a parent embeds: the node itself when the encoding
    /// is shorter than 32 bytes, otherwise its keccak-256 hash.
    pub(crate) fn node_ref(&mut self) -> Item {
        if let Some(r) = &self.cached_ref {
            return r.clone();
        }
        let item = self.item();
        let enc = rlp::encode(&item);
        let r = if enc.len() < 32 {
            item
        } else {
            Item::Bytes(keccak256(&enc).as_bytes().to_vec())
        };
        self.cached_ref = Some(r.clone());
        r
    }

    /// True when a parent refers to this node by hash — i.e. when the
    /// node contributes its own entry to a Merkle proof.
    pub(crate) fn is_hash_referenced(&mut self) -> bool {
        matches!(self.node_ref(), Item::Bytes(_))
    }

    pub(crate) fn get<'a>(&'a self, n: &[u8]) -> Option<&'a [u8]> {
        match &self.node {
            Node::Leaf { path, value } => (path.as_slice() == n).then_some(value.as_slice()),
            Node::Extension { path, child } => n
                .strip_prefix(path.as_slice())
                .and_then(|rest| child.get(rest)),
            Node::Branch { children, value } => match n.split_first() {
                None => value.as_deref(),
                Some((&i, rest)) => children[i as usize].as_ref()?.get(rest),
            },
        }
    }
}

/// Inserts `value` at nibble path `n`, returning the new subtree root.
/// Nodes along the insertion path are rebuilt with cleared ref caches;
/// untouched siblings keep theirs.
pub(crate) fn insert(entry: Child, n: &[u8], value: Vec<u8>) -> Box<Entry> {
    let Some(e) = entry else {
        return Entry::leaf(n, value);
    };
    match e.node {
        Node::Leaf { path, value: old } => {
            if path.as_slice() == n {
                return Entry::new(Node::Leaf { path, value });
            }
            let cp = common_prefix(&path, n);
            split_into_branch(cp, (&path, old), n, value)
        }
        Node::Extension { path, child } => {
            let cp = common_prefix(&path, n);
            if cp == path.len() {
                let child = insert(Some(child), &n[cp..], value);
                return Entry::new(Node::Extension { path, child });
            }
            // Diverge: push the extension's remainder under a branch.
            let mut children: Box<[Child; 16]> = Default::default();
            children[path[cp] as usize] = Some(if path.len() == cp + 1 {
                child
            } else {
                Entry::new(Node::Extension {
                    path: path[cp + 1..].to_vec(),
                    child,
                })
            });
            let mut bvalue = None;
            if n.len() == cp {
                bvalue = Some(value);
            } else {
                children[n[cp] as usize] = Some(Entry::leaf(&n[cp + 1..], value));
            }
            wrap_prefix(
                &path[..cp],
                Entry::new(Node::Branch {
                    children,
                    value: bvalue,
                }),
            )
        }
        Node::Branch {
            mut children,
            value: v,
        } => match n.split_first() {
            None => Entry::new(Node::Branch {
                children,
                value: Some(value),
            }),
            Some((&i, rest)) => {
                let slot = children[i as usize].take();
                children[i as usize] = Some(insert(slot, rest, value));
                Entry::new(Node::Branch { children, value: v })
            }
        },
    }
}

/// Builds the branch that separates an old leaf from a new key after
/// their shared prefix of length `cp`.
fn split_into_branch(cp: usize, old: (&[u8], Vec<u8>), n: &[u8], value: Vec<u8>) -> Box<Entry> {
    let mut children: Box<[Child; 16]> = Default::default();
    let mut bvalue = None;
    for (path, val) in [(old.0, old.1), (n, value)] {
        if path.len() == cp {
            bvalue = Some(val);
        } else {
            children[path[cp] as usize] = Some(Entry::leaf(&path[cp + 1..], val));
        }
    }
    wrap_prefix(
        &n[..cp],
        Entry::new(Node::Branch {
            children,
            value: bvalue,
        }),
    )
}

/// Prefixes `entry` with an extension when the shared path is non-empty.
fn wrap_prefix(prefix: &[u8], entry: Box<Entry>) -> Box<Entry> {
    if prefix.is_empty() {
        entry
    } else {
        Entry::new(Node::Extension {
            path: prefix.to_vec(),
            child: entry,
        })
    }
}

/// Folds `prefix` onto a subtree that lost its parent branch slot: leaf
/// and extension children absorb the prefix into their own path, branch
/// children get a fresh extension above them.
fn merge_prefix(mut prefix: Vec<u8>, child: Box<Entry>) -> Box<Entry> {
    match child.node {
        Node::Leaf { path, value } => {
            prefix.extend_from_slice(&path);
            Entry::new(Node::Leaf {
                path: prefix,
                value,
            })
        }
        Node::Extension { path, child } => {
            prefix.extend_from_slice(&path);
            Entry::new(Node::Extension {
                path: prefix,
                child,
            })
        }
        Node::Branch { .. } => Entry::new(Node::Extension {
            path: prefix,
            child,
        }),
    }
}

/// Removes the value at `n`; returns the surviving subtree and the
/// removed value. When the key was absent the tree — including its ref
/// caches — is returned untouched.
pub(crate) fn remove(entry: Child, n: &[u8]) -> (Child, Option<Vec<u8>>) {
    let Some(e) = entry else {
        return (None, None);
    };
    let Entry { node, cached_ref } = *e;
    match node {
        Node::Leaf { path, value } => {
            if path.as_slice() == n {
                (None, Some(value))
            } else {
                (
                    Some(Entry::restore(Node::Leaf { path, value }, cached_ref)),
                    None,
                )
            }
        }
        Node::Extension { path, child } => {
            let Some(rest) = n.strip_prefix(path.as_slice()).map(<[u8]>::to_vec) else {
                return (
                    Some(Entry::restore(Node::Extension { path, child }, cached_ref)),
                    None,
                );
            };
            let (sub, removed) = remove(Some(child), &rest);
            match (sub, removed) {
                (Some(sub), None) => (
                    Some(Entry::restore(
                        Node::Extension { path, child: sub },
                        cached_ref,
                    )),
                    None,
                ),
                (None, removed) => (None, removed),
                (Some(sub), removed) => (Some(merge_prefix(path, sub)), removed),
            }
        }
        Node::Branch {
            mut children,
            value,
        } => match n.split_first() {
            None => match value {
                None => (
                    Some(Entry::restore(Node::Branch { children, value }, cached_ref)),
                    None,
                ),
                Some(v) => (collapse_branch(children, None), Some(v)),
            },
            Some((&i, rest)) => {
                let slot = children[i as usize].take();
                let (sub, removed) = remove(slot, rest);
                children[i as usize] = sub;
                if removed.is_none() {
                    (
                        Some(Entry::restore(Node::Branch { children, value }, cached_ref)),
                        None,
                    )
                } else {
                    (collapse_branch(children, value), removed)
                }
            }
        },
    }
}

/// Restores the branch invariant (≥ 2 references) after a removal by
/// demoting a branch left with a single reference.
fn collapse_branch(mut children: Box<[Child; 16]>, value: Option<Vec<u8>>) -> Child {
    let live: Vec<usize> = (0..16).filter(|&i| children[i].is_some()).collect();
    match (live.len(), value) {
        (0, None) => None,
        (0, Some(v)) => Some(Entry::leaf(&[], v)),
        (1, None) => {
            let child = children[live[0]].take().expect("slot checked live");
            Some(merge_prefix(vec![live[0] as u8], child))
        }
        (_, value) => Some(Entry::new(Node::Branch { children, value })),
    }
}
