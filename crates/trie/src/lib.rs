//! A secure Merkle-Patricia trie (MPT) over [`sc_primitives::rlp`] and
//! keccak-256 — the authenticated key/value store behind the chain's
//! `state_root` and `receipts_root` commitments.
//!
//! The layout is the Yellow Paper's (Appendix D): leaf / extension /
//! branch nodes, hex-prefix path packing, and node references that
//! inline encodings shorter than 32 bytes. Two entry points:
//!
//! * [`Trie`] — raw byte keys, used for the receipts trie (keyed by
//!   `rlp(index)`).
//! * [`SecureTrie`] — keys pre-hashed with keccak-256, used for the
//!   account trie (keyed by `keccak(address)`) and per-account storage
//!   tries (keyed by `keccak(slot)`), so adversarial keys cannot craft
//!   deep unbalanced paths.
//!
//! Roots are *incremental*: every node memoises its RLP reference and a
//! mutation invalidates only the path it touched, so folding a block's
//! worth of writes re-hashes just the dirty spine ([`Trie::root`]).
//! [`Trie::prove`] extracts the hash-referenced nodes along a lookup
//! path and [`verify_proof`] replays them statelessly against a root —
//! for both inclusion and exclusion.

mod archive;
mod nibbles;
mod node;
mod proof;

pub use archive::TrieArchive;
pub use nibbles::{hp_decode, hp_encode, to_nibbles};
pub use proof::{verify_proof, ProofError};

use node::Child;
use sc_crypto::keccak256;
use sc_primitives::H256;
use std::sync::OnceLock;

/// Root hash of the empty trie: `keccak256(rlp(""))` =
/// `0x56e81f17…b421`.
pub fn empty_root() -> H256 {
    static ROOT: OnceLock<H256> = OnceLock::new();
    *ROOT.get_or_init(|| keccak256(&[0x80]))
}

/// A Merkle-Patricia trie over raw byte keys.
///
/// Inserting an empty value removes the key — Ethereum's convention,
/// which keeps "zero storage slot" and "absent storage slot"
/// indistinguishable under one root.
#[derive(Debug, Clone, Default)]
pub struct Trie {
    root: Child,
}

impl Trie {
    /// An empty trie (root = [`empty_root`]).
    pub fn new() -> Trie {
        Trie::default()
    }

    /// True when the trie holds no keys.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Binds `key` to `value`; an empty `value` deletes the key.
    pub fn insert(&mut self, key: &[u8], value: impl Into<Vec<u8>>) {
        let value = value.into();
        if value.is_empty() {
            self.remove(key);
            return;
        }
        let n = nibbles::to_nibbles(key);
        self.root = Some(node::insert(self.root.take(), &n, value));
    }

    /// Deletes `key`, returning whether it was present.
    pub fn remove(&mut self, key: &[u8]) -> bool {
        let n = nibbles::to_nibbles(key);
        let (root, removed) = node::remove(self.root.take(), &n);
        self.root = root;
        removed.is_some()
    }

    /// Looks up `key` in the in-memory tree (no hashing involved).
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        let n = nibbles::to_nibbles(key);
        self.root.as_ref()?.get(&n)
    }

    /// The Merkle root. Incremental: only nodes dirtied since the last
    /// call are re-encoded and re-hashed.
    pub fn root(&mut self) -> H256 {
        match self.root.as_mut() {
            None => empty_root(),
            Some(e) => keccak256(&e.encode()),
        }
    }

    /// Number of nodes in the in-memory tree (leaf + extension +
    /// branch), a live-memory diagnostic for the pruning bench.
    pub fn node_count(&self) -> usize {
        fn count(entry: &node::Entry) -> usize {
            match &entry.node {
                node::Node::Leaf { .. } => 1,
                node::Node::Extension { child, .. } => 1 + count(child),
                node::Node::Branch { children, .. } => {
                    1 + children.iter().flatten().map(|c| count(c)).sum::<usize>()
                }
            }
        }
        self.root.as_deref().map_or(0, count)
    }
}

/// A trie whose keys are keccak-256 hashed before insertion — the
/// "secure" trie Ethereum uses for accounts and storage.
#[derive(Debug, Clone, Default)]
pub struct SecureTrie {
    inner: Trie,
}

impl SecureTrie {
    /// An empty secure trie.
    pub fn new() -> SecureTrie {
        SecureTrie::default()
    }

    /// True when the trie holds no keys.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Binds `keccak(key)` to `value`; an empty `value` deletes.
    pub fn insert(&mut self, key: &[u8], value: impl Into<Vec<u8>>) {
        self.inner.insert(keccak256(key).as_bytes(), value);
    }

    /// Deletes `key`, returning whether it was present.
    pub fn remove(&mut self, key: &[u8]) -> bool {
        self.inner.remove(keccak256(key).as_bytes())
    }

    /// Looks up `key`.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.inner.get(keccak256(key).as_bytes())
    }

    /// The Merkle root (see [`Trie::root`]).
    pub fn root(&mut self) -> H256 {
        self.inner.root()
    }

    /// Number of nodes in the in-memory tree (see [`Trie::node_count`]).
    pub fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    /// Merkle proof for `key` (see [`Trie::prove`]); verify with
    /// [`verify_secure_proof`].
    pub fn prove(&mut self, key: &[u8]) -> Vec<Vec<u8>> {
        self.inner.prove(keccak256(key).as_bytes())
    }
}

/// [`verify_proof`] for a [`SecureTrie`]: hashes `key` first.
pub fn verify_secure_proof(
    root: H256,
    key: &[u8],
    proof: &[Vec<u8>],
) -> Result<Option<Vec<u8>>, ProofError> {
    verify_proof(root, keccak256(key).as_bytes(), proof)
}
