//! Nibble paths and the hex-prefix encoding from the Yellow Paper
//! (Appendix C).
//!
//! Trie keys are walked four bits at a time. When a partial path is
//! stored inside a leaf or extension node it is packed back into bytes
//! with a flag nibble that records (a) whether the node is a leaf and
//! (b) whether the path has odd length.

use crate::ProofError;

/// Expands a byte key into its nibble path (high nibble first).
pub fn to_nibbles(key: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(key.len() * 2);
    for &b in key {
        out.push(b >> 4);
        out.push(b & 0x0f);
    }
    out
}

/// Packs a nibble path into the hex-prefix form stored in leaf
/// (`is_leaf = true`) and extension nodes.
pub fn hp_encode(nibbles: &[u8], is_leaf: bool) -> Vec<u8> {
    let mut flag = if is_leaf { 0x20u8 } else { 0x00 };
    let mut out = Vec::with_capacity(nibbles.len() / 2 + 1);
    let rest = if nibbles.len() % 2 == 1 {
        flag |= 0x10 | nibbles[0];
        &nibbles[1..]
    } else {
        nibbles
    };
    out.push(flag);
    for pair in rest.chunks(2) {
        out.push((pair[0] << 4) | pair[1]);
    }
    out
}

/// Inverse of [`hp_encode`]: recovers the nibble path and the leaf flag.
pub fn hp_decode(bytes: &[u8]) -> Result<(Vec<u8>, bool), ProofError> {
    let (&flag, rest) = bytes.split_first().ok_or(ProofError::BadNode)?;
    if flag & 0xc0 != 0 {
        return Err(ProofError::BadNode); // high bits must be clear
    }
    let is_leaf = flag & 0x20 != 0;
    let mut nibbles = Vec::with_capacity(rest.len() * 2 + 1);
    if flag & 0x10 != 0 {
        nibbles.push(flag & 0x0f);
    } else if flag & 0x0f != 0 {
        return Err(ProofError::BadNode); // even form must zero the pad nibble
    }
    for &b in rest {
        nibbles.push(b >> 4);
        nibbles.push(b & 0x0f);
    }
    Ok((nibbles, is_leaf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yellow_paper_examples() {
        // Appendix C worked examples.
        assert_eq!(hp_encode(&[1, 2, 3, 4, 5], false), vec![0x11, 0x23, 0x45]);
        assert_eq!(
            hp_encode(&[0, 1, 2, 3, 4, 5], false),
            vec![0x00, 0x01, 0x23, 0x45]
        );
        assert_eq!(
            hp_encode(&[0x0f, 1, 0x0c, 0x0b, 8], true),
            vec![0x3f, 0x1c, 0xb8]
        );
        assert_eq!(hp_encode(&[], true), vec![0x20]);
    }

    #[test]
    fn roundtrip() {
        for nibbles in [vec![], vec![7], vec![1, 2], vec![0, 0, 0], vec![15; 9]] {
            for is_leaf in [false, true] {
                let enc = hp_encode(&nibbles, is_leaf);
                assert_eq!(hp_decode(&enc).unwrap(), (nibbles.clone(), is_leaf));
            }
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(hp_decode(&[]).is_err());
        assert!(hp_decode(&[0x40]).is_err()); // high bit set
        assert!(hp_decode(&[0x05]).is_err()); // even form with dirty pad
    }

    #[test]
    fn nibbles_high_first() {
        assert_eq!(to_nibbles(&[0xab, 0x01]), vec![0x0a, 0x0b, 0x00, 0x01]);
    }
}
