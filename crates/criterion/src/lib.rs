//! A vendored, std-only benchmarking shim.
//!
//! Re-implements the subset of the `criterion` crate's API that this
//! workspace's bench targets use (`Criterion`, `benchmark_group`,
//! `bench_function`, `iter`, `iter_batched`, `Throughput`, `BatchSize`,
//! and the `criterion_group!`/`criterion_main!` macros) so that
//! `cargo bench` compiles and runs **without network access to a crates
//! registry**.
//!
//! Measurement model: each benchmark warms up briefly, then runs timed
//! batches until a wall-clock budget is exhausted, reporting the median
//! per-iteration time. There are no plots, baselines, or statistical
//! regressions — numbers print to stdout in a `name ... time: X`
//! format.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Wall-clock budget spent measuring each benchmark function.
const MEASURE_BUDGET: Duration = Duration::from_millis(400);
/// Wall-clock budget spent warming up each benchmark function.
const WARMUP_BUDGET: Duration = Duration::from_millis(80);

/// Throughput annotation for a benchmark group (printed, not analysed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How much setup output to batch per timing in
/// [`Bencher::iter_batched`]. The shim times one setup per routine call
/// regardless, so the variants only express intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Larger per-iteration input.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&name.into(), None, f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by a time
    /// budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(&full, self.throughput, f);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to benchmark closures; hosts the timing loops.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back-to-back for this sample's iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh `setup` output each iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark(name: &str, throughput: Option<Throughput>, mut f: impl FnMut(&mut Bencher)) {
    // Warmup: also calibrates how many iterations fit the budget.
    let mut per_iter = {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_secs(1);
        while warm_start.elapsed() < WARMUP_BUDGET {
            f(&mut b);
            per_iter = per_iter.min(b.elapsed.max(Duration::from_nanos(1)));
        }
        per_iter
    };

    // Measurement: samples of `iters` iterations until the budget runs out.
    let iters = (MEASURE_BUDGET.as_nanos() / 16 / per_iter.as_nanos().max(1)).clamp(1, 1 << 20);
    let mut samples: Vec<Duration> = Vec::new();
    let start = Instant::now();
    while samples.is_empty() || (start.elapsed() < MEASURE_BUDGET && samples.len() < 200) {
        let mut b = Bencher {
            iters: iters as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / iters as u32);
    }
    samples.sort();
    per_iter = samples[samples.len() / 2];

    let mut line = format!("  {name:<48} time: {}", fmt_duration(per_iter));
    if let Some(Throughput::Bytes(bytes)) = throughput {
        let bps = bytes as f64 / per_iter.as_secs_f64();
        line.push_str(&format!("   thrpt: {:.1} MiB/s", bps / (1024.0 * 1024.0)));
    } else if let Some(Throughput::Elements(n)) = throughput {
        let eps = n as f64 / per_iter.as_secs_f64();
        line.push_str(&format!("   thrpt: {eps:.0} elem/s"));
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_measures_something() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        b.iter(|| black_box(3u64.wrapping_mul(7)));
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
