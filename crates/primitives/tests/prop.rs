//! Property-based tests for the primitive types against reference models.

use proptest::prelude::*;
use sc_primitives::abi::{self, Type, Value};
use sc_primitives::rlp::{self, Item};
use sc_primitives::{hex, Address, H256, U256};

fn arb_u256() -> impl Strategy<Value = U256> {
    // Mix of full-range words and small/structured values so limb
    // boundaries get exercised.
    prop_oneof![
        any::<[u64; 4]>().prop_map(U256),
        any::<u64>().prop_map(U256::from_u64),
        any::<u64>().prop_map(|v| U256([0, 0, 0, v])),
        Just(U256::ZERO),
        Just(U256::ONE),
        Just(U256::MAX),
    ]
}

proptest! {
    // ----- U256 vs u128 reference model -----

    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = U256::from_u64(a).wrapping_add(U256::from_u64(b));
        prop_assert_eq!(sum, U256::from_u128(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = U256::from_u64(a).wrapping_mul(U256::from_u64(b));
        prop_assert_eq!(prod, U256::from_u128(a as u128 * b as u128));
    }

    #[test]
    #[allow(clippy::manual_checked_ops)]
    fn div_rem_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (q, r) = U256::from_u128(a).div_rem(U256::from_u128(b));
        if b == 0 {
            prop_assert_eq!(q, U256::ZERO);
            prop_assert_eq!(r, U256::ZERO);
        } else {
            prop_assert_eq!(q, U256::from_u128(a / b));
            prop_assert_eq!(r, U256::from_u128(a % b));
        }
    }

    // ----- algebraic laws on the full domain -----

    #[test]
    fn add_is_commutative(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
    }

    #[test]
    fn add_sub_roundtrip(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
    }

    #[test]
    fn mul_is_commutative(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_mul(b), b.wrapping_mul(a));
    }

    #[test]
    fn mul_distributes_over_add(a in arb_u256(), b in arb_u256(), c in arb_u256()) {
        let left = a.wrapping_mul(b.wrapping_add(c));
        let right = a.wrapping_mul(b).wrapping_add(a.wrapping_mul(c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn div_rem_reconstructs(a in arb_u256(), b in arb_u256()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(b);
        prop_assert!(r < b);
        prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
    }

    #[test]
    fn shifts_compose(a in arb_u256(), n in 0u32..256, m in 0u32..256) {
        let both = a.shl_bits(n).shl_bits(m);
        let once = if n as u64 + m as u64 >= 256 { U256::ZERO } else { a.shl_bits(n + m) };
        prop_assert_eq!(both, once);
    }

    #[test]
    fn shr_then_shl_masks_low_bits(a in arb_u256(), n in 0u32..256) {
        let v = a.shr_bits(n).shl_bits(n);
        let mask = if n == 0 { U256::MAX } else { U256::MAX.shl_bits(n) };
        prop_assert_eq!(v, a & mask);
    }

    #[test]
    fn neg_is_involution(a in arb_u256()) {
        prop_assert_eq!(a.neg().neg(), a);
    }

    #[test]
    fn sdiv_smod_reconstruct(a in arb_u256(), b in arb_u256()) {
        prop_assume!(!b.is_zero());
        // a == sdiv(a,b) * b + smod(a,b)  (all wrapping two's-complement)
        let q = a.sdiv(b);
        let r = a.smod(b);
        prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
    }

    #[test]
    fn mulmod_matches_naive_when_small(a in any::<u64>(), b in any::<u64>(), m in 1u64..) {
        let got = U256::from_u64(a).mulmod(U256::from_u64(b), U256::from_u64(m));
        let expect = ((a as u128 * b as u128) % m as u128) as u64;
        prop_assert_eq!(got, U256::from_u64(expect));
    }

    #[test]
    fn addmod_matches_naive_when_small(a in any::<u64>(), b in any::<u64>(), m in 1u64..) {
        let got = U256::from_u64(a).addmod(U256::from_u64(b), U256::from_u64(m));
        let expect = ((a as u128 + b as u128) % m as u128) as u64;
        prop_assert_eq!(got, U256::from_u64(expect));
    }

    #[test]
    fn be_bytes_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_be_bytes(a.to_be_bytes()), a);
        prop_assert_eq!(U256::from_be_slice(&a.to_be_bytes_trimmed()), a);
    }

    #[test]
    fn dec_string_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_dec_str(&a.to_dec_string()).unwrap(), a);
    }

    #[test]
    fn hex_string_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_hex_str(&format!("{a:x}")).unwrap(), a);
    }

    // ----- hex -----

    #[test]
    fn hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(hex::decode(&hex::encode(&data)).unwrap(), data);
    }

    // ----- RLP -----

    #[test]
    fn rlp_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let item = Item::Bytes(data);
        prop_assert_eq!(rlp::decode(&rlp::encode(&item)).unwrap(), item);
    }

    #[test]
    fn rlp_uint_roundtrip(a in arb_u256()) {
        let item = Item::uint(a);
        let dec = rlp::decode(&rlp::encode(&item)).unwrap();
        prop_assert_eq!(dec.as_uint(), Some(a));
    }

    #[test]
    fn rlp_list_roundtrip(vals in proptest::collection::vec(any::<u64>(), 0..40)) {
        let item = Item::List(vals.into_iter().map(Item::u64).collect());
        prop_assert_eq!(rlp::decode(&rlp::encode(&item)).unwrap(), item);
    }

    // ----- ABI -----

    #[test]
    fn abi_roundtrip(
        n in arb_u256(),
        flag in any::<bool>(),
        addr in any::<[u8; 20]>(),
        h in any::<[u8; 32]>(),
        blob in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let vals = vec![
            Value::Uint(n),
            Value::Bytes(blob),
            Value::Bool(flag),
            Value::Address(Address(addr)),
            Value::Bytes32(H256(h)),
        ];
        let enc = abi::encode(&vals);
        let dec = abi::decode(
            &[Type::Uint, Type::Bytes, Type::Bool, Type::Address, Type::Bytes32],
            &enc,
        ).unwrap();
        prop_assert_eq!(dec, vals);
    }

    #[test]
    fn abi_two_dynamic_args(
        a in proptest::collection::vec(any::<u8>(), 0..100),
        b in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        let vals = vec![Value::Bytes(a), Value::Uint(U256::ONE), Value::Bytes(b)];
        let enc = abi::encode(&vals);
        let dec = abi::decode(&[Type::Bytes, Type::Uint, Type::Bytes], &enc).unwrap();
        prop_assert_eq!(dec, vals);
    }
}
