//! Recursive Length Prefix (RLP) encoding and decoding.
//!
//! RLP is Ethereum's canonical serialization. The chain simulator uses it
//! for transaction signing payloads and — critically for the paper's
//! mechanism — for the contract-address derivation
//! `CA = keccak(rlp([sender, nonce]))[12..]`.

use crate::hash::Address;
use crate::u256::U256;
use std::fmt;

/// An RLP item: either a byte string or a list of items.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A byte string (possibly empty).
    Bytes(Vec<u8>),
    /// A (possibly empty) list of nested items.
    List(Vec<Item>),
}

/// Error returned by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the announced payload.
    UnexpectedEof,
    /// A multi-byte length had leading zeros or a single byte was encoded
    /// long-form — both are non-canonical under RLP.
    NonCanonical,
    /// Trailing bytes after the top-level item.
    TrailingBytes,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "input too short"),
            DecodeError::NonCanonical => write!(f, "non-canonical RLP encoding"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after item"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Item {
    /// Convenience constructor for a byte-string item.
    pub fn bytes(b: impl Into<Vec<u8>>) -> Item {
        Item::Bytes(b.into())
    }

    /// Encodes a `U256` in RLP's canonical integer form: big-endian with no
    /// leading zeros, the empty string for zero.
    pub fn uint(v: U256) -> Item {
        Item::Bytes(v.to_be_bytes_trimmed())
    }

    /// Encodes a `u64` like [`Item::uint`].
    pub fn u64(v: u64) -> Item {
        Item::uint(U256::from_u64(v))
    }

    /// Encodes an address as its 20 raw bytes.
    pub fn address(a: Address) -> Item {
        Item::Bytes(a.0.to_vec())
    }

    /// Interprets a byte-string item as a canonical unsigned integer.
    pub fn as_uint(&self) -> Option<U256> {
        match self {
            Item::Bytes(b) if b.len() <= 32 => {
                if b.first() == Some(&0) {
                    return None; // leading zero: non-canonical integer
                }
                Some(U256::from_be_slice(b))
            }
            _ => None,
        }
    }
}

/// Encodes an item to its RLP byte representation.
pub fn encode(item: &Item) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(item, &mut out);
    out
}

/// Encodes a list of items (the most common top-level shape).
pub fn encode_list(items: &[Item]) -> Vec<u8> {
    encode(&Item::List(items.to_vec()))
}

fn encode_into(item: &Item, out: &mut Vec<u8>) {
    match item {
        Item::Bytes(b) => {
            if b.len() == 1 && b[0] < 0x80 {
                out.push(b[0]);
            } else {
                encode_length(b.len(), 0x80, out);
                out.extend_from_slice(b);
            }
        }
        Item::List(items) => {
            let mut payload = Vec::new();
            for it in items {
                encode_into(it, &mut payload);
            }
            encode_length(payload.len(), 0xc0, out);
            out.extend_from_slice(&payload);
        }
    }
}

fn encode_length(len: usize, offset: u8, out: &mut Vec<u8>) {
    if len < 56 {
        out.push(offset + len as u8);
    } else {
        let be = (len as u64).to_be_bytes();
        let first = be.iter().position(|&b| b != 0).unwrap_or(7);
        let len_bytes = &be[first..];
        out.push(offset + 55 + len_bytes.len() as u8);
        out.extend_from_slice(len_bytes);
    }
}

/// Decodes a complete RLP item; rejects trailing bytes.
pub fn decode(input: &[u8]) -> Result<Item, DecodeError> {
    let (item, rest) = decode_partial(input)?;
    if !rest.is_empty() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(item)
}

/// Decodes one item, returning the remaining bytes.
pub fn decode_partial(input: &[u8]) -> Result<(Item, &[u8]), DecodeError> {
    let (&prefix, rest) = input.split_first().ok_or(DecodeError::UnexpectedEof)?;
    match prefix {
        0x00..=0x7f => Ok((Item::Bytes(vec![prefix]), rest)),
        0x80..=0xb7 => {
            let len = (prefix - 0x80) as usize;
            let (payload, rest) = split_checked(rest, len)?;
            if len == 1 && payload[0] < 0x80 {
                return Err(DecodeError::NonCanonical);
            }
            Ok((Item::Bytes(payload.to_vec()), rest))
        }
        0xb8..=0xbf => {
            let len_len = (prefix - 0xb7) as usize;
            let (len, rest) = read_length(rest, len_len)?;
            let (payload, rest) = split_checked(rest, len)?;
            Ok((Item::Bytes(payload.to_vec()), rest))
        }
        0xc0..=0xf7 => {
            let len = (prefix - 0xc0) as usize;
            let (mut payload, rest) = split_checked(rest, len)?;
            let mut items = Vec::new();
            while !payload.is_empty() {
                let (item, next) = decode_partial(payload)?;
                items.push(item);
                payload = next;
            }
            Ok((Item::List(items), rest))
        }
        0xf8..=0xff => {
            let len_len = (prefix - 0xf7) as usize;
            let (len, rest) = read_length(rest, len_len)?;
            let (mut payload, rest) = split_checked(rest, len)?;
            let mut items = Vec::new();
            while !payload.is_empty() {
                let (item, next) = decode_partial(payload)?;
                items.push(item);
                payload = next;
            }
            Ok((Item::List(items), rest))
        }
    }
}

fn read_length(input: &[u8], len_len: usize) -> Result<(usize, &[u8]), DecodeError> {
    let (len_bytes, rest) = split_checked(input, len_len)?;
    if len_bytes.first() == Some(&0) {
        return Err(DecodeError::NonCanonical);
    }
    let mut len = 0usize;
    for &b in len_bytes {
        len = len
            .checked_mul(256)
            .and_then(|l| l.checked_add(b as usize))
            .ok_or(DecodeError::NonCanonical)?;
    }
    if len < 56 {
        return Err(DecodeError::NonCanonical); // should have used short form
    }
    Ok((len, rest))
}

fn split_checked(input: &[u8], len: usize) -> Result<(&[u8], &[u8]), DecodeError> {
    if input.len() < len {
        return Err(DecodeError::UnexpectedEof);
    }
    Ok(input.split_at(len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_vectors() {
        // Classic test vectors from the Ethereum wiki.
        assert_eq!(
            encode(&Item::bytes(b"dog".to_vec())),
            vec![0x83, b'd', b'o', b'g']
        );
        assert_eq!(
            encode(&Item::List(vec![
                Item::bytes(b"cat".to_vec()),
                Item::bytes(b"dog".to_vec())
            ])),
            vec![0xc8, 0x83, b'c', b'a', b't', 0x83, b'd', b'o', b'g']
        );
        assert_eq!(encode(&Item::bytes(Vec::new())), vec![0x80]);
        assert_eq!(encode(&Item::List(vec![])), vec![0xc0]);
        assert_eq!(encode(&Item::uint(U256::ZERO)), vec![0x80]);
        assert_eq!(encode(&Item::uint(U256::from_u64(15))), vec![0x0f]);
        assert_eq!(
            encode(&Item::uint(U256::from_u64(1024))),
            vec![0x82, 0x04, 0x00]
        );
        // "Lorem ipsum..." long-string prefix: 0xb8 + len
        let lorem = b"Lorem ipsum dolor sit amet, consectetur adipisicing elit".to_vec();
        let enc = encode(&Item::bytes(lorem.clone()));
        assert_eq!(enc[0], 0xb8);
        assert_eq!(enc[1], lorem.len() as u8);
    }

    #[test]
    fn nested_list_vector() {
        // [ [], [[]], [ [], [[]] ] ]
        let item = Item::List(vec![
            Item::List(vec![]),
            Item::List(vec![Item::List(vec![])]),
            Item::List(vec![
                Item::List(vec![]),
                Item::List(vec![Item::List(vec![])]),
            ]),
        ]);
        assert_eq!(
            encode(&item),
            vec![0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0]
        );
        assert_eq!(decode(&encode(&item)).unwrap(), item);
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut enc = encode(&Item::bytes(b"dog".to_vec()));
        enc.push(0x00);
        assert_eq!(decode(&enc), Err(DecodeError::TrailingBytes));
    }

    #[test]
    fn decode_rejects_non_canonical_single_byte() {
        // 0x81 0x05 encodes 0x05 long-form; canonical is plain 0x05.
        assert_eq!(decode(&[0x81, 0x05]), Err(DecodeError::NonCanonical));
    }

    #[test]
    fn decode_rejects_truncated_payload() {
        assert_eq!(decode(&[0x83, b'd', b'o']), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn long_list_roundtrip() {
        let items: Vec<Item> = (0..100).map(|i| Item::u64(i * 7919)).collect();
        let enc = encode_list(&items);
        assert_eq!(decode(&enc).unwrap(), Item::List(items));
    }

    #[test]
    fn uint_decoding_rejects_leading_zero() {
        let item = Item::Bytes(vec![0x00, 0x01]);
        assert_eq!(item.as_uint(), None);
        assert_eq!(Item::Bytes(vec![0x01]).as_uint(), Some(U256::ONE));
        assert_eq!(Item::Bytes(vec![]).as_uint(), Some(U256::ZERO));
    }

    #[test]
    fn address_item_is_20_raw_bytes() {
        let a = Address([0xab; 20]);
        let enc = encode(&Item::address(a));
        assert_eq!(enc.len(), 21);
        assert_eq!(enc[0], 0x80 + 20);
    }
}
