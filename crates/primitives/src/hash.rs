//! Fixed-size byte-array types: 20-byte addresses and 32-byte hashes.

use crate::hex;
use crate::u256::U256;
use std::fmt;

/// A 160-bit Ethereum-style account address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub [u8; 20]);

/// A 256-bit hash (keccak digest, storage key, …).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct H256(pub [u8; 32]);

impl Address {
    /// The zero address, used by the EVM for "no address".
    pub const ZERO: Address = Address([0u8; 20]);

    /// Builds an address from the low 20 bytes of a hash (Ethereum's
    /// convention for deriving addresses from keccak digests).
    pub fn from_h256(h: H256) -> Address {
        let mut a = [0u8; 20];
        a.copy_from_slice(&h.0[12..]);
        Address(a)
    }

    /// Widens to a 256-bit word (left-padded with zeros), the EVM stack
    /// representation of an address.
    pub fn to_u256(&self) -> U256 {
        let mut buf = [0u8; 32];
        buf[12..].copy_from_slice(&self.0);
        U256::from_be_bytes(buf)
    }

    /// Truncates a 256-bit word to its low 20 bytes, the inverse of
    /// [`Address::to_u256`]. High bytes are discarded, as the EVM does.
    pub fn from_u256(v: U256) -> Address {
        let be = v.to_be_bytes();
        let mut a = [0u8; 20];
        a.copy_from_slice(&be[12..]);
        Address(a)
    }

    /// Parses from hex, with or without `0x` prefix; must be 40 nibbles.
    pub fn from_hex(s: &str) -> Result<Address, hex::FromHexError> {
        let bytes = hex::decode(s)?;
        if bytes.len() != 20 {
            return Err(hex::FromHexError::InvalidLength(bytes.len()));
        }
        let mut a = [0u8; 20];
        a.copy_from_slice(&bytes);
        Ok(Address(a))
    }

    /// Returns the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// True iff this is the zero address.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; 20]
    }
}

impl H256 {
    /// The all-zero hash.
    pub const ZERO: H256 = H256([0u8; 32]);

    /// Reinterprets as a 256-bit big-endian integer.
    pub fn to_u256(&self) -> U256 {
        U256::from_be_bytes(self.0)
    }

    /// Builds from a 256-bit integer (big-endian).
    pub fn from_u256(v: U256) -> H256 {
        H256(v.to_be_bytes())
    }

    /// Parses from hex, with or without `0x` prefix; must be 64 nibbles.
    pub fn from_hex(s: &str) -> Result<H256, hex::FromHexError> {
        let bytes = hex::decode(s)?;
        if bytes.len() != 32 {
            return Err(hex::FromHexError::InvalidLength(bytes.len()));
        }
        let mut h = [0u8; 32];
        h.copy_from_slice(&bytes);
        Ok(H256(h))
    }

    /// Returns the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", hex::encode(&self.0))
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl fmt::Debug for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", hex::encode(&self.0))
    }
}

impl fmt::Display for H256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_u256_roundtrip() {
        let a = Address::from_hex("0x00112233445566778899aabbccddeeff00112233").unwrap();
        assert_eq!(Address::from_u256(a.to_u256()), a);
    }

    #[test]
    fn address_from_u256_truncates_high_bytes() {
        let v = U256::MAX;
        let a = Address::from_u256(v);
        assert_eq!(a.0, [0xff; 20]);
    }

    #[test]
    fn h256_u256_roundtrip() {
        let h = H256::from_hex(&"ab".repeat(32)).unwrap();
        assert_eq!(H256::from_u256(h.to_u256()), h);
    }

    #[test]
    fn address_from_h256_takes_low_20_bytes() {
        let mut h = [0u8; 32];
        for (i, b) in h.iter_mut().enumerate() {
            *b = i as u8;
        }
        let a = Address::from_h256(H256(h));
        assert_eq!(a.0[0], 12);
        assert_eq!(a.0[19], 31);
    }

    #[test]
    fn hex_parsing_validates_length() {
        assert!(Address::from_hex("0x0011").is_err());
        assert!(H256::from_hex("0x0011").is_err());
    }

    #[test]
    fn display_is_prefixed_hex() {
        assert_eq!(Address::ZERO.to_string(), format!("0x{}", "00".repeat(20)));
    }
}
