//! Foundational value types for the on/off-chain smart-contract stack.
//!
//! This crate is dependency-free and provides:
//!
//! * [`U256`] — 256-bit wrapping arithmetic with EVM semantics (signed
//!   division, `ADDMOD`/`MULMOD` with 512-bit intermediates, shifts, …).
//! * [`Address`] / [`H256`] — 20-byte accounts and 32-byte hashes.
//! * [`hex`] — minimal hex codec.
//! * [`rlp`] — canonical Recursive Length Prefix encoding (transaction
//!   payloads, contract-address derivation).
//! * [`abi`] — Solidity-compatible calldata encoding (head/tail scheme,
//!   dynamic `bytes` support for shipping contract bytecode as an argument).

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // limb/lane loops index two arrays in lockstep

pub mod abi;
pub mod hash;
pub mod hex;
pub mod rlp;
pub mod u256;

pub use hash::{Address, H256};
pub use u256::U256;

/// One ether, in wei (10^18), the unit the betting contract deposits in.
pub const ETHER: u128 = 1_000_000_000_000_000_000;

/// Converts a whole number of ether to wei as a [`U256`].
pub fn ether(n: u64) -> U256 {
    U256::from_u128(ETHER).wrapping_mul(U256::from_u64(n))
}

/// Converts a whole number of gwei (10^9 wei) to a [`U256`].
pub fn gwei(n: u64) -> U256 {
    U256::from_u64(1_000_000_000).wrapping_mul(U256::from_u64(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ether_conversion() {
        assert_eq!(ether(1), U256::from_u128(ETHER));
        assert_eq!(ether(2), U256::from_u128(2 * ETHER));
        assert_eq!(gwei(1), U256::from_u64(1_000_000_000));
    }
}
