//! Minimal hex encoding/decoding (lowercase output, `0x`-prefix tolerant).

use std::fmt;

/// Error returned by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FromHexError {
    /// A character outside `[0-9a-fA-F]`.
    InvalidChar(char),
    /// Odd number of nibbles.
    OddLength,
    /// Decoded length did not match the caller's expectation (raised by
    /// fixed-size wrappers such as `Address::from_hex`).
    InvalidLength(usize),
}

impl fmt::Display for FromHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FromHexError::InvalidChar(c) => write!(f, "invalid hex character {c:?}"),
            FromHexError::OddLength => write!(f, "odd-length hex string"),
            FromHexError::InvalidLength(n) => write!(f, "unexpected decoded length {n}"),
        }
    }
}

impl std::error::Error for FromHexError {}

/// Encodes bytes as a lowercase hex string without a prefix.
pub fn encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0xf) as usize] as char);
    }
    out
}

/// Encodes bytes as a `0x`-prefixed lowercase hex string.
pub fn encode_prefixed(bytes: &[u8]) -> String {
    format!("0x{}", encode(bytes))
}

/// Decodes a hex string, tolerating an optional `0x` prefix.
pub fn decode(s: &str) -> Result<Vec<u8>, FromHexError> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    if !s.len().is_multiple_of(2) {
        return Err(FromHexError::OddLength);
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = nibble(pair[0])?;
        let lo = nibble(pair[1])?;
        out.push((hi << 4) | lo);
    }
    Ok(out)
}

fn nibble(c: u8) -> Result<u8, FromHexError> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        _ => Err(FromHexError::InvalidChar(c as char)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = vec![0x00, 0xff, 0x12, 0xab];
        assert_eq!(encode(&data), "00ff12ab");
        assert_eq!(decode("00ff12ab").unwrap(), data);
        assert_eq!(decode("0x00FF12AB").unwrap(), data);
    }

    #[test]
    fn empty_is_fine() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
        assert_eq!(decode("0x").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(decode("abc"), Err(FromHexError::OddLength));
        assert_eq!(decode("zz"), Err(FromHexError::InvalidChar('z')));
    }

    #[test]
    fn prefixed_encoder() {
        assert_eq!(encode_prefixed(&[0xde, 0xad]), "0xdead");
    }
}
