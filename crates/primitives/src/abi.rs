//! Solidity-compatible ABI encoding and decoding.
//!
//! Implements the head/tail encoding scheme for the types the paper's
//! contracts use: `uint256`/`uint8`, `address`, `bool`, `bytes32` and the
//! dynamic `bytes` (needed for `deployVerifiedInstance(bytes,...)`, which
//! carries the whole off-chain contract bytecode as calldata).
//!
//! Selector computation (`keccak256(signature)[..4]`) lives in `sc-crypto`
//! to keep this crate hash-free; this module takes selectors as opaque
//! 4-byte values.

use crate::hash::{Address, H256};
use crate::u256::U256;
use std::fmt;

/// A dynamically-typed ABI value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// Any `uintN` (stored widened to 256 bits).
    Uint(U256),
    /// A 20-byte address.
    Address(Address),
    /// A boolean.
    Bool(bool),
    /// A fixed 32-byte value (`bytes32`).
    Bytes32(H256),
    /// Dynamic `bytes`.
    Bytes(Vec<u8>),
}

/// The static type of an ABI value, used to drive decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Type {
    /// Any `uintN` (decoded as a full word).
    Uint,
    /// A 20-byte address.
    Address,
    /// A boolean.
    Bool,
    /// `bytes32`.
    Bytes32,
    /// Dynamic `bytes`.
    Bytes,
}

/// Error returned by the decoder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbiError {
    /// Calldata was shorter than the encoding requires.
    ShortInput,
    /// A dynamic offset or length was out of range.
    BadOffset,
    /// A `bool` slot held something other than 0 or 1.
    BadBool,
    /// An `address` slot had nonzero high bytes.
    BadAddress,
}

impl fmt::Display for AbiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbiError::ShortInput => write!(f, "calldata too short"),
            AbiError::BadOffset => write!(f, "dynamic offset out of range"),
            AbiError::BadBool => write!(f, "invalid boolean encoding"),
            AbiError::BadAddress => write!(f, "address with dirty high bytes"),
        }
    }
}

impl std::error::Error for AbiError {}

impl Value {
    /// True iff the value is dynamically sized (encoded in the tail).
    pub fn is_dynamic(&self) -> bool {
        matches!(self, Value::Bytes(_))
    }

    /// The static head word for this value: the value itself for static
    /// types, the tail offset placeholder for dynamic ones.
    fn head_word(&self) -> U256 {
        match self {
            Value::Uint(v) => *v,
            Value::Address(a) => a.to_u256(),
            Value::Bool(b) => U256::from(*b),
            Value::Bytes32(h) => h.to_u256(),
            Value::Bytes(_) => U256::ZERO, // patched with the real offset
        }
    }

    /// Convenience accessor.
    pub fn as_uint(&self) -> Option<U256> {
        match self {
            Value::Uint(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience accessor.
    pub fn as_address(&self) -> Option<Address> {
        match self {
            Value::Address(a) => Some(*a),
            _ => None,
        }
    }

    /// Convenience accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience accessor.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }
}

/// Encodes argument values using the head/tail scheme (no selector).
pub fn encode(values: &[Value]) -> Vec<u8> {
    let head_len = values.len() * 32;
    let mut head = Vec::with_capacity(head_len);
    let mut tail: Vec<u8> = Vec::new();
    for v in values {
        if v.is_dynamic() {
            let offset = U256::from_u64((head_len + tail.len()) as u64);
            head.extend_from_slice(&offset.to_be_bytes());
            match v {
                Value::Bytes(b) => {
                    tail.extend_from_slice(&U256::from_u64(b.len() as u64).to_be_bytes());
                    tail.extend_from_slice(b);
                    // Pad to a 32-byte boundary.
                    let pad = (32 - b.len() % 32) % 32;
                    tail.extend(std::iter::repeat_n(0u8, pad));
                }
                _ => unreachable!("only Bytes is dynamic"),
            }
        } else {
            head.extend_from_slice(&v.head_word().to_be_bytes());
        }
    }
    head.extend_from_slice(&tail);
    head
}

/// Encodes a full call: 4-byte selector followed by encoded arguments.
pub fn encode_call(selector: [u8; 4], values: &[Value]) -> Vec<u8> {
    let mut out = selector.to_vec();
    out.extend_from_slice(&encode(values));
    out
}

/// Decodes argument data (without selector) against a type signature.
pub fn decode(types: &[Type], data: &[u8]) -> Result<Vec<Value>, AbiError> {
    let mut out = Vec::with_capacity(types.len());
    for (i, ty) in types.iter().enumerate() {
        let word = read_word(data, i * 32)?;
        let value = match ty {
            Type::Uint => Value::Uint(word),
            Type::Bytes32 => Value::Bytes32(H256::from_u256(word)),
            Type::Address => {
                if word.shr_bits(160) != U256::ZERO {
                    return Err(AbiError::BadAddress);
                }
                Value::Address(Address::from_u256(word))
            }
            Type::Bool => match word.to_u64() {
                Some(0) => Value::Bool(false),
                Some(1) => Value::Bool(true),
                _ => return Err(AbiError::BadBool),
            },
            Type::Bytes => {
                let offset = word.to_usize().ok_or(AbiError::BadOffset)?;
                let len_word = read_word(data, offset)?;
                let len = len_word.to_usize().ok_or(AbiError::BadOffset)?;
                let start = offset.checked_add(32).ok_or(AbiError::BadOffset)?;
                let end = start.checked_add(len).ok_or(AbiError::BadOffset)?;
                if end > data.len() {
                    return Err(AbiError::ShortInput);
                }
                Value::Bytes(data[start..end].to_vec())
            }
        };
        out.push(value);
    }
    Ok(out)
}

/// Splits calldata into `(selector, argument data)`.
pub fn split_selector(calldata: &[u8]) -> Result<([u8; 4], &[u8]), AbiError> {
    if calldata.len() < 4 {
        return Err(AbiError::ShortInput);
    }
    let mut sel = [0u8; 4];
    sel.copy_from_slice(&calldata[..4]);
    Ok((sel, &calldata[4..]))
}

fn read_word(data: &[u8], offset: usize) -> Result<U256, AbiError> {
    let end = offset.checked_add(32).ok_or(AbiError::BadOffset)?;
    if end > data.len() {
        return Err(AbiError::ShortInput);
    }
    let mut w = [0u8; 32];
    w.copy_from_slice(&data[offset..end]);
    Ok(U256::from_be_bytes(w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_args_are_one_word_each() {
        let enc = encode(&[
            Value::Uint(U256::from_u64(5)),
            Value::Bool(true),
            Value::Address(Address([0x11; 20])),
        ]);
        assert_eq!(enc.len(), 96);
        assert_eq!(enc[31], 5);
        assert_eq!(enc[63], 1);
        assert_eq!(&enc[76..96], &[0x11; 20]);
    }

    #[test]
    fn dynamic_bytes_head_tail() {
        let payload = vec![0xaa; 5];
        let enc = encode(&[Value::Uint(U256::ONE), Value::Bytes(payload.clone())]);
        // head: 2 words; offset points at 0x40
        assert_eq!(U256::from_be_slice(&enc[32..64]), U256::from_u64(0x40));
        // tail: length word then padded payload
        assert_eq!(U256::from_be_slice(&enc[64..96]), U256::from_u64(5));
        assert_eq!(&enc[96..101], &payload[..]);
        assert_eq!(enc.len(), 128, "payload padded to 32 bytes");
    }

    #[test]
    fn roundtrip_mixed() {
        let vals = vec![
            Value::Bytes(vec![1, 2, 3, 4, 5, 6, 7]),
            Value::Uint(U256::from_u64(99)),
            Value::Bool(false),
            Value::Bytes32(H256([7u8; 32])),
            Value::Address(Address([9u8; 20])),
        ];
        let enc = encode(&vals);
        let dec = decode(
            &[
                Type::Bytes,
                Type::Uint,
                Type::Bool,
                Type::Bytes32,
                Type::Address,
            ],
            &enc,
        )
        .unwrap();
        assert_eq!(dec, vals);
    }

    #[test]
    fn roundtrip_exact_32_byte_bytes_has_no_padding() {
        let vals = vec![Value::Bytes(vec![0xcc; 32])];
        let enc = encode(&vals);
        assert_eq!(enc.len(), 32 + 32 + 32);
        assert_eq!(decode(&[Type::Bytes], &enc).unwrap(), vals);
    }

    #[test]
    fn selector_split() {
        let data = encode_call([0xde, 0xad, 0xbe, 0xef], &[Value::Uint(U256::ONE)]);
        let (sel, args) = split_selector(&data).unwrap();
        assert_eq!(sel, [0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(
            decode(&[Type::Uint], args).unwrap()[0],
            Value::Uint(U256::ONE)
        );
        assert_eq!(split_selector(&[1, 2, 3]), Err(AbiError::ShortInput));
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(decode(&[Type::Uint], &[0u8; 16]), Err(AbiError::ShortInput));
        assert_eq!(
            decode(&[Type::Bool], &U256::from_u64(2).to_be_bytes()),
            Err(AbiError::BadBool)
        );
        assert_eq!(
            decode(&[Type::Address], &U256::MAX.to_be_bytes()),
            Err(AbiError::BadAddress)
        );
        // Bytes offset beyond the buffer
        let mut bad = U256::from_u64(1024).to_be_bytes().to_vec();
        bad.extend_from_slice(&[0u8; 32]);
        assert_eq!(decode(&[Type::Bytes], &bad), Err(AbiError::ShortInput));
    }

    #[test]
    fn empty_bytes_roundtrip() {
        let vals = vec![Value::Bytes(Vec::new())];
        let enc = encode(&vals);
        assert_eq!(decode(&[Type::Bytes], &enc).unwrap(), vals);
    }
}
