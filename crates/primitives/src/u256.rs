//! Fixed-width 256-bit unsigned integer with EVM semantics.
//!
//! All arithmetic wraps modulo 2^256, matching the EVM's word semantics.
//! Signed operations (`sdiv`, `smod`, `slt`, …) interpret the word as
//! two's-complement, again matching the EVM.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, BitAnd, BitOr, BitXor, Div, Mul, Not, Rem, Shl, Shr, Sub};

/// A 256-bit unsigned integer stored as four little-endian 64-bit limbs.
///
/// `limbs[0]` is the least-significant limb.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub [u64; 4]);

/// Error returned when parsing a [`U256`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseU256Error {
    /// The input was empty.
    Empty,
    /// The input contained a character invalid for the radix.
    InvalidDigit(char),
    /// The value does not fit in 256 bits.
    Overflow,
}

impl fmt::Display for ParseU256Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseU256Error::Empty => write!(f, "empty string"),
            ParseU256Error::InvalidDigit(c) => write!(f, "invalid digit {c:?}"),
            ParseU256Error::Overflow => write!(f, "value does not fit in 256 bits"),
        }
    }
}

impl std::error::Error for ParseU256Error {}

impl U256 {
    /// The value `0`.
    pub const ZERO: U256 = U256([0, 0, 0, 0]);
    /// The value `1`.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The maximum representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; 4]);

    /// Constructs from a `u64`.
    #[inline]
    pub const fn from_u64(v: u64) -> Self {
        U256([v, 0, 0, 0])
    }

    /// Constructs from a `u128`.
    #[inline]
    pub const fn from_u128(v: u128) -> Self {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }

    /// Returns the low 64 bits, discarding the rest.
    #[inline]
    pub const fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// Returns the low 128 bits, discarding the rest.
    #[inline]
    pub const fn low_u128(&self) -> u128 {
        (self.0[0] as u128) | ((self.0[1] as u128) << 64)
    }

    /// Returns `Some(u64)` if the value fits in 64 bits.
    #[inline]
    pub fn to_u64(&self) -> Option<u64> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            Some(self.0[0])
        } else {
            None
        }
    }

    /// Returns `Some(usize)` if the value fits in a `usize`.
    #[inline]
    pub fn to_usize(&self) -> Option<usize> {
        self.to_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// True iff the value is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// Number of significant bits (0 for zero).
    pub fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.0[i] != 0 {
                return (i as u32) * 64 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Value of bit `i` (little-endian bit order); bits ≥ 256 read as 0.
    #[inline]
    pub fn bit(&self, i: u32) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Wrapping addition; also returns the carry-out.
    #[inline]
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 | c2;
        }
        (U256(out), carry)
    }

    /// Wrapping subtraction; also returns the borrow-out.
    #[inline]
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 | b2;
        }
        (U256(out), borrow)
    }

    /// Wrapping addition modulo 2^256.
    #[inline]
    pub fn wrapping_add(self, rhs: U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Wrapping subtraction modulo 2^256.
    #[inline]
    pub fn wrapping_sub(self, rhs: U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Checked addition: `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction: `None` on underflow.
    #[inline]
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Saturating subtraction, clamping at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: U256) -> U256 {
        self.checked_sub(rhs).unwrap_or(U256::ZERO)
    }

    /// Full 256×256→512-bit multiplication, returned as (low, high).
    pub fn full_mul(self, rhs: U256) -> (U256, U256) {
        let mut w = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let t = (self.0[i] as u128) * (rhs.0[j] as u128) + (w[i + j] as u128) + carry;
                w[i + j] = t as u64;
                carry = t >> 64;
            }
            w[i + 4] = carry as u64;
        }
        (
            U256([w[0], w[1], w[2], w[3]]),
            U256([w[4], w[5], w[6], w[7]]),
        )
    }

    /// Wrapping multiplication modulo 2^256.
    #[inline]
    pub fn wrapping_mul(self, rhs: U256) -> U256 {
        self.full_mul(rhs).0
    }

    /// Checked multiplication: `None` on overflow.
    #[inline]
    pub fn checked_mul(self, rhs: U256) -> Option<U256> {
        let (lo, hi) = self.full_mul(rhs);
        if hi.is_zero() {
            Some(lo)
        } else {
            None
        }
    }

    /// Quotient and remainder; EVM convention: division by zero yields zero.
    pub fn div_rem(self, rhs: U256) -> (U256, U256) {
        if rhs.is_zero() {
            return (U256::ZERO, U256::ZERO);
        }
        if self < rhs {
            return (U256::ZERO, self);
        }
        if rhs.bits() <= 64 && self.bits() <= 64 {
            let (q, r) = (self.0[0] / rhs.0[0], self.0[0] % rhs.0[0]);
            return (U256::from_u64(q), U256::from_u64(r));
        }
        // Schoolbook binary long division. Adequate: the interpreter's hot
        // paths (gas math) stay in the fast 64-bit case above.
        let shift = self.bits() - rhs.bits();
        let mut remainder = self;
        let mut quotient = U256::ZERO;
        let mut divisor = rhs.shl_bits(shift);
        for s in (0..=shift).rev() {
            if remainder >= divisor {
                remainder = remainder.wrapping_sub(divisor);
                quotient = quotient.set_bit(s);
            }
            divisor = divisor.shr_bits(1);
        }
        (quotient, remainder)
    }

    /// Returns a copy with bit `i` set.
    fn set_bit(mut self, i: u32) -> U256 {
        self.0[(i / 64) as usize] |= 1u64 << (i % 64);
        self
    }

    /// Logical left shift by `n` bits; shifts ≥ 256 yield zero.
    pub fn shl_bits(self, n: u32) -> U256 {
        if n >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            out[i] = self.0[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                out[i] |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
            }
        }
        U256(out)
    }

    /// Logical right shift by `n` bits; shifts ≥ 256 yield zero.
    pub fn shr_bits(self, n: u32) -> U256 {
        if n >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = [0u64; 4];
        for i in 0..4 - limb_shift {
            out[i] = self.0[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < 4 {
                out[i] |= self.0[i + limb_shift + 1] << (64 - bit_shift);
            }
        }
        U256(out)
    }

    /// Arithmetic (sign-extending) right shift, per the EVM `SAR` opcode.
    pub fn sar_bits(self, n: u32) -> U256 {
        let negative = self.bit(255);
        if n >= 256 {
            return if negative { U256::MAX } else { U256::ZERO };
        }
        let shifted = self.shr_bits(n);
        if negative && n > 0 {
            // Fill the vacated high bits with ones.
            let mask = U256::MAX.shl_bits(256 - n);
            shifted | mask
        } else {
            shifted
        }
    }

    /// Modular exponentiation by squaring, modulo 2^256 (EVM `EXP`).
    pub fn wrapping_pow(self, mut exp: U256) -> U256 {
        let mut base = self;
        let mut acc = U256::ONE;
        while !exp.is_zero() {
            if exp.bit(0) {
                acc = acc.wrapping_mul(base);
            }
            base = base.wrapping_mul(base);
            exp = exp.shr_bits(1);
        }
        acc
    }

    /// `(a + b) mod m` with intermediate 512-bit precision (EVM `ADDMOD`).
    pub fn addmod(self, b: U256, m: U256) -> U256 {
        if m.is_zero() {
            return U256::ZERO;
        }
        let (sum, carry) = self.overflowing_add(b);
        if !carry {
            return sum.div_rem(m).1;
        }
        // sum + 2^256: reduce via 512-bit remainder computed limb-wise.
        u512_rem(&[sum.0[0], sum.0[1], sum.0[2], sum.0[3], 1, 0, 0, 0], m)
    }

    /// `(a * b) mod m` with intermediate 512-bit precision (EVM `MULMOD`).
    pub fn mulmod(self, b: U256, m: U256) -> U256 {
        if m.is_zero() {
            return U256::ZERO;
        }
        let (lo, hi) = self.full_mul(b);
        if hi.is_zero() {
            return lo.div_rem(m).1;
        }
        u512_rem(
            &[
                lo.0[0], lo.0[1], lo.0[2], lo.0[3], hi.0[0], hi.0[1], hi.0[2], hi.0[3],
            ],
            m,
        )
    }

    /// Interprets the word as two's-complement; true iff negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.bit(255)
    }

    /// Two's-complement negation. (Named after the EVM operation; the
    /// `Neg` trait is not implemented because unsigned negation is
    /// intentionally explicit.)
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> U256 {
        (!self).wrapping_add(U256::ONE)
    }

    /// Absolute value under two's-complement interpretation.
    #[inline]
    pub fn abs_signed(self) -> U256 {
        if self.is_negative() {
            self.neg()
        } else {
            self
        }
    }

    /// Signed division per EVM `SDIV` (truncated toward zero; x/0 = 0).
    pub fn sdiv(self, rhs: U256) -> U256 {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let q = self.abs_signed().div_rem(rhs.abs_signed()).0;
        if self.is_negative() != rhs.is_negative() {
            q.neg()
        } else {
            q
        }
    }

    /// Signed remainder per EVM `SMOD` (sign follows the dividend; x%0 = 0).
    pub fn smod(self, rhs: U256) -> U256 {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let r = self.abs_signed().div_rem(rhs.abs_signed()).1;
        if self.is_negative() {
            r.neg()
        } else {
            r
        }
    }

    /// Signed less-than under two's-complement interpretation (EVM `SLT`).
    pub fn slt(self, rhs: U256) -> bool {
        match (self.is_negative(), rhs.is_negative()) {
            (true, false) => true,
            (false, true) => false,
            _ => self < rhs,
        }
    }

    /// Sign-extends from byte position `k` (EVM `SIGNEXTEND` semantics:
    /// `k` counts bytes from the least-significant end, 0-based).
    pub fn signextend(self, k: U256) -> U256 {
        match k.to_u64() {
            Some(k) if k < 31 => {
                let bit = (k as u32) * 8 + 7;
                if self.bit(bit) {
                    self | U256::MAX.shl_bits(bit + 1)
                } else {
                    self & !(U256::MAX.shl_bits(bit + 1))
                }
            }
            _ => self,
        }
    }

    /// Extracts byte `i` where byte 0 is the most significant (EVM `BYTE`).
    pub fn byte(self, i: U256) -> U256 {
        match i.to_u64() {
            Some(i) if i < 32 => {
                let be = self.to_be_bytes();
                U256::from_u64(be[i as usize] as u64)
            }
            _ => U256::ZERO,
        }
    }

    /// Big-endian 32-byte serialization.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[32 - 8 * (i + 1)..32 - 8 * i].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// Deserializes from exactly 32 big-endian bytes.
    pub fn from_be_bytes(bytes: [u8; 32]) -> U256 {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut l = [0u8; 8];
            l.copy_from_slice(&bytes[32 - 8 * (i + 1)..32 - 8 * i]);
            limbs[i] = u64::from_be_bytes(l);
        }
        U256(limbs)
    }

    /// Deserializes from up to 32 big-endian bytes (shorter inputs are
    /// left-padded with zeros, as in RLP and calldata decoding).
    pub fn from_be_slice(bytes: &[u8]) -> U256 {
        assert!(bytes.len() <= 32, "more than 32 bytes for a U256");
        let mut buf = [0u8; 32];
        buf[32 - bytes.len()..].copy_from_slice(bytes);
        U256::from_be_bytes(buf)
    }

    /// Minimal big-endian serialization: no leading zero bytes, empty for 0.
    pub fn to_be_bytes_trimmed(&self) -> Vec<u8> {
        let be = self.to_be_bytes();
        let first = be.iter().position(|&b| b != 0).unwrap_or(32);
        be[first..].to_vec()
    }

    /// Parses a decimal string.
    pub fn from_dec_str(s: &str) -> Result<U256, ParseU256Error> {
        if s.is_empty() {
            return Err(ParseU256Error::Empty);
        }
        let mut acc = U256::ZERO;
        let ten = U256::from_u64(10);
        for c in s.chars() {
            let d = c.to_digit(10).ok_or(ParseU256Error::InvalidDigit(c))?;
            acc = acc
                .checked_mul(ten)
                .and_then(|a| a.checked_add(U256::from_u64(d as u64)))
                .ok_or(ParseU256Error::Overflow)?;
        }
        Ok(acc)
    }

    /// Parses a hex string, with or without a `0x` prefix.
    pub fn from_hex_str(s: &str) -> Result<U256, ParseU256Error> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() {
            return Err(ParseU256Error::Empty);
        }
        if s.len() > 64 {
            return Err(ParseU256Error::Overflow);
        }
        let mut acc = U256::ZERO;
        for c in s.chars() {
            let d = c.to_digit(16).ok_or(ParseU256Error::InvalidDigit(c))?;
            acc = acc.shl_bits(4) | U256::from_u64(d as u64);
        }
        Ok(acc)
    }

    /// Formats as a decimal string.
    pub fn to_dec_string(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut digits = Vec::new();
        let mut v = *self;
        let ten = U256::from_u64(10);
        while !v.is_zero() {
            let (q, r) = v.div_rem(ten);
            digits.push(b'0' + r.low_u64() as u8);
            v = q;
        }
        digits.reverse();
        String::from_utf8(digits).expect("ascii digits")
    }
}

/// Remainder of a 512-bit little-endian-limbed value modulo a U256.
fn u512_rem(limbs: &[u64; 8], m: U256) -> U256 {
    // Process from the most-significant bit down, tracking value mod m.
    let mut rem = U256::ZERO;
    for i in (0..8).rev() {
        for b in (0..64).rev() {
            // rem = rem * 2 + bit, reduced mod m.
            let (mut doubled, carry) = rem.overflowing_add(rem);
            if carry || doubled >= m {
                doubled = doubled.wrapping_sub(m);
            }
            rem = doubled;
            if (limbs[i] >> b) & 1 == 1 {
                let (next, carry) = rem.overflowing_add(U256::ONE);
                rem = if carry || next >= m {
                    next.wrapping_sub(m)
                } else {
                    next
                };
            }
        }
    }
    rem
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.0[i].cmp(&other.0[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for U256 {
    type Output = U256;
    fn add(self, rhs: U256) -> U256 {
        self.wrapping_add(rhs)
    }
}

impl Sub for U256 {
    type Output = U256;
    fn sub(self, rhs: U256) -> U256 {
        self.wrapping_sub(rhs)
    }
}

impl Mul for U256 {
    type Output = U256;
    fn mul(self, rhs: U256) -> U256 {
        self.wrapping_mul(rhs)
    }
}

impl Div for U256 {
    type Output = U256;
    fn div(self, rhs: U256) -> U256 {
        self.div_rem(rhs).0
    }
}

impl Rem for U256 {
    type Output = U256;
    fn rem(self, rhs: U256) -> U256 {
        self.div_rem(rhs).1
    }
}

impl Not for U256 {
    type Output = U256;
    fn not(self) -> U256 {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: U256) -> U256 {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitXor for U256 {
    type Output = U256;
    fn bitxor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl Shl<u32> for U256 {
    type Output = U256;
    fn shl(self, n: u32) -> U256 {
        self.shl_bits(n)
    }
}

impl Shr<u32> for U256 {
    type Output = U256;
    fn shr(self, n: u32) -> U256 {
        self.shr_bits(n)
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

impl From<u32> for U256 {
    fn from(v: u32) -> Self {
        U256::from_u64(v as u64)
    }
}

impl From<u8> for U256 {
    fn from(v: u8) -> Self {
        U256::from_u64(v as u64)
    }
}

impl From<bool> for U256 {
    fn from(v: bool) -> Self {
        if v {
            U256::ONE
        } else {
            U256::ZERO
        }
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{self:x})")
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dec_string())
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut started = false;
        for i in (0..4).rev() {
            if started {
                write!(f, "{:016x}", self.0[i])?;
            } else if self.0[i] != 0 {
                write!(f, "{:x}", self.0[i])?;
                started = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from_u64(v)
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = U256([u64::MAX, 0, 0, 0]);
        assert_eq!(a.wrapping_add(U256::ONE), U256([0, 1, 0, 0]));
    }

    #[test]
    fn add_wraps_at_2_pow_256() {
        assert_eq!(U256::MAX.wrapping_add(U256::ONE), U256::ZERO);
        assert!(U256::MAX.overflowing_add(U256::ONE).1);
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = U256([0, 1, 0, 0]);
        assert_eq!(a.wrapping_sub(U256::ONE), U256([u64::MAX, 0, 0, 0]));
    }

    #[test]
    fn sub_wraps_below_zero() {
        assert_eq!(U256::ZERO.wrapping_sub(U256::ONE), U256::MAX);
    }

    #[test]
    fn mul_small_values() {
        assert_eq!(u(7).wrapping_mul(u(6)), u(42));
    }

    #[test]
    fn mul_carries_into_high_limbs() {
        // (2^128-1)^2 = 2^256 - 2^129 + 1 still fits in 256 bits.
        let a = U256::from_u128(u128::MAX);
        let (lo, hi) = a.full_mul(a);
        assert_eq!(lo, U256::ONE.wrapping_sub(U256::ONE.shl_bits(129)));
        assert_eq!(hi, U256::ZERO);
        // MAX^2 = 2^512 - 2^257 + 1: low word 1, high word 2^256 - 2.
        let (lo, hi) = U256::MAX.full_mul(U256::MAX);
        assert_eq!(lo, U256::ONE);
        assert_eq!(hi, U256::MAX.wrapping_sub(U256::ONE));
    }

    #[test]
    fn div_rem_basics() {
        assert_eq!(u(100).div_rem(u(7)), (u(14), u(2)));
        assert_eq!(u(7).div_rem(u(100)), (u(0), u(7)));
        assert_eq!(u(7).div_rem(u(0)), (u(0), u(0)), "EVM: div by zero is 0");
    }

    #[test]
    fn div_rem_wide_values() {
        let a = U256::from_hex_str("ffffffffffffffffffffffffffffffffffffffffffffffff").unwrap();
        let b = U256::from_hex_str("fedcba9876543210").unwrap();
        let (q, r) = a.div_rem(b);
        assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
        assert!(r < b);
    }

    #[test]
    fn pow_matches_repeated_mul() {
        assert_eq!(u(3).wrapping_pow(u(5)), u(243));
        assert_eq!(u(2).wrapping_pow(u(256)), U256::ZERO, "wraps mod 2^256");
        assert_eq!(u(0).wrapping_pow(u(0)), U256::ONE, "EVM: 0**0 == 1");
    }

    #[test]
    fn addmod_handles_carry_past_256_bits() {
        // (MAX + MAX) mod 10: 2^257 - 2 mod 10
        let r = U256::MAX.addmod(U256::MAX, u(10));
        // 2^257 mod 10 = 2 * (2^256 mod 10). 2^256 mod 10 = 6 → 12 mod 10 = 2; minus 2 → 0
        assert_eq!(r, u(0));
        assert_eq!(u(7).addmod(u(5), u(9)), u(3));
        assert_eq!(u(7).addmod(u(5), u(0)), u(0), "EVM: mod 0 is 0");
    }

    #[test]
    fn mulmod_uses_512_bit_intermediate() {
        // MAX * MAX mod MAX == 0
        assert_eq!(U256::MAX.mulmod(U256::MAX, U256::MAX), U256::ZERO);
        // MAX * MAX mod (MAX - 1): MAX ≡ 1, so result is 1
        let m = U256::MAX.wrapping_sub(U256::ONE);
        assert_eq!(U256::MAX.mulmod(U256::MAX, m), U256::ONE);
        assert_eq!(u(7).mulmod(u(5), u(9)), u(8));
    }

    #[test]
    fn shifts() {
        assert!(U256::ONE.shl_bits(255).bit(255));
        assert_eq!(U256::ONE.shl_bits(256), U256::ZERO);
        assert_eq!(U256::MAX.shr_bits(255), U256::ONE);
        assert_eq!(u(0b1010).shr_bits(1), u(0b101));
        assert_eq!(u(0b1010).shl_bits(2), u(0b101000));
    }

    #[test]
    fn sar_sign_extends() {
        let minus_one = U256::MAX;
        assert_eq!(minus_one.sar_bits(5), minus_one);
        assert_eq!(minus_one.sar_bits(300), minus_one);
        assert_eq!(u(16).sar_bits(2), u(4));
        let min = U256::ONE.shl_bits(255);
        assert_eq!(min.sar_bits(255), U256::MAX);
    }

    #[test]
    fn signed_division() {
        let minus_six = u(6).neg();
        assert_eq!(minus_six.sdiv(u(2)), u(3).neg());
        assert_eq!(minus_six.sdiv(u(2).neg()), u(3));
        assert_eq!(u(7).neg().sdiv(u(2)), u(3).neg(), "truncates toward zero");
        assert_eq!(
            u(7).neg().smod(u(2)),
            U256::ONE.neg(),
            "sign follows dividend"
        );
        assert_eq!(u(7).smod(u(2).neg()), U256::ONE);
    }

    #[test]
    fn sdiv_overflow_case() {
        // EVM edge case: MIN / -1 == MIN (wraps).
        let min = U256::ONE.shl_bits(255);
        assert_eq!(min.sdiv(U256::MAX), min);
    }

    #[test]
    fn slt_orders_two_complement() {
        assert!(U256::MAX.slt(U256::ZERO), "-1 < 0");
        assert!(U256::ZERO.slt(U256::ONE));
        assert!(!U256::ONE.slt(U256::MAX), "1 > -1");
    }

    #[test]
    fn signextend_byte_semantics() {
        // 0xff at byte 0 sign-extends to -1
        assert_eq!(u(0xff).signextend(u(0)), U256::MAX);
        // 0x7f stays positive
        assert_eq!(u(0x7f).signextend(u(0)), u(0x7f));
        // k >= 31 leaves the value unchanged
        assert_eq!(u(0xff).signextend(u(31)), u(0xff));
        assert_eq!(u(0xff).signextend(U256::MAX), u(0xff));
    }

    #[test]
    fn byte_extraction_is_big_endian() {
        let v =
            U256::from_hex_str("0102030000000000000000000000000000000000000000000000000000000000")
                .unwrap();
        assert_eq!(v.byte(u(0)), u(1));
        assert_eq!(v.byte(u(1)), u(2));
        assert_eq!(v.byte(u(2)), u(3));
        assert_eq!(v.byte(u(31)), u(0));
        assert_eq!(v.byte(u(32)), u(0), "out of range reads 0");
    }

    #[test]
    fn be_bytes_roundtrip() {
        let v = U256::from_hex_str("deadbeefcafebabe0123456789abcdef").unwrap();
        assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
        assert_eq!(U256::from_be_slice(&v.to_be_bytes_trimmed()), v);
        assert_eq!(U256::ZERO.to_be_bytes_trimmed(), Vec::<u8>::new());
    }

    #[test]
    fn dec_string_roundtrip() {
        for s in [
            "0",
            "1",
            "42",
            "115792089237316195423570985008687907853269984665640564039457584007913129639935",
        ] {
            assert_eq!(U256::from_dec_str(s).unwrap().to_dec_string(), s);
        }
        assert_eq!(
            U256::from_dec_str(
                "115792089237316195423570985008687907853269984665640564039457584007913129639936"
            ),
            Err(ParseU256Error::Overflow)
        );
        assert_eq!(U256::from_dec_str(""), Err(ParseU256Error::Empty));
        assert_eq!(
            U256::from_dec_str("12a"),
            Err(ParseU256Error::InvalidDigit('a'))
        );
    }

    #[test]
    fn hex_string_roundtrip() {
        let v = U256::from_hex_str("0xDeadBeef").unwrap();
        assert_eq!(v, u(0xdeadbeef));
        assert_eq!(format!("{v:x}"), "deadbeef");
        assert!(U256::from_hex_str(&"f".repeat(65)).is_err());
    }

    #[test]
    fn ordering_compares_high_limbs_first() {
        let big = U256([0, 0, 0, 1]);
        let small = U256([u64::MAX, u64::MAX, u64::MAX, 0]);
        assert!(big > small);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(u(3).saturating_sub(u(5)), U256::ZERO);
        assert_eq!(u(5).saturating_sub(u(3)), u(2));
    }
}
