//! A deterministic transaction pool and fee market.
//!
//! The session engine's outbox mode flushes every tick's transactions
//! straight into one block: no admission layer, no block gas limit, no
//! price signal — and a measured utilization of under 3 txs/block at
//! 256 concurrent sessions. On a real chain the paper's on-chain side
//! competes for block space like any other contract, so the
//! reproduction needs what every node has: a pool that *orders* (per
//! -sender nonce queues), *prices* (a fee-priority heap with
//! replacement and eviction rules) and *packs* (greedy fill under a
//! block gas limit, nonce order preserved).
//!
//! Everything is bit-deterministic. Ties in the fee market are broken
//! by arrival sequence, iteration is over ordered maps, and no clock or
//! randomness is consulted: the same admission sequence always yields
//! the same packed block sequence, which is what lets the session
//! engine's determinism proptests extend to pooled mode.
//!
//! The pool is generic over its payload `T` (the signed transaction
//! plus whatever the chain caches alongside it) and depends only on
//! `sc-primitives`, so `sc-chain` can own a `Mempool<PendingTx>`
//! without a dependency cycle. Signature checks, intrinsic gas and
//! balance validation stay in the chain's admission path; the pool
//! handles ordering, pricing and capacity.

#![warn(missing_docs)]

use sc_primitives::{Address, H256, U256};
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// Configuration of a [`Mempool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Maximum transactions held; admission past this evicts the
    /// lowest-fee queue tail (or rejects the newcomer if it *is* the
    /// lowest fee).
    pub capacity: usize,
    /// Minimum fee increase, in percent, for a same-nonce replacement
    /// to be accepted (the classic anti-spam bump; 10 on mainnet-era
    /// clients).
    pub replacement_bump_percent: u64,
    /// How long (in chain seconds) a pooled miner may hold the oldest
    /// pending transaction while it waits for more traffic to batch.
    /// Consumed by the scheduler's pooled mining loop, not by the pool
    /// itself.
    pub max_hold_secs: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            capacity: 4096,
            replacement_bump_percent: 10,
            max_hold_secs: 120,
        }
    }
}

/// The pool-relevant fields of a transaction, extracted once by the
/// chain's admission path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxMeta {
    /// Recovered sender.
    pub sender: Address,
    /// Sender's nonce carried by the transaction.
    pub nonce: u64,
    /// Offered price per unit of gas — the fee-market priority.
    pub gas_price: U256,
    /// Gas limit; packing counts this (not the eventual `gas_used`)
    /// against the block gas limit, exactly like a real miner must.
    pub gas_limit: u64,
    /// Transaction hash (eviction routing and replacement accounting).
    pub hash: H256,
}

/// Why the pool refused a transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A same-nonce replacement did not offer the required fee bump.
    Underpriced {
        /// The minimum gas price that would have been accepted.
        required: U256,
    },
    /// The pool is full and the newcomer's fee is not above the
    /// cheapest resident's.
    Full {
        /// The gas price the newcomer must exceed to displace anyone.
        must_exceed: U256,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Underpriced { required } => {
                write!(f, "replacement underpriced: need gas price >= {required}")
            }
            PoolError::Full { must_exceed } => {
                write!(f, "pool full: need gas price > {must_exceed}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

/// What [`Mempool::insert`] did with an admitted transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admitted {
    /// Queued into a previously empty nonce slot.
    Queued,
    /// Replaced the same-nonce transaction with this hash (the old
    /// transaction also lands in the evicted log for routing).
    Replaced(H256),
    /// Queued, and made room by evicting this other transaction.
    EvictedOther(H256),
    /// The identical transaction was already pooled; nothing changed.
    AlreadyPooled,
}

/// One resident transaction.
#[derive(Debug, Clone)]
struct Entry<T> {
    meta: TxMeta,
    payload: T,
    /// Admission sequence number — the deterministic FIFO tie-break.
    seq: u64,
    /// Chain timestamp at admission (drives the miner's hold window).
    entered_at: u64,
}

/// A packing candidate: the lowest-nonce *ready* transaction of one
/// sender. Max-heap order: higher gas price first, then earlier
/// arrival (lower seq), then lower sender address — a total order, so
/// packing is deterministic.
struct Candidate {
    price: U256,
    seq: u64,
    sender: Address,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.price
            .cmp(&other.price)
            .then(other.seq.cmp(&self.seq))
            .then(other.sender.0.cmp(&self.sender.0))
    }
}

/// The pool: per-sender nonce-ordered queues under one fee market.
pub struct Mempool<T> {
    config: PoolConfig,
    /// Sender → (nonce → entry). `BTreeMap` at both levels keeps every
    /// iteration order deterministic.
    senders: BTreeMap<Address, BTreeMap<u64, Entry<T>>>,
    by_hash: HashMap<H256, (Address, u64)>,
    next_seq: u64,
    len: usize,
    /// Hashes displaced since the last [`Mempool::drain_evicted`] —
    /// by replacement, capacity eviction, or nonce pruning. The owner
    /// routes these back to whoever is waiting on the transaction.
    evicted: Vec<H256>,
}

impl<T> Mempool<T> {
    /// An empty pool under the given configuration.
    pub fn new(config: PoolConfig) -> Mempool<T> {
        Mempool {
            config,
            senders: BTreeMap::new(),
            by_hash: HashMap::new(),
            next_seq: 0,
            len: 0,
            evicted: Vec::new(),
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Transactions currently pooled.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is pooled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if this hash is currently pooled.
    pub fn contains(&self, hash: H256) -> bool {
        self.by_hash.contains_key(&hash)
    }

    /// Earliest admission timestamp among resident transactions — the
    /// anchor of the miner's hold window.
    pub fn earliest_entry(&self) -> Option<u64> {
        self.senders
            .values()
            .flat_map(|q| q.values())
            .map(|e| e.entered_at)
            .min()
    }

    /// The next nonce a self-signing sender should use: `base` (the
    /// account nonce) advanced past the contiguous run of its pooled
    /// transactions.
    pub fn next_nonce(&self, sender: Address, base: u64) -> u64 {
        let Some(queue) = self.senders.get(&sender) else {
            return base;
        };
        let mut next = base;
        while queue.contains_key(&next) {
            next += 1;
        }
        next
    }

    /// Hashes displaced since the last drain (replacement, eviction,
    /// pruning), in displacement order.
    pub fn drain_evicted(&mut self) -> Vec<H256> {
        std::mem::take(&mut self.evicted)
    }

    /// The minimum gas price a newcomer must exceed when the pool is
    /// full: the cheapest evictable queue tail (price, then newest
    /// arrival). `None` while the pool has room.
    fn cheapest_tail(&self) -> Option<(Address, u64, U256, u64)> {
        let mut worst: Option<(Address, u64, U256, u64)> = None;
        for (&sender, queue) in &self.senders {
            let (&nonce, entry) = queue.last_key_value().expect("queues are never empty");
            let key = (entry.meta.gas_price, entry.seq);
            let replace = match worst {
                None => true,
                // Lower price is worse; among equal prices the newest
                // (highest seq) goes first.
                Some((_, _, wp, ws)) => key.0 < wp || (key.0 == wp && key.1 > ws),
            };
            if replace {
                worst = Some((sender, nonce, key.0, key.1));
            }
        }
        worst
    }

    /// Admits a transaction: replacement if the nonce slot is taken
    /// (requires the configured fee bump), eviction of the cheapest
    /// queue tail if the pool is full. The caller has already done the
    /// chain-level validation (signature, intrinsic gas, balance,
    /// nonce ≥ account nonce).
    pub fn insert(&mut self, meta: TxMeta, payload: T, now: u64) -> Result<Admitted, PoolError> {
        if self.by_hash.contains_key(&meta.hash) {
            return Ok(Admitted::AlreadyPooled);
        }

        // Same-nonce replacement: the fee market's anti-spam rule.
        if let Some(old) = self
            .senders
            .get(&meta.sender)
            .and_then(|q| q.get(&meta.nonce))
        {
            let bump = U256::from_u64(100 + self.config.replacement_bump_percent);
            let (scaled, _) = old
                .meta
                .gas_price
                .wrapping_mul(bump)
                .div_rem(U256::from_u64(100));
            if meta.gas_price < scaled {
                return Err(PoolError::Underpriced { required: scaled });
            }
            let old_hash = old.meta.hash;
            self.by_hash.remove(&old_hash);
            self.evicted.push(old_hash);
            let seq = self.next_seq;
            self.next_seq += 1;
            self.by_hash.insert(meta.hash, (meta.sender, meta.nonce));
            self.senders.get_mut(&meta.sender).expect("checked").insert(
                meta.nonce,
                Entry {
                    meta,
                    payload,
                    seq,
                    entered_at: now,
                },
            );
            return Ok(Admitted::Replaced(old_hash));
        }

        // Capacity: evict the cheapest queue tail, or bounce the
        // newcomer if nothing resident is cheaper.
        let mut evicted_other = None;
        if self.len >= self.config.capacity {
            let (sender, nonce, price, _) = self.cheapest_tail().expect("full pool is non-empty");
            if meta.gas_price <= price {
                return Err(PoolError::Full { must_exceed: price });
            }
            let queue = self.senders.get_mut(&sender).expect("tail exists");
            let victim = queue.remove(&nonce).expect("tail exists");
            if queue.is_empty() {
                self.senders.remove(&sender);
            }
            self.by_hash.remove(&victim.meta.hash);
            self.evicted.push(victim.meta.hash);
            self.len -= 1;
            evicted_other = Some(victim.meta.hash);
        }

        let seq = self.next_seq;
        self.next_seq += 1;
        self.by_hash.insert(meta.hash, (meta.sender, meta.nonce));
        self.senders.entry(meta.sender).or_default().insert(
            meta.nonce,
            Entry {
                meta,
                payload,
                seq,
                entered_at: now,
            },
        );
        self.len += 1;
        Ok(match evicted_other {
            Some(h) => Admitted::EvictedOther(h),
            None => Admitted::Queued,
        })
    }

    /// Drops every transaction whose nonce fell below its sender's
    /// account nonce (mined elsewhere or otherwise stale); dropped
    /// hashes join the evicted log.
    pub fn prune(&mut self, mut account_nonce: impl FnMut(Address) -> u64) {
        let senders: Vec<Address> = self.senders.keys().copied().collect();
        for sender in senders {
            let base = account_nonce(sender);
            let queue = self.senders.get_mut(&sender).expect("listed");
            let stale: Vec<u64> = queue.range(..base).map(|(&n, _)| n).collect();
            for n in stale {
                let entry = queue.remove(&n).expect("listed");
                self.by_hash.remove(&entry.meta.hash);
                self.evicted.push(entry.meta.hash);
                self.len -= 1;
            }
            if queue.is_empty() {
                self.senders.remove(&sender);
            }
        }
    }

    /// Greedily packs one block: repeatedly takes the highest-priority
    /// *ready* transaction (each sender's lowest pooled nonce, and only
    /// if it equals the account nonce advanced by what is already
    /// packed) whose gas limit still fits under `gas_limit`. A sender
    /// whose next transaction does not fit is skipped for the rest of
    /// the block — taking a later nonce first would break nonce order.
    ///
    /// Returns the packed transactions in block order; they are removed
    /// from the pool. Total declared gas never exceeds `gas_limit`.
    pub fn pack(
        &mut self,
        gas_limit: u64,
        mut account_nonce: impl FnMut(Address) -> u64,
    ) -> Vec<(TxMeta, T)> {
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
        let mut next_wanted: BTreeMap<Address, u64> = BTreeMap::new();
        for (&sender, queue) in &self.senders {
            let base = account_nonce(sender);
            if let Some(entry) = queue.get(&base) {
                heap.push(Candidate {
                    price: entry.meta.gas_price,
                    seq: entry.seq,
                    sender,
                });
                next_wanted.insert(sender, base);
            }
        }

        let mut packed = Vec::new();
        let mut gas_used = 0u64;
        while let Some(c) = heap.pop() {
            let nonce = next_wanted[&c.sender];
            let entry = self
                .senders
                .get(&c.sender)
                .and_then(|q| q.get(&nonce))
                .expect("candidate tracks the queue");
            if gas_used + entry.meta.gas_limit > gas_limit {
                // Skip this sender for the rest of the block.
                continue;
            }
            let queue = self.senders.get_mut(&c.sender).expect("candidate");
            let entry = queue.remove(&nonce).expect("candidate");
            self.by_hash.remove(&entry.meta.hash);
            self.len -= 1;
            gas_used += entry.meta.gas_limit;
            // The sender's next contiguous nonce becomes ready.
            if let Some(next) = queue.get(&(nonce + 1)) {
                heap.push(Candidate {
                    price: next.meta.gas_price,
                    seq: next.seq,
                    sender: c.sender,
                });
                next_wanted.insert(c.sender, nonce + 1);
            } else if queue.is_empty() {
                self.senders.remove(&c.sender);
            }
            packed.push((entry.meta, entry.payload));
        }
        packed
    }

    /// Every pooled transaction's metadata, in (sender, nonce) order —
    /// for inspection and the conservation proptests.
    pub fn iter_meta(&self) -> impl Iterator<Item = &TxMeta> {
        self.senders
            .values()
            .flat_map(|q| q.values())
            .map(|e| &e.meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(b: u8) -> Address {
        Address([b; 20])
    }

    fn hash(b: u8, n: u64) -> H256 {
        let mut h = [0u8; 32];
        h[0] = b;
        h[31] = n as u8;
        h[30] = (n >> 8) as u8;
        H256(h)
    }

    fn meta(sender: u8, nonce: u64, price: u64, gas: u64) -> TxMeta {
        TxMeta {
            sender: addr(sender),
            nonce,
            gas_price: U256::from_u64(price),
            gas_limit: gas,
            hash: hash(sender, nonce * 1000 + price),
        }
    }

    fn pool(capacity: usize) -> Mempool<u8> {
        Mempool::new(PoolConfig {
            capacity,
            ..PoolConfig::default()
        })
    }

    #[test]
    fn packs_by_price_then_arrival() {
        let mut p = pool(16);
        p.insert(meta(1, 0, 5, 21_000), 0, 0).unwrap();
        p.insert(meta(2, 0, 9, 21_000), 0, 0).unwrap();
        p.insert(meta(3, 0, 5, 21_000), 0, 0).unwrap();
        let packed = p.pack(1_000_000, |_| 0);
        let senders: Vec<u8> = packed.iter().map(|(m, _)| m.sender.0[0]).collect();
        // Highest price first; the two 5-gwei txs in arrival order.
        assert_eq!(senders, vec![2, 1, 3]);
        assert!(p.is_empty());
    }

    #[test]
    fn per_sender_nonce_order_survives_any_prices() {
        let mut p = pool(16);
        // Sender 1's nonce 0 is cheap, nonce 1 expensive: nonce order
        // must still win over price order.
        p.insert(meta(1, 0, 1, 21_000), 0, 0).unwrap();
        p.insert(meta(1, 1, 100, 21_000), 0, 0).unwrap();
        p.insert(meta(2, 0, 50, 21_000), 0, 0).unwrap();
        let packed = p.pack(1_000_000, |_| 0);
        let order: Vec<(u8, u64)> = packed
            .iter()
            .map(|(m, _)| (m.sender.0[0], m.nonce))
            .collect();
        assert_eq!(order, vec![(2, 0), (1, 0), (1, 1)]);
    }

    #[test]
    fn packing_respects_the_gas_limit() {
        let mut p = pool(16);
        for s in 1..=5u8 {
            p.insert(meta(s, 0, u64::from(s), 40_000), 0, 0).unwrap();
        }
        let packed = p.pack(100_000, |_| 0);
        assert_eq!(packed.len(), 2, "only two 40k txs fit under 100k");
        let declared: u64 = packed.iter().map(|(m, _)| m.gas_limit).sum();
        assert!(declared <= 100_000);
        assert_eq!(p.len(), 3, "the rest stay pooled for the next block");
    }

    #[test]
    fn smaller_tx_fills_the_gap_a_big_one_left() {
        let mut p = pool(16);
        p.insert(meta(1, 0, 10, 90_000), 0, 0).unwrap();
        p.insert(meta(2, 0, 9, 90_000), 0, 0).unwrap(); // won't fit
        p.insert(meta(3, 0, 1, 10_000), 0, 0).unwrap(); // will
        let packed = p.pack(100_000, |_| 0);
        let senders: Vec<u8> = packed.iter().map(|(m, _)| m.sender.0[0]).collect();
        assert_eq!(senders, vec![1, 3]);
    }

    #[test]
    fn future_nonces_wait_for_the_gap_to_fill() {
        let mut p = pool(16);
        p.insert(meta(1, 1, 100, 21_000), 0, 0).unwrap(); // gap at 0
        assert_eq!(p.pack(1_000_000, |_| 0).len(), 0);
        assert_eq!(p.len(), 1);
        p.insert(meta(1, 0, 1, 21_000), 0, 0).unwrap();
        let packed = p.pack(1_000_000, |_| 0);
        let nonces: Vec<u64> = packed.iter().map(|(m, _)| m.nonce).collect();
        assert_eq!(nonces, vec![0, 1]);
    }

    #[test]
    fn replacement_requires_the_bump() {
        let mut p = pool(16);
        p.insert(meta(1, 0, 100, 21_000), 0, 0).unwrap();
        // 109 < 110: refused.
        let err = p.insert(meta(1, 0, 109, 21_000), 1, 0).unwrap_err();
        assert_eq!(
            err,
            PoolError::Underpriced {
                required: U256::from_u64(110)
            }
        );
        // 110 = exactly +10%: accepted, old hash displaced.
        let old_hash = hash(1, 100);
        let got = p.insert(meta(1, 0, 110, 21_000), 2, 0).unwrap();
        assert_eq!(got, Admitted::Replaced(old_hash));
        assert_eq!(p.len(), 1);
        assert_eq!(p.drain_evicted(), vec![old_hash]);
        let packed = p.pack(1_000_000, |_| 0);
        assert_eq!(packed[0].1, 2, "the replacement's payload won");
    }

    #[test]
    fn resubmitting_the_identical_tx_is_idempotent() {
        let mut p = pool(16);
        let m = meta(1, 0, 5, 21_000);
        assert_eq!(p.insert(m.clone(), 0, 0).unwrap(), Admitted::Queued);
        assert_eq!(p.insert(m, 0, 0).unwrap(), Admitted::AlreadyPooled);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn full_pool_evicts_the_cheapest_tail() {
        let mut p = pool(3);
        p.insert(meta(1, 0, 5, 21_000), 0, 0).unwrap();
        p.insert(meta(2, 0, 3, 21_000), 0, 0).unwrap();
        p.insert(meta(3, 0, 7, 21_000), 0, 0).unwrap();
        // Too cheap to displace anyone (3 is the floor; ties bounce).
        let err = p.insert(meta(4, 0, 3, 21_000), 0, 0).unwrap_err();
        assert_eq!(
            err,
            PoolError::Full {
                must_exceed: U256::from_u64(3)
            }
        );
        // Rich enough: sender 2's tx (cheapest) is evicted.
        let got = p.insert(meta(4, 0, 4, 21_000), 0, 0).unwrap();
        assert_eq!(got, Admitted::EvictedOther(hash(2, 3)));
        assert_eq!(p.len(), 3);
        assert_eq!(p.drain_evicted(), vec![hash(2, 3)]);
        assert!(!p.contains(hash(2, 3)));
    }

    #[test]
    fn eviction_takes_queue_tails_never_creates_gaps() {
        let mut p = pool(3);
        // Sender 1 queues nonces 0..=1 at equal price; the *tail* (1)
        // must be the victim, keeping the queue contiguous.
        p.insert(meta(1, 0, 5, 21_000), 0, 0).unwrap();
        p.insert(meta(1, 1, 5, 21_000), 0, 0).unwrap();
        p.insert(meta(2, 0, 9, 21_000), 0, 0).unwrap();
        p.insert(meta(3, 0, 6, 21_000), 0, 0).unwrap();
        assert_eq!(p.len(), 3);
        let evicted = p.drain_evicted();
        assert_eq!(evicted, vec![hash(1, 1005)], "the nonce-1 tail went");
        let packed = p.pack(1_000_000, |_| 0);
        assert_eq!(packed.len(), 3, "no gap: everything remaining packs");
    }

    #[test]
    fn prune_drops_stale_nonces() {
        let mut p = pool(16);
        p.insert(meta(1, 0, 5, 21_000), 0, 0).unwrap();
        p.insert(meta(1, 1, 5, 21_000), 0, 0).unwrap();
        p.insert(meta(2, 0, 5, 21_000), 0, 0).unwrap();
        // Sender 1's account nonce advanced to 1 behind the pool's back.
        p.prune(|a| if a == addr(1) { 1 } else { 0 });
        assert_eq!(p.len(), 2);
        assert_eq!(p.drain_evicted(), vec![hash(1, 5)]);
        assert_eq!(p.next_nonce(addr(1), 1), 2);
    }

    #[test]
    fn next_nonce_tracks_the_contiguous_run() {
        let mut p = pool(16);
        assert_eq!(p.next_nonce(addr(1), 7), 7);
        p.insert(meta(1, 7, 5, 21_000), 0, 0).unwrap();
        p.insert(meta(1, 8, 5, 21_000), 0, 0).unwrap();
        p.insert(meta(1, 10, 5, 21_000), 0, 0).unwrap(); // gap at 9
        assert_eq!(p.next_nonce(addr(1), 7), 9, "stops at the gap");
    }

    #[test]
    fn earliest_entry_anchors_the_hold_window() {
        let mut p = pool(16);
        assert_eq!(p.earliest_entry(), None);
        p.insert(meta(1, 0, 5, 21_000), 0, 400).unwrap();
        p.insert(meta(2, 0, 5, 21_000), 0, 300).unwrap();
        assert_eq!(p.earliest_entry(), Some(300));
        p.pack(1_000_000, |_| 0);
        assert_eq!(p.earliest_entry(), None);
    }
}
