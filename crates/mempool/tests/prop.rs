//! Property suite for the fee-market pool: whatever sequence of
//! admissions arrives, a packed block never busts the gas budget, never
//! reorders a sender's nonces, and never loses a transaction — every
//! admitted hash is packed, displaced, or still resident.

use proptest::collection::vec;
use proptest::prelude::*;
use sc_mempool::{Admitted, Mempool, PoolConfig, TxMeta};
use sc_primitives::{Address, H256, U256};
use std::collections::{BTreeSet, HashMap};

/// A distinct sender per small index.
fn sender(i: u8) -> Address {
    let mut a = [0u8; 20];
    a[0] = i + 1;
    Address(a)
}

/// A unique per-admission hash (the sequence index is enough).
fn hash(i: usize) -> H256 {
    let mut h = [0u8; 32];
    h[..8].copy_from_slice(&(i as u64 + 1).to_be_bytes());
    H256(h)
}

/// One generated admission attempt, fanned over a handful of senders
/// and a narrow nonce range so replacements and races actually happen.
fn meta(i: usize, s: u8, nonce: u64, price: u64, gas: u64) -> TxMeta {
    TxMeta {
        sender: sender(s),
        nonce,
        gas_price: U256::from_u64(price),
        gas_limit: gas,
        hash: hash(i),
    }
}

/// Replays `ops` into a pool (tracking what the pool claims happened),
/// then packs one block. Returns everything a property needs.
struct Replay {
    pool: Mempool<usize>,
    /// Hashes the pool accepted (minus those it later reported
    /// replaced/evicted, which moved to `displaced`).
    accepted: BTreeSet<H256>,
    /// Hashes the pool reported displacing (replacement or eviction).
    displaced: BTreeSet<H256>,
}

fn replay(ops: &[(u8, u64, u64, u64)], capacity: usize) -> Replay {
    let mut pool = Mempool::new(PoolConfig {
        capacity,
        ..PoolConfig::default()
    });
    let mut accepted = BTreeSet::new();
    for (i, &(s, nonce, price, gas)) in ops.iter().enumerate() {
        let m = meta(i, s, nonce, 1 + price, 10_000 + gas);
        let h = m.hash;
        match pool.insert(m, i, i as u64) {
            Ok(Admitted::Queued) | Ok(Admitted::Replaced(_)) | Ok(Admitted::EvictedOther(_)) => {
                accepted.insert(h);
            }
            Ok(Admitted::AlreadyPooled) | Err(_) => {}
        }
    }
    let displaced: BTreeSet<H256> = pool.drain_evicted().into_iter().collect();
    for h in &displaced {
        accepted.remove(h);
    }
    Replay {
        pool,
        accepted,
        displaced,
    }
}

/// The strategy: up to 48 admissions over 4 senders × nonces 0..5,
/// prices 0..40 (pre-bump), gas 0..290k (pre-floor).
fn ops() -> impl Strategy<Value = Vec<(u8, u64, u64, u64)>> {
    vec((0u8..4, 0u64..5, 0u64..40, 0u64..290_000), 1..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Σ declared gas of a packed block never exceeds the block gas
    /// limit, whatever was pooled.
    #[test]
    fn packed_blocks_respect_the_gas_limit(
        ops in ops(),
        limit in 10_000u64..1_000_000,
    ) {
        let mut r = replay(&ops, 4096);
        let block = r.pool.pack(limit, |_| 0);
        let declared: u64 = block.iter().map(|(m, _)| m.gas_limit).sum();
        prop_assert!(
            declared <= limit,
            "declared {} over limit {}",
            declared,
            limit
        );
    }

    /// A packed block carries each sender's transactions in strictly
    /// increasing nonce order, starting at the account nonce, with no
    /// gaps — the order the chain will execute them in.
    #[test]
    fn packing_preserves_per_sender_nonce_order(ops in ops()) {
        let mut r = replay(&ops, 4096);
        let block = r.pool.pack(u64::MAX, |_| 0);
        let mut next: HashMap<Address, u64> = HashMap::new();
        for (m, _) in &block {
            let want = next.entry(m.sender).or_insert(0);
            prop_assert_eq!(
                m.nonce, *want,
                "sender {:?} packed nonce {} where {} was executable",
                m.sender, m.nonce, *want
            );
            *want += 1;
        }
    }

    /// No transaction is ever silently lost: every hash the pool
    /// accepted is afterwards packed, reported displaced, or still
    /// resident — and those sets are disjoint.
    #[test]
    fn admitted_transactions_are_conserved(
        ops in ops(),
        capacity in 1usize..12,
        limit in 10_000u64..600_000,
    ) {
        let mut r = replay(&ops, capacity);
        let packed: BTreeSet<H256> =
            r.pool.pack(limit, |_| 0).iter().map(|(m, _)| m.hash).collect();
        let resident: BTreeSet<H256> = r.pool.iter_meta().map(|m| m.hash).collect();

        prop_assert!(packed.is_disjoint(&resident), "packed txs must leave the pool");
        prop_assert!(packed.is_disjoint(&r.displaced), "packed txs were never displaced");

        let mut accounted: BTreeSet<H256> = packed.clone();
        accounted.extend(resident.iter().copied());
        prop_assert_eq!(
            &accounted, &r.accepted,
            "every accepted tx is packed or resident (displaced already removed)"
        );
        prop_assert_eq!(
            r.pool.len(),
            resident.len(),
            "len agrees with the resident iterator"
        );
    }
}
