//! Timeline-edge and no-submission tests for the challenge contract:
//! exact modifier boundaries, the stale deadline that unlocks funds when
//! the representative never submits, and the forced-resolution escalation.

use sc_chain::{Testnet, Wallet};
use sc_contracts::challenge::{
    security_deposit, stake, ChallengeContracts, CHALLENGE_DEPLOYED_ADDR_SLOT,
};
use sc_contracts::{BetSecrets, Timeline, TimelineWindow};
use sc_crypto::ecdsa::PrivateKey;
use sc_crypto::keccak256;
use sc_primitives::{ether, Address, U256};

const PHASE: u64 = 3600;
const WINDOW: u64 = 1800;

struct Setup {
    net: Testnet,
    alice: Wallet,
    bob: Wallet,
    cc: ChallengeContracts,
    onchain: Address,
    bytecode: Vec<u8>,
    tl: Timeline,
}

fn sign(key: &PrivateKey, code: &[u8]) -> sc_crypto::Signature {
    key.sign(keccak256(code))
}

/// Deploys and funds the challenge game but does NOT advance time: tests
/// steer the clock to the exact edges they probe.
fn setup() -> Setup {
    let mut net = Testnet::new();
    let alice = net.funded_wallet("alice", ether(1000));
    let bob = net.funded_wallet("bob", ether(1000));
    let tl = Timeline::starting_at(net.now(), PHASE);
    let mut secrets = BetSecrets {
        secret_a: U256::from_u64(5),
        secret_b: U256::from_u64(6),
        weight: 32,
    };
    while !secrets.winner_is_bob() {
        secrets.secret_a = secrets.secret_a.wrapping_add(U256::ONE);
    }
    let cc = ChallengeContracts::new();
    let onchain = net
        .deploy(
            &alice,
            cc.onchain_initcode(alice.address, bob.address, tl, WINDOW),
            U256::ZERO,
            7_000_000,
        )
        .unwrap()
        .contract_address
        .expect("challenge contract deploys");
    let pay = stake().wrapping_add(security_deposit());
    for w in [&alice, &bob] {
        let r = net.execute(w, onchain, pay, cc.deposit(), 400_000).unwrap();
        assert!(r.success, "deposit: {:?}", r.failure);
    }
    let bytecode = cc.offchain_initcode(alice.address, bob.address, secrets);
    Setup {
        net,
        alice,
        bob,
        cc,
        onchain,
        bytecode,
        tl,
    }
}

/// Moves the pending-block timestamp to exactly `target`.
fn warp_to(net: &mut Testnet, target: u64) {
    let now = net.now();
    assert!(target >= now, "cannot warp backwards ({now} -> {target})");
    net.advance_time(target - now);
}

#[test]
fn deposit_at_exactly_t1_is_rejected() {
    // A third participant-slot deposit isn't possible, so probe the edge
    // with a fresh game where only Alice deposits, Bob waits until T1.
    let mut net = Testnet::new();
    let alice = net.funded_wallet("alice", ether(10));
    let bob = net.funded_wallet("bob", ether(10));
    let tl = Timeline::starting_at(net.now(), PHASE);
    let cc = ChallengeContracts::new();
    let onchain = net
        .deploy(
            &alice,
            cc.onchain_initcode(alice.address, bob.address, tl, WINDOW),
            U256::ZERO,
            7_000_000,
        )
        .unwrap()
        .contract_address
        .unwrap();
    let pay = stake().wrapping_add(security_deposit());
    assert!(
        net.execute(&alice, onchain, pay, cc.deposit(), 400_000)
            .unwrap()
            .success
    );
    // One second before T1 the window is still open…
    warp_to(&mut net, tl.t1 - 1);
    assert_eq!(net.now(), tl.t1 - 1);
    assert_eq!(tl.window_at(net.now()), TimelineWindow::BeforeT1);
    // …but Bob stalls one more second: `beforeT1` is a strict `<`.
    warp_to(&mut net, tl.t1);
    assert_eq!(tl.window_at(net.now()), TimelineWindow::T1ToT2);
    let r = net
        .execute(&bob, onchain, pay, cc.deposit(), 400_000)
        .unwrap();
    assert!(!r.success, "deposit at exactly T1 must revert");
}

#[test]
fn reclaim_rejected_before_the_stale_deadline() {
    let mut s = setup();
    // Even well past T2, reclaim must wait the full challenge window out.
    warp_to(&mut s.net, s.tl.t2 + WINDOW - 1);
    let r = s
        .net
        .execute(
            &s.alice,
            s.onchain,
            U256::ZERO,
            s.cc.reclaim_no_submission(),
            400_000,
        )
        .unwrap();
    assert!(!r.success, "a submission could still arrive");
}

#[test]
fn both_participants_reclaim_after_the_stale_deadline() {
    let mut s = setup();
    warp_to(&mut s.net, s.tl.t2 + WINDOW);
    let refund = stake().wrapping_add(security_deposit());
    for w in [&s.alice, &s.bob] {
        let before = s.net.balance_of(w.address);
        let r = s
            .net
            .execute(
                w,
                s.onchain,
                U256::ZERO,
                s.cc.reclaim_no_submission(),
                400_000,
            )
            .unwrap();
        assert!(r.success, "reclaim: {:?}", r.failure);
        let gas_cost = U256::from_u64(r.gas_used).wrapping_mul(sc_primitives::gwei(1));
        assert_eq!(
            s.net.balance_of(w.address),
            before.wrapping_add(refund).wrapping_sub(gas_cost),
            "each side takes back exactly their own stake + security deposit"
        );
        // Double reclaim is a no-op revert.
        let r = s
            .net
            .execute(
                w,
                s.onchain,
                U256::ZERO,
                s.cc.reclaim_no_submission(),
                400_000,
            )
            .unwrap();
        assert!(!r.success, "nothing left to reclaim");
    }
    assert_eq!(s.net.balance_of(s.onchain), U256::ZERO);
}

#[test]
fn reclaim_rejected_once_a_result_is_submitted() {
    let mut s = setup();
    warp_to(&mut s.net, s.tl.t2 + 1);
    assert!(
        s.net
            .execute(
                &s.bob,
                s.onchain,
                U256::ZERO,
                s.cc.submit_result(true),
                400_000
            )
            .unwrap()
            .success
    );
    // Even after the stale deadline: a live proposal blocks reclaiming.
    warp_to(&mut s.net, s.tl.t2 + 10 * WINDOW);
    let r = s
        .net
        .execute(
            &s.alice,
            s.onchain,
            U256::ZERO,
            s.cc.reclaim_no_submission(),
            400_000,
        )
        .unwrap();
    assert!(!r.success, "reclaim is only for the no-submission case");
}

#[test]
fn challenge_without_submission_rejected_before_stale_deadline() {
    let mut s = setup();
    warp_to(&mut s.net, s.tl.t2 + WINDOW - 1);
    let sig_a = sign(&s.alice.key, &s.bytecode);
    let sig_b = sign(&s.bob.key, &s.bytecode);
    let r = s
        .net
        .execute(
            &s.bob,
            s.onchain,
            U256::ZERO,
            s.cc.challenge(&s.bytecode, &sig_a, &sig_b),
            7_900_000,
        )
        .unwrap();
    assert!(
        !r.success,
        "no proposal and no stale deadline yet: nothing to dispute"
    );
}

#[test]
fn challenge_without_submission_forces_resolution_after_stale_deadline() {
    let mut s = setup();
    // The representative never submits; Bob escalates at the deadline.
    warp_to(&mut s.net, s.tl.t2 + WINDOW);
    let sig_a = sign(&s.alice.key, &s.bytecode);
    let sig_b = sign(&s.bob.key, &s.bytecode);
    let r = s
        .net
        .execute(
            &s.bob,
            s.onchain,
            U256::ZERO,
            s.cc.challenge(&s.bytecode, &sig_a, &sig_b),
            7_900_000,
        )
        .unwrap();
    assert!(r.success, "challenge: {:?}", r.failure);
    let instance = Address::from_u256(
        s.net
            .storage_at(s.onchain, U256::from_u64(CHALLENGE_DEPLOYED_ADDR_SLOT)),
    );
    assert!(!instance.is_zero(), "verified instance created");

    let bob_before = s.net.balance_of(s.bob.address);
    let r = s
        .net
        .execute(
            &s.bob,
            instance,
            U256::ZERO,
            s.cc.return_dispute_resolution(s.onchain),
            7_900_000,
        )
        .unwrap();
    assert!(r.success, "resolution: {:?}", r.failure);
    // Bob is the true winner: pot + both security deposits, minus gas.
    let gas_cost = U256::from_u64(r.gas_used).wrapping_mul(sc_primitives::gwei(1));
    assert_eq!(
        s.net.balance_of(s.bob.address),
        bob_before
            .wrapping_add(ether(2))
            .wrapping_add(security_deposit().wrapping_mul(U256::from_u64(2)))
            .wrapping_sub(gas_cost)
    );
    assert_eq!(s.net.balance_of(s.onchain), U256::ZERO);
    // The escalation settled the game: reclaiming afterwards reverts.
    let r = s
        .net
        .execute(
            &s.alice,
            s.onchain,
            U256::ZERO,
            s.cc.reclaim_no_submission(),
            400_000,
        )
        .unwrap();
    assert!(!r.success, "settled flag blocks late reclaims");
}
